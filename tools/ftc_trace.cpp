// ftc-trace — inspect the JSONL stream written by --trace (obs/trace.h).
//
//   ftc-trace summary soak.trace.jsonl
//   ftc-trace dump soak.trace.jsonl [--cat=repair] [--sev=info]
//                                   [--node=17] [--from=100] [--to=200]
//                                   [--limit=50]
//
// The JSONL stream is the deterministic half of a trace (logical fields
// only; see DESIGN.md §7), so everything printed here is bitwise
// reproducible across runs and thread counts. `summary` aggregates event
// counts per name and per category/severity plus the covered round span;
// `dump` re-prints matching lines (the Chrome .trace companion is for
// Perfetto / about:tracing, not for this tool).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/cli.h"

namespace {

using namespace ftc;

/// One parsed JSONL record. Only the fields the exporter writes.
struct Line {
  long long round = 0;
  long long node = -1;
  std::string cat;
  std::string sev;
  std::string name;
  long long a0 = 0;
  long long a1 = 0;
};

/// Extracts `"key":<integer>` from the fixed exporter format.
bool get_ll(const std::string& s, const std::string& key, long long& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  try {
    out = std::stoll(s.substr(pos + needle.size()));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Extracts `"key":"<string>"`.
bool get_str(const std::string& s, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto end = s.find('"', begin);
  if (end == std::string::npos) return false;
  out = s.substr(begin, end - begin);
  return true;
}

bool parse_line(const std::string& s, Line& out) {
  return get_ll(s, "round", out.round) && get_ll(s, "node", out.node) &&
         get_str(s, "cat", out.cat) && get_str(s, "sev", out.sev) &&
         get_str(s, "name", out.name) && get_ll(s, "a0", out.a0) &&
         get_ll(s, "a1", out.a1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <summary|dump> <trace.jsonl>\n"
               "  [--cat=engine|message|fault|detector|repair|algo|user]\n"
               "  [--sev=debug|info|warn|error] [--node=N]\n"
               "  [--from=ROUND] [--to=ROUND] [--limit=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().size() < 2) return usage(argv[0]);
  const std::string mode = args.positional()[0];
  const std::string path = args.positional()[1];
  if (mode != "summary" && mode != "dump") return usage(argv[0]);

  const std::string want_cat = args.get_string("cat", "");
  const std::string want_sev = args.get_string("sev", "");
  const long long want_node = args.get_int("node", -2);
  const long long from = args.get_int("from", 0);
  const long long to =
      args.get_int("to", std::numeric_limits<long long>::max());
  const long long limit = args.get_int("limit", 0);

  if (!want_cat.empty()) {
    obs::Category c;
    if (!obs::parse_category(want_cat, c)) {
      std::fprintf(stderr, "unknown category '%s'\n", want_cat.c_str());
      return 2;
    }
  }
  if (!want_sev.empty()) {
    obs::Severity s;
    if (!obs::parse_severity(want_sev, s)) {
      std::fprintf(stderr, "unknown severity '%s'\n", want_sev.c_str());
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  long long total = 0, matched = 0, malformed = 0, printed = 0;
  long long min_round = std::numeric_limits<long long>::max();
  long long max_round = std::numeric_limits<long long>::min();
  std::map<std::string, long long> by_name;      // "cat/name" -> count
  std::map<std::string, long long> by_severity;  // "sev" -> count
  std::string raw;
  while (std::getline(in, raw)) {
    if (raw.empty()) continue;
    ++total;
    Line line;
    if (!parse_line(raw, line)) {
      ++malformed;
      continue;
    }
    if (!want_cat.empty() && line.cat != want_cat) continue;
    if (!want_sev.empty() && line.sev != want_sev) continue;
    if (want_node != -2 && line.node != want_node) continue;
    if (line.round < from || line.round > to) continue;
    ++matched;
    min_round = std::min(min_round, line.round);
    max_round = std::max(max_round, line.round);
    if (mode == "dump") {
      if (limit > 0 && printed >= limit) break;
      std::printf("%s\n", raw.c_str());
      ++printed;
      continue;
    }
    by_name[line.cat + "/" + line.name] += 1;
    by_severity[line.sev] += 1;
  }

  if (mode == "summary") {
    std::printf("%s: %lld events (%lld matched filters", path.c_str(), total,
                matched);
    if (malformed > 0) std::printf(", %lld malformed", malformed);
    std::printf(")\n");
    if (matched > 0) {
      std::printf("rounds %lld..%lld\n", min_round, max_round);
      std::printf("by severity:\n");
      for (const auto& [sev, count] : by_severity) {
        std::printf("  %-8s %10lld\n", sev.c_str(), count);
      }
      // Names sorted by count, descending, for a "what dominated" view.
      std::vector<std::pair<std::string, long long>> names(by_name.begin(),
                                                           by_name.end());
      std::sort(names.begin(), names.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
      });
      std::printf("by event (cat/name):\n");
      for (const auto& [name, count] : names) {
        std::printf("  %-28s %10lld\n", name.c_str(), count);
      }
    }
  }
  return malformed == 0 ? 0 : 1;
}
