// ftc-trace — inspect the JSONL streams written by --trace / --perf and the
// --metrics registry dump.
//
//   ftc-trace summary soak.trace.jsonl
//   ftc-trace dump soak.trace.jsonl [--cat=repair] [--sev=info]
//                                   [--node=17] [--from=100] [--to=200]
//                                   [--limit=50]
//   ftc-trace phases soak.perf.jsonl
//   ftc-trace imbalance soak.perf.jsonl [--top=5]
//   ftc-trace report soak.perf.jsonl [--out=perf_report.html]
//   ftc-trace summarize soak_metrics.json
//
// The trace JSONL stream is the deterministic half of a trace (logical
// fields only; see DESIGN.md §7), so everything `summary`/`dump` print is
// bitwise reproducible across runs and thread counts. The perf JSONL
// (obs/perf.h, written by --perf) is the wall-clock side channel: `phases`
// renders the run-wide per-phase attribution table, `imbalance` the
// per-shard heatmap and straggler report, and `report` a self-contained
// HTML page with phase stacks and the imbalance timeline. `summarize`
// renders a --metrics registry dump with histogram percentiles
// (p50/p90/p99, linear interpolation within buckets) instead of the raw
// bounds/counts arrays.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/perf.h"
#include "obs/trace.h"
#include "util/cli.h"

namespace {

using namespace ftc;

// ---------------------------------------------------------------------------
// Shared string-scan JSON extraction (the exporters write a fixed format;
// a full JSON parser would be dead weight here).

/// Extracts `"key":<integer>` from the fixed exporter format.
bool get_ll(const std::string& s, const std::string& key, long long& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  try {
    out = std::stoll(s.substr(pos + needle.size()));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Extracts `"key":<number>` as a double (perf ratios are fractional).
bool get_dbl(const std::string& s, const std::string& key, double& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  try {
    out = std::stod(s.substr(pos + needle.size()));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Extracts `"key":"<string>"`.
bool get_str(const std::string& s, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto end = s.find('"', begin);
  if (end == std::string::npos) return false;
  out = s.substr(begin, end - begin);
  return true;
}

/// Body of the flat object `"key":{...}` (no nested braces inside).
bool get_obj(const std::string& s, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":{";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto end = s.find('}', begin);
  if (end == std::string::npos) return false;
  out = s.substr(begin, end - begin);
  return true;
}

/// Body of the array `"key":[...]` whose elements are flat objects.
bool get_arr(const std::string& s, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":[";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto end = s.find(']', begin);
  if (end == std::string::npos) return false;
  out = s.substr(begin, end - begin);
  return true;
}

/// Splits "{...},{...}" into its flat-object bodies.
std::vector<std::string> split_objects(const std::string& arr) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = arr.find('{', pos)) != std::string::npos) {
    const auto end = arr.find('}', pos);
    if (end == std::string::npos) break;
    out.push_back(arr.substr(pos, end - pos + 1));
    pos = end + 1;
  }
  return out;
}

/// Parses a flat `"name":int` object body into ordered pairs.
std::vector<std::pair<std::string, long long>> parse_kv(
    const std::string& body) {
  std::vector<std::pair<std::string, long long>> out;
  std::size_t pos = 0;
  while ((pos = body.find('"', pos)) != std::string::npos) {
    const auto name_end = body.find('"', pos + 1);
    if (name_end == std::string::npos) break;
    const std::string name = body.substr(pos + 1, name_end - pos - 1);
    const auto colon = body.find(':', name_end);
    if (colon == std::string::npos) break;
    try {
      out.emplace_back(name, std::stoll(body.substr(colon + 1)));
    } catch (const std::exception&) {
      break;
    }
    pos = body.find(',', colon);
    if (pos == std::string::npos) break;
  }
  return out;
}

std::string fmt_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns",
                  static_cast<long long>(std::llround(ns)));
  }
  return buf;
}

/// True when `name` is one of PerfPlane's top-level (coverage-counted)
/// phases; nested/overlapping ones are reported but excluded from coverage.
bool phase_is_top_level(const std::string& name) {
  for (int p = 0; p < obs::kPerfPhaseCount; ++p) {
    const auto phase = static_cast<obs::PerfPhase>(p);
    if (obs::perf_phase_name(phase) == name) {
      return obs::perf_phase_top_level(phase);
    }
  }
  return true;  // unknown names count as top-level (forward compat)
}

// ---------------------------------------------------------------------------
// Trace JSONL model (obs/trace.h exporter).

/// One parsed trace record. Only the fields the exporter writes.
struct Line {
  long long round = 0;
  long long node = -1;
  std::string cat;
  std::string sev;
  std::string name;
  long long a0 = 0;
  long long a1 = 0;
};

bool parse_line(const std::string& s, Line& out) {
  return get_ll(s, "round", out.round) && get_ll(s, "node", out.node) &&
         get_str(s, "cat", out.cat) && get_str(s, "sev", out.sev) &&
         get_str(s, "name", out.name) && get_ll(s, "a0", out.a0) &&
         get_ll(s, "a1", out.a1);
}

// ---------------------------------------------------------------------------
// Perf JSONL model (obs::PerfPlane::export_jsonl).

struct PerfShardRow {
  long long shard = 0;
  long long compute_ns = 0;
  long long deliver_count_ns = 0;
  long long deliver_place_ns = 0;
  long long channel_decide_ns = 0;
  long long busy_ns = 0;
  long long nodes = 0;
  long long messages = 0;
  long long straggler_rounds = 0;  // summary shard_totals only
};

struct PerfRound {
  long long round = 0;
  long long total_ns = 0;
  long long attributed_ns = 0;
  double imbalance = 1.0;
  long long straggler = -1;
  std::vector<PerfShardRow> shards;
};

struct PerfFile {
  std::vector<PerfRound> rounds;
  bool have_summary = false;
  long long total_rounds = 0;
  long long retained = 0;
  long long shards = 0;
  long long wall_ns = 0;
  long long clamped_spans = 0;
  double coverage = 0.0;
  double imb_mean = 0.0;
  double imb_max = 0.0;
  std::vector<std::pair<std::string, long long>> phases;  // run-wide totals
  std::vector<PerfShardRow> shard_totals;
};

bool parse_shard_row(const std::string& s, PerfShardRow& out) {
  if (!get_ll(s, "shard", out.shard)) return false;
  get_ll(s, "compute_ns", out.compute_ns);
  get_ll(s, "deliver_count_ns", out.deliver_count_ns);
  get_ll(s, "deliver_place_ns", out.deliver_place_ns);
  get_ll(s, "channel_decide_ns", out.channel_decide_ns);
  get_ll(s, "busy_ns", out.busy_ns);
  get_ll(s, "nodes", out.nodes);
  get_ll(s, "messages", out.messages);
  get_ll(s, "straggler_rounds", out.straggler_rounds);
  return true;
}

bool load_perf(const std::string& path, PerfFile& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string raw;
  while (std::getline(in, raw)) {
    if (raw.empty()) continue;
    std::string type;
    if (!get_str(raw, "type", type)) continue;
    if (type == "round") {
      PerfRound r;
      get_ll(raw, "round", r.round);
      get_ll(raw, "total_ns", r.total_ns);
      get_ll(raw, "attributed_ns", r.attributed_ns);
      get_dbl(raw, "imbalance", r.imbalance);
      get_ll(raw, "straggler", r.straggler);
      std::string arr;
      if (get_arr(raw, "shards", arr)) {
        for (const std::string& obj : split_objects(arr)) {
          PerfShardRow row;
          if (parse_shard_row(obj, row)) r.shards.push_back(row);
        }
      }
      out.rounds.push_back(std::move(r));
    } else if (type == "summary") {
      out.have_summary = true;
      get_ll(raw, "rounds", out.total_rounds);
      get_ll(raw, "retained", out.retained);
      get_ll(raw, "shards", out.shards);
      get_ll(raw, "wall_ns", out.wall_ns);
      get_ll(raw, "clamped_spans", out.clamped_spans);
      get_dbl(raw, "coverage", out.coverage);
      get_dbl(raw, "imbalance_mean", out.imb_mean);
      get_dbl(raw, "imbalance_max", out.imb_max);
      std::string body;
      if (get_obj(raw, "phases", body)) out.phases = parse_kv(body);
      if (get_arr(raw, "shard_totals", body)) {
        for (const std::string& obj : split_objects(body)) {
          PerfShardRow row;
          if (parse_shard_row(obj, row)) out.shard_totals.push_back(row);
        }
      }
    }
  }
  if (!out.have_summary) {
    std::fprintf(stderr, "%s: no summary record (is this a --perf JSONL?)\n",
                 path.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// `phases` — run-wide per-phase attribution table.

int run_phases(const std::string& path) {
  PerfFile pf;
  if (!load_perf(path, pf)) return 1;
  std::printf("%s: %lld rounds (%lld retained), %lld shards, wall %s\n",
              path.c_str(), pf.total_rounds, pf.retained, pf.shards,
              fmt_ns(static_cast<double>(pf.wall_ns)).c_str());
  std::printf(
      "coverage: %.1f%% of wall time attributed to top-level phases\n",
      pf.coverage * 100.0);
  if (pf.clamped_spans > 0) {
    std::printf("clamped spans: %lld (zero-duration spans bumped to 1ns)\n",
                pf.clamped_spans);
  }

  const double rounds =
      pf.total_rounds > 0 ? static_cast<double>(pf.total_rounds) : 1.0;
  auto print_section = [&](const char* title, bool top_level) {
    std::vector<std::pair<std::string, long long>> rows;
    for (const auto& [name, ns] : pf.phases) {
      if (ns > 0 && phase_is_top_level(name) == top_level) {
        rows.emplace_back(name, ns);
      }
    }
    if (rows.empty()) return;
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::printf("%s\n", title);
    std::printf("  %-16s %12s %8s %12s\n", "phase", "total", "%wall",
                "per-round");
    for (const auto& [name, ns] : rows) {
      const double pct = pf.wall_ns > 0
                             ? 100.0 * static_cast<double>(ns) /
                                   static_cast<double>(pf.wall_ns)
                             : 0.0;
      std::printf("  %-16s %12s %7.1f%% %12s\n", name.c_str(),
                  fmt_ns(static_cast<double>(ns)).c_str(), pct,
                  fmt_ns(static_cast<double>(ns) / rounds).c_str());
    }
  };
  print_section("top-level phases (disjoint; sum = attributed time):", true);
  print_section("nested/overlapping (excluded from coverage):", false);

  long long attributed = 0;
  for (const auto& [name, ns] : pf.phases) {
    if (phase_is_top_level(name)) attributed += ns;
  }
  const long long unattributed = pf.wall_ns - attributed;
  if (pf.wall_ns > 0) {
    std::printf("unattributed: %s (%.1f%%)\n",
                fmt_ns(static_cast<double>(unattributed)).c_str(),
                100.0 * static_cast<double>(unattributed) /
                    static_cast<double>(pf.wall_ns));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `imbalance` — per-shard heatmap over the retained rounds + stragglers.

int run_imbalance(const std::string& path, long long top_k) {
  PerfFile pf;
  if (!load_perf(path, pf)) return 1;
  std::printf("%s: %lld rounds, %lld shards\n", path.c_str(), pf.total_rounds,
              pf.shards);
  std::printf("imbalance (max/mean shard busy): mean %.3f, worst %.3f\n",
              pf.imb_mean, pf.imb_max);

  // Straggler report: shards ranked by how often they were the round's
  // slowest, ties broken by total busy time.
  std::vector<PerfShardRow> ranked = pf.shard_totals;
  std::sort(ranked.begin(), ranked.end(),
            [](const PerfShardRow& a, const PerfShardRow& b) {
              if (a.straggler_rounds != b.straggler_rounds) {
                return a.straggler_rounds > b.straggler_rounds;
              }
              return a.busy_ns > b.busy_ns;
            });
  if (top_k > static_cast<long long>(ranked.size())) {
    top_k = static_cast<long long>(ranked.size());
  }
  std::printf("top %lld straggler shards:\n", top_k);
  std::printf("  %-6s %10s %12s %12s %12s\n", "shard", "straggle", "busy",
              "nodes", "messages");
  for (long long i = 0; i < top_k; ++i) {
    const PerfShardRow& r = ranked[static_cast<std::size_t>(i)];
    std::printf("  %-6lld %10lld %12s %12lld %12lld\n", r.shard,
                r.straggler_rounds,
                fmt_ns(static_cast<double>(r.busy_ns)).c_str(), r.nodes,
                r.messages);
  }

  // Heatmap: rows = shards, columns = round buckets (≤ 60), intensity =
  // mean shard busy time in the bucket, normalized by the global maximum.
  if (pf.rounds.empty() || pf.shards <= 0) return 0;
  const std::size_t n_shards = static_cast<std::size_t>(pf.shards);
  const std::size_t cols = std::min<std::size_t>(60, pf.rounds.size());
  const std::size_t per_col = (pf.rounds.size() + cols - 1) / cols;
  std::vector<std::vector<double>> cell(n_shards,
                                        std::vector<double>(cols, 0.0));
  double cell_max = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t begin = c * per_col;
    const std::size_t end = std::min(begin + per_col, pf.rounds.size());
    if (begin >= end) continue;
    for (std::size_t r = begin; r < end; ++r) {
      const PerfRound& round = pf.rounds[r];
      for (std::size_t s = 0; s < round.shards.size() && s < n_shards; ++s) {
        cell[s][c] += static_cast<double>(round.shards[s].busy_ns);
      }
    }
    for (std::size_t s = 0; s < n_shards; ++s) {
      cell[s][c] /= static_cast<double>(end - begin);
      cell_max = std::max(cell_max, cell[s][c]);
    }
  }
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 9;  // indices 0..9 into kRamp
  std::printf("shard busy heatmap (rounds %lld..%lld, %zu rounds/col):\n",
              pf.rounds.front().round, pf.rounds.back().round, per_col);
  const std::size_t max_rows = 32;
  for (std::size_t s = 0; s < std::min(n_shards, max_rows); ++s) {
    std::printf("  s%-4zu |", s);
    for (std::size_t c = 0; c < cols; ++c) {
      const int level =
          cell_max > 0.0
              ? static_cast<int>(std::lround(cell[s][c] / cell_max * kLevels))
              : 0;
      std::putchar(kRamp[std::clamp(level, 0, kLevels)]);
    }
    std::printf("|\n");
  }
  if (n_shards > max_rows) {
    std::printf("  (… %zu more shards)\n", n_shards - max_rows);
  }
  std::printf("  scale: ' '=idle … '@'=%s mean busy/round\n",
              fmt_ns(cell_max).c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// `report` — self-contained HTML (phase stacks + imbalance timeline).

const char* phase_color(const std::string& name) {
  // Fixed palette keyed by phase name; unknown names get gray.
  static const std::pair<const char*, const char*> kColors[] = {
      {"fault_apply", "#e6794a"},    {"compute", "#4a90d9"},
      {"stats_merge", "#9b6dc6"},    {"obs_merge", "#c44f8e"},
      {"deliver_count", "#3aa56f"},  {"deliver_prefix", "#7fbf4d"},
      {"deliver_place", "#2a7f62"},  {"finalize", "#b8a02e"},
      {"channel_decide", "#d9c34a"}, {"barrier_wait", "#8a8a8a"},
      {"claim_stall", "#b0b0b0"},    {"lp_x_update", "#4a90d9"},
      {"lp_dual_color", "#9b6dc6"},  {"lp_degree", "#3aa56f"},
      {"lp_z_pass", "#b8a02e"},
  };
  for (const auto& [key, color] : kColors) {
    if (name == key) return color;
  }
  return "#cccccc";
}

int run_report(const std::string& path, const std::string& out_path) {
  PerfFile pf;
  if (!load_perf(path, pf)) return 1;

  // For the stacked chart, rebuild per-bucket phase sums from the per-round
  // shard rows (the parallel phases) plus total-minus-parallel for the
  // sequential remainder.
  const std::size_t buckets = std::min<std::size_t>(480, pf.rounds.size());
  struct Bucket {
    double compute = 0, count = 0, place = 0, other = 0, total = 0;
    double imbalance = 0;
    std::size_t n = 0;
  };
  std::vector<Bucket> bs(buckets);
  if (buckets > 0) {
    const std::size_t per = (pf.rounds.size() + buckets - 1) / buckets;
    for (std::size_t i = 0; i < pf.rounds.size(); ++i) {
      const PerfRound& r = pf.rounds[i];
      Bucket& b = bs[std::min(i / per, buckets - 1)];
      double compute = 0, count = 0, place = 0;
      for (const PerfShardRow& s : r.shards) {
        compute += static_cast<double>(s.compute_ns);
        count += static_cast<double>(s.deliver_count_ns);
        place += static_cast<double>(s.deliver_place_ns);
      }
      b.compute += compute;
      b.count += count;
      b.place += place;
      b.other += std::max(
          0.0, static_cast<double>(r.total_ns) - compute - count - place);
      b.total += static_cast<double>(r.total_ns);
      b.imbalance += r.imbalance;
      ++b.n;
    }
    for (Bucket& b : bs) {
      if (b.n > 0) b.imbalance /= static_cast<double>(b.n);
    }
  }

  std::ostringstream html;
  html << "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\n"
       << "<title>perf report: " << path << "</title>\n"
       << "<style>\n"
       << "body{font-family:system-ui,sans-serif;margin:2em;max-width:64em}\n"
       << "table{border-collapse:collapse;margin:1em 0}\n"
       << "td,th{border:1px solid #ccc;padding:0.3em 0.7em;"
          "text-align:right}\n"
       << "th{background:#f2f2f2}\n"
       << ".bar{display:inline-block;height:0.9em;background:#4a90d9;"
          "vertical-align:middle}\n"
       << ".legend{display:inline-block;width:0.9em;height:0.9em;"
          "margin-right:0.3em;vertical-align:middle}\n"
       << "svg{border:1px solid #ddd;background:#fafafa}\n"
       << "</style></head><body>\n"
       << "<h1>perf report</h1>\n"
       << "<p><code>" << path << "</code></p>\n";

  html << "<h2>Summary</h2><table>\n"
       << "<tr><th>rounds</th><th>retained</th><th>shards</th>"
       << "<th>wall</th><th>coverage</th><th>imbalance mean</th>"
       << "<th>imbalance max</th><th>clamped spans</th></tr>\n"
       << "<tr><td>" << pf.total_rounds << "</td><td>" << pf.retained
       << "</td><td>" << pf.shards << "</td><td>"
       << fmt_ns(static_cast<double>(pf.wall_ns)) << "</td><td>"
       << static_cast<double>(static_cast<long long>(pf.coverage * 1000.0)) /
              10.0
       << "%</td><td>" << pf.imb_mean << "</td><td>" << pf.imb_max
       << "</td><td>" << pf.clamped_spans << "</td></tr></table>\n";

  // Run-wide phase totals as horizontal bars.
  long long phase_max = 1;
  for (const auto& [name, ns] : pf.phases) phase_max = std::max(phase_max, ns);
  std::vector<std::pair<std::string, long long>> sorted = pf.phases;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  html << "<h2>Phase totals</h2><table>\n"
       << "<tr><th>phase</th><th>total</th><th>%wall</th><th></th></tr>\n";
  for (const auto& [name, ns] : sorted) {
    if (ns <= 0) continue;
    const double pct = pf.wall_ns > 0 ? 100.0 * static_cast<double>(ns) /
                                            static_cast<double>(pf.wall_ns)
                                      : 0.0;
    const int width = static_cast<int>(
        300.0 * static_cast<double>(ns) / static_cast<double>(phase_max));
    html << "<tr><td style=\"text-align:left\">" << name
         << (phase_is_top_level(name) ? "" : " <small>(nested)</small>")
         << "</td><td>" << fmt_ns(static_cast<double>(ns)) << "</td><td>"
         << static_cast<double>(static_cast<long long>(pct * 10.0)) / 10.0
         << "%</td><td style=\"text-align:left\"><span class=\"bar\" "
            "style=\"width:"
         << std::max(width, 1) << "px;background:" << phase_color(name)
         << "\"></span></td></tr>\n";
  }
  html << "</table>\n";

  // Stacked per-bucket phase chart.
  if (!bs.empty()) {
    const int W = 960, H = 240;
    const double bw = static_cast<double>(W) / static_cast<double>(bs.size());
    double bucket_max = 1.0;
    for (const Bucket& b : bs) bucket_max = std::max(bucket_max, b.total);
    html << "<h2>Round phase stacks</h2>\n"
         << "<p>Per-bucket round time (rounds " << pf.rounds.front().round
         << ".." << pf.rounds.back().round << ", " << bs.size()
         << " buckets): "
         << "<span class=\"legend\" style=\"background:"
         << phase_color("compute") << "\"></span>compute "
         << "<span class=\"legend\" style=\"background:"
         << phase_color("deliver_count") << "\"></span>deliver_count "
         << "<span class=\"legend\" style=\"background:"
         << phase_color("deliver_place") << "\"></span>deliver_place "
         << "<span class=\"legend\" style=\"background:#8a8a8a\"></span>"
         << "sequential/other</p>\n"
         << "<svg width=\"" << W << "\" height=\"" << H << "\">\n";
    for (std::size_t i = 0; i < bs.size(); ++i) {
      const Bucket& b = bs[i];
      if (b.total <= 0) continue;
      const double x = static_cast<double>(i) * bw;
      double y = H;
      auto stack = [&](double ns, const char* color) {
        const double h = ns / bucket_max * H;
        if (h <= 0) return;
        y -= h;
        html << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
             << std::max(bw - 0.5, 0.5) << "\" height=\"" << h
             << "\" fill=\"" << color << "\"/>\n";
      };
      stack(b.compute, phase_color("compute"));
      stack(b.count, phase_color("deliver_count"));
      stack(b.place, phase_color("deliver_place"));
      stack(b.other, "#8a8a8a");
    }
    html << "</svg>\n";

    // Imbalance timeline.
    double imb_max = 1.0;
    for (const Bucket& b : bs) imb_max = std::max(imb_max, b.imbalance);
    html << "<h2>Imbalance timeline</h2>\n"
         << "<p>max/mean shard busy per bucket (1.0 = perfectly balanced, "
            "chart max "
         << imb_max << ")</p>\n"
         << "<svg width=\"" << W << "\" height=\"120\">\n<polyline fill=\""
         << "none\" stroke=\"#c44f8e\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < bs.size(); ++i) {
      const double x = (static_cast<double>(i) + 0.5) * bw;
      const double y = 120.0 - bs[i].imbalance / imb_max * 110.0;
      html << x << "," << y << " ";
    }
    html << "\"/>\n</svg>\n";
  }

  // Shard totals.
  html << "<h2>Shard totals</h2><table>\n"
       << "<tr><th>shard</th><th>busy</th><th>compute</th><th>deliver "
          "count</th><th>deliver place</th><th>channel decide</th>"
       << "<th>nodes</th><th>messages</th><th>straggler rounds</th></tr>\n";
  for (const PerfShardRow& s : pf.shard_totals) {
    html << "<tr><td>" << s.shard << "</td><td>"
         << fmt_ns(static_cast<double>(s.busy_ns)) << "</td><td>"
         << fmt_ns(static_cast<double>(s.compute_ns)) << "</td><td>"
         << fmt_ns(static_cast<double>(s.deliver_count_ns)) << "</td><td>"
         << fmt_ns(static_cast<double>(s.deliver_place_ns)) << "</td><td>"
         << fmt_ns(static_cast<double>(s.channel_decide_ns)) << "</td><td>"
         << s.nodes << "</td><td>" << s.messages << "</td><td>"
         << s.straggler_rounds << "</td></tr>\n";
  }
  html << "</table>\n</body></html>\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << html.str();
  std::printf("wrote %s (%lld rounds, %lld shards)\n", out_path.c_str(),
              pf.total_rounds, pf.shards);
  return 0;
}

// ---------------------------------------------------------------------------
// `summarize` — registry dump with histogram percentiles.

/// Percentile from bucket counts, linear interpolation within the bucket.
/// Bucket i covers [bounds[i-1], bounds[i]) with an implicit 0 lower edge
/// for the first bucket; the overflow bucket has no upper edge, so its
/// values are clamped to bounds.back().
double percentile(const std::vector<double>& bounds,
                  const std::vector<long long>& counts, double p) {
  long long total = 0;
  for (long long c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  long long cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cum + counts[i]) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : bounds.back();
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cum += counts[i];
  }
  return bounds.back();
}

/// Parses the number array in `"<key>": [a, b, c]` (registry dump spacing).
template <typename T>
std::vector<T> parse_num_array(const std::string& s, const std::string& key) {
  std::vector<T> out;
  const std::string needle = "\"" + key + "\": [";
  const auto pos = s.find(needle);
  if (pos == std::string::npos) return out;
  const auto begin = pos + needle.size();
  const auto end = s.find(']', begin);
  if (end == std::string::npos) return out;
  std::istringstream is(s.substr(begin, end - begin));
  std::string tok;
  while (std::getline(is, tok, ',')) {
    try {
      if constexpr (std::is_integral_v<T>) {
        out.push_back(static_cast<T>(std::stoll(tok)));
      } else {
        out.push_back(static_cast<T>(std::stod(tok)));
      }
    } catch (const std::exception&) {
      out.clear();
      return out;
    }
  }
  return out;
}

int run_summarize(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  struct HistRow {
    std::string name;
    long long total = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };
  std::vector<HistRow> hists;
  std::vector<std::pair<std::string, long long>> scalars;
  std::string raw;
  while (std::getline(in, raw)) {
    // Registry::write_json emits one metric per line: `  "name": …`.
    const auto q0 = raw.find('"');
    if (q0 == std::string::npos) continue;
    const auto q1 = raw.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string name = raw.substr(q0 + 1, q1 - q0 - 1);
    const auto colon = raw.find(':', q1);
    if (colon == std::string::npos) continue;
    const auto value_pos = raw.find_first_not_of(' ', colon + 1);
    if (value_pos == std::string::npos) continue;
    if (raw[value_pos] == '{') {
      HistRow h;
      h.name = name;
      const auto bounds = parse_num_array<double>(raw, "bounds");
      const auto counts = parse_num_array<long long>(raw, "counts");
      for (long long c : counts) h.total += c;
      if (h.total > 0) {
        h.p50 = percentile(bounds, counts, 50.0);
        h.p90 = percentile(bounds, counts, 90.0);
        h.p99 = percentile(bounds, counts, 99.0);
      }
      hists.push_back(std::move(h));
    } else {
      long long v = 0;
      try {
        v = std::stoll(raw.substr(value_pos));
      } catch (const std::exception&) {
        continue;
      }
      scalars.emplace_back(name, v);
    }
  }
  std::printf("%s: %zu metrics (%zu histograms, %zu scalars)\n", path.c_str(),
              hists.size() + scalars.size(), hists.size(), scalars.size());
  if (!hists.empty()) {
    std::printf(
        "histograms (percentiles interpolated linearly within buckets):\n");
    std::printf("  %-36s %10s %10s %10s %10s\n", "name", "count", "p50",
                "p90", "p99");
    for (const HistRow& h : hists) {
      if (h.total == 0) {
        std::printf("  %-36s %10lld %10s %10s %10s\n", h.name.c_str(),
                    h.total, "-", "-", "-");
      } else {
        std::printf("  %-36s %10lld %10.4g %10.4g %10.4g\n", h.name.c_str(),
                    h.total, h.p50, h.p90, h.p99);
      }
    }
  }
  if (!scalars.empty()) {
    std::printf("scalars:\n");
    for (const auto& [name, v] : scalars) {
      std::printf("  %-36s %10lld\n", name.c_str(), v);
    }
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <mode> <file> [flags]\n"
      "  summary   <trace.jsonl>   event counts per name/category/severity\n"
      "  dump      <trace.jsonl>   re-print matching lines\n"
      "    [--cat=engine|message|fault|detector|repair|algo|user]\n"
      "    [--sev=debug|info|warn|error] [--node=N]\n"
      "    [--from=ROUND] [--to=ROUND] [--limit=N]\n"
      "  phases    <perf.jsonl>    per-phase attribution table (--perf)\n"
      "  imbalance <perf.jsonl>    shard heatmap + stragglers [--top=5]\n"
      "  report    <perf.jsonl>    self-contained HTML "
      "[--out=perf_report.html]\n"
      "  summarize <metrics.json>  histogram p50/p90/p99 + scalars\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().size() < 2) return usage(argv[0]);
  const std::string mode = args.positional()[0];
  const std::string path = args.positional()[1];

  if (mode == "phases") return run_phases(path);
  if (mode == "imbalance") {
    return run_imbalance(path, std::max<long long>(1, args.get_int("top", 5)));
  }
  if (mode == "report") {
    return run_report(path, args.get_string("out", "perf_report.html"));
  }
  if (mode == "summarize") return run_summarize(path);
  if (mode != "summary" && mode != "dump") return usage(argv[0]);

  const std::string want_cat = args.get_string("cat", "");
  const std::string want_sev = args.get_string("sev", "");
  const long long want_node = args.get_int("node", -2);
  const long long from = args.get_int("from", 0);
  const long long to =
      args.get_int("to", std::numeric_limits<long long>::max());
  const long long limit = args.get_int("limit", 0);

  if (!want_cat.empty()) {
    obs::Category c;
    if (!obs::parse_category(want_cat, c)) {
      std::fprintf(stderr, "unknown category '%s'\n", want_cat.c_str());
      return 2;
    }
  }
  if (!want_sev.empty()) {
    obs::Severity s;
    if (!obs::parse_severity(want_sev, s)) {
      std::fprintf(stderr, "unknown severity '%s'\n", want_sev.c_str());
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  long long total = 0, matched = 0, malformed = 0, printed = 0;
  long long min_round = std::numeric_limits<long long>::max();
  long long max_round = std::numeric_limits<long long>::min();
  std::map<std::string, long long> by_name;      // "cat/name" -> count
  std::map<std::string, long long> by_severity;  // "sev" -> count
  std::string raw;
  while (std::getline(in, raw)) {
    if (raw.empty()) continue;
    ++total;
    Line line;
    if (!parse_line(raw, line)) {
      ++malformed;
      continue;
    }
    if (!want_cat.empty() && line.cat != want_cat) continue;
    if (!want_sev.empty() && line.sev != want_sev) continue;
    if (want_node != -2 && line.node != want_node) continue;
    if (line.round < from || line.round > to) continue;
    ++matched;
    min_round = std::min(min_round, line.round);
    max_round = std::max(max_round, line.round);
    if (mode == "dump") {
      if (limit > 0 && printed >= limit) break;
      std::printf("%s\n", raw.c_str());
      ++printed;
      continue;
    }
    by_name[line.cat + "/" + line.name] += 1;
    by_severity[line.sev] += 1;
  }

  if (mode == "summary") {
    std::printf("%s: %lld events (%lld matched filters", path.c_str(), total,
                matched);
    if (malformed > 0) std::printf(", %lld malformed", malformed);
    std::printf(")\n");
    if (matched > 0) {
      std::printf("rounds %lld..%lld\n", min_round, max_round);
      std::printf("by severity:\n");
      for (const auto& [sev, count] : by_severity) {
        std::printf("  %-8s %10lld\n", sev.c_str(), count);
      }
      // Names sorted by count, descending, for a "what dominated" view.
      std::vector<std::pair<std::string, long long>> names(by_name.begin(),
                                                           by_name.end());
      std::sort(names.begin(), names.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
      });
      std::printf("by event (cat/name):\n");
      for (const auto& [name, count] : names) {
        std::printf("  %-28s %10lld\n", name.c_str(), count);
      }
    }
  }
  return malformed == 0 ? 0 : 1;
}
