// ftc-fuzz — adversarial property-fuzzing driver for the k-MDS stack
// (DESIGN.md §8).
//
//   ftc-fuzz run    --cases=N --seed=S [--mutation=M] [--max-failures=F]
//                   [--max-n=N] [--progress=K] [--lossy] [--dynamic]
//   ftc-fuzz replay <case-seed> | --case="<serialized case>" [--mutation=M]
//   ftc-fuzz shrink <case-seed> | --case="<serialized case>" [--mutation=M]
//                   [--max-steps=B]
//   ftc-fuzz trace  <case-seed> | --case="<serialized case>"
//
// `run` fuzzes N seed-derived cases through the invariant library and prints
// a one-line deterministic repro for every failure. `replay` re-executes a
// single case bit for bit from its seed (or from a full serialized case, as
// emitted by run/shrink). `shrink` minimizes a failing case to the smallest
// case that still breaks the same invariant — including the mutation trace,
// whose prefix-sound generation lets the shrinker drop trailing mutations.
// `trace` prints the materialized mutation trace of a dynamic case.
// --dynamic forces every generated case to carry a mutation trace (the
// dynamic-fuzz campaign mode check.sh drives under ASan).
//
// Exit codes: 0 = all invariants held, 1 = violations found, 2 = usage error.
#include <cstdint>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "sim/mutation.h"
#include "testing/dynamic.h"
#include "testing/generators.h"
#include "testing/invariants.h"
#include "testing/mutants.h"
#include "testing/runner.h"
#include "util/cli.h"

namespace {

using namespace ftc;

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s run    [--cases=N] [--seed=S] [--mutation=M]\n"
               "                 [--max-failures=F] [--max-n=N] [--progress=K]\n"
               "                 [--lossy] [--dynamic]\n"
               "       %s replay <case-seed> | --case=\"...\" [--mutation=M]\n"
               "       %s shrink <case-seed> | --case=\"...\" [--mutation=M]\n"
               "                 [--max-steps=B]\n"
               "       %s trace  <case-seed> | --case=\"...\"\n"
               "mutations: none, rounding-under-request, rounding-drop-last-coin,\n"
               "           maintainer-no-promotion\n",
               program, program, program, program);
  return 2;
}

void print_violations(const testing::FuzzCase& c,
                      const testing::Violations& violations,
                      const testing::FuzzConfig& config = {}) {
  for (const auto& v : violations) {
    std::printf("  violation %-24s %s\n", v.invariant.c_str(),
                v.detail.c_str());
  }
  // --lossy / --dynamic change what a bare seed generates, so the repro
  // carries them.
  std::printf("  repro: ftc-fuzz replay %llu%s%s\n",
              static_cast<unsigned long long>(c.case_seed),
              config.force_lossy ? " --lossy" : "",
              config.force_dynamic ? " --dynamic" : "");
  std::printf("  case:  %s\n", testing::to_string(c).c_str());
}

/// Resolves the case for replay/shrink: either a positional case seed or a
/// full serialized case via --case= (which wins, so shrunk cases — whose
/// fields no longer match their seed — stay replayable).
testing::FuzzCase resolve_case(const util::Args& args,
                               const testing::FuzzConfig& config) {
  if (const auto line = args.get("case")) {
    return testing::parse_fuzz_case(*line);
  }
  if (args.positional().size() < 2) {
    throw std::invalid_argument("need a <case-seed> or --case=\"...\"");
  }
  const std::uint64_t seed = std::stoull(args.positional()[1]);
  return testing::generate_case(seed, config);
}

int cmd_run(const util::Args& args, const testing::FuzzConfig& config,
            testing::Mutation mutation) {
  testing::FuzzOptions options;
  options.seed = args.get_u64("seed", 1);
  options.cases = args.get_int("cases", 1000);
  options.config = config;
  options.mutation = mutation;
  options.max_failures = args.get_int("max-failures", 1);
  options.progress_every = args.get_int("progress", 0);
  if (options.progress_every > 0) {
    options.progress = [](std::int64_t cases_run, std::int64_t failures) {
      std::printf("... %lld cases, %lld failure(s)\n",
                  static_cast<long long>(cases_run),
                  static_cast<long long>(failures));
      std::fflush(stdout);
    };
  }

  const testing::FuzzReport report = testing::run_fuzz(options);
  for (const auto& failure : report.failures) {
    std::printf("FAIL case_seed=%llu (root seed %llu)\n",
                static_cast<unsigned long long>(failure.case_seed),
                static_cast<unsigned long long>(options.seed));
    print_violations(failure.fuzz_case, failure.violations, config);
  }
  std::printf("%s: %lld cases, %zu failure(s), seed %llu%s%s\n",
              report.ok() ? "OK" : "FAILED",
              static_cast<long long>(report.cases_run),
              report.failures.size(),
              static_cast<unsigned long long>(options.seed),
              mutation == testing::Mutation::kNone ? "" : ", mutation ",
              mutation == testing::Mutation::kNone
                  ? ""
                  : testing::mutation_name(mutation));
  return report.ok() ? 0 : 1;
}

int cmd_replay(const util::Args& args, const testing::FuzzConfig& config,
               testing::Mutation mutation) {
  const testing::FuzzCase c = resolve_case(args, config);
  std::printf("case: %s\n", testing::to_string(c).c_str());
  const testing::Violations violations = testing::run_case(c, mutation);
  if (violations.empty()) {
    std::printf("OK: all invariants held\n");
    return 0;
  }
  std::printf("FAIL case_seed=%llu\n",
              static_cast<unsigned long long>(c.case_seed));
  print_violations(c, violations);
  return 1;
}

int cmd_shrink(const util::Args& args, const testing::FuzzConfig& config,
               testing::Mutation mutation) {
  const testing::FuzzCase c = resolve_case(args, config);
  const testing::Violations original = testing::run_case(c, mutation);
  if (original.empty()) {
    std::printf("case does not fail; nothing to shrink\n");
    std::printf("  case: %s\n", testing::to_string(c).c_str());
    return 0;
  }
  const int max_steps = static_cast<int>(args.get_int("max-steps", 400));
  std::printf("shrinking (leading invariant: %s, budget %d)...\n",
              original.front().invariant.c_str(), max_steps);
  const testing::FuzzCase shrunk = testing::shrink_case(c, mutation, max_steps);
  const testing::Violations after = testing::run_case(shrunk, mutation);
  std::printf("shrunk: n=%d -> n=%d\n", c.n, shrunk.n);
  print_violations(shrunk, after);
  std::printf("replay with: ftc-fuzz replay --case=\"%s\"\n",
              testing::to_string(shrunk).c_str());
  return 1;
}

int cmd_trace(const util::Args& args, const testing::FuzzConfig& config) {
  const testing::FuzzCase c = resolve_case(args, config);
  std::printf("case: %s\n", testing::to_string(c).c_str());
  if (!c.run_dynamic || c.mutations <= 0) {
    std::printf("case carries no mutation trace (run_dynamic=%d mutations=%d)\n",
                c.run_dynamic ? 1 : 0, c.mutations);
    return 0;
  }
  const testing::Instance inst = testing::materialize(c);
  const sim::MutationTrace trace = testing::trace_from_case(c, inst);
  std::printf("trace (%zu mutations, batch=%d): %s\n", trace.size(),
              c.mutation_batch, sim::to_string(trace).c_str());
  for (const sim::TimedMutation& tm : trace) {
    std::printf("  round %-4lld %-5s node=%d peer=%d x=%g y=%g\n",
                static_cast<long long>(tm.round),
                sim::mutation_kind_name(tm.m.kind), tm.m.node, tm.m.peer,
                tm.m.x, tm.m.y);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty()) return usage(argv[0]);
  const std::string& command = args.positional()[0];

  try {
    testing::FuzzConfig config;
    config.max_n = static_cast<graph::NodeId>(
        args.get_int("max-n", config.max_n));
    config.force_lossy = args.get_bool("lossy", false);
    config.force_dynamic = args.get_bool("dynamic", false);
    const testing::Mutation mutation =
        testing::parse_mutation(args.get_string("mutation", "none"));

    if (command == "run") return cmd_run(args, config, mutation);
    if (command == "replay") return cmd_replay(args, config, mutation);
    if (command == "shrink") return cmd_shrink(args, config, mutation);
    if (command == "trace") return cmd_trace(args, config);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
