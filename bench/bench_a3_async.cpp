// A3 (extension) — asynchronous execution via the α-synchronizer.
//
// The paper's Section 3 cites Awerbuch's synchronizer to claim its
// synchronous algorithms carry over to asynchronous networks "with the same
// time complexity" at higher message cost. This bench quantifies both sides
// of that trade on Algorithm 1:
//   * pulses (algorithmic rounds) are delay-independent,
//   * virtual completion time grows ~linearly with the max link delay,
//   * envelope overhead is one message per edge per direction per pulse.
// The output is also verified against the synchronous run (identical x).
#include "bench_common.h"

#include <memory>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "sim/async.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 300));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const int t = static_cast<int>(args.get_int("t", 3));

  util::Rng rng(42);
  const graph::Graph g =
      graph::gnp(n, 10.0 / static_cast<double>(n - 1), rng);
  const auto d =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), k));

  // Synchronous reference.
  sim::SyncNetwork sync_net(g, 7);
  sync_net.set_all_processes([&](graph::NodeId v) {
    return std::make_unique<algo::LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  sync_net.run(algo::lp_round_count(t) + 4);

  bench::Output out({"max_delay", "pulses", "virtual_time", "time/pulse",
                     "envelopes", "payload_msgs", "overhead_x",
                     "matches_sync"},
                    args);

  for (std::int64_t max_delay : {1, 2, 4, 8, 16, 32}) {
    sim::AsyncOptions opts;
    opts.max_delay = max_delay;
    sim::AsyncNetwork net(g, 7, opts);
    net.set_all_processes([&](graph::NodeId v) {
      return std::make_unique<algo::LpKmdsProcess>(
          d[static_cast<std::size_t>(v)], t);
    });
    const auto pulses = net.run(algo::lp_round_count(t) + 4);

    bool matches = true;
    for (graph::NodeId v = 0; v < g.n() && matches; ++v) {
      matches = net.process_as<algo::LpKmdsProcess>(v).x() ==
                sync_net.process_as<algo::LpKmdsProcess>(v).x();
    }
    const auto& m = net.metrics();
    out.row({util::fmt(max_delay), util::fmt(pulses),
             util::fmt(m.virtual_time),
             util::fmt(static_cast<double>(m.virtual_time) /
                           static_cast<double>(pulses),
                       2),
             util::fmt(m.envelopes_sent), util::fmt(m.payload_messages),
             util::fmt(static_cast<double>(m.envelopes_sent) /
                           static_cast<double>(m.payload_messages),
                       3),
             matches ? "yes" : "NO"});
  }

  out.print(
      "A3 (extension) - Algorithm 1 under the asynchronous executor\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) +
      ", t=" + std::to_string(t) +
      "; per-message delay uniform in [1, max_delay]");
  return 0;
}
