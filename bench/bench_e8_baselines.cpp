// E8 — Section 2's comparison landscape: the paper's algorithms against
// the prior-work baselines on identical instances.
//
//   * Alg1+2 (this paper, general graphs): O(t²) rounds.
//   * LRG (Jia-Rajaraman-Suel 2002): expected O(log n·logΔ) rounds — the
//     only previous distributed k-MDS result in general graphs.
//   * Greedy (centralized H_Δ-approx): quality yardstick, not distributed.
//   * Alg3 (this paper, UDG): O(log log n) rounds.
//   * k-MIS clustering (Alzoubi/Wan/Frieder-style): classic UDG approach,
//     O(n) worst-case time when distributed.
//   * Exact (small n only): ground truth.
//
// Expected shape: Alg1+2 needs far fewer rounds than LRG at mildly worse
// size; on UDGs Alg3 wins the round race outright while staying O(1)-ish
// in quality.
#include "bench_common.h"

#include <cmath>

#include "algo/baseline/greedy.h"
#include "algo/baseline/lrg.h"
#include "algo/baseline/luby.h"
#include "algo/baseline/mis_clustering.h"
#include "algo/exact/exact.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "domination/bounds.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

using namespace ftc;

struct Row {
  util::RunningStats size, rounds, ratio;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 800));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));

  for (const std::string workload : {"gnp", "udg"}) {
    bench::Output out({"algorithm", "|S| mean", "ratio", "rounds"}, args);
    Row pipeline2, pipeline4, lrg_row, greedy_row, udg_row, mis_row,
        luby_row;

    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 900 + static_cast<std::uint64_t>(s);
      util::Rng rng(seed);
      geom::UnitDiskGraph udg;
      graph::Graph g;
      if (workload == "udg") {
        udg = geom::uniform_udg_with_degree(n, 14.0, rng);
        g = udg.graph;
      } else {
        g = graph::gnp(n, 12.0 / static_cast<double>(n - 1), rng);
      }
      const auto d = domination::clamp_demands(
          g, domination::uniform_demands(g.n(), k));

      const auto greedy = algo::greedy_kmds(g, d);
      const double lb = domination::best_lower_bound(
          g, d, static_cast<std::int64_t>(greedy.set.size()));

      auto record = [&](Row& row, std::size_t size, std::int64_t rounds) {
        row.size.add(static_cast<double>(size));
        row.rounds.add(static_cast<double>(rounds));
        row.ratio.add(static_cast<double>(size) / lb);
      };

      for (int t : {2, 4}) {
        algo::PipelineOptions opts;
        opts.t = t;
        opts.seed = seed;
        const auto pipe = algo::run_kmds_pipeline(g, d, opts);
        record(t == 2 ? pipeline2 : pipeline4, pipe.set().size(),
               pipe.total_rounds);
      }
      const auto lrg = algo::lrg_kmds(g, d, seed);
      record(lrg_row, lrg.set.size(), lrg.rounds);
      record(greedy_row, greedy.set.size(),
             static_cast<std::int64_t>(greedy.set.size()));  // sequential

      if (workload == "udg") {
        algo::UdgOptions uopts;
        uopts.k = k;
        const auto alg3 = algo::solve_udg_kmds(udg, uopts, seed);
        record(udg_row, alg3.leaders.size(),
               2 * alg3.part1_rounds + 3 * (alg3.part2_iterations + 1));
        const auto mis = algo::mis_kfold(g, k);
        record(mis_row, mis.set.size(), g.n());  // O(n) sequential sweeps
        const auto luby = algo::luby_mis_kfold(g, k, seed);
        record(luby_row, luby.set.size(), luby.rounds);
      }
    }

    auto emit = [&](const std::string& name, const Row& row) {
      if (row.size.count() == 0) return;
      out.row({name, util::fmt(row.size.mean(), 1),
               util::fmt(row.ratio.mean(), 3),
               util::fmt(row.rounds.mean(), 0)});
    };
    emit("Alg1+2 t=2 (paper)", pipeline2);
    emit("Alg1+2 t=4 (paper)", pipeline4);
    emit("LRG (Jia et al.)", lrg_row);
    emit("Greedy (central)", greedy_row);
    emit("Alg3 (paper, UDG)", udg_row);
    emit("k-MIS (UDG classic)", mis_row);
    emit("Luby k-MIS (distrib)", luby_row);

    out.print("E8 (Section 2) - baseline comparison on " + workload +
              ", n=" + std::to_string(n) + ", k=" + std::to_string(k) + ", " +
              std::to_string(seeds) + " seeds");
    std::cout << "\n";
  }
  return 0;
}
