// A4 (extension) — local repair vs full re-clustering after failures.
//
// The operational half of the paper's fault-tolerance motivation: once
// failures erode a k-fold backbone, the network must restore coverage.
// Full re-clustering touches all n nodes; the repair extension touches only
// the 2-hop damage region. We fail a fraction p of the dominators and
// report, per (k, p):
//   * promoted nodes (repair) vs the full-rebuild backbone size,
//   * the touched-region size as a fraction of n (the locality win),
//   * the size overhead of the repaired backbone vs a fresh rebuild.
//
// Expected: work scales with p·|S|, not with n; the repaired backbone stays
// within a few percent of the freshly rebuilt one.
#include "bench_common.h"

#include "algo/baseline/greedy.h"
#include "algo/extensions/repair.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 2000));
  const auto k_values = args.get_int_list("k", {1, 2, 4});

  bench::Output out({"k", "fail_p", "|S|", "failed", "promoted",
                     "touched/n %", "repaired_size", "rebuild_size",
                     "overhead%"},
                    args);

  for (long long k : k_values) {
    for (double fail_p : {0.1, 0.3, 0.5}) {
      util::RunningStats s0, failed_n, promoted, touched_frac, repaired,
          rebuilt;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 11 + static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(n, 16.0, rng);
        const graph::Graph& g = udg.graph;
        const auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(),
                                           static_cast<std::int32_t>(k)));
        const auto base = algo::greedy_kmds(g, d).set;
        s0.add(static_cast<double>(base.size()));

        util::Rng crash_rng(seed * 31);
        std::vector<graph::NodeId> failed;
        for (graph::NodeId v : base) {
          if (crash_rng.bernoulli(fail_p)) failed.push_back(v);
        }
        failed_n.add(static_cast<double>(failed.size()));

        const auto repair = algo::repair_after_failures(g, base, failed, d);
        promoted.add(static_cast<double>(repair.promoted));
        touched_frac.add(100.0 * static_cast<double>(repair.touched) /
                         static_cast<double>(g.n()));
        repaired.add(static_cast<double>(repair.set.size()));

        // Full rebuild on the live subgraph for comparison.
        const graph::Graph live = g.without_nodes(failed);
        auto live_demands = domination::clamp_demands(live, d);
        for (graph::NodeId f : failed) {
          live_demands[static_cast<std::size_t>(f)] = 0;
        }
        rebuilt.add(
            static_cast<double>(algo::greedy_kmds(live, live_demands)
                                    .set.size()));
      }
      out.row({util::fmt(k), util::fmt(fail_p, 1), util::fmt(s0.mean(), 0),
               util::fmt(failed_n.mean(), 0), util::fmt(promoted.mean(), 0),
               util::fmt(touched_frac.mean(), 1),
               util::fmt(repaired.mean(), 0), util::fmt(rebuilt.mean(), 0),
               util::fmt(100.0 * (repaired.mean() / rebuilt.mean() - 1.0),
                         1)});
    }
    out.rule();
  }

  out.print(
      "A4 (extension) - local repair vs full re-clustering\n"
      "uniform UDG n=" + std::to_string(n) + ", greedy backbones, " +
      std::to_string(seeds) + " seeds");
  return 0;
}
