// A1 (ablation) — does the O(log n)-bit fixed-point message encoding cost
// solution quality?
//
// DESIGN.md commits Algorithm 1 to 2^-40 fixed-point values on the wire so
// messages stay a constant number of O(log n)-bit words. This ablation runs
// the mirror with quantization on and off across densities and t, and
// reports the relative objective difference plus the worst primal
// constraint violation in the quantized run.
//
// Expected: differences in the 1e-10 range — quantization is free.
#include "bench_common.h"

#include <cmath>

#include "algo/lp/lp_kmds.h"
#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 400));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));

  bench::Output out({"avg_deg", "t", "obj_exact", "obj_quantized",
                     "rel_diff", "max_violation(q)"},
                    args);

  for (long long degree : {6, 16, 40}) {
    for (int t : {1, 3, 6}) {
      util::RunningStats exact_obj, quant_obj, rel, viol;
      for (int s = 0; s < seeds; ++s) {
        util::Rng rng(5000 + static_cast<std::uint64_t>(s) +
                      static_cast<std::uint64_t>(degree) * 31);
        const graph::Graph g = graph::gnp(
            n, static_cast<double>(degree) / static_cast<double>(n - 1),
            rng);
        const auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(), k));
        algo::LpOptions quantized, exact;
        quantized.t = exact.t = t;
        exact.quantize_messages = false;
        const auto rq = algo::solve_fractional_kmds(g, d, quantized);
        const auto re = algo::solve_fractional_kmds(g, d, exact);
        exact_obj.add(re.primal.objective());
        quant_obj.add(rq.primal.objective());
        rel.add(std::abs(rq.primal.objective() - re.primal.objective()) /
                std::max(1.0, re.primal.objective()));
        viol.add(domination::max_primal_violation(g, rq.primal, d));
      }
      out.row({util::fmt(degree), util::fmt(t), util::fmt(exact_obj.mean(), 6),
               util::fmt(quant_obj.mean(), 6),
               util::fmt(rel.max(), 12), util::fmt(viol.max(), 12)});
    }
    out.rule();
  }

  out.print(
      "A1 (ablation) - fixed-point message quantization in Algorithm 1\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) + ", " +
      std::to_string(seeds) +
      " seeds; rel_diff/max_violation are per-row maxima");
  return 0;
}
