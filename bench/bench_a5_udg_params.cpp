// A5 (ablation) — sensitivity of Algorithm 3 to its constants.
//
// The paper fixes ξ = 3/2 (round count ⌈log_ξ log₂ n⌉) and the initial
// probe radius θ₁ = ½(log₂ n)^{-1/log₂ξ} without discussing alternatives.
// This ablation sweeps both:
//   * ξ controls the time/quality trade within Part I: smaller ξ = more
//     rounds = more elimination sweeps; larger ξ = fewer rounds.
//   * θ-scale grows or shrinks the early probe radii (clamped so the final
//     probe stays within the radio range).
// We report Part-I rounds, Part-I leader counts, and the final ratio.
//
// Expected: the paper's ξ = 1.5 sits on a flat sweet spot — more rounds
// (ξ→1.2) barely improve the leader count, fewer (ξ→3) visibly hurt;
// larger θ₁ trades nothing (the doubling schedule dominates).
#include "bench_common.h"

#include "algo/baseline/greedy.h"
#include "algo/udg/udg_kmds.h"
#include "domination/bounds.h"
#include "geom/udg.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 3000));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));

  bench::Output out({"xi", "theta_scale", "R", "|S1|", "|S|", "ratio"},
                    args);

  for (double xi : {1.2, 1.5, 2.0, 3.0}) {
    for (double theta_scale : {0.5, 1.0, 2.0}) {
      util::RunningStats s1, s_final, ratio;
      std::int64_t rounds = 0;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 61 + static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(n, 15.0, rng);
        algo::UdgOptions opts;
        opts.k = k;
        opts.xi = xi;
        opts.theta_scale = theta_scale;
        const auto result = algo::solve_udg_kmds(udg, opts, seed);
        rounds = result.part1_rounds;
        s1.add(static_cast<double>(result.part1_leaders.size()));
        s_final.add(static_cast<double>(result.leaders.size()));

        const auto d = domination::clamp_demands(
            udg.graph, domination::uniform_demands(udg.n(), k));
        const auto greedy = algo::greedy_kmds(udg.graph, d);
        const double lb = domination::best_lower_bound(
            udg.graph, d, static_cast<std::int64_t>(greedy.set.size()));
        ratio.add(static_cast<double>(result.leaders.size()) / lb);
      }
      out.row({util::fmt(xi, 1), util::fmt(theta_scale, 1),
               util::fmt(rounds), util::fmt(s1.mean(), 0),
               util::fmt(s_final.mean(), 0), util::fmt(ratio.mean(), 2)});
    }
    out.rule();
  }

  out.print(
      "A5 (ablation) - Algorithm 3 constants (paper: xi=1.5, scale=1.0)\n"
      "uniform UDG n=" + std::to_string(n) + ", k=" + std::to_string(k) +
      ", " + std::to_string(seeds) + " seeds");
  return 0;
}
