// Replacement global operator new/delete that counts every allocation.
//
// This must be a standalone, non-inline TU: the replacements only take
// effect when their strong definitions land in the final link, and inline
// definitions in a header would be UB (ODR) once two TUs included it. The
// hooks forward to malloc/free, so sanitizer interceptors (ASan/TSan wrap
// malloc, not our operator new) keep working underneath.
#include "alloc_hooks.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_malloc(std::size_t size) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned(std::size_t size, std::size_t align) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}

}  // namespace

namespace ftc::bench {

AllocCounts alloc_counts() noexcept {
  return {g_count.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace ftc::bench

void* operator new(std::size_t size) {
  void* p = counted_malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
