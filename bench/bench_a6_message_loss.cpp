// A6 (robustness) — behavior under a lossy wireless medium.
//
// The paper motivates fault tolerance partly by the unreliable shared
// medium ("more packet losses and a lower throughput", Section 1), but its
// model assumes reliable delivery. This experiment measures what actually
// happens to the algorithms when messages are dropped independently with
// probability p: both still terminate (their schedules are round-driven),
// and we report how much coverage the computed sets lose.
//
//   * Alg1+2: deficiency of the output vs the demands (the LP's forcing
//     step can miss nodes whose color messages were lost);
//   * Alg3: deficiency vs the open-mode k-domination target.
//
// Expected: graceful degradation — low single-digit % of nodes
// under-covered at p = 5%, rising with p; redundancy (larger k) absorbs
// part of the loss.
#include "bench_common.h"

#include <memory>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/rounding/rounding_process.h"
#include "algo/udg/udg_kmds.h"
#include "algo/udg/udg_kmds_process.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;

/// Fraction of nodes whose demand the set misses (under `mode`).
double deficient_fraction(const graph::Graph& g,
                          const std::vector<NodeId>& set,
                          const domination::Demands& d,
                          domination::Mode mode) {
  const auto members = domination::to_membership(g, set);
  const auto cover = domination::closed_coverage_counts(g, members);
  std::int64_t bad = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (mode == domination::Mode::kOpenForNonMembers && members[i]) continue;
    if (cover[i] < d[i]) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(g.n());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 400));
  const int t = static_cast<int>(args.get_int("t", 3));

  bench::Output out({"k", "loss_p", "alg12_|S|", "alg12_deficient%",
                     "alg3_|S|", "alg3_deficient%", "msgs_lost%"},
                    args);

  for (std::int32_t k : {1, 3}) {
    for (double loss : {0.0, 0.01, 0.05, 0.1, 0.2}) {
      util::RunningStats s12, bad12, s3, bad3, lost_frac;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 21 + static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
        const graph::Graph& g = udg.graph;
        const auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(), k));

        // Alg1+2 distributed under loss.
        {
          sim::SyncNetwork lp_net(g, seed);
          lp_net.set_message_loss(loss, seed * 3 + 1);
          lp_net.set_all_processes([&](NodeId v) {
            return std::make_unique<algo::LpKmdsProcess>(
                d[static_cast<std::size_t>(v)], t);
          });
          lp_net.run(algo::lp_round_count(t) + 4);

          sim::SyncNetwork r_net(g, seed);
          r_net.set_message_loss(loss, seed * 3 + 2);
          r_net.set_all_processes([&](NodeId v) {
            return std::make_unique<algo::RoundingProcess>(
                lp_net.process_as<algo::LpKmdsProcess>(v).x(),
                d[static_cast<std::size_t>(v)]);
          });
          r_net.run(6);
          std::vector<NodeId> set;
          for (NodeId v = 0; v < g.n(); ++v) {
            if (r_net.process_as<algo::RoundingProcess>(v).in_set()) {
              set.push_back(v);
            }
          }
          s12.add(static_cast<double>(set.size()));
          bad12.add(100.0 * deficient_fraction(
                                g, set, d,
                                domination::Mode::kClosedNeighborhood));
          const auto& m = lp_net.metrics();
          lost_frac.add(100.0 *
                        static_cast<double>(lp_net.messages_lost()) /
                        static_cast<double>(m.messages_sent +
                                            lp_net.messages_lost()));
        }

        // Alg3 distributed under loss.
        {
          sim::SyncNetwork net(udg, seed);
          net.set_message_loss(loss, seed * 3 + 3);
          net.set_all_processes([&](NodeId) {
            return std::make_unique<algo::UdgKmdsProcess>(k);
          });
          net.run(2 * algo::udg_part1_rounds(udg.n()) + 3 * (udg.n() + 3));
          std::vector<NodeId> leaders;
          for (NodeId v = 0; v < g.n(); ++v) {
            if (net.process_as<algo::UdgKmdsProcess>(v).leader()) {
              leaders.push_back(v);
            }
          }
          s3.add(static_cast<double>(leaders.size()));
          bad3.add(100.0 *
                   deficient_fraction(
                       g, leaders, domination::uniform_demands(g.n(), k),
                       domination::Mode::kOpenForNonMembers));
        }
      }
      out.row({util::fmt(k), util::fmt(loss, 2), util::fmt(s12.mean(), 0),
               util::fmt(bad12.mean(), 2), util::fmt(s3.mean(), 0),
               util::fmt(bad3.mean(), 2), util::fmt(lost_frac.mean(), 1)});
    }
    out.rule();
  }

  out.print(
      "A6 (robustness) - distributed runs over lossy links\n"
      "uniform UDG n=" + std::to_string(n) + ", t=" + std::to_string(t) +
      ", " + std::to_string(seeds) +
      " seeds; deficient% = nodes whose demand the output misses");
  return 0;
}
