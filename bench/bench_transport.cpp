// P9 — Unreliable-channel runtime overhead and the price of reliability.
//
// Three questions, one flood/pump workload family:
//
//   * What does the channel runtime cost at loss = 0? The acceptance
//     number: the same raw workload with a clean channel installed must
//     hold >= 95% of the plain reliable-plane rounds/sec. The engine
//     hoists a single impaired() check per round, so installing the
//     impairment machinery may not tax an unimpaired deployment by more
//     than 5%.
//   * What does the ARQ layer itself cost? A closed-loop reliable pump
//     (every node keeps one payload in flight per neighbor, refilling as
//     the transport drains) against a raw baseline pushing the identical
//     3-word unicast framing. Stop-and-wait bookkeeping runs per frame, so
//     this ratio is well below 1 — it is reported to *price* reliability,
//     not gate it.
//   * What does reliability cost under loss? At 10% and 30% iid loss the
//     pump rows record retransmissions, duplicate suppressions, and
//     per-link goodput — the retransmit overhead the robustness
//     experiments lean on.
//
// --sizes=500,2000            node counts (UDG, --degree target)
// --degree=8                  target average UDG degree
// --rounds=0                  rounds per run (0 = auto ~1M node-rounds)
// --repeats=3                 timed repetitions per mode (best is kept)
// --gate=1                    exit nonzero when the budget fails (0 for
//                             smoke runs on loaded machines: the ratio is
//                             still reported, the timing is not trusted)
// --json=BENCH_transport.json machine-readable output ("" = none)
// --csv=path                  optional CSV mirror of the table
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geom/udg.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;
using sim::Word;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kNetSeed = 7;
constexpr std::uint64_t kChannelSeed = 0xBADC0DE;

/// Raw baseline: the reliable message plane carrying the same framing the
/// transport would — one 3-word unicast per neighbor per round (the ARQ
/// wire format is [ack, seq, payload]), no sequencing or ack bookkeeping.
/// The delta between this and the zero-loss transport run prices exactly
/// the ARQ machinery, not unicast-vs-shared-broadcast payload storage.
class RawFlood final : public sim::Process {
 public:
  explicit RawFlood(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(sim::Context& ctx) override {
    for (const sim::Message& msg : ctx.inbox()) {
      acc_ += msg.words[0] + msg.from;
    }
    const auto word = static_cast<Word>(ctx.round() & 0xFFFF);
    for (const NodeId w : ctx.neighbors()) {
      ctx.send(w, {word, word, word});
    }
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::int64_t acc_ = 0;

 private:
  std::int64_t rounds_;
};

/// Closed-loop reliable pump: refill the per-neighbor queues whenever the
/// transport drains, so frames flow every round without unbounded backlog.
class TransportPump final : public sim::Process {
 public:
  explicit TransportPump(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(sim::Context& ctx) override {
    for (const auto& d : transport_.receive(ctx)) {
      acc_ += d.words[0] + d.from;
      ++received_;
    }
    if (transport_.backlog() == 0) {
      transport_.broadcast(ctx, {static_cast<Word>(next_++ & 0xFFFF)});
    }
    transport_.flush(ctx);
    if (ctx.round() + 1 >= rounds_) halt();
  }

  sim::ReliableTransport transport_;
  std::int64_t acc_ = 0;
  std::int64_t received_ = 0;

 private:
  std::int64_t rounds_;
  std::int64_t next_ = 0;
};

struct RunStats {
  std::int64_t rounds = 0;
  double seconds = 0.0;  ///< best of --repeats
  std::int64_t messages = 0;
  std::int64_t frames = 0;
  std::int64_t retransmissions = 0;
  std::int64_t dup_suppressed = 0;
  std::int64_t delivered = 0;
};

RunStats run_raw(const geom::UnitDiskGraph& udg, std::int64_t rounds,
                 int repeats, bool install_clean_channel) {
  RunStats best;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::SyncNetwork net(udg, kNetSeed);
    if (install_clean_channel) net.set_channel(sim::ChannelOptions{});
    net.set_all_processes(
        [&](NodeId) { return std::make_unique<RawFlood>(rounds); });
    bench::WallClock clock;
    const std::int64_t executed = net.run(rounds + 1);
    const double seconds = clock.seconds();
    if (rep == 0 || seconds < best.seconds) {
      best.rounds = executed;
      best.seconds = seconds;
      best.messages = net.metrics().messages_sent;
    }
  }
  return best;
}

RunStats run_transport(const geom::UnitDiskGraph& udg, std::int64_t rounds,
                       double loss, int repeats) {
  RunStats best;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::SyncNetwork net(udg, kNetSeed);
    if (loss > 0.0) {
      sim::ChannelOptions channel;
      channel.loss = loss;
      channel.seed = kChannelSeed;
      net.set_channel(channel);
    }
    net.set_all_processes(
        [&](NodeId) { return std::make_unique<TransportPump>(rounds); });
    bench::WallClock clock;
    const std::int64_t executed = net.run(rounds + 1);
    const double seconds = clock.seconds();
    RunStats cur;
    cur.rounds = executed;
    cur.seconds = seconds;
    cur.messages = net.metrics().messages_sent;
    for (NodeId v = 0; v < udg.n(); ++v) {
      const auto& t = net.process_as<TransportPump>(v).transport_;
      cur.frames += t.frames_sent();
      cur.retransmissions += t.retransmissions();
      cur.dup_suppressed += t.duplicates_suppressed();
      cur.delivered += t.delivered();
    }
    if (rep == 0 || cur.seconds < best.seconds) best = cur;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto sizes = args.get_int_list("sizes", {500, 2'000});
  const double degree = args.get_double("degree", 8.0);
  const auto rounds_arg = args.get_int("rounds", 0);
  const int repeats =
      std::max(1, static_cast<int>(args.get_int("repeats", 3)));
  const bool gate = args.get_int("gate", 1) != 0;
  const std::string json_path =
      args.get_string("json", "BENCH_transport.json");
  constexpr double kLosses[] = {0.0, 0.1, 0.3};

  bench::Output out({"n", "mode", "loss", "rounds", "rounds/sec", "vs_plane",
                     "frames", "retrans", "goodput/link"},
                    args);
  std::vector<std::string> json_rows;
  bool within_budget = true;

  for (long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    const std::int64_t rounds =
        rounds_arg > 0
            ? rounds_arg
            : std::clamp<std::int64_t>(1'000'000 / std::max<NodeId>(n, 1), 20,
                                       1'000);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);
    const double links = static_cast<double>(2 * udg.graph.m());

    const RunStats raw = run_raw(udg, rounds, repeats, false);
    const double raw_rps = static_cast<double>(raw.rounds) / raw.seconds;
    out.row({util::fmt(static_cast<long long>(n)), "plane", "-",
             util::fmt(raw.rounds), util::fmt(raw_rps, 1), "1.000", "-", "-",
             "-"});
    json_rows.push_back(
        "    {\"n\": " + std::to_string(n) + ", \"mode\": \"plane\"" +
        ", \"loss\": 0.0, \"rounds\": " + std::to_string(raw.rounds) +
        ", \"seconds\": " + util::fmt(raw.seconds, 6) +
        ", \"rounds_per_sec\": " + util::fmt(raw_rps, 3) + "}");

    // The acceptance row: identical workload, clean channel installed.
    const RunStats chan = run_raw(udg, rounds, repeats, true);
    const double chan_rps = static_cast<double>(chan.rounds) / chan.seconds;
    const double chan_vs = chan_rps / raw_rps;
    if (chan_vs < 0.95) within_budget = false;
    out.row({util::fmt(static_cast<long long>(n)), "channel", "0.0",
             util::fmt(chan.rounds), util::fmt(chan_rps, 1),
             util::fmt(chan_vs, 3), "-", "-", "-"});
    json_rows.push_back(
        "    {\"n\": " + std::to_string(n) + ", \"mode\": \"channel\"" +
        ", \"loss\": 0.0, \"rounds\": " + std::to_string(chan.rounds) +
        ", \"seconds\": " + util::fmt(chan.seconds, 6) +
        ", \"rounds_per_sec\": " + util::fmt(chan_rps, 3) +
        ", \"vs_plane\": " + util::fmt(chan_vs, 4) + "}");

    for (const double loss : kLosses) {
      const RunStats t = run_transport(udg, rounds, loss, repeats);
      const double rps = static_cast<double>(t.rounds) / t.seconds;
      const double vs_raw = rps / raw_rps;
      const double goodput =
          links > 0.0 ? static_cast<double>(t.delivered) /
                            (links * static_cast<double>(t.rounds))
                      : 0.0;
      out.row({util::fmt(static_cast<long long>(n)), "transport",
               util::fmt(loss, 1), util::fmt(t.rounds), util::fmt(rps, 1),
               util::fmt(vs_raw, 3), util::fmt(t.frames),
               util::fmt(t.retransmissions), util::fmt(goodput, 3)});
      std::string json = "    {";
      json += "\"n\": " + std::to_string(n);
      json += ", \"mode\": \"transport\"";
      json += ", \"loss\": " + util::fmt(loss, 2);
      json += ", \"rounds\": " + std::to_string(t.rounds);
      json += ", \"seconds\": " + util::fmt(t.seconds, 6);
      json += ", \"rounds_per_sec\": " + util::fmt(rps, 3);
      json += ", \"vs_plane\": " + util::fmt(vs_raw, 4);
      json += ", \"frames\": " + std::to_string(t.frames);
      json += ", \"retransmissions\": " + std::to_string(t.retransmissions);
      json += ", \"duplicates_suppressed\": " +
              std::to_string(t.dup_suppressed);
      json += ", \"delivered\": " + std::to_string(t.delivered);
      json += ", \"goodput_per_link_round\": " + util::fmt(goodput, 4);
      json += "}";
      json_rows.push_back(std::move(json));
    }
    out.rule();
  }

  out.print("P9 — channel runtime + reliable-transport cost (avg degree " +
            util::fmt(degree, 1) + ", best of " + util::fmt(repeats) + ")");
  if (!within_budget) {
    std::cout << "WARNING: zero-loss channel-runtime throughput fell below "
                 "95% of the reliable plane\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"transport\",\n"
         << "  \"workload\": \"udg_flood_and_closed_loop_pump\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"budget\": \"channel(loss=0) >= 0.95 * plane\",\n"
         << "  \"within_budget\": " << (within_budget ? "true" : "false")
         << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return gate && !within_budget;
}
