// MT — threads×n scaling of the parallel round engine.
//
// Sweeps the shard-owned two-phase delivery engine (sim::SyncNetwork) over
// a grid of thread counts and node counts on the standard UDG flood
// workload, at the engine's SHIPPED configuration (default parallel grain,
// so the small-n auto-fallback is part of what is measured — bench_p1
// forces the pool when pricing it in isolation). For every cell it reports
// rounds/sec, messages/sec, words/sec, peak RSS, steady-state allocations
// per round, speedup over the single-thread run of the same n, and scaling
// efficiency normalized by min(threads, hardware_threads) — oversubscribed
// widths cannot be expected to scale past the physical core count, and the
// JSON records hardware_threads so results from different machines are
// comparable.
//
// The determinism contract is asserted in passing: every width must produce
// the exact digest of the single-thread run, or the bench aborts.
//
// --sizes=10000,100000,1000000  node counts
// --threads=1,2,4,8             engine widths (must include 1 for baselines)
// --degree=12                   target average UDG degree
// --rounds=0                    measured rounds per run (0 = auto:
//                               ~4M node-rounds, clamped to [5, 400])
// --warmup=2                    unmeasured rounds before the clock starts
//                               (lets arenas/inboxes reach high-water size,
//                               so allocs/round reflects steady state)
// --json=BENCH_simcore_mt.json  machine-readable output ("" = none)
// --csv=path                    optional CSV mirror of the table
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/message.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ftc;
using graph::NodeId;
using sim::Word;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kNetSeed = 7;

/// Same flood shape as bench_p1: fold the inbox, broadcast two words.
class FloodProcess final : public sim::Process {
 public:
  explicit FloodProcess(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(sim::Context& ctx) override {
    std::int64_t acc = 0;
    for (const sim::Message& msg : ctx.inbox()) {
      acc += msg.words[0] + msg.from;
    }
    state_ ^= static_cast<std::uint64_t>(acc) + ctx.rng()();
    ctx.broadcast({static_cast<Word>(state_ & 0xFFFF),
                   static_cast<Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::uint64_t state_ = 1;

 private:
  std::int64_t rounds_;
};

struct MtResult {
  std::int64_t rounds = 0;    // measured (post-warmup) rounds
  std::int64_t messages = 0;  // messages sent during the measured rounds
  std::int64_t words = 0;
  double seconds = 0.0;
  double rss_mb = 0.0;
  double allocs_per_round = 0.0;
  std::uint64_t digest = 0;
};

/// FNV digest over final node states plus the global message counters.
std::uint64_t digest_states(sim::SyncNetwork& net, NodeId n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId v = 0; v < n; ++v) {
    h ^= net.process_as<FloodProcess>(v).state_;
    h *= 1099511628211ULL;
  }
  h ^= static_cast<std::uint64_t>(net.metrics().messages_sent);
  h *= 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(net.metrics().words_sent);
  return h;
}

MtResult run_flood(const geom::UnitDiskGraph& udg, std::int64_t total_rounds,
                   std::int64_t warmup, int threads) {
  sim::SyncNetwork net(udg, kNetSeed);
  net.set_threads(threads);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<FloodProcess>(total_rounds); });

  // Warmup: arenas, transfer lists, and the inbox store grow to their
  // high-water marks here, so the measured section sees steady state.
  net.run(warmup);

  const auto before = net.metrics();
  const std::uint64_t allocs_before = bench::alloc_counts().count;
  bench::WallClock clock;
  MtResult result;
  result.rounds = net.run(total_rounds + 1);  // to halt detection
  result.seconds = clock.seconds();
  const std::uint64_t allocs_after = bench::alloc_counts().count;
  result.messages = net.metrics().messages_sent - before.messages_sent;
  result.words = net.metrics().words_sent - before.words_sent;
  result.allocs_per_round =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(std::max<std::int64_t>(result.rounds, 1));
  result.rss_mb = bench::peak_rss_mb();
  result.digest = digest_states(net, udg.n());
  return result;
}

/// Short perf-instrumented pass for the phase_attribution block. Runs
/// separately from the timed pass above: with the attribution plane on,
/// every phase boundary pays clock reads, which must not pollute the
/// headline rounds/sec.
std::string run_phase_attribution(const geom::UnitDiskGraph& udg,
                                  std::int64_t rounds, int threads) {
  obs::PlaneOptions options;
  options.trace.category_mask = 0;  // perf attribution only, no tracing
  options.perf = true;
  obs::Plane plane(options);
  plane.perf()->set_alloc_source(
      +[]() -> std::uint64_t { return bench::alloc_counts().count; });
  sim::SyncNetwork net(udg, kNetSeed);
  net.set_threads(threads);
  net.set_observability(&plane);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<FloodProcess>(rounds); });
  net.run(rounds + 1);
  return bench::perf_attribution_json(*plane.perf());
}

std::string json_row(NodeId n, int threads, const MtResult& r, double speedup,
                     double efficiency) {
  std::string row = "    {";
  row += "\"n\": " + std::to_string(n);
  row += ", \"threads\": " + std::to_string(threads);
  row += ", \"rounds\": " + std::to_string(r.rounds);
  row += ", \"messages\": " + std::to_string(r.messages);
  row += ", \"seconds\": " + util::fmt(r.seconds, 6);
  row += ", \"rounds_per_sec\": " + util::fmt(r.rounds / r.seconds, 3);
  row += ", \"messages_per_sec\": " + util::fmt(r.messages / r.seconds, 1);
  row += ", \"words_per_sec\": " + util::fmt(r.words / r.seconds, 1);
  row += ", \"peak_rss_mb\": " + util::fmt(r.rss_mb, 1);
  row += ", \"allocs_per_round\": " + util::fmt(r.allocs_per_round, 2);
  row += ", \"speedup_vs_1t\": " + util::fmt(speedup, 3);
  row += ", \"efficiency\": " + util::fmt(efficiency, 3);
  row += "}";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto sizes =
      args.get_int_list("sizes", {10'000, 100'000, 1'000'000});
  const auto widths = args.get_int_list("threads", {1, 2, 4, 8});
  const double degree = args.get_double("degree", 12.0);
  const auto rounds_arg = args.get_int("rounds", 0);
  const auto warmup = std::max<long long>(args.get_int("warmup", 2), 0);
  const std::string json_path =
      args.get_string("json", "BENCH_simcore_mt.json");
  const int hw = util::ThreadPool::hardware_threads();

  bench::Output out({"n", "threads", "rounds", "msgs/sec", "words/sec",
                     "rounds/sec", "allocs/rnd", "speedup", "eff"},
                    args);
  std::vector<std::string> json_rows;
  bool all_deterministic = true;

  for (long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    const std::int64_t rounds =
        rounds_arg > 0
            ? rounds_arg
            : std::clamp<std::int64_t>(4'000'000 / std::max<NodeId>(n, 1), 5,
                                       400);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);

    double seq_round_seconds = 0.0;
    std::uint64_t seq_digest = 0;
    for (const long long t_ll : widths) {
      const int threads = static_cast<int>(t_ll);
      const MtResult r = run_flood(udg, warmup + rounds, warmup, threads);
      if (threads == 1) {
        seq_round_seconds = r.seconds / static_cast<double>(r.rounds);
        seq_digest = r.digest;
      } else if (seq_digest != 0 && r.digest != seq_digest) {
        std::cerr << "FATAL: digest diverged at n=" << n
                  << " threads=" << threads
                  << " (determinism contract violated)\n";
        all_deterministic = false;
      }
      const double per_round = r.seconds / static_cast<double>(r.rounds);
      const double speedup =
          seq_round_seconds > 0.0 ? seq_round_seconds / per_round : 1.0;
      // Normalize by the parallelism the machine can actually grant.
      const double efficiency = speedup / std::min(threads, std::max(hw, 1));
      out.row({util::fmt(static_cast<long long>(n)), util::fmt(threads),
               util::fmt(r.rounds), util::fmt(r.messages / r.seconds, 0),
               util::fmt(r.words / r.seconds, 0),
               util::fmt(r.rounds / r.seconds, 2),
               util::fmt(r.allocs_per_round, 1), util::fmt(speedup, 2),
               util::fmt(efficiency, 2)});
      // Phase attribution rides on a short perf-instrumented pass so every
      // BENCH row records where its round time goes (capped at 20 rounds —
      // run-wide means stabilize long before the timed pass's length).
      const std::int64_t perf_rounds = std::min<std::int64_t>(rounds, 20);
      std::string row_json = json_row(n, threads, r, speedup, efficiency);
      row_json.insert(row_json.size() - 1,
                      ", \"phase_attribution\": " +
                          run_phase_attribution(udg, perf_rounds, threads));
      json_rows.push_back(std::move(row_json));
    }
    out.rule();
  }

  out.print("MT — round engine scaling, threads x n (flood, avg degree " +
            util::fmt(degree, 1) + ", hw threads " + util::fmt(hw) + ")");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"simcore_mt\",\n"
         << "  \"workload\": \"udg_flood_broadcast\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return all_deterministic ? 0 : 1;
}
