// A2 (extension) — weighted k-MDS (the paper's Section 4.1 remark).
//
// Heterogeneous selection costs (e.g. battery state): how much cheaper is a
// weight-aware backbone than a cardinality-minimal one? We compare the
// weighted greedy and weight-aware rounding against their weight-blind
// counterparts, all evaluated under the weighted objective, across weight
// skews (max/min weight ratio).
//
// Expected: the gap grows with skew — weight-blind algorithms happily pick
// expensive hubs; weight-aware ones route around them. On uniform weights
// both coincide exactly.
//
// The rounding comparison isolates the *request rule* (the only
// weight-aware part of Algorithm 2): it rounds the all-zero fractional
// solution, so every dominator comes from the repair path — blind repair
// picks lowest ids, aware repair picks cheapest candidates.
#include "bench_common.h"

#include "algo/baseline/greedy.h"
#include "algo/lp/lp_kmds.h"
#include "algo/rounding/rounding.h"
#include "algo/weighted/weighted.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 400));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));

  bench::Output out({"skew", "greedy_blind_w", "greedy_aware_w", "saving%",
                     "repair_blind_w", "repair_aware_w", "saving%",
                     "lower_bnd"},
                    args);

  for (double skew : {1.0, 4.0, 16.0, 64.0}) {
    util::RunningStats blind_g, aware_g, blind_r, aware_r, lb;
    for (int s = 0; s < seeds; ++s) {
      util::Rng rng(6000 + static_cast<std::uint64_t>(s));
      const graph::Graph g = graph::gnp(
          n, 12.0 / static_cast<double>(n - 1), rng);
      const auto d = domination::clamp_demands(
          g, domination::uniform_demands(g.n(), k));
      const auto w = algo::random_weights(g.n(), 1.0, skew, rng);

      // Weight-blind: optimize cardinality, pay the weighted bill.
      const auto blind = algo::greedy_kmds(g, d);
      blind_g.add(algo::set_weight(blind.set, w));
      const auto aware = algo::weighted_greedy_kmds(g, d, w);
      aware_g.add(aware.weight);

      // Pure repair path: zero fractional mass forces every selection
      // through the request rule.
      domination::FractionalSolution zero;
      zero.x.assign(static_cast<std::size_t>(g.n()), 0.0);
      const auto rb = algo::round_fractional(g, zero, d, 99 + s);
      blind_r.add(algo::set_weight(rb.set, w));
      const auto ra =
          algo::weighted_round_fractional(g, zero, d, w, 99 + s);
      aware_r.add(ra.weight);

      lb.add(algo::weighted_lower_bound(g, d, w));
    }
    auto saving = [](double blind, double aware) {
      return 100.0 * (blind - aware) / blind;
    };
    out.row({util::fmt(skew, 0), util::fmt(blind_g.mean(), 1),
             util::fmt(aware_g.mean(), 1),
             util::fmt(saving(blind_g.mean(), aware_g.mean()), 1),
             util::fmt(blind_r.mean(), 1), util::fmt(aware_r.mean(), 1),
             util::fmt(saving(blind_r.mean(), aware_r.mean()), 1),
             util::fmt(lb.mean(), 1)});
  }

  out.print(
      "A2 (extension) - weighted k-MDS vs weight-blind selection\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) +
      ", weights uniform in [1, skew], " + std::to_string(seeds) + " seeds");
  return 0;
}
