// ALGO — the shared kernel layer vs its scalar references, at scale.
//
// Three sections, one flat JSON results array (BENCH_algo.json):
//
//   * coverage:   closed_coverage_counts, scalar (byte-map reference in
//                 domination.cpp) vs word-packed (kernels.cpp), at sparse
//                 (dominating-set-like, scatter kernel) and dense (~n/2,
//                 gather kernel) memberships;
//   * deficiency: the full shortfall evaluation — scalar composition
//                 (coverage vector + accumulate) vs the fused packed kernel;
//   * lp:         Algorithm 1 mirror, kept reference solver
//                 (lp_kmds_reference.cpp) vs the optimized solver
//                 (power tables + flat arenas + BlockRunner) at widths
//                 --threads, asserting bitwise-equal output per width;
//   * rounding:   steady-state best-of trial loop, recording trials/sec and
//                 allocs/trial (≈ 0 once scratch reaches high water).
//
// Equality is asserted inline, bench_simcore_mt-style: any divergence
// between an optimized path and its reference aborts the bench with a
// nonzero exit, so a perf number can never be reported for wrong output.
//
// --sizes=100000,1000000   coverage/deficiency node grid
// --lp-sizes=20000,200000  LP node grid (reference solve is O(n·Δ) memory)
// --threads=1,4,8          optimized-LP widths (reference is sequential)
// --t=2                    LP trade-off parameter
// --degree=8               target average UDG degree
// --min-time=0.3           minimum measured seconds per data point (repeats
//                          adapt, so a 40x-faster kernel still gets a
//                          full-length measurement and the 5% gate isn't
//                          gating timer noise)
// --trials=64              rounding trials per measurement
// --quick                  row-subset grid for the check.sh algo-perf gate
//                          (sizes=100000, lp-sizes=20000, threads=1,4)
// --json=BENCH_algo.json   machine-readable output ("" = none)
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/lp/lp_kmds.h"
#include "algo/rounding/rounding.h"
#include "bench_common.h"
#include "domination/domination.h"
#include "domination/kernels.h"
#include "geom/udg.h"
#include "obs/perf.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ftc;
using domination::Demands;
using domination::Mode;
using graph::Graph;
using graph::NodeId;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kAlgoSeed = 7;

bool g_all_equal = true;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FATAL: " << what << " (optimized path != reference)\n";
    g_all_equal = false;
  }
}

/// The pre-kernel scalar deficiency: byte-map coverage vector + accumulate.
std::int64_t scalar_deficiency(const Graph& g,
                               const std::vector<std::uint8_t>& members,
                               const Demands& demands, Mode mode) {
  const auto cover = domination::closed_coverage_counts(g, members);
  std::int64_t total = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (mode == Mode::kOpenForNonMembers && members[i] != 0) continue;
    total += std::max<std::int32_t>(0, demands[i] - cover[i]);
  }
  return total;
}

std::vector<std::uint8_t> random_membership(NodeId n, std::uint64_t seed,
                                            int one_in) {
  std::vector<std::uint8_t> members(static_cast<std::size_t>(n), 0);
  std::uint64_t state = seed;
  for (auto& m : members) {
    m = (util::splitmix64(state) % static_cast<std::uint64_t>(one_in) == 0)
            ? 1
            : 0;
  }
  return members;
}

/// Calls fn until at least `min_seconds` of it has been measured (one
/// unmeasured warmup call, then doubling batches) and returns calls/sec.
/// Takes the best of five passes: on a shared machine, noise only ever
/// makes a pass slower, so max-of-passes converges on the real throughput
/// and keeps the 5% regression gate from firing on scheduler jitter.
template <typename F>
double measure_per_sec(F&& fn, double min_seconds) {
  fn();  // warmup: faults pages, grows scratch to high water
  double best = 0.0;
  for (int pass = 0; pass < 5; ++pass) {
    bench::WallClock clock;
    std::int64_t reps = 0;
    std::int64_t batch = 1;
    for (;;) {
      for (std::int64_t i = 0; i < batch; ++i) fn();
      reps += batch;
      const double elapsed = clock.seconds();
      if (elapsed >= min_seconds) {
        best = std::max(best, static_cast<double>(reps) / elapsed);
        break;
      }
      batch *= 2;
    }
  }
  return best;
}

bool lp_equal(const algo::LpResult& a, const algo::LpResult& b) {
  return a.primal.x == b.primal.x && a.dual.y == b.dual.y &&
         a.dual.z == b.dual.z && a.kappa == b.kappa && a.rounds == b.rounds &&
         a.max_lemma41_ratio == b.max_lemma41_ratio;
}

std::string row_prefix(const char* section, NodeId n) {
  return std::string("    {\"section\": \"") + section +
         "\", \"n\": " + std::to_string(n);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const auto sizes = args.get_int_list(
      "sizes", quick ? std::vector<long long>{100'000}
                     : std::vector<long long>{100'000, 1'000'000});
  const auto lp_sizes = args.get_int_list(
      "lp-sizes", quick ? std::vector<long long>{20'000}
                        : std::vector<long long>{20'000, 200'000});
  const auto widths = args.get_int_list(
      "threads",
      quick ? std::vector<long long>{1, 4} : std::vector<long long>{1, 4, 8});
  const int t = static_cast<int>(args.get_int("t", 2));
  const double degree = args.get_double("degree", 8.0);
  const double min_time = args.get_double("min-time", 0.3);
  const int trials = static_cast<int>(args.get_int("trials", 64));
  const std::string json_path = args.get_string("json", "BENCH_algo.json");
  const int hw = util::ThreadPool::hardware_threads();

  bench::Output out({"section", "n", "detail", "ref/sec", "opt/sec",
                     "speedup", "allocs/unit"},
                    args);
  std::vector<std::string> json_rows;

  // ---- coverage + deficiency kernels ------------------------------------
  for (const long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);
    const Graph& g = udg.graph;
    const Demands demands = domination::uniform_demands(n, 2);

    for (const auto& [density, one_in] :
         {std::pair{"sparse", 64}, std::pair{"dense", 2}}) {
      const auto members = random_membership(n, kAlgoSeed, one_in);
      domination::MembershipBits bits;
      bits.assign(members);
      std::vector<std::int32_t> packed_cover(static_cast<std::size_t>(n), 0);

      // Correctness first: a wrong kernel must never report a speedup.
      const auto ref_cover = domination::closed_coverage_counts(g, members);
      domination::closed_coverage_counts(g, bits, packed_cover);
      require(ref_cover == packed_cover,
              "coverage mismatch at n=" + std::to_string(n) + " " + density);

      std::int64_t sink = 0;
      const double scalar_ps = measure_per_sec(
          [&] {
            const auto cover = domination::closed_coverage_counts(g, members);
            sink += cover.front();
          },
          min_time);
      const double packed_ps = measure_per_sec(
          [&] {
            domination::closed_coverage_counts(g, bits, packed_cover);
            sink += packed_cover.front();
          },
          min_time);
      const double speedup = packed_ps / scalar_ps;
      out.row({"coverage", util::fmt(static_cast<long long>(n)), density,
               util::fmt(scalar_ps, 2), util::fmt(packed_ps, 2),
               util::fmt(speedup, 2), "-"});
      json_rows.push_back(
          row_prefix("coverage", n) + ", \"density\": \"" + density +
          "\", \"scalar_sweeps_per_sec\": " + util::fmt(scalar_ps, 3) +
          ", \"packed_sweeps_per_sec\": " + util::fmt(packed_ps, 3) +
          ", \"speedup_vs_scalar\": " + util::fmt(speedup, 3) + "}");

      // Deficiency over a node-id set — the shape every hot caller has
      // (invariants, watchdog, oracles). Scalar baseline is the
      // pre-kernel pipeline: byte membership + coverage vector +
      // accumulate. Optimized is the scratch overload (hybrid
      // scatter/gather), cross-checked against the fused kernel too.
      const auto set = domination::to_node_list(members);
      domination::CoverageScratch scratch;
      const auto ref_def =
          scalar_deficiency(g, members, demands, Mode::kClosedNeighborhood);
      require(domination::deficiency(g, bits, demands,
                                     Mode::kClosedNeighborhood) == ref_def,
              "fused deficiency mismatch at n=" + std::to_string(n) + " " +
                  density);
      require(domination::deficiency(g, set, demands,
                                     Mode::kClosedNeighborhood,
                                     scratch) == ref_def,
              "scratch deficiency mismatch at n=" + std::to_string(n) + " " +
                  density);
      const double def_scalar_ps = measure_per_sec(
          [&] {
            const auto bytes = domination::to_membership(g, set);
            sink += scalar_deficiency(g, bytes, demands,
                                      Mode::kClosedNeighborhood);
          },
          min_time);
      const double def_packed_ps = measure_per_sec(
          [&] {
            sink += domination::deficiency(g, set, demands,
                                           Mode::kClosedNeighborhood, scratch);
          },
          min_time);
      const double def_speedup = def_packed_ps / def_scalar_ps;
      out.row({"deficiency", util::fmt(static_cast<long long>(n)), density,
               util::fmt(def_scalar_ps, 2), util::fmt(def_packed_ps, 2),
               util::fmt(def_speedup, 2), "-"});
      json_rows.push_back(
          row_prefix("deficiency", n) + ", \"density\": \"" + density +
          "\", \"scalar_evals_per_sec\": " + util::fmt(def_scalar_ps, 3) +
          ", \"packed_evals_per_sec\": " + util::fmt(def_packed_ps, 3) +
          ", \"speedup_vs_scalar\": " + util::fmt(def_speedup, 3) + "}");
      if (sink == 0x7FFFFFFF) std::cerr << "";  // keep the sink live
    }
    out.rule();
  }

  // ---- LP solver: reference vs optimized at each width ------------------
  for (const long long n_ll : lp_sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);
    const Graph& g = udg.graph;
    const Demands demands = domination::uniform_demands(n, 2);

    double sink_x = 0.0;
    algo::LpOptions opts;
    opts.t = t;
    const algo::LpResult ref =
        algo::solve_fractional_kmds_reference(g, demands, opts);
    const double ref_ps = measure_per_sec(
        [&] {
          const algo::LpResult again =
              algo::solve_fractional_kmds_reference(g, demands, opts);
          require(lp_equal(ref, again),
                  "reference LP not deterministic at n=" + std::to_string(n));
        },
        min_time);

    algo::LpResult lp_for_rounding;
    for (const long long w_ll : widths) {
      const int threads = static_cast<int>(w_ll);
      opts.threads = threads;
      const algo::LpResult opt = algo::solve_fractional_kmds(g, demands, opts);
      require(lp_equal(ref, opt), "LP divergence at n=" + std::to_string(n) +
                                      " threads=" + std::to_string(threads));
      const double opt_ps = measure_per_sec(
          [&] {
            const algo::LpResult again =
                algo::solve_fractional_kmds(g, demands, opts);
            sink_x += again.primal.x.back();
          },
          min_time);
      const double speedup = opt_ps / ref_ps;
      // One perf-attributed solve per width: LpOptions.perf points at a
      // side PerfPlane (each (p, q) inner iteration = one perf round).
      // Attaching the sink must not change the solution — asserted like
      // every other optimized-vs-reference pair.
      obs::PerfPlane lp_perf;
      opts.perf = &lp_perf;
      const algo::LpResult attributed =
          algo::solve_fractional_kmds(g, demands, opts);
      opts.perf = nullptr;
      require(lp_equal(ref, attributed),
              "LP divergence with perf attribution at n=" + std::to_string(n) +
                  " threads=" + std::to_string(threads));
      out.row({"lp", util::fmt(static_cast<long long>(n)),
               "threads=" + std::to_string(threads), util::fmt(ref_ps, 3),
               util::fmt(opt_ps, 3), util::fmt(speedup, 2), "-"});
      json_rows.push_back(
          row_prefix("lp", n) + ", \"t\": " + std::to_string(t) +
          ", \"threads\": " + std::to_string(threads) +
          ", \"reference_solves_per_sec\": " + util::fmt(ref_ps, 4) +
          ", \"solves_per_sec\": " + util::fmt(opt_ps, 4) +
          ", \"speedup_vs_reference\": " + util::fmt(speedup, 3) +
          ", \"phase_attribution\": " +
          bench::perf_attribution_json(lp_perf) + "}");
      if (threads == static_cast<int>(widths.front())) {
        lp_for_rounding = opt;
      }
    }
    if (sink_x == -1.0) std::cerr << "";  // keep the sink live

    // ---- rounding: steady-state trial loop, allocs/trial ----------------
    algo::RoundingScratch scratch;
    algo::RoundingResult result;
    // Warmup to high-water size so the measured section is steady state.
    algo::round_fractional(g, lp_for_rounding.primal, demands, kAlgoSeed,
                           scratch, result);
    algo::round_fractional(g, lp_for_rounding.primal, demands, kAlgoSeed + 1,
                           scratch, result);
    // allocs/trial over a fixed post-warmup trial loop (the best_of shape).
    const std::uint64_t allocs_before = bench::alloc_counts().count;
    std::size_t sink = 0;
    for (int trial = 0; trial < trials; ++trial) {
      algo::round_fractional(g, lp_for_rounding.primal, demands,
                             kAlgoSeed + static_cast<std::uint64_t>(trial),
                             scratch, result);
      sink += result.set.size();
    }
    const double allocs_per_trial =
        static_cast<double>(bench::alloc_counts().count - allocs_before) /
        static_cast<double>(std::max(trials, 1));
    // Throughput with the adaptive timer, seeds cycling like best_of does.
    std::uint64_t seed_ctr = 0;
    const double trials_ps = measure_per_sec(
        [&] {
          algo::round_fractional(
              g, lp_for_rounding.primal, demands,
              kAlgoSeed + (seed_ctr++ % static_cast<std::uint64_t>(trials)),
              scratch, result);
          sink += result.set.size();
        },
        min_time);
    out.row({"rounding", util::fmt(static_cast<long long>(n)),
             "trials=" + std::to_string(trials), "-",
             util::fmt(trials_ps, 2), "-", util::fmt(allocs_per_trial, 2)});
    json_rows.push_back(row_prefix("rounding", n) +
                        ", \"trials\": " + std::to_string(trials) +
                        ", \"trials_per_sec\": " + util::fmt(trials_ps, 3) +
                        ", \"allocs_per_trial\": " +
                        util::fmt(allocs_per_trial, 2) + "}");
    if (sink == 0) std::cerr << "";
    out.rule();
  }

  out.print("ALGO — kernel layer vs scalar references (UDG, avg degree " +
            util::fmt(degree, 1) + ", t=" + util::fmt(t) + ", hw threads " +
            util::fmt(hw) + ")");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"algo_kernels\",\n"
         << "  \"workload\": \"udg_uniform\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return g_all_equal ? 0 : 1;
}
