// Process-wide allocation counters fed by the replacement global operator
// new/delete in alloc_hooks.cpp. Every bench binary compiles that TU in, so
// alloc_counts() is always strongly defined; the counters let tables report
// allocations-per-row and the round engine prove its steady-state
// "amortized zero allocations per round" claim with a number.
#pragma once

#include <cstdint>

namespace ftc::bench {

/// Cumulative allocation totals since process start.
struct AllocCounts {
  std::uint64_t count = 0;  // operator new calls
  std::uint64_t bytes = 0;  // bytes requested
};

/// Snapshot of the global counters (relaxed loads; exact in single-threaded
/// phases, approximate-but-monotonic while the pool is running).
[[nodiscard]] AllocCounts alloc_counts() noexcept;

}  // namespace ftc::bench
