// E5 — Lemmas 5.5 / 5.6: the number of leaders inside any disk of radius
// 1/2 is O(1) in expectation after Part I, and O(k) after Part II.
//
// Dense uniform UDG deployments; the plane is covered with the paper's
// hexagonal lattice of radius-1/2 disks, and we count Part-I leaders and
// final leaders per disk (restricted to disks containing at least one node,
// so empty border cells don't deflate the mean).
//
// Expected shape: per-disk Part-I leader counts are small constants,
// independent of n and density; final counts scale ~linearly with k.
#include "bench_common.h"

#include <cmath>

#include "algo/udg/udg_kmds.h"
#include "geom/cover.h"
#include "geom/udg.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 4000));
  const auto degrees = args.get_int_list("degrees", {15, 40});
  const auto k_values = args.get_int_list("k", {1, 2, 4, 8});

  bench::Output out({"avg_deg", "k", "|S1|", "|S|", "S1/disk_mean",
                     "S1/disk_max", "S/disk_mean", "S/disk_max",
                     "S/disk_mean / k"},
                    args);

  for (long long degree : degrees) {
    for (long long k : k_values) {
      util::RunningStats s1_mean, s1_max, s_mean, s_max, s1_total, s_total;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 40 + static_cast<std::uint64_t>(s) +
                                   static_cast<std::uint64_t>(degree) * 1000;
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(
            n, static_cast<double>(degree), rng);
        algo::UdgOptions opts;
        opts.k = static_cast<std::int32_t>(k);
        const auto result = algo::solve_udg_kmds(udg, opts, seed);
        s1_total.add(static_cast<double>(result.part1_leaders.size()));
        s_total.add(static_cast<double>(result.leaders.size()));

        // Hexagonal covering of the deployment square with 1/2-radius
        // disks, anchored at the square's center.
        double side = 0.0;
        for (const auto& p : udg.positions) {
          side = std::max({side, p.x, p.y});
        }
        const geom::Point center{side / 2.0, side / 2.0};
        const double region_radius = side * std::numbers::sqrt2 / 2.0;
        const auto centers =
            geom::hex_cover_centers(center, region_radius, 0.5);

        std::vector<graph::NodeId> everyone;
        for (graph::NodeId v = 0; v < udg.n(); ++v) everyone.push_back(v);
        const auto occupancy = geom::count_points_per_disk(
            udg.positions, everyone, centers, 0.5);
        const auto part1_counts = geom::count_points_per_disk(
            udg.positions, result.part1_leaders, centers, 0.5);
        const auto final_counts = geom::count_points_per_disk(
            udg.positions, result.leaders, centers, 0.5);

        double sum1 = 0, sumf = 0, max1 = 0, maxf = 0;
        std::size_t occupied = 0;
        for (std::size_t c = 0; c < centers.size(); ++c) {
          if (occupancy[c] == 0) continue;
          ++occupied;
          sum1 += static_cast<double>(part1_counts[c]);
          sumf += static_cast<double>(final_counts[c]);
          max1 = std::max(max1, static_cast<double>(part1_counts[c]));
          maxf = std::max(maxf, static_cast<double>(final_counts[c]));
        }
        if (occupied > 0) {
          s1_mean.add(sum1 / static_cast<double>(occupied));
          s_mean.add(sumf / static_cast<double>(occupied));
          s1_max.add(max1);
          s_max.add(maxf);
        }
      }
      out.row({util::fmt(degree), util::fmt(k), util::fmt(s1_total.mean(), 1),
               util::fmt(s_total.mean(), 1), util::fmt(s1_mean.mean(), 2),
               util::fmt(s1_max.mean(), 1), util::fmt(s_mean.mean(), 2),
               util::fmt(s_max.mean(), 1),
               util::fmt(s_mean.mean() / static_cast<double>(k), 2)});
    }
    out.rule();
  }

  out.print(
      "E5 (Lemmas 5.5/5.6) - leaders per 1/2-radius disk\n"
      "n=" + std::to_string(n) + ", " + std::to_string(seeds) +
      " seeds; only node-occupied disks counted");
  return 0;
}
