// E7 — Section 3's model constraint: all messages are O(log n) bits.
//
// Every distributed algorithm is run on the faithful simulator, which
// accounts payload sizes in words (one word = one id / counter / quantized
// value = O(log n) bits). We report the maximum words in any single
// message — the paper's claim is that this is a small constant — plus
// total message and word counts for context.
//
// Expected shape: max words/message is 3 (Algorithm 1), 1 (Algorithm 2),
// 2 (Algorithm 3), independent of n.
#include "bench_common.h"

#include <memory>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/rounding/rounding_process.h"
#include "algo/udg/udg_kmds.h"
#include "algo/udg/udg_kmds_process.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto sizes = args.get_int_list("sizes", {100, 400, 1600});
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const int t = static_cast<int>(args.get_int("t", 3));

  bench::Output out({"algorithm", "n", "rounds", "messages", "words",
                     "max_words/msg", "msgs/node/round"},
                    args);

  for (long long n : sizes) {
    const std::uint64_t seed = 11 + static_cast<std::uint64_t>(n);
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp(
        static_cast<graph::NodeId>(n), 10.0 / static_cast<double>(n - 1),
        rng);
    const auto d =
        domination::clamp_demands(g, domination::uniform_demands(g.n(), k));

    // Algorithm 1.
    {
      sim::SyncNetwork net(g, seed);
      net.set_all_processes([&](graph::NodeId v) {
        return std::make_unique<algo::LpKmdsProcess>(
            d[static_cast<std::size_t>(v)], t);
      });
      net.run(algo::lp_round_count(t) + 4);
      const auto& m = net.metrics();
      out.row({"Alg1 (LP, t=" + std::to_string(t) + ")", util::fmt(n),
               util::fmt(m.rounds), util::fmt(m.messages_sent),
               util::fmt(m.words_sent), util::fmt(m.max_message_words),
               util::fmt(static_cast<double>(m.messages_sent) /
                             static_cast<double>(n * m.rounds),
                         2)});

      // Algorithm 2, fed by Algorithm 1's x-values.
      sim::SyncNetwork rnet(g, seed);
      rnet.set_all_processes([&](graph::NodeId v) {
        return std::make_unique<algo::RoundingProcess>(
            net.process_as<algo::LpKmdsProcess>(v).x(),
            d[static_cast<std::size_t>(v)]);
      });
      rnet.run(6);
      const auto& rm = rnet.metrics();
      out.row({"Alg2 (rounding)", util::fmt(n), util::fmt(rm.rounds),
               util::fmt(rm.messages_sent), util::fmt(rm.words_sent),
               util::fmt(rm.max_message_words),
               util::fmt(static_cast<double>(rm.messages_sent) /
                             static_cast<double>(n * rm.rounds),
                         2)});
    }

    // Algorithm 3 on a UDG of the same size.
    {
      util::Rng urng(seed);
      const auto udg = geom::uniform_udg_with_degree(
          static_cast<graph::NodeId>(n), 12.0, urng);
      sim::SyncNetwork net(udg, seed);
      net.set_all_processes([&](graph::NodeId) {
        return std::make_unique<algo::UdgKmdsProcess>(k);
      });
      net.run(2 * algo::udg_part1_rounds(udg.n()) + 3 * (udg.n() + 3));
      const auto& m = net.metrics();
      out.row({"Alg3 (UDG)", util::fmt(n), util::fmt(m.rounds),
               util::fmt(m.messages_sent), util::fmt(m.words_sent),
               util::fmt(m.max_message_words),
               util::fmt(static_cast<double>(m.messages_sent) /
                             static_cast<double>(n * m.rounds),
                         2)});
    }
    out.rule();
  }

  out.print(
      "E7 (Section 3) - message size audit: one word = O(log n) bits;\n"
      "the paper's claim is a constant number of words per message");
  return 0;
}
