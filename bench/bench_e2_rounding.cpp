// E2 — Theorem 4.6: randomized rounding loses only a ln(Δ+1) + O(1) factor.
//
// Density sweep over G(n, p): for each target average degree, solve the
// fractional LP (fixed t), then round with many seeds and report
//   * E[|integral|] / fractional objective ("rounding factor"),
//   * ln(Δ+1) — the theorem's leading coefficient,
//   * the split between coin-chosen (X) and request-chosen (Y) nodes:
//     the theorem's proof bounds E[X] ≤ ln(Δ+1)·Σx and E[Y] = O(OPT).
//
// Expected shape: rounding factor tracks ln(Δ+1) + O(1) and the request
// share Y stays a small fraction of the set.
#include "bench_common.h"

#include <cmath>
#include <stdexcept>

#include "algo/lp/lp_kmds.h"
#include "algo/rounding/rounding.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 20));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 600));
  const int t = static_cast<int>(args.get_int("t", 4));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const auto degrees = args.get_int_list("degrees", {4, 8, 16, 32, 64});

  bench::Output out({"avg_deg", "Delta", "ln(D+1)", "frac_obj", "E[|S|]",
                     "round_factor", "coin_X", "request_Y", "feasible%"},
                    args);

  for (long long target_degree : degrees) {
    util::Rng graph_rng(42 + static_cast<std::uint64_t>(target_degree));
    const graph::Graph g =
        graph::gnp(n, static_cast<double>(target_degree) /
                          static_cast<double>(n - 1),
                   graph_rng);
    const auto d =
        domination::clamp_demands(g, domination::uniform_demands(n, k));
    algo::LpOptions lp_opts;
    lp_opts.t = t;
    const auto lp = algo::solve_fractional_kmds(g, d, lp_opts);
    const double frac = lp.primal.objective();

    util::RunningStats size_stats, coin_stats, req_stats;
    int feasible = 0;
    for (int s = 0; s < seeds; ++s) {
      const auto rounded = algo::round_fractional(
          g, lp.primal, d, 1000 + static_cast<std::uint64_t>(s));
      size_stats.add(static_cast<double>(rounded.set.size()));
      coin_stats.add(static_cast<double>(rounded.chosen_by_coin));
      req_stats.add(static_cast<double>(rounded.chosen_by_request));
      if (domination::is_k_dominating(g, rounded.set, d)) ++feasible;
    }
    const double ln_d1 =
        std::log(static_cast<double>(g.max_degree()) + 1.0);
    out.row({util::fmt(target_degree), util::fmt(g.max_degree()),
             util::fmt(ln_d1, 2), util::fmt(frac, 1),
             util::fmt(size_stats.mean(), 1),
             util::fmt(size_stats.mean() / frac, 3),
             util::fmt(coin_stats.mean(), 1), util::fmt(req_stats.mean(), 1),
             util::fmt(100.0 * feasible / seeds, 1)});
  }

  out.print(
      "E2 (Theorem 4.6) - randomized rounding factor vs ln(Delta+1)\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) +
      ", t=" + std::to_string(t) + ", " + std::to_string(seeds) +
      " rounding seeds per row");
  return 0;
}
