// A8 (extension) — self-healing soak: long executions under continuous churn.
//
// Where A4 measures a single offline repair, A8 runs the full robustness
// stack live: every node executes the RepairProcess daemon (heartbeat
// failure detection + 4-round promotion waves) while a fault plan batters
// the network for thousands of rounds. An omniscient observer — measurement
// only, never control — records, per (k, fault regime):
//   * coverage-violation windows (count / mean / max, in rounds) — the
//     repair latency the survivors actually experienced;
//   * windows exceeding the repair threshold (detection timeout + wave
//     bound): these count as self-healing failures and should be zero;
//   * promoted-node overhead vs a full greedy re-cluster of the final live
//     graph (locality of repair);
//   * messages per live node per round — the heartbeat tax. The daemon
//     broadcasts exactly one 1-word message per round (heartbeats ride on
//     protocol words), so this sits at ≈ mean degree point-to-point
//     messages and never grows with k or the fault rate.
#include "bench_common.h"

#include "algo/baseline/greedy.h"
#include "algo/extensions/soak.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "sim/fault.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 600));
  const auto rounds = args.get_int("rounds", 2000);
  const auto k_values = args.get_int_list("k", {1, 2, 3});
  const double loss = args.get_double("loss", 0.05);

  struct Regime {
    const char* name;
    sim::FaultPlan plan;
    double message_loss;
  };
  // Faults stop at 80% of the horizon so the tail shows the healed steady
  // state; downtimes scale with the horizon so smoke configs still rejoin.
  const std::int64_t fault_until = rounds * 4 / 5;
  const std::int64_t down_max = std::max<std::int64_t>(rounds / 10, 20);
  const std::vector<Regime> regimes{
      {"iid", sim::FaultPlan::iid_crashes(0.0005, 0, rounds / 2), 0.0},
      {"churn",
       sim::FaultPlan::churn(0.001, down_max / 4 + 1, down_max, 0,
                             fault_until),
       0.0},
      {"churn+loss",
       sim::FaultPlan::churn(0.001, down_max / 4 + 1, down_max, 0,
                             fault_until),
       loss},
  };

  bench::Output out({"k", "faults", "crash", "rejoin", "viol_win",
                     "mean_w", "max_w", "over_thr", "promo", "|S|", "rebuild",
                     "msg/node/rnd", "suspect", "refuted"},
                    args);

  for (long long k : k_values) {
    for (const Regime& regime : regimes) {
      util::RunningStats crash, rejoin, windows, mean_w, max_w, over, promo,
          set_size, rebuild, msg_rate, suspect, refuted;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 21 + static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
        const graph::Graph& g = udg.graph;
        const auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(),
                                           static_cast<std::int32_t>(k)));
        const auto base = algo::greedy_kmds(g, d).set;

        algo::SoakOptions opts;
        opts.rounds = rounds;
        opts.message_loss = regime.message_loss;
        opts.network_seed = seed * 3;
        opts.fault_seed = seed * 7 + 1;
        const auto rep =
            algo::run_soak(g, &udg, d, base, regime.plan, opts);

        crash.add(static_cast<double>(rep.crashes));
        rejoin.add(static_cast<double>(rep.recoveries));
        windows.add(static_cast<double>(rep.violation_windows));
        mean_w.add(rep.mean_violation_window);
        max_w.add(static_cast<double>(rep.max_violation_window));
        over.add(static_cast<double>(rep.windows_over_threshold));
        promo.add(static_cast<double>(rep.promotions));
        set_size.add(static_cast<double>(rep.final_set_size));
        rebuild.add(static_cast<double>(rep.rebuild_set_size));
        msg_rate.add(rep.messages_per_live_node_round);
        suspect.add(static_cast<double>(rep.suspicions_raised));
        refuted.add(static_cast<double>(rep.refuted_suspicions));
      }
      out.row({util::fmt(k), regime.name, util::fmt(crash.mean(), 0),
               util::fmt(rejoin.mean(), 0), util::fmt(windows.mean(), 1),
               util::fmt(mean_w.mean(), 1), util::fmt(max_w.mean(), 0),
               util::fmt(over.mean(), 1), util::fmt(promo.mean(), 0),
               util::fmt(set_size.mean(), 0), util::fmt(rebuild.mean(), 0),
               util::fmt(msg_rate.mean(), 2), util::fmt(suspect.mean(), 0),
               util::fmt(refuted.mean(), 0)});
    }
    out.rule();
  }

  out.print(
      "A8 (extension) - self-healing soak under continuous churn\n"
      "uniform UDG n=" + std::to_string(n) + ", " +
      std::to_string(rounds) + " rounds, RepairProcess daemons, " +
      std::to_string(seeds) + " seeds");
  return 0;
}
