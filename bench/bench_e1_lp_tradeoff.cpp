// E1 — Theorem 4.5: the time/approximation trade-off of Algorithm 1.
//
// For each graph family, fold parameter k, and trade-off parameter t, run
// the fractional LP approximation and report
//   * the TRUE approximation ratio: fractional objective / OPT_f, where
//     OPT_f is computed exactly by the simplex solver (n ≤ --lp-limit),
//   * Theorem 4.5's guarantee t((Δ+1)^{2/t} + (Δ+1)^{1/t}),
//   * the exact synchronous round count 2t² + 2.
// For n above --lp-limit the denominator falls back to the best lower
// bound, making the reported ratio an upper bound on the true one.
//
// Expected shape (paper): the guarantee falls steeply as t grows (towards
// 2t for t ≈ logΔ); the measured ratio sits far below the guarantee and
// improves (or stays flat) with t, while round cost grows quadratically.
#include "bench_common.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/lp/lp_kmds.h"
#include "domination/bounds.h"
#include "domination/lp_solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::Graph;

Graph make_graph(const std::string& family, graph::NodeId n,
                 std::uint64_t seed) {
  util::Rng rng(seed);
  if (family == "gnp") return graph::gnp(n, 12.0 / static_cast<double>(n), rng);
  if (family == "powerlaw") return graph::barabasi_albert(n, 3, rng);
  if (family == "grid") {
    const auto side = static_cast<graph::NodeId>(std::sqrt(n));
    return graph::grid(side, side);
  }
  throw std::invalid_argument("unknown family " + family);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 300));
  const auto t_values = args.get_int_list("t", {1, 2, 3, 4, 6, 8});
  const auto k_values = args.get_int_list("k", {1, 3});
  // Exact OPT_f via simplex up to this size (O(n³)-ish per solve), with a
  // per-solve pivot budget; instances that exceed either fall back to the
  // best combinatorial lower bound.
  const auto lp_limit = static_cast<graph::NodeId>(
      args.get_int("lp-limit", 350));
  const auto lp_pivots = args.get_int("lp-pivots", 40000);

  bench::Output out({"family", "k", "t", "rounds", "Delta", "frac_obj",
                     "OPT_f", "ratio", "thm4.5_bound"},
                    args);

  for (const std::string family : {"gnp", "powerlaw", "grid"}) {
    for (long long k : k_values) {
      // Per-seed instances and exact OPT_f denominators (t-independent).
      std::vector<Graph> graphs;
      std::vector<domination::Demands> demand_sets;
      std::vector<double> denominators;
      for (int s = 0; s < seeds; ++s) {
        Graph g = make_graph(family, n, 100 + static_cast<std::uint64_t>(s));
        auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(),
                                           static_cast<std::int32_t>(k)));
        double denom = 0.0;
        if (g.n() <= lp_limit) {
          const auto opt_f = domination::solve_lp_exact(g, d, lp_pivots);
          if (opt_f.feasible && !opt_f.iteration_limit_hit) {
            denom = opt_f.objective;
          }
        }
        if (denom <= 0.0) {
          const auto greedy = algo::greedy_kmds(g, d);
          denom = domination::best_lower_bound(
              g, d, static_cast<std::int64_t>(greedy.set.size()));
        }
        graphs.push_back(std::move(g));
        demand_sets.push_back(std::move(d));
        denominators.push_back(denom);
      }

      for (long long t : t_values) {
        util::RunningStats ratio_stats, obj_stats, lb_stats, delta_stats;
        for (int s = 0; s < seeds; ++s) {
          const Graph& g = graphs[static_cast<std::size_t>(s)];
          const auto& d = demand_sets[static_cast<std::size_t>(s)];
          algo::LpOptions opts;
          opts.t = static_cast<int>(t);
          const auto lp = algo::solve_fractional_kmds(g, d, opts);
          const double denom = denominators[static_cast<std::size_t>(s)];
          ratio_stats.add(lp.primal.objective() / denom);
          obj_stats.add(lp.primal.objective());
          lb_stats.add(denom);
          delta_stats.add(static_cast<double>(g.max_degree()));
        }
        const auto delta =
            static_cast<graph::NodeId>(delta_stats.mean());
        out.row({family, util::fmt(k), util::fmt(t),
                 util::fmt(algo::lp_round_count(static_cast<int>(t))),
                 util::fmt(delta_stats.mean(), 1),
                 util::fmt(obj_stats.mean(), 2), util::fmt(lb_stats.mean(), 2),
                 util::fmt(ratio_stats.mean(), 3),
                 util::fmt(algo::theorem45_bound(static_cast<int>(t), delta),
                           1)});
      }
      out.rule();
    }
  }

  out.print(
      "E1 (Theorem 4.5) - Algorithm 1 time/approximation trade-off\n"
      "n=" + std::to_string(n) + ", " + std::to_string(seeds) +
      " seeds; ratio = fractional objective / OPT_f (exact simplex up to "
      "n=" + std::to_string(lp_limit) + ")");
  return 0;
}
