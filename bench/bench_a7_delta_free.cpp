// A7 (extension) — the Δ-free variant of Algorithm 1 (Remark §4.2).
//
// The paper assumes every node knows the global maximum degree Δ, and
// remarks the assumption can be removed. Our variant replaces Δ with the
// maximum degree within each node's 2-hop neighborhood (learned in a
// 2-round warm-up). This bench quantifies the cost/benefit on degree-skewed
// graphs, where the two differ the most:
//   * fractional objective of global-Δ vs two-hop-Δ runs,
//   * the spread of the local estimates (min/max Δ_v vs Δ),
//   * rounds (the warm-up adds exactly 2).
//
// Expected: near-identical quality — most nodes' behavior is governed by
// their local degree structure anyway; the variant even wins slightly on
// power-law graphs (low-degree regions stop raising x earlier).
#include "bench_common.h"

#include <algorithm>

#include "algo/lp/lp_kmds.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 500));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const int t = static_cast<int>(args.get_int("t", 3));

  bench::Output out({"family", "Delta", "min_2hop", "obj_global",
                     "obj_2hop", "2hop/global", "rounds_g", "rounds_2h"},
                    args);

  for (const std::string family : {"gnp", "powerlaw", "caveman"}) {
    util::RunningStats delta_s, min2_s, obj_g, obj_l;
    for (int s = 0; s < seeds; ++s) {
      util::Rng rng(7100 + static_cast<std::uint64_t>(s));
      graph::Graph g;
      if (family == "gnp") {
        g = graph::gnp(n, 10.0 / static_cast<double>(n - 1), rng);
      } else if (family == "powerlaw") {
        g = graph::barabasi_albert(n, 3, rng);
      } else {
        g = graph::caveman(n / 8, 8);
      }
      const auto d = domination::clamp_demands(
          g, domination::uniform_demands(g.n(), k));

      algo::LpOptions global_opts, local_opts;
      global_opts.t = local_opts.t = t;
      local_opts.degree_knowledge = algo::DegreeKnowledge::kTwoHop;
      const auto rg = algo::solve_fractional_kmds(g, d, global_opts);
      const auto rl = algo::solve_fractional_kmds(g, d, local_opts);
      obj_g.add(rg.primal.objective());
      obj_l.add(rl.primal.objective());
      delta_s.add(static_cast<double>(g.max_degree()));
      const auto d1 = algo::two_hop_d1(g);
      min2_s.add(*std::min_element(d1.begin(), d1.end()) - 1.0);
    }
    out.row({family, util::fmt(delta_s.mean(), 0),
             util::fmt(min2_s.mean(), 0), util::fmt(obj_g.mean(), 1),
             util::fmt(obj_l.mean(), 1),
             util::fmt(obj_l.mean() / obj_g.mean(), 3),
             util::fmt(algo::lp_round_count(t)),
             util::fmt(algo::lp_round_count(t) + 2)});
  }

  out.print(
      "A7 (extension) - Delta-free Algorithm 1 (2-hop local degree)\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) +
      ", t=" + std::to_string(t) + ", " + std::to_string(seeds) + " seeds");
  return 0;
}
