// E11 — google-benchmark microbenchmarks of the computational kernels.
//
// Not a paper claim; engineering telemetry for downstream users: how fast
// the generators, checkers, mirrors, and simulator run per node/edge.
#include <benchmark/benchmark.h>

#include <memory>

#include "algo/baseline/greedy.h"
#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/pipeline.h"
#include "algo/rounding/rounding.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace ftc;

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gnp(n, 10.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GnpGeneration)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_UdgConstruction(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(2);
  const auto points = geom::uniform_points(
      n, std::sqrt(n / (12.0 / 3.14159)), rng);
  for (auto _ : state) {
    auto pts = points;
    benchmark::DoNotOptimize(geom::build_udg(std::move(pts), 1.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UdgConstruction)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CoverageCheck(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(3);
  const auto g = graph::gnp(n, 10.0 / n, rng);
  std::vector<graph::NodeId> set;
  for (graph::NodeId v = 0; v < n; v += 3) set.push_back(v);
  const auto d = domination::uniform_demands(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(domination::deficiency(g, set, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoverageCheck)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GreedyKmds(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(4);
  const auto g = graph::gnp(n, 10.0 / n, rng);
  const auto d =
      domination::clamp_demands(g, domination::uniform_demands(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::greedy_kmds(g, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyKmds)->Arg(1000)->Arg(10000);

void BM_LpMirror(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(5);
  const auto g = graph::gnp(n, 10.0 / n, rng);
  const auto d =
      domination::clamp_demands(g, domination::uniform_demands(n, 2));
  algo::LpOptions opts;
  opts.t = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::solve_fractional_kmds(g, d, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LpMirror)->Arg(1000)->Arg(10000);

void BM_Rounding(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(6);
  const auto g = graph::gnp(n, 10.0 / n, rng);
  const auto d =
      domination::clamp_demands(g, domination::uniform_demands(n, 2));
  algo::LpOptions opts;
  opts.t = 3;
  const auto lp = algo::solve_fractional_kmds(g, d, opts);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::round_fractional(g, lp.primal, d, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Rounding)->Arg(1000)->Arg(10000);

void BM_UdgMirror(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(7);
  const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
  algo::UdgOptions opts;
  opts.k = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::solve_udg_kmds(udg, opts, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UdgMirror)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SimulatorLpRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(8);
  const auto g = graph::gnp(n, 10.0 / n, rng);
  const auto d =
      domination::clamp_demands(g, domination::uniform_demands(n, 2));
  for (auto _ : state) {
    sim::SyncNetwork net(g, 1);
    net.set_all_processes([&](graph::NodeId v) {
      return std::make_unique<algo::LpKmdsProcess>(
          d[static_cast<std::size_t>(v)], 3);
    });
    benchmark::DoNotOptimize(net.run(algo::lp_round_count(3) + 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorLpRun)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
