// DYNAMIC — incremental maintenance vs full re-solve under live churn.
//
// The dynamic-clustering claim (DESIGN.md §13): after a single mutation,
// the IncrementalMaintainer re-examines only the two-hop ball around the
// damage while a full greedy re-solve re-decides every active node. This
// bench replays seeded single-mutation batches (join / leave / move on a
// UDG deployment) down both paths and reports
//
//   * mutations/sec for the incremental path (world delta + maintainer),
//   * full re-solves/sec for the rebuild path (freeze + greedy_kmds),
//   * re-clustered nodes per mutation for both: ball2 (nodes the
//     maintainer re-examined) vs the active node count (nodes the re-solve
//     re-decided), and the ratio — the ≥10x acceptance bar at n=1e5.
//
// Correctness is asserted inline: after every measured phase the surviving
// membership must fully cover the live effective demands, and the two
// paths must agree that coverage holds — a perf number is never reported
// for a broken maintainer.
//
// --sizes=10000,100000   deployment sizes (quick: 10000)
// --degree=8             target average UDG degree
// --k=2                  redundancy target
// --mutations=400        single-mutation batches per size (quick: 120)
// --resolves=40          full re-solves measured (they are the slow side)
// --json=BENCH_dynamic.json  machine-readable output ("" = none)
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/extensions/maintainer.h"
#include "bench_common.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/mutation.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using domination::Demands;
using graph::NodeId;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kChurnSeed = 7;

bool g_all_ok = true;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FATAL: " << what << "\n";
    g_all_ok = false;
  }
}

/// Effective demands on the live topology: active nodes demand
/// min(k, deg+1) (the clamp_demands convention), inactive ones nothing.
Demands effective_demands(const sim::DynamicWorld& world, std::int32_t k) {
  Demands d(static_cast<std::size_t>(world.n()), 0);
  for (NodeId v = 0; v < world.n(); ++v) {
    if (!world.active(v)) continue;
    const auto deg = static_cast<std::int32_t>(world.graph().degree(v));
    d[static_cast<std::size_t>(v)] = std::min(k, deg + 1);
  }
  return d;
}

/// Draws the next churn mutation: 25% join / 35% leave / 40% move, with
/// join/move positions jittered around a live node so density stays
/// realistic as the deployment evolves.
sim::Mutation next_mutation(const sim::DynamicWorld& world, double radius,
                            util::Rng& rng) {
  sim::Mutation m;
  const auto target =
      static_cast<NodeId>(rng.index(static_cast<std::size_t>(world.n())));
  const auto& anchor_pos =
      world.udg()->positions()[static_cast<std::size_t>(target)];
  const double u = rng.uniform01();
  if (u < 0.25) {
    m.kind = sim::MutationKind::kJoin;
    m.x = anchor_pos.x + rng.uniform(-radius, radius);
    m.y = anchor_pos.y + rng.uniform(-radius, radius);
  } else if (u < 0.60) {
    m.kind = sim::MutationKind::kLeave;
    m.node = target;
  } else {
    m.kind = sim::MutationKind::kMove;
    m.node = target;
    m.x = anchor_pos.x + rng.uniform(-radius, radius);
    m.y = anchor_pos.y + rng.uniform(-radius, radius);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const auto sizes = args.get_int_list(
      "sizes", quick ? std::vector<long long>{10'000}
                     : std::vector<long long>{10'000, 100'000});
  const double degree = args.get_double("degree", 8.0);
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const auto mutations =
      static_cast<int>(args.get_int("mutations", quick ? 120 : 400));
  const int resolves = static_cast<int>(args.get_int("resolves", 40));
  const std::string json_path = args.get_string("json", "BENCH_dynamic.json");

  bench::Output out({"n", "mutations", "inc_mut/sec", "resolve/sec",
                     "speedup", "ball2/mut", "changed/mut", "ratio"},
                    args);
  std::vector<std::string> json_rows;

  for (const long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);
    const Demands demands =
        domination::clamp_demands(udg.graph, domination::uniform_demands(n, k));
    const std::vector<NodeId> base = algo::greedy_kmds(udg.graph, demands).set;

    // ---- incremental path: world delta + maintainer per mutation --------
    sim::DynamicWorld world(udg);
    algo::IncrementalMaintainer maintainer(n, base, {.k = k});
    util::Rng churn(kChurnSeed);
    std::int64_t sum_ball2 = 0;
    std::int64_t sum_changed = 0;
    bench::WallClock inc_clock;
    for (int i = 0; i < mutations; ++i) {
      const sim::Mutation m = next_mutation(world, udg.radius, churn);
      const sim::AppliedMutation am = world.apply(m);
      const algo::MaintainResult r =
          maintainer.apply_batch(world.graph(), world.active_flags(), {&am, 1});
      sum_ball2 += r.ball2;
      sum_changed += static_cast<std::int64_t>(r.changed.size());
      require(r.fully_satisfied, "maintainer left a deficiency at n=" +
                                     std::to_string(n) + " mutation " +
                                     std::to_string(i));
    }
    const double inc_seconds = inc_clock.seconds();
    const double inc_per_sec = mutations / inc_seconds;
    require(domination::is_k_dominating(world.snapshot(),
                                        maintainer.member_set(),
                                        effective_demands(world, k)),
            "incremental membership lost coverage at n=" + std::to_string(n));

    // ---- rebuild path: freeze + full greedy re-solve per mutation -------
    sim::DynamicWorld world2(udg);
    util::Rng churn2(kChurnSeed);
    const int full_runs = std::min(resolves, mutations);
    std::int64_t sum_active = 0;
    std::vector<NodeId> resolved;
    bench::WallClock full_clock;
    for (int i = 0; i < full_runs; ++i) {
      const sim::Mutation m = next_mutation(world2, udg.radius, churn2);
      (void)world2.apply(m);
      const graph::Graph live = world2.snapshot();
      const Demands eff = effective_demands(world2, k);
      resolved = algo::greedy_kmds(live, eff).set;
      sum_active += world2.active_count();
      require(domination::is_k_dominating(live, resolved, eff),
              "full re-solve lost coverage at n=" + std::to_string(n));
    }
    const double full_seconds = full_clock.seconds();
    const double full_per_sec = full_runs / full_seconds;

    const double inc_reclustered =
        static_cast<double>(sum_ball2) / mutations;
    const double changed_per_mut =
        static_cast<double>(sum_changed) / mutations;
    const double full_reclustered =
        static_cast<double>(sum_active) / full_runs;
    const double ratio = full_reclustered / std::max(1.0, inc_reclustered);
    const double speedup = inc_per_sec / full_per_sec;

    out.row({util::fmt(static_cast<long long>(n)), util::fmt(mutations),
             util::fmt(inc_per_sec, 1), util::fmt(full_per_sec, 2),
             util::fmt(speedup, 1), util::fmt(inc_reclustered, 1),
             util::fmt(changed_per_mut, 2), util::fmt(ratio, 1)});
    json_rows.push_back(
        std::string("    {\"n\": ") + std::to_string(n) +
        ", \"mutations\": " + std::to_string(mutations) +
        ", \"full_resolves\": " + std::to_string(full_runs) +
        ", \"inc_mutations_per_sec\": " + util::fmt(inc_per_sec, 3) +
        ", \"full_resolves_per_sec\": " + util::fmt(full_per_sec, 3) +
        ", \"speedup_vs_resolve\": " + util::fmt(speedup, 3) +
        ", \"inc_reclustered_per_mutation\": " + util::fmt(inc_reclustered, 3) +
        ", \"inc_changed_per_mutation\": " + util::fmt(changed_per_mut, 3) +
        ", \"full_reclustered_per_mutation\": " + util::fmt(full_reclustered, 3) +
        ", \"recluster_ratio\": " + util::fmt(ratio, 3) + "}");
  }

  out.print("DYNAMIC — incremental maintenance vs full re-solve (UDG, avg "
            "degree " + util::fmt(degree, 1) + ", k=" + util::fmt(k) + ")");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"dynamic\",\n"
         << "  \"workload\": \"udg_uniform_churn\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"k\": " << k << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return g_all_ok ? 0 : 1;
}
