// E3 — Remark after Theorem 4.6: with t = Θ(logΔ), the full pipeline
// (Algorithm 1 + Algorithm 2) achieves an O(logΔ)-ish integral
// approximation in O(log²Δ) rounds.
//
// n-sweep over sparse G(n,p): t is set to ⌈log₂(Δ+1)⌉ per instance; we
// report the end-to-end integral ratio against the best lower bound, the
// per-instance O(log²Δ) round count, and — on small n — the true ratio
// against the exact optimum.
//
// Expected shape: the ratio stays bounded (it does not grow with n), and
// rounds grow only with log²Δ, not with n.
#include "bench_common.h"

#include <cmath>

#include "algo/baseline/greedy.h"
#include "algo/exact/exact.h"
#include "algo/pipeline.h"
#include "domination/bounds.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const auto sizes = args.get_int_list("sizes", {100, 200, 400, 800, 1600, 3200});

  bench::Output out({"n", "Delta", "t=ceil(lgD)", "rounds", "|S|", "lower_bnd",
                     "ratio", "exact_ratio"},
                    args);

  for (long long n : sizes) {
    util::RunningStats size_stats, lb_stats, ratio_stats, exact_ratio_stats,
        rounds_stats, delta_stats, t_stats;
    bool have_exact = false;
    for (int s = 0; s < seeds; ++s) {
      util::Rng rng(7000 + static_cast<std::uint64_t>(n) * 17 +
                    static_cast<std::uint64_t>(s));
      const graph::Graph g = graph::gnp(
          static_cast<graph::NodeId>(n),
          10.0 / static_cast<double>(n - 1), rng);
      const auto d = domination::clamp_demands(
          g, domination::uniform_demands(g.n(), k));
      const int t = std::max(
          1, static_cast<int>(std::ceil(
                 std::log2(static_cast<double>(g.max_degree()) + 1.0))));

      algo::PipelineOptions opts;
      opts.t = t;
      opts.seed = static_cast<std::uint64_t>(s);
      const auto pipe = algo::run_kmds_pipeline(g, d, opts);

      const auto greedy = algo::greedy_kmds(g, d);
      const double lb = domination::best_lower_bound(
          g, d, static_cast<std::int64_t>(greedy.set.size()),
          pipe.lp.dual_bound(d));
      size_stats.add(static_cast<double>(pipe.set().size()));
      lb_stats.add(lb);
      ratio_stats.add(static_cast<double>(pipe.set().size()) / lb);
      rounds_stats.add(static_cast<double>(pipe.total_rounds));
      delta_stats.add(static_cast<double>(g.max_degree()));
      t_stats.add(t);

      if (n <= 30) {
        const auto exact = algo::exact_kmds(g, d);
        if (exact.optimal && !exact.set.empty()) {
          exact_ratio_stats.add(static_cast<double>(pipe.set().size()) /
                                static_cast<double>(exact.set.size()));
          have_exact = true;
        }
      }
    }
    out.row({util::fmt(n), util::fmt(delta_stats.mean(), 1),
             util::fmt(t_stats.mean(), 1), util::fmt(rounds_stats.mean(), 0),
             util::fmt(size_stats.mean(), 1), util::fmt(lb_stats.mean(), 1),
             util::fmt(ratio_stats.mean(), 3),
             have_exact ? util::fmt(exact_ratio_stats.mean(), 3) : "-"});
  }

  out.print(
      "E3 (Remark 4.2) - end-to-end pipeline at t = ceil(log2(Delta+1))\n"
      "sparse G(n,p) with average degree ~10, k=" + std::to_string(k) + ", " +
      std::to_string(seeds) + " seeds");
  return 0;
}
