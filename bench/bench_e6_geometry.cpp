// E6 — Figure 1 + Lemma 5.3: the hexagonal-lattice covering geometry that
// drives Algorithm 3's analysis, reproduced numerically.
//
// For every Part-I round i of a given n, the analysis covers a disk C of
// radius 1/2 with lattice disks C_i of radius θ_i/2 and claims
//   α(i) < η/(4θ_i²),  η = 16π/(3√3)             (Lemma 5.3)
// and that the concentric disk D_i of radius 3θ_i/2 fully or partially
// covers 19 of the C_i (Figure 1). We print measured α(i) against the
// bound, plus the covering-density sanity value and the Figure-1 count.
#include "bench_common.h"

#include <cmath>
#include <iostream>

#include "algo/udg/udg_kmds.h"
#include "geom/cover.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 100000));

  std::cout << "Figure 1 check: D_i intersects "
            << geom::disks_intersecting_big_disk()
            << " lattice disks C_i (paper: 19)\n";
  std::cout << "eta = 16*pi/(3*sqrt(3)) = " << util::fmt(geom::lemma53_eta(), 6)
            << "\n\n";

  bench::Output out({"round_i", "theta_i", "alpha_measured", "lemma53_bound",
                     "margin", "covering_ok"},
                    args);

  const std::int64_t rounds = algo::udg_part1_rounds(n);
  double theta = algo::udg_initial_theta(n);
  for (std::int64_t i = 1; i <= rounds; ++i) {
    const double disk_radius = theta / 2.0;
    const auto measured =
        static_cast<double>(geom::measured_alpha(0.5, disk_radius));
    const double bound = geom::lemma53_bound(disk_radius);
    const bool complete = geom::covering_is_complete(
        {0.0, 0.0}, 0.5, disk_radius, std::max(disk_radius / 4.0, 1e-3));
    out.row({util::fmt(i), util::fmt(theta, 5), util::fmt(measured, 0),
             util::fmt(bound, 1), util::fmt(bound / measured, 2),
             complete ? "yes" : "NO"});
    theta *= 2.0;
  }

  out.print(
      "E6 (Lemma 5.3 / Figure 1) - hexagonal covering per Part-I round, n=" +
      std::to_string(n));
  return 0;
}
