// P8 — Observability plane overhead (rounds/sec with the plane compiled in).
//
// The obs hooks in SyncNetwork::step() and the process classes are always
// compiled in; a detached network pays one null check per round phase. This
// bench prices that, on the same flood workload as bench_p1_simcore, in
// three modes:
//
//   * off     — no plane attached (the default for every binary). This is
//               the acceptance-relevant number: it must stay within 2% of
//               the sequential rounds/sec recorded in BENCH_simcore.json,
//               i.e. instrumenting the engine must be free when unused.
//   * metrics — plane attached with every trace category masked out, so
//               only the counter/gauge/histogram path runs.
//   * trace   — plane attached with full tracing (debug severity, all
//               categories), the most expensive configuration.
//   * perf    — plane attached with the perf-attribution plane on and
//               tracing masked out: prices the phase/shard timing clocks.
//               Budget: >= 95% of the 'off' throughput; recorded as
//               "perf_within_budget" and, with --perf-gate=1, enforced by
//               the exit code (the check.sh perf fleet runs it gated).
//
// All modes execute the identical seeded workload; their state digests
// must match (attaching the plane must not perturb the simulation), and the
// best-of-`--repeats` time is used so the comparison is noise-resistant.
//
// --sizes=1000,10000          node counts
// --degree=12                 target average UDG degree
// --rounds=0                  rounds per run (0 = auto, as bench_p1_simcore)
// --repeats=3                 timed repetitions per mode (best is kept)
// --reference=BENCH_simcore.json  recorded baseline ("" = skip comparison)
// --json=BENCH_obs_overhead.json  machine-readable output ("" = none)
// --csv=path                  optional CSV mirror of the table
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/message.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;
using sim::Word;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kNetSeed = 7;

/// Same measured workload as bench_p1_simcore: fold the inbox, broadcast
/// two derived words, run a fixed number of rounds.
class FloodProcess final : public sim::Process {
 public:
  explicit FloodProcess(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(sim::Context& ctx) override {
    std::int64_t acc = 0;
    for (const sim::Message& msg : ctx.inbox()) {
      acc += msg.words[0] + msg.from;
    }
    state_ ^= static_cast<std::uint64_t>(acc) + ctx.rng()();
    ctx.broadcast({static_cast<Word>(state_ & 0xFFFF),
                   static_cast<Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::uint64_t state_ = 1;

 private:
  std::int64_t rounds_;
};

std::uint64_t digest_states(const std::vector<std::uint64_t>& states,
                            std::int64_t messages, std::int64_t words) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t s : states) {
    h ^= s;
    h *= 1099511628211ULL;
  }
  h ^= static_cast<std::uint64_t>(messages);
  h *= 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(words);
  return h;
}

enum class Mode { kOff, kMetrics, kTrace, kPerf };

struct ModeResult {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  double seconds = 0.0;  ///< best of --repeats
  std::uint64_t digest = 0;
};

std::unique_ptr<obs::Plane> plane_for(Mode mode) {
  if (mode == Mode::kOff) return nullptr;
  obs::PlaneOptions options;
  if (mode == Mode::kMetrics) {
    options.trace.category_mask = 0;  // registry only
  } else if (mode == Mode::kPerf) {
    options.trace.category_mask = 0;  // perf attribution only
    options.perf = true;
  } else {
    options.trace.min_severity = obs::Severity::kDebug;
    options.trace.category_mask = obs::kAllCategories;
  }
  auto plane = std::make_unique<obs::Plane>(options);
  if (plane->perf() != nullptr) {
    plane->perf()->set_alloc_source(
        +[]() -> std::uint64_t { return bench::alloc_counts().count; });
  }
  return plane;
}

ModeResult run_mode(const geom::UnitDiskGraph& udg, std::int64_t rounds,
                    Mode mode, int repeats, obs::Plane** plane_out) {
  ModeResult best;
  for (int rep = 0; rep < repeats; ++rep) {
    auto plane = plane_for(mode);
    sim::SyncNetwork net(udg, kNetSeed);
    if (plane != nullptr) net.set_observability(plane.get());
    net.set_all_processes(
        [&](NodeId) { return std::make_unique<FloodProcess>(rounds); });
    bench::WallClock clock;
    const std::int64_t executed = net.run(rounds + 1);
    const double seconds = clock.seconds();
    std::vector<std::uint64_t> states;
    states.reserve(static_cast<std::size_t>(udg.n()));
    for (NodeId v = 0; v < udg.n(); ++v) {
      states.push_back(net.process_as<FloodProcess>(v).state_);
    }
    const std::uint64_t digest = digest_states(
        states, net.metrics().messages_sent, net.metrics().words_sent);
    if (rep == 0 || seconds < best.seconds) {
      best.rounds = executed;
      best.messages = net.metrics().messages_sent;
      best.seconds = seconds;
    }
    best.digest = digest;  // identical across repeats by construction
    if (plane_out != nullptr && rep == repeats - 1) {
      *plane_out = plane.release();  // caller owns; used for metric columns
    }
  }
  return best;
}

/// Pulls {"n": N, ... "engine": "sequential", ... "rounds_per_sec": X} rows
/// out of BENCH_simcore.json with plain string scanning (the file is
/// machine-written by bench_p1_simcore, so the shape is fixed).
double reference_rounds_per_sec(const std::string& path, NodeId n) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::string line;
  const std::string want_n = "\"n\": " + std::to_string(n) + ",";
  while (std::getline(in, line)) {
    if (line.find(want_n) == std::string::npos) continue;
    if (line.find("\"engine\": \"sequential\"") == std::string::npos) continue;
    const auto key = line.find("\"rounds_per_sec\": ");
    if (key == std::string::npos) continue;
    return std::stod(line.substr(key + 18));
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto sizes = args.get_int_list("sizes", {1'000, 10'000});
  const double degree = args.get_double("degree", 12.0);
  const auto rounds_arg = args.get_int("rounds", 0);
  const int repeats =
      std::max(1, static_cast<int>(args.get_int("repeats", 3)));
  const std::string reference_path =
      args.get_string("reference", "BENCH_simcore.json");
  const std::string json_path =
      args.get_string("json", "BENCH_obs_overhead.json");
  const bool perf_gate = args.get_bool("perf-gate", false);

  bench::MetricColumns metric_cols(
      nullptr, {"sim.messages", "sim.live_nodes"});
  bench::Output out(metric_cols.headers({"n", "mode", "rounds", "rounds/sec",
                                         "vs_off", "vs_reference"}),
                    args);
  std::vector<std::string> json_rows;
  bool within_budget = true;
  bool perf_within_budget = true;

  for (long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    const std::int64_t rounds =
        rounds_arg > 0
            ? rounds_arg
            : std::clamp<std::int64_t>(2'000'000 / std::max<NodeId>(n, 1), 20,
                                       2'000);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);

    struct Row {
      const char* name;
      Mode mode;
      ModeResult r;
      obs::Plane* plane = nullptr;
    };
    std::vector<Row> rows = {{"off", Mode::kOff, {}, nullptr},
                             {"metrics", Mode::kMetrics, {}, nullptr},
                             {"trace", Mode::kTrace, {}, nullptr},
                             {"perf", Mode::kPerf, {}, nullptr}};
    for (Row& row : rows) {
      row.r = run_mode(udg, rounds, row.mode, repeats, &row.plane);
    }
    for (const Row& row : rows) {
      if (row.r.digest != rows[0].r.digest) {
        std::cerr << "FATAL: mode '" << row.name << "' changed the "
                  << "execution at n=" << n
                  << " (observability must be measurement-only)\n";
        return 1;
      }
    }

    const double off_rps =
        static_cast<double>(rows[0].r.rounds) / rows[0].r.seconds;
    const double ref_rps = reference_path.empty()
                               ? 0.0
                               : reference_rounds_per_sec(reference_path, n);
    for (Row& row : rows) {
      const double rps =
          static_cast<double>(row.r.rounds) / row.r.seconds;
      const double vs_off = rps / off_rps;
      const double vs_ref = ref_rps > 0.0 ? rps / ref_rps : 0.0;
      metric_cols.attach(row.plane != nullptr ? &row.plane->metrics()
                                              : nullptr);
      std::vector<std::string> cells = {
          util::fmt(static_cast<long long>(n)), row.name,
          util::fmt(row.r.rounds), util::fmt(rps, 1), util::fmt(vs_off, 3),
          ref_rps > 0.0 ? util::fmt(vs_ref, 3) : std::string("-")};
      metric_cols.cells(cells);
      out.row(std::move(cells));

      std::string json = "    {";
      json += "\"n\": " + std::to_string(n);
      json += ", \"mode\": \"" + std::string(row.name) + "\"";
      json += ", \"rounds\": " + std::to_string(row.r.rounds);
      json += ", \"seconds\": " + util::fmt(row.r.seconds, 6);
      json += ", \"rounds_per_sec\": " + util::fmt(rps, 3);
      json += ", \"vs_off\": " + util::fmt(vs_off, 4);
      json += ", \"reference_rounds_per_sec\": " + util::fmt(ref_rps, 3);
      json += ", \"vs_reference\": " + util::fmt(vs_ref, 4);
      if (row.mode == Mode::kPerf) {
        // The perf-on budget: phase/shard clocks must cost <= 5% of the
        // detached throughput.
        if (vs_off < 0.95) perf_within_budget = false;
        if (row.plane != nullptr && row.plane->perf() != nullptr) {
          json += ", \"phase_attribution\": " +
                  bench::perf_attribution_json(*row.plane->perf());
        }
      }
      json += "}";
      json_rows.push_back(std::move(json));
      delete row.plane;
    }
    // The acceptance gate: the detached engine must hold >= 98% of the
    // recorded baseline throughput. Only meaningful when a reference row
    // for this n exists (sizes beyond the recorded sweep are informational).
    if (ref_rps > 0.0 && off_rps < 0.98 * ref_rps) within_budget = false;
    out.rule();
  }

  out.print("P8 — observability overhead (flood workload, avg degree " +
            util::fmt(degree, 1) + ", best of " + util::fmt(repeats) +
            ")");
  if (!within_budget) {
    std::cout << "WARNING: detached ('off') throughput fell below 98% of "
                 "the recorded BENCH_simcore.json baseline\n";
  }
  if (!perf_within_budget) {
    std::cout << "WARNING: perf-attribution mode fell below 95% of the "
                 "detached ('off') throughput\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"obs_overhead\",\n"
         << "  \"workload\": \"udg_flood_broadcast\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"budget\": \"off >= 0.98 * reference\",\n"
         << "  \"within_budget\": " << (within_budget ? "true" : "false")
         << ",\n"
         << "  \"perf_budget\": \"perf >= 0.95 * off\",\n"
         << "  \"perf_within_budget\": "
         << (perf_within_budget ? "true" : "false") << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return perf_gate && !perf_within_budget ? 1 : 0;
}
