// E10 — Lemma 4.1 and Lemma 4.4: the internal invariants of Algorithm 1's
// dual-fitting analysis, measured rather than assumed.
//
//   * Lemma 4.1: while x_i < 1, the dynamic degree obeys
//     δ̃_i ≤ (Δ+1)^{(p+1)/t}. We report the worst observed
//     δ̃_i/(Δ+1)^{(p+1)/t} (must be ≤ 1).
//   * Lemma 4.4: the raw dual violates (DP) by at most κ = t(Δ+1)^{1/t}.
//     We report max_i(Σ y_j − z_i)/κ (must be ≤ 1) and how much of the
//     allowance is actually used.
//   * Weak duality: the scaled dual objective is a valid OPT_f lower
//     bound; we report its quality relative to the packing/greedy bounds.
//
// Expected shape: both normalized invariants stay ≤ 1 with real slack; the
// dual bound is the strongest available lower bound on denser graphs.
#include "bench_common.h"

#include "algo/baseline/greedy.h"
#include "algo/lp/lp_kmds.h"
#include "domination/bounds.h"
#include "domination/lp_solver.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 300));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const auto lp_pivots = args.get_int("lp-pivots", 40000);
  const auto t_values = args.get_int_list("t", {1, 2, 3, 5, 8});
  const auto degrees = args.get_int_list("degrees", {6, 20});

  bench::Output out({"avg_deg", "t", "lemma4.1_use", "dual_lhs/kappa",
                     "dual_bnd", "packing_bnd", "greedy/H_bnd", "OPT_f",
                     "dual/OPT_f"},
                    args);

  for (long long degree : degrees) {
    for (long long t : t_values) {
      util::RunningStats lemma41, lhs_frac, dual_b, packing_b, greedy_b,
          opt_f_stats, dual_quality;
      for (int s = 0; s < seeds; ++s) {
        util::Rng rng(3000 + static_cast<std::uint64_t>(s) +
                      static_cast<std::uint64_t>(degree));
        const graph::Graph g = graph::gnp(
            n, static_cast<double>(degree) / static_cast<double>(n - 1),
            rng);
        const auto d = domination::clamp_demands(
            g, domination::uniform_demands(g.n(), k));
        algo::LpOptions opts;
        opts.t = static_cast<int>(t);
        const auto lp = algo::solve_fractional_kmds(g, d, opts);

        lemma41.add(lp.max_lemma41_ratio);
        lhs_frac.add(domination::max_dual_lhs(g, lp.dual) / lp.kappa);

        const double dual_bound = lp.dual_bound(d);
        const double packing = static_cast<double>(
            domination::packing_lower_bound(g, d));
        const auto greedy = algo::greedy_kmds(g, d);
        const double greedy_bound =
            static_cast<double>(greedy.set.size()) /
            domination::harmonic(g.max_degree() + 1);
        dual_b.add(dual_bound);
        packing_b.add(packing);
        greedy_b.add(greedy_bound);

        const auto opt_f = domination::solve_lp_exact(g, d, lp_pivots);
        if (opt_f.feasible && !opt_f.iteration_limit_hit) {
          opt_f_stats.add(opt_f.objective);
          dual_quality.add(dual_bound / opt_f.objective);
        }
      }
      out.row({util::fmt(degree), util::fmt(t), util::fmt(lemma41.mean(), 3),
               util::fmt(lhs_frac.mean(), 3), util::fmt(dual_b.mean(), 1),
               util::fmt(packing_b.mean(), 1), util::fmt(greedy_b.mean(), 1),
               util::fmt(opt_f_stats.mean(), 1),
               util::fmt(dual_quality.mean(), 3)});
    }
    out.rule();
  }

  out.print(
      "E10 (Lemmas 4.1/4.4) - dual-fitting invariants of Algorithm 1\n"
      "n=" + std::to_string(n) + ", k=" + std::to_string(k) + ", " +
      std::to_string(seeds) +
      " seeds; both *_use columns must stay <= 1.000");
  return 0;
}
