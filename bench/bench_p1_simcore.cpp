// P1 — Simulator core throughput (rounds/sec, messages/sec, words/sec).
//
// Measures the message plane and round engine of sim::SyncNetwork on a
// broadcast-heavy flood workload over random unit disk graphs, the shape of
// every quantitative experiment in this repo. Three engines are timed:
//
//   * legacy     — an in-bench emulation of the pre-PR message plane (one
//                  heap vector per message, per-neighbor broadcast copies,
//                  receiver-indexed queues, per-inbox std::sort, O(n)
//                  termination scan). It performs the identical per-node
//                  computation, so the ratio isolates the engine mechanics.
//   * sequential — SyncNetwork, one thread (arena messaging, sorted-merge
//                  delivery, counter-based termination).
//   * parallel   — SyncNetwork with set_threads(T): nodes sharded across a
//                  persistent thread pool, bitwise-identical results.
//
// A state digest over all per-node states is printed for each engine; the
// sequential and parallel digests must match exactly (the determinism
// contract), and the bench aborts if they do not.
//
// --sizes=1000,10000,100000  node counts
// --degree=12                target average UDG degree
// --rounds=0                 rounds per run (0 = auto: ~2M node-rounds,
//                            clamped to [20, 2000])
// --threads=0                parallel engine width (0 = hardware threads)
// --json=BENCH_simcore.json  machine-readable trajectory output ("" = none)
// --csv=path                 optional CSV mirror of the table
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/message.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ftc;
using graph::NodeId;
using sim::Word;

constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kNetSeed = 7;

/// The measured workload: every round, fold the inbox into local state and
/// broadcast two words derived from it. Runs for a fixed number of rounds,
/// so rounds/sec is a pure engine measurement.
class FloodProcess final : public sim::Process {
 public:
  explicit FloodProcess(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(sim::Context& ctx) override {
    std::int64_t acc = 0;
    for (const sim::Message& msg : ctx.inbox()) {
      acc += msg.words[0] + msg.from;
    }
    state_ ^= static_cast<std::uint64_t>(acc) + ctx.rng()();
    ctx.broadcast({static_cast<Word>(state_ & 0xFFFF),
                   static_cast<Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::uint64_t state_ = 1;

 private:
  std::int64_t rounds_;
};

/// FNV-style digest of all node states plus the message counters; equal
/// digests mean bitwise-equal executions.
std::uint64_t digest_states(const std::vector<std::uint64_t>& states,
                            std::int64_t messages, std::int64_t words) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t s : states) {
    h ^= s;
    h *= 1099511628211ULL;
  }
  h ^= static_cast<std::uint64_t>(messages);
  h *= 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(words);
  return h;
}

struct EngineResult {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

/// Emulation of the pre-PR message plane, kept as the fixed baseline of the
/// perf trajectory. Mechanics mirror the seed implementation exactly: every
/// message owns a heap-allocated word vector, broadcasts deep-copy the
/// payload once per neighbor, delivery moves per-receiver queues and sorts
/// every inbox by sender, and termination is an O(n) scan over all nodes.
EngineResult run_legacy(const geom::UnitDiskGraph& udg, std::int64_t rounds) {
  struct LegacyMessage {
    NodeId from;
    std::vector<Word> words;
  };
  const graph::Graph& g = udg.graph;
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<std::uint64_t> states(n, 1);
  std::vector<bool> halted(n, false);
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  const util::Rng root(kNetSeed);
  for (std::size_t v = 0; v < n; ++v) rngs.push_back(root.split(v));
  std::vector<std::vector<LegacyMessage>> inboxes(n), outboxes(n);

  EngineResult result;
  bench::WallClock clock;
  for (std::int64_t round = 0; round < rounds + 1; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      if (halted[v]) continue;
      std::int64_t acc = 0;
      for (const LegacyMessage& msg : inboxes[v]) {
        acc += msg.words[0] + msg.from;
      }
      states[v] ^= static_cast<std::uint64_t>(acc) + rngs[v]();
      const std::vector<Word> payload{static_cast<Word>(states[v] & 0xFFFF),
                                      static_cast<Word>(round)};
      for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        result.messages += 1;
        result.words += static_cast<std::int64_t>(payload.size());
        outboxes[static_cast<std::size_t>(w)].push_back(
            {static_cast<NodeId>(v), payload});  // deep copy per neighbor
      }
      if (round + 1 >= rounds) halted[v] = true;
    }
    for (std::size_t v = 0; v < n; ++v) {
      inboxes[v] = std::move(outboxes[v]);
      outboxes[v].clear();
      std::sort(inboxes[v].begin(), inboxes[v].end(),
                [](const LegacyMessage& a, const LegacyMessage& b) {
                  return a.from < b.from;
                });
    }
    ++result.rounds;
    bool any_running = false;  // the O(n)-per-round termination scan
    for (std::size_t v = 0; v < n; ++v) {
      if (!halted[v]) {
        any_running = true;
        break;
      }
    }
    if (!any_running) break;
  }
  result.seconds = clock.seconds();
  result.digest = digest_states(states, result.messages, result.words);
  return result;
}

EngineResult run_sync(const geom::UnitDiskGraph& udg, std::int64_t rounds,
                      int threads) {
  sim::SyncNetwork net(udg, kNetSeed);
  net.set_threads(threads);
  // This bench prices the pool itself; never let the small-n fallback
  // silently swap in the sequential path (bench_simcore_mt measures that).
  net.set_parallel_grain(0);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<FloodProcess>(rounds); });
  EngineResult result;
  bench::WallClock clock;
  result.rounds = net.run(rounds + 1);
  result.seconds = clock.seconds();
  result.messages = net.metrics().messages_sent;
  result.words = net.metrics().words_sent;
  std::vector<std::uint64_t> states;
  states.reserve(static_cast<std::size_t>(udg.n()));
  for (NodeId v = 0; v < udg.n(); ++v) {
    states.push_back(net.process_as<FloodProcess>(v).state_);
  }
  result.digest = digest_states(states, result.messages, result.words);
  return result;
}

std::string json_row(NodeId n, const std::string& engine, int threads,
                     const EngineResult& r, double speedup_vs_legacy) {
  std::string row = "    {";
  row += "\"n\": " + std::to_string(n);
  row += ", \"engine\": \"" + engine + "\"";
  row += ", \"threads\": " + std::to_string(threads);
  row += ", \"rounds\": " + std::to_string(r.rounds);
  row += ", \"messages\": " + std::to_string(r.messages);
  row += ", \"seconds\": " + util::fmt(r.seconds, 6);
  row += ", \"rounds_per_sec\": " + util::fmt(r.rounds / r.seconds, 3);
  row += ", \"messages_per_sec\": " + util::fmt(r.messages / r.seconds, 1);
  row += ", \"words_per_sec\": " + util::fmt(r.words / r.seconds, 1);
  row += ", \"peak_rss_mb\": " + util::fmt(bench::peak_rss_mb(), 1);
  row += ", \"speedup_vs_legacy\": " + util::fmt(speedup_vs_legacy, 3);
  row += "}";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto sizes =
      args.get_int_list("sizes", {1'000, 10'000, 100'000});
  const double degree = args.get_double("degree", 12.0);
  const auto rounds_arg = args.get_int("rounds", 0);
  int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads <= 0) threads = util::ThreadPool::hardware_threads();
  const std::string json_path =
      args.get_string("json", "BENCH_simcore.json");

  bench::Output out({"n", "engine", "threads", "rounds", "msgs/sec",
                     "words/sec", "rounds/sec", "vs_legacy"},
                    args);
  std::vector<std::string> json_rows;

  for (long long n_ll : sizes) {
    const auto n = static_cast<NodeId>(n_ll);
    const std::int64_t rounds =
        rounds_arg > 0
            ? rounds_arg
            : std::clamp<std::int64_t>(2'000'000 / std::max<NodeId>(n, 1), 20,
                                       2'000);
    util::Rng graph_rng(kGraphSeed);
    const geom::UnitDiskGraph udg =
        geom::uniform_udg_with_degree(n, degree, graph_rng);

    const EngineResult legacy = run_legacy(udg, rounds);
    const EngineResult seq = run_sync(udg, rounds, 1);
    const EngineResult par = run_sync(udg, rounds, threads);

    if (seq.digest != par.digest) {
      std::cerr << "FATAL: sequential and parallel digests differ at n=" << n
                << " (determinism contract violated)\n";
      return 1;
    }
    if (legacy.digest != seq.digest) {
      std::cerr << "FATAL: legacy emulation diverged from SyncNetwork at n="
                << n << " (baseline is not measuring the same workload)\n";
      return 1;
    }

    struct RowSpec {
      const char* name;
      int threads;
      const EngineResult* r;
    };
    for (const RowSpec& spec :
         {RowSpec{"legacy", 1, &legacy}, RowSpec{"sequential", 1, &seq},
          RowSpec{"parallel", threads, &par}}) {
      const EngineResult& r = *spec.r;
      const double speedup = (legacy.seconds / legacy.rounds) /
                             (r.seconds / static_cast<double>(r.rounds));
      out.row({util::fmt(static_cast<long long>(n)), spec.name,
               util::fmt(spec.threads), util::fmt(r.rounds),
               util::fmt(r.messages / r.seconds, 0),
               util::fmt(r.words / r.seconds, 0),
               util::fmt(r.rounds / r.seconds, 2), util::fmt(speedup, 2)});
      json_rows.push_back(json_row(n, spec.name, spec.threads, r, speedup));
    }
    out.rule();
  }

  out.print("P1 — simulator core throughput (flood workload, avg degree " +
            util::fmt(degree, 1) + ")");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"simcore\",\n"
         << "  \"workload\": \"udg_flood_broadcast\",\n"
         << "  \"degree\": " << util::fmt(degree, 1) << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
