// Shared scaffolding for the experiment binaries (E1..E10).
//
// Every bench binary:
//   * accepts --seeds=N (repetitions), --csv=path (machine-readable copy),
//     plus experiment-specific knobs;
//   * prints one formatted table whose rows mirror the paper claim being
//     reproduced (see DESIGN.md section 3 and EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "alloc_hooks.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace ftc::bench {

/// Process-wide peak resident set size in MiB (0.0 where unsupported).
/// Monotonic: once a large working set has been touched, later calls keep
/// reporting it — order measurements smallest-first when per-phase peaks
/// matter.
inline double peak_rss_mb() {
#if defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#elif defined(__unix__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kilobytes
#else
  return 0.0;
#endif
}

/// Monotonic stopwatch for wall-clock measurement.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Resets the stopwatch and returns the elapsed seconds up to now.
  double restart() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// JSON object for a BENCH row's "phase_attribution" key: run-wide
/// attribution pulled from an obs::PerfPlane after a perf-instrumented
/// pass. "rounds" are whatever the producer called end_round for (engine
/// rounds, LP inner iterations); phase values are mean ns per round, with
/// all-zero phases omitted to keep rows compact. bench_check.py treats the
/// whole block as a measurement (never row identity).
inline std::string perf_attribution_json(const obs::PerfPlane& perf) {
  const double rounds =
      perf.rounds() > 0 ? static_cast<double>(perf.rounds()) : 1.0;
  std::string s = "{\"rounds\": " + std::to_string(perf.rounds());
  s += ", \"coverage\": " + util::fmt(perf.attribution_coverage(), 4);
  s += ", \"imbalance_mean\": " + util::fmt(perf.mean_imbalance(), 3);
  s += ", \"imbalance_max\": " + util::fmt(perf.max_imbalance(), 3);
  s += ", \"phases_ns_per_round\": {";
  bool first = true;
  for (int p = 0; p < obs::kPerfPhaseCount; ++p) {
    const auto phase = static_cast<obs::PerfPhase>(p);
    const std::int64_t ns = perf.phase_total_ns(phase);
    if (ns == 0) continue;
    if (!first) s += ", ";
    first = false;
    s += "\"" + std::string(obs::perf_phase_name(phase)) +
         "\": " + util::fmt(static_cast<double>(ns) / rounds, 1);
  }
  s += "}}";
  return s;
}

/// Collects `seeds` samples of `measure(seed)` and summarizes them.
inline util::Summary over_seeds(
    int seeds, std::uint64_t base_seed,
    const std::function<double(std::uint64_t)>& measure) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    samples.push_back(measure(base_seed + static_cast<std::uint64_t>(s)));
  }
  return util::summarize(samples);
}

/// Per-row metric columns sourced from an obs::Registry. Construct with the
/// registry and the metric names to surface; headers() appends one column
/// per resolved name, and cells() appends the matching values — counters
/// report the delta since the previous cells() call (so a row covering R
/// rounds divides out to a per-round rate), gauges report their current
/// value. Unknown names resolve to a "-" column instead of failing, so
/// tables stay stable across planes with different instrumentation.
class MetricColumns {
 public:
  MetricColumns(const obs::Registry* registry, std::vector<std::string> names)
      : registry_(registry), names_(std::move(names)) {
    last_.assign(names_.size(), 0);
  }

  /// Re-points the columns at another registry (nullptr = emit "-") and
  /// restarts the counter deltas.
  void attach(const obs::Registry* registry) {
    registry_ = registry;
    last_.assign(names_.size(), 0);
  }

  [[nodiscard]] std::vector<std::string> headers(
      std::vector<std::string> base) const {
    for (const std::string& name : names_) base.push_back(name);
    return base;
  }

  void cells(std::vector<std::string>& row) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      const obs::MetricId id =
          registry_ != nullptr ? registry_->find(names_[i]) : obs::kInvalidMetric;
      if (id == obs::kInvalidMetric ||
          registry_->kind(id) == obs::MetricKind::kHistogram) {
        row.push_back("-");
        continue;
      }
      const std::int64_t now = registry_->value(id);
      if (registry_->kind(id) == obs::MetricKind::kCounter) {
        row.push_back(util::fmt(static_cast<long long>(now - last_[i])));
        last_[i] = now;
      } else {
        row.push_back(util::fmt(static_cast<long long>(now)));
      }
    }
  }

 private:
  const obs::Registry* registry_;
  std::vector<std::string> names_;
  std::vector<std::int64_t> last_;
};

/// Emits the table to stdout and, when the writer is open, mirrors every
/// data row into the CSV (the caller writes rows into both).
///
/// Every table automatically gains three trailing resource columns:
///   * `wall_s`  — wall-clock seconds (steady_clock) since the previous row
///     was emitted, i.e. the cost of producing this row's measurements;
///   * `rss_mb`  — process peak resident set size in MiB at row emission
///     (monotonic across rows; see peak_rss_mb);
///   * `allocs`  — operator new calls since the previous row (global
///     counters from alloc_hooks.cpp, which every bench links).
/// Existing experiment binaries get all three without any changes.
struct Output {
  util::Table table;
  util::CsvWriter csv;
  WallClock row_clock;
  std::uint64_t last_allocs = alloc_counts().count;

  Output(std::vector<std::string> header, const util::Args& args)
      : table(with_auto_columns(header)) {
    const std::string path = args.get_string("csv", "");
    if (!path.empty()) {
      csv = util::CsvWriter(path, with_auto_columns(header));
    }
  }

  void row(std::vector<std::string> cells) {
    cells.push_back(util::fmt(row_clock.restart()));
    cells.push_back(util::fmt(peak_rss_mb(), 1));
    const std::uint64_t allocs_now = alloc_counts().count;
    cells.push_back(
        util::fmt(static_cast<long long>(allocs_now - last_allocs)));
    last_allocs = allocs_now;
    csv.write_row(cells);
    table.add_row(std::move(cells));
  }

  void rule() { table.add_rule(); }

  void print(const std::string& title) {
    table.print(std::cout, title);
    std::cout.flush();
  }

 private:
  static std::vector<std::string> with_auto_columns(
      std::vector<std::string> header) {
    header.push_back("wall_s");
    header.push_back("rss_mb");
    header.push_back("allocs");
    return header;
  }
};

}  // namespace ftc::bench
