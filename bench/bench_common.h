// Shared scaffolding for the experiment binaries (E1..E10).
//
// Every bench binary:
//   * accepts --seeds=N (repetitions), --csv=path (machine-readable copy),
//     plus experiment-specific knobs;
//   * prints one formatted table whose rows mirror the paper claim being
//     reproduced (see DESIGN.md section 3 and EXPERIMENTS.md).
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace ftc::bench {

/// Collects `seeds` samples of `measure(seed)` and summarizes them.
inline util::Summary over_seeds(
    int seeds, std::uint64_t base_seed,
    const std::function<double(std::uint64_t)>& measure) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    samples.push_back(measure(base_seed + static_cast<std::uint64_t>(s)));
  }
  return util::summarize(samples);
}

/// Emits the table to stdout and, when the writer is open, mirrors every
/// data row into the CSV (the caller writes rows into both).
struct Output {
  util::Table table;
  util::CsvWriter csv;

  Output(std::vector<std::string> header, const util::Args& args)
      : table(header) {
    const std::string path = args.get_string("csv", "");
    if (!path.empty()) {
      csv = util::CsvWriter(path, header);
    }
  }

  void row(std::vector<std::string> cells) {
    csv.write_row(cells);
    table.add_row(std::move(cells));
  }

  void rule() { table.add_rule(); }

  void print(const std::string& title) {
    table.print(std::cout, title);
    std::cout.flush();
  }
};

}  // namespace ftc::bench
