// E9 — Section 1's motivation: k-fold redundancy keeps the virtual
// backbone alive when dominators fail.
//
// On a uniform UDG, build a k-fold dominating set, crash every dominator
// independently with probability p, and measure the fraction of non-member
// nodes that keep at least one live dominator.
//
// Two backbone constructions are reported:
//   * "greedy"  — the minimal-size H_Δ backbone: nodes hold barely k
//     dominators, so retention isolates the k effect and should track the
//     independence prediction 1 − p^k;
//   * "alg3"    — Algorithm 3's sets, whose conservative size adds
//     incidental redundancy on top (retention ≥ the greedy series).
//
// Expected shape: greedy retention ≈ 1 − p^k (k=1 collapses at high p,
// k ≥ 3 barely notices); alg3 retention dominates both.
#include "bench_common.h"

#include <cmath>

#include "algo/baseline/greedy.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/rng.h"

namespace {

using namespace ftc;

/// Fraction of non-member nodes with >= 1 live dominator after crashing
/// each member independently with probability p.
double retention(const graph::Graph& g,
                 const std::vector<graph::NodeId>& backbone, double p,
                 util::Rng& crash_rng) {
  std::vector<graph::NodeId> alive;
  for (graph::NodeId v : backbone) {
    if (!crash_rng.bernoulli(p)) alive.push_back(v);
  }
  const auto members = domination::to_membership(g, backbone);
  const auto live = domination::to_membership(g, alive);
  const auto cover = domination::closed_coverage_counts(g, live);
  std::int64_t covered = 0, total = 0;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (members[i]) continue;
    ++total;
    if (cover[i] >= 1) ++covered;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(covered) /
                          static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 2000));
  const auto k_values = args.get_int_list("k", {1, 2, 3, 4, 5});
  const std::vector<double> crash_probs{0.1, 0.2, 0.3, 0.4, 0.5};
  const int crash_trials = static_cast<int>(args.get_int("crash-trials", 10));

  bench::Output out({"backbone", "k", "|S|", "p=0.1", "p=0.2", "p=0.3",
                     "p=0.4", "p=0.5", "1-0.3^k"},
                    args);

  for (const std::string builder : {"greedy", "alg3"}) {
    for (long long k : k_values) {
      util::RunningStats set_size;
      std::vector<util::RunningStats> retained(crash_probs.size());
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 77 + static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(n, 16.0, rng);

        std::vector<graph::NodeId> backbone;
        if (builder == "greedy") {
          const auto d = domination::clamp_demands(
              udg.graph, domination::uniform_demands(
                             udg.n(), static_cast<std::int32_t>(k)));
          backbone = algo::greedy_kmds(udg.graph, d).set;
        } else {
          algo::UdgOptions opts;
          opts.k = static_cast<std::int32_t>(k);
          backbone = algo::solve_udg_kmds(udg, opts, seed).leaders;
        }
        set_size.add(static_cast<double>(backbone.size()));

        for (std::size_t pi = 0; pi < crash_probs.size(); ++pi) {
          for (int trial = 0; trial < crash_trials; ++trial) {
            util::Rng crash_rng(seed * 1000 + pi * 17 +
                                static_cast<std::uint64_t>(trial));
            retained[pi].add(
                retention(udg.graph, backbone, crash_probs[pi], crash_rng));
          }
        }
      }
      std::vector<std::string> cells{builder, util::fmt(k),
                                     util::fmt(set_size.mean(), 0)};
      for (auto& r : retained) {
        cells.push_back(util::fmt(100.0 * r.mean(), 1) + "%");
      }
      cells.push_back(
          util::fmt(100.0 * (1.0 - std::pow(0.3, static_cast<double>(k))),
                    1) +
          "%");
      out.row(std::move(cells));
    }
    out.rule();
  }

  out.print(
      "E9 (Section 1) - backbone coverage retention under dominator "
      "crashes\nuniform UDG, n=" + std::to_string(n) + ", " +
      std::to_string(seeds) +
      " deployments; cell = mean % of non-members still 1-covered");
  return 0;
}
