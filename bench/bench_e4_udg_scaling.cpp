// E4 — Theorem 5.7: Algorithm 3 runs in O(log log n) rounds and yields an
// expected O(1)-approximation in unit disk graphs.
//
// n-sweep at fixed density: we report
//   * Part I paper rounds R (exactly ⌈log_{3/2} log₂ n⌉ — doubly
//     logarithmic growth),
//   * the measured simulator rounds of the faithful distributed process
//     (2R + 3·Part II iterations),
//   * the approximation ratio |S| / lower bound for several k.
//
// Expected shape: R grows like log log n (5..8 across three orders of
// magnitude); the ratio stays flat in n and the k-dependence is linear
// (the optimum itself grows with k, so the *ratio* stays O(1)).
#include "bench_common.h"

#include <memory>

#include "algo/baseline/greedy.h"
#include "algo/udg/udg_kmds.h"
#include "algo/udg/udg_kmds_process.h"
#include "domination/bounds.h"
#include "geom/udg.h"
#include "sim/network.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  const double degree = args.get_double("degree", 15.0);
  const auto sizes =
      args.get_int_list("sizes", {100, 300, 1000, 3000, 10000, 30000});
  const auto k_values = args.get_int_list("k", {1, 2, 4});
  const auto sim_limit = args.get_int("sim-limit", 2000);

  bench::Output out({"n", "k", "R(loglog n)", "sim_rounds", "p2_iters",
                     "|S1|", "|S|", "lower_bnd", "ratio"},
                    args);

  for (long long n : sizes) {
    for (long long k : k_values) {
      util::RunningStats sim_rounds, iters, s1, s_final, lb_stats, ratio;
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 500 + static_cast<std::uint64_t>(n) * 31 +
                                   static_cast<std::uint64_t>(s);
        util::Rng rng(seed);
        const auto udg = geom::uniform_udg_with_degree(
            static_cast<graph::NodeId>(n), degree, rng);
        algo::UdgOptions opts;
        opts.k = static_cast<std::int32_t>(k);
        const auto result = algo::solve_udg_kmds(udg, opts, seed);

        const auto d = domination::uniform_demands(
            udg.n(), static_cast<std::int32_t>(k));
        const auto greedy = algo::greedy_kmds(
            udg.graph, domination::clamp_demands(udg.graph, d));
        const double lb = domination::best_lower_bound(
            udg.graph, domination::clamp_demands(udg.graph, d),
            static_cast<std::int64_t>(greedy.set.size()));
        s1.add(static_cast<double>(result.part1_leaders.size()));
        s_final.add(static_cast<double>(result.leaders.size()));
        lb_stats.add(lb);
        ratio.add(static_cast<double>(result.leaders.size()) / lb);
        iters.add(static_cast<double>(result.part2_iterations));

        // Faithful simulator run (smaller n only; the mirror is proven
        // equivalent by the test suite).
        if (n <= sim_limit) {
          sim::SyncNetwork net(udg, seed);
          net.set_all_processes([&](graph::NodeId) {
            return std::make_unique<algo::UdgKmdsProcess>(
                static_cast<std::int32_t>(k));
          });
          sim_rounds.add(static_cast<double>(
              net.run(2 * algo::udg_part1_rounds(udg.n()) +
                      3 * (udg.n() + 3))));
        }
      }
      out.row({util::fmt(n), util::fmt(k),
               util::fmt(algo::udg_part1_rounds(
                   static_cast<graph::NodeId>(n))),
               sim_rounds.count() > 0 ? util::fmt(sim_rounds.mean(), 1) : "-",
               util::fmt(iters.mean(), 1), util::fmt(s1.mean(), 1),
               util::fmt(s_final.mean(), 1), util::fmt(lb_stats.mean(), 1),
               util::fmt(ratio.mean(), 3)});
    }
    out.rule();
  }

  out.print(
      "E4 (Theorem 5.7) - Algorithm 3 scaling on uniform UDGs\n"
      "avg degree ~" + util::fmt(degree, 0) + ", " + std::to_string(seeds) +
      " seeds; R = Part I paper rounds; sim_rounds = faithful simulator");
  return 0;
}
