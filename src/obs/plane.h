// Observability plane: one Registry + one Trace, plus the pre-registered
// ids everything in the simulator stack publishes under (DESIGN.md §7).
//
// A Plane is attached to a network with SyncNetwork::set_observability() /
// AsyncNetwork::set_observability(); processes reach it through
// sim::Context::obs(), which hands them a shard-bound Recorder so their
// emissions stage into per-shard slots and merge deterministically at the
// round barrier. A detached network (the default) pays one null check per
// round phase — the disabled path is benchmarked by bench_obs_overhead.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/trace.h"

namespace ftc::util {
struct ObsFlags;
}

namespace ftc::obs {

/// Ids fixed at Plane construction so hot paths index arrays instead of
/// hashing names. Metric names double as the registry JSON keys.
struct Builtin {
  // Counters.
  MetricId rounds = kInvalidMetric;            ///< sim.rounds
  MetricId messages = kInvalidMetric;          ///< sim.messages
  MetricId words = kInvalidMetric;             ///< sim.words
  MetricId messages_lost = kInvalidMetric;     ///< sim.messages_lost
  MetricId messages_duplicated = kInvalidMetric;  ///< sim.messages_duplicated
  MetricId messages_reordered = kInvalidMetric;   ///< sim.messages_reordered
  MetricId transport_frames = kInvalidMetric;     ///< transport.frames
  MetricId transport_retransmissions = kInvalidMetric;  ///< transport.retransmissions
  MetricId transport_dup_drops = kInvalidMetric;  ///< transport.duplicates_dropped
  MetricId transport_acks = kInvalidMetric;       ///< transport.acks
  MetricId crashes = kInvalidMetric;           ///< sim.crashes
  MetricId recoveries = kInvalidMetric;        ///< sim.recoveries
  MetricId scheduled_crashes = kInvalidMetric;     ///< fault.scheduled_crashes
  MetricId scheduled_recoveries = kInvalidMetric;  ///< fault.scheduled_recoveries
  MetricId suspicions = kInvalidMetric;        ///< detector.suspicions
  MetricId refutations = kInvalidMetric;       ///< detector.refutations
  MetricId promotions = kInvalidMetric;        ///< repair.promotions
  MetricId repair_waves = kInvalidMetric;      ///< repair.waves
  MetricId lp_iterations = kInvalidMetric;     ///< lp.iterations
  MetricId rounding_trials = kInvalidMetric;   ///< rounding.trials
  MetricId probe_doublings = kInvalidMetric;   ///< udg.probe_doublings
  MetricId async_pulses = kInvalidMetric;      ///< async.pulses
  MetricId async_envelopes = kInvalidMetric;   ///< async.envelopes
  MetricId async_payload_words = kInvalidMetric;  ///< async.payload_words
  // Gauges (sequential-only, set at the round barrier).
  MetricId live_nodes = kInvalidMetric;        ///< sim.live_nodes
  MetricId running_nodes = kInvalidMetric;     ///< sim.running_nodes
  MetricId arena_words = kInvalidMetric;       ///< sim.arena_words
  MetricId max_message_words = kInvalidMetric; ///< sim.max_message_words
  // Histograms.
  MetricId messages_per_round = kInvalidMetric;  ///< sim.messages_per_round
  MetricId wave_joins = kInvalidMetric;          ///< repair.wave_joins
  MetricId coverage_deficit = kInvalidMetric;    ///< repair.coverage_deficit

  // Trace event names.
  NameId n_round = 0;           ///< per-round engine summary
  NameId n_fault_apply = 0;     ///< engine phase spans…
  NameId n_execute = 0;
  NameId n_merge = 0;
  NameId n_deliver = 0;
  NameId n_crash = 0;           ///< instant fault events
  NameId n_recover = 0;
  NameId n_fault_plan = 0;      ///< injector installed a compiled schedule
  NameId n_channel = 0;         ///< channel model (re)configured
  NameId n_watchdog = 0;        ///< coverage watchdog intervention
  NameId n_suspect = 0;         ///< detector events
  NameId n_refute = 0;
  NameId n_promote = 0;         ///< repair events
  NameId n_lp_iteration = 0;    ///< algorithm phase events
  NameId n_rounding_trial = 0;
  NameId n_probe_doubling = 0;
  NameId n_async_run = 0;
};

struct PlaneOptions {
  Trace::Options trace;
  bool perf = false;  ///< attach a PerfPlane (attribution timing, §12)
  PerfOptions perf_options;
};

class Plane {
 public:
  explicit Plane(PlaneOptions options = {});

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  [[nodiscard]] Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Registry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const Builtin& builtin() const noexcept { return builtin_; }

  /// The perf-attribution plane, or nullptr when PlaneOptions.perf was
  /// false. The round engine caches this pointer and stages timing into it
  /// exactly like trace emission (see perf.h for the determinism contract).
  [[nodiscard]] PerfPlane* perf() noexcept { return perf_.get(); }
  [[nodiscard]] const PerfPlane* perf() const noexcept { return perf_.get(); }

  /// Forwarded to every member (see their shard contracts).
  void set_shards(int shards);
  void merge_shards();

 private:
  Registry metrics_;
  Trace trace_;
  std::unique_ptr<PerfPlane> perf_;
  Builtin builtin_;
};

/// Shard-bound emission handle given to processes via sim::Context::obs().
/// Valid only during the parallel region it was handed out for; everything
/// it emits stages into its shard and merges at the barrier.
class Recorder {
 public:
  Recorder() = default;
  Recorder(Plane* plane, int shard) : plane_(plane), shard_(shard) {}

  [[nodiscard]] const Builtin& builtin() const noexcept {
    return plane_->builtin();
  }

  void count(MetricId id, std::int64_t delta = 1) {
    plane_->metrics().shard_add(shard_, id, delta);
  }
  void record(MetricId id, double value) {
    plane_->metrics().shard_record(shard_, id, value);
  }
  [[nodiscard]] bool trace_enabled(Category c, Severity s) const noexcept {
    return plane_->trace().enabled(c, s);
  }
  void event(Category c, Severity s, NameId name, std::int64_t round,
             std::int32_t node, std::int64_t a0 = 0, std::int64_t a1 = 0) {
    TraceEvent e;
    e.round = round;
    e.node = node;
    e.category = c;
    e.severity = s;
    e.name = name;
    e.a0 = a0;
    e.a1 = a1;
    plane_->trace().shard_emit(shard_, e);
  }

 private:
  Plane* plane_ = nullptr;
  int shard_ = 0;
};

/// Builds a Plane from the --trace / --metrics flag group (util/cli.h), or
/// nullptr when neither flag was given. Throws std::invalid_argument on an
/// unknown category or severity name.
[[nodiscard]] std::unique_ptr<Plane> make_plane(const util::ObsFlags& flags);

/// Writes the flag-selected outputs: the registry JSON to --metrics, and
/// the trace to --trace — Chrome trace_event at the given path plus the
/// deterministic JSONL stream at "<path>.jsonl" (a path already ending in
/// .jsonl writes the JSONL stream only).
void export_plane(const Plane& plane, const util::ObsFlags& flags);

}  // namespace ftc::obs
