#include "obs/trace.h"

#include <cassert>
#include <ostream>

namespace ftc::obs {

namespace {

constexpr std::string_view kCategoryNames[kCategoryCount] = {
    "engine", "message", "fault", "detector", "repair", "algo", "user"};

constexpr std::string_view kSeverityNames[4] = {"debug", "info", "warn",
                                                "error"};

}  // namespace

std::string_view category_name(Category c) noexcept {
  const auto i = static_cast<std::size_t>(c);
  assert(i < kCategoryCount);
  return kCategoryNames[i];
}

bool parse_category(std::string_view name, Category& out) noexcept {
  for (int i = 0; i < kCategoryCount; ++i) {
    if (name == kCategoryNames[i]) {
      out = static_cast<Category>(i);
      return true;
    }
  }
  return false;
}

std::string_view severity_name(Severity s) noexcept {
  const auto i = static_cast<std::size_t>(s);
  assert(i < 4);
  return kSeverityNames[i];
}

bool parse_severity(std::string_view name, Severity& out) noexcept {
  for (int i = 0; i < 4; ++i) {
    if (name == kSeverityNames[i]) {
      out = static_cast<Severity>(i);
      return true;
    }
  }
  return false;
}

Trace::Trace() : Trace(Options{}) {}

Trace::Trace(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  assert(options_.capacity >= 1);
  names_.emplace_back("?");  // NameId 0: events emitted without interning
}

NameId Trace::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NameId>(i);
  }
  names_.emplace_back(name);
  return static_cast<NameId>(names_.size() - 1);
}

const std::string& Trace::name(NameId id) const {
  assert(id < names_.size());
  return names_[id];
}

std::int64_t Trace::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Trace::push(const TraceEvent& e) {
  if (ring_.size() < options_.capacity) {
    ring_.push_back(e);
    ++count_;
    head_ = ring_.size() % options_.capacity;
    return;
  }
  // Full: overwrite the oldest event. Eviction depends only on the merged
  // event order, so it is as deterministic as the stream itself.
  ring_[head_] = e;
  head_ = (head_ + 1) % options_.capacity;
  ++dropped_;
}

void Trace::emit(TraceEvent e) {
  if (!enabled(e.category, e.severity)) return;
  if (e.wall_ns == 0) e.wall_ns = now_ns();
  push(e);
}

void Trace::set_shards(int shards) {
  assert(shards >= 1);
  if (static_cast<int>(staged_.size()) == shards) return;
  for (const auto& s : staged_) {
    assert(s.empty() && "set_shards with staged events pending");
    (void)s;
  }
  staged_.resize(static_cast<std::size_t>(shards));
}

void Trace::shard_emit(int shard, TraceEvent e) {
  if (!enabled(e.category, e.severity)) return;
  if (e.wall_ns == 0) e.wall_ns = now_ns();
  staged_[static_cast<std::size_t>(shard)].push_back(e);
}

void Trace::finish_span(TraceEvent e, int shard) {
  if (e.dur_ns <= 0) {
    // Clamp so the span still renders, but make the fabrication visible:
    // a clamped duration means the clock could not resolve the interval.
    e.dur_ns = 1;
    clamped_spans_.fetch_add(1, std::memory_order_relaxed);
  }
  if (shard >= 0) {
    shard_emit(shard, e);
  } else {
    emit(e);
  }
}

void Trace::merge_shards() {
  for (auto& shard : staged_) {  // ascending shard order
    for (const TraceEvent& e : shard) push(e);
    shard.clear();
  }
}

std::vector<TraceEvent> Trace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  if (count_ < options_.capacity || ring_.size() < options_.capacity) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Trace::export_jsonl(std::ostream& os) const {
  for (const TraceEvent& e : events()) {
    os << "{\"round\":" << e.round << ",\"node\":" << e.node << ",\"cat\":\""
       << category_name(e.category) << "\",\"sev\":\""
       << severity_name(e.severity) << "\",\"name\":\"" << name(e.name)
       << "\",\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}\n";
  }
}

void Trace::export_chrome(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  const auto evs = events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    const double ts_us = static_cast<double>(e.wall_ns) / 1000.0;
    const long long tid = e.node >= 0 ? static_cast<long long>(e.node) + 1 : 0;
    os << "{\"name\":\"" << name(e.name) << "\",\"cat\":\""
       << category_name(e.category) << "\",\"ph\":\""
       << (e.dur_ns > 0 ? 'X' : 'i') << "\",\"pid\":0,\"tid\":" << tid
       << ",\"ts\":" << ts_us;
    if (e.dur_ns > 0) {
      os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"args\":{\"round\":" << e.round << ",\"sev\":\""
       << severity_name(e.severity) << "\",\"a0\":" << e.a0
       << ",\"a1\":" << e.a1 << "}}";
    os << (i + 1 < evs.size() ? ",\n" : "\n");
  }
  os << "]}\n";
}

SpanTimer::SpanTimer(Trace* trace, Category category, Severity severity,
                     NameId name, std::int64_t round, std::int32_t node,
                     int shard)
    : trace_(trace != nullptr && trace->enabled(category, severity) ? trace
                                                                    : nullptr),
      shard_(shard) {
  if (trace_ == nullptr) return;
  event_.round = round;
  event_.node = node;
  event_.category = category;
  event_.severity = severity;
  event_.name = name;
  event_.wall_ns = trace_->now_ns();
}

SpanTimer::SpanTimer(SpanTimer&& other) noexcept
    : trace_(other.trace_), event_(other.event_), shard_(other.shard_) {
  other.trace_ = nullptr;
}

void SpanTimer::set_args(std::int64_t a0, std::int64_t a1) noexcept {
  event_.a0 = a0;
  event_.a1 = a1;
}

SpanTimer::~SpanTimer() {
  if (trace_ == nullptr) return;
  event_.dur_ns = trace_->now_ns() - event_.wall_ns;
  trace_->finish_span(event_, shard_);
}

}  // namespace ftc::obs
