#include "obs/plane.h"

#include <fstream>
#include <stdexcept>
#include <string>

#include "util/cli.h"

namespace ftc::obs {

Plane::Plane(PlaneOptions options) : trace_(options.trace) {
  if (options.perf) {
    perf_ = std::make_unique<PerfPlane>(options.perf_options);
    perf_->bind_registry(&metrics_);
  }
  Registry& r = metrics_;
  builtin_.rounds = r.counter("sim.rounds");
  builtin_.messages = r.counter("sim.messages");
  builtin_.words = r.counter("sim.words");
  builtin_.messages_lost = r.counter("sim.messages_lost");
  builtin_.messages_duplicated = r.counter("sim.messages_duplicated");
  builtin_.messages_reordered = r.counter("sim.messages_reordered");
  builtin_.transport_frames = r.counter("transport.frames");
  builtin_.transport_retransmissions = r.counter("transport.retransmissions");
  builtin_.transport_dup_drops = r.counter("transport.duplicates_dropped");
  builtin_.transport_acks = r.counter("transport.acks");
  builtin_.crashes = r.counter("sim.crashes");
  builtin_.recoveries = r.counter("sim.recoveries");
  builtin_.scheduled_crashes = r.counter("fault.scheduled_crashes");
  builtin_.scheduled_recoveries = r.counter("fault.scheduled_recoveries");
  builtin_.suspicions = r.counter("detector.suspicions");
  builtin_.refutations = r.counter("detector.refutations");
  builtin_.promotions = r.counter("repair.promotions");
  builtin_.repair_waves = r.counter("repair.waves");
  builtin_.lp_iterations = r.counter("lp.iterations");
  builtin_.rounding_trials = r.counter("rounding.trials");
  builtin_.probe_doublings = r.counter("udg.probe_doublings");
  builtin_.async_pulses = r.counter("async.pulses");
  builtin_.async_envelopes = r.counter("async.envelopes");
  builtin_.async_payload_words = r.counter("async.payload_words");
  builtin_.live_nodes = r.gauge("sim.live_nodes");
  builtin_.running_nodes = r.gauge("sim.running_nodes");
  builtin_.arena_words = r.gauge("sim.arena_words");
  builtin_.max_message_words = r.gauge("sim.max_message_words");
  builtin_.messages_per_round = r.histogram("sim.messages_per_round",
                                            pow2_bounds(0, 24));
  builtin_.wave_joins = r.histogram("repair.wave_joins", pow2_bounds(0, 10));
  builtin_.coverage_deficit =
      r.histogram("repair.coverage_deficit", {1, 2, 3, 4, 6, 8, 16});

  Trace& t = trace_;
  builtin_.n_round = t.intern("round");
  builtin_.n_fault_apply = t.intern("fault.apply");
  builtin_.n_execute = t.intern("engine.execute");
  builtin_.n_merge = t.intern("engine.merge");
  builtin_.n_deliver = t.intern("engine.deliver");
  builtin_.n_crash = t.intern("crash");
  builtin_.n_recover = t.intern("recover");
  builtin_.n_fault_plan = t.intern("fault.plan");
  builtin_.n_channel = t.intern("channel.set");
  builtin_.n_watchdog = t.intern("watchdog.repair");
  builtin_.n_suspect = t.intern("suspect");
  builtin_.n_refute = t.intern("refute");
  builtin_.n_promote = t.intern("promote");
  builtin_.n_lp_iteration = t.intern("lp.iteration");
  builtin_.n_rounding_trial = t.intern("rounding.trial");
  builtin_.n_probe_doubling = t.intern("udg.probe_doubling");
  builtin_.n_async_run = t.intern("async.run");
}

void Plane::set_shards(int shards) {
  metrics_.set_shards(shards);
  trace_.set_shards(shards);
  if (perf_ != nullptr) perf_->set_shards(shards);
}

void Plane::merge_shards() {
  metrics_.merge_shards();
  trace_.merge_shards();
}

namespace {

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::uint32_t parse_category_list(const std::string& list) {
  if (list.empty()) return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string_view item(list.data() + start, comma - start);
    if (!item.empty()) {
      Category c;
      if (!parse_category(item, c)) {
        throw std::invalid_argument("--trace-categories: unknown category '" +
                                    std::string(item) + "'");
      }
      mask |= category_bit(c);
    }
    start = comma + 1;
  }
  return mask;
}

void write_file(const std::string& path, const auto& writer) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("observability: cannot open '" + path +
                             "' for writing");
  }
  writer(os);
}

}  // namespace

std::unique_ptr<Plane> make_plane(const util::ObsFlags& flags) {
  if (!flags.enabled()) return nullptr;
  PlaneOptions options;
  options.perf = flags.perf;
  if (flags.capacity > 0) {
    options.trace.capacity = static_cast<std::size_t>(flags.capacity);
  }
  options.trace.category_mask = parse_category_list(flags.categories);
  if (!flags.severity.empty()) {
    Severity s;
    if (!parse_severity(flags.severity, s)) {
      throw std::invalid_argument("--trace-severity: unknown severity '" +
                                  flags.severity + "'");
    }
    options.trace.min_severity = s;
  }
  return std::make_unique<Plane>(options);
}

void export_plane(const Plane& plane, const util::ObsFlags& flags) {
  if (!flags.metrics_path.empty()) {
    write_file(flags.metrics_path,
               [&](std::ostream& os) { plane.metrics().write_json(os); });
  }
  if (plane.perf() != nullptr && !flags.perf_path.empty()) {
    write_file(flags.perf_path, [&](std::ostream& os) {
      plane.perf()->export_jsonl(os, plane.trace().clamped_spans());
    });
  }
  if (!flags.trace_path.empty()) {
    if (ends_with(flags.trace_path, ".jsonl")) {
      write_file(flags.trace_path,
                 [&](std::ostream& os) { plane.trace().export_jsonl(os); });
    } else {
      write_file(flags.trace_path,
                 [&](std::ostream& os) { plane.trace().export_chrome(os); });
      write_file(flags.trace_path + ".jsonl",
                 [&](std::ostream& os) { plane.trace().export_jsonl(os); });
    }
  }
}

}  // namespace ftc::obs
