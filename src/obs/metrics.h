// Metric registry for the observability plane (DESIGN.md §7).
//
// Three metric kinds, all integer-valued at rest:
//
//   * counter   — monotonically accumulated int64 (messages sent, crashes);
//   * gauge     — last-set int64 (live nodes, arena occupancy). Gauges are
//                 sequential-only: they are set from the owner thread at the
//                 round barrier, never from worker shards, because "last
//                 write wins" is not a commutative merge;
//   * histogram — fixed-bucket counts over half-open ranges
//                 [bounds[i-1], bounds[i]), plus a trailing overflow bucket
//                 for values >= bounds.back(). A value exactly on an edge
//                 lands in the upper bucket.
//
// Determinism contract (the reason this is not a mutex-guarded map):
// workers never touch shared slots. Each shard stages increments into its
// own slot array while the parallel region runs; merge_shards() — called by
// the round engine at the sequential barrier — folds the staged slots in
// ascending shard order. Counter addition and histogram bucket addition are
// associative and commutative over int64, so the merged totals are bitwise
// identical for every thread count, including 1. Gauges bypass staging
// entirely. Enabling the registry therefore cannot break SyncNetwork's
// set_threads determinism contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ftc::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xFFFFFFFFu;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one histogram. counts.size() == bounds.size() + 1;
/// the last entry is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;

  [[nodiscard]] std::int64_t total() const noexcept;
};

/// Ascending power-of-two bucket bounds 2^lo_exp .. 2^hi_exp (inclusive),
/// the standard shape for message/size distributions.
[[nodiscard]] std::vector<double> pow2_bounds(int lo_exp, int hi_exp);

/// Named metric definitions plus their values. Not thread-safe except for
/// the shard_* entry points, each of which may be called concurrently as
/// long as every shard index is owned by exactly one thread between
/// merge_shards() calls (the round engine's sharding invariant).
class Registry {
 public:
  Registry() = default;

  /// Registration. Re-registering an existing name with the same kind
  /// returns the existing id (idempotent); a kind mismatch throws
  /// std::invalid_argument. Registration is sequential-only.
  MetricId counter(std::string name);
  MetricId gauge(std::string name);
  MetricId histogram(std::string name, std::vector<double> bounds);

  [[nodiscard]] MetricId find(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return defs_.size(); }
  [[nodiscard]] const std::string& name(MetricId id) const;
  [[nodiscard]] MetricKind kind(MetricId id) const;

  /// Sequential mutation (owner thread, outside the parallel region).
  void add(MetricId id, std::int64_t delta);    // counters
  void set(MetricId id, std::int64_t value);    // gauges
  void record(MetricId id, double value);       // histograms

  /// Shard-staged mutation. set_shards() must be called (sequentially)
  /// before the first shard_* call with a given index; merge_shards() folds
  /// every staged slot into the base values in ascending shard order and
  /// clears the staging.
  void set_shards(int shards);
  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(staged_.size());
  }
  void shard_add(int shard, MetricId id, std::int64_t delta);
  void shard_record(int shard, MetricId id, double value);
  void merge_shards();

  /// Current value of a counter or gauge.
  [[nodiscard]] std::int64_t value(MetricId id) const;
  /// Current contents of a histogram.
  [[nodiscard]] HistogramSnapshot histogram_snapshot(MetricId id) const;

  /// Zeroes every value (staged slots included); definitions are kept.
  void reset();

  /// Writes the whole registry as a single JSON object: counters and gauges
  /// as numbers, histograms as {"bounds": [...], "counts": [...]}.
  void write_json(std::ostream& os) const { write_json(os, {}); }

  /// Same, skipping metrics whose name starts with `exclude_prefix` (empty
  /// = none). Determinism tests compare registries with "perf." excluded:
  /// the perf plane's gauges are wall-clock/OS facts and may legitimately
  /// differ across bitwise-identical runs.
  void write_json(std::ostream& os, std::string_view exclude_prefix) const;

  /// Bucket index of `value` for the given bounds (shared with the tests):
  /// first i with value < bounds[i], or bounds.size() for overflow.
  [[nodiscard]] static std::size_t bucket_of(const std::vector<double>& bounds,
                                             double value) noexcept;

 private:
  struct Def {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::size_t slot = 0;  ///< index into scalars_ or hists_
  };
  struct Hist {
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1
  };
  /// Per-shard staging. `touched` lists ids with staged data so a merge
  /// only walks what was written (order inside a shard is irrelevant — the
  /// folds are commutative).
  struct ShardSlots {
    std::vector<std::int64_t> scalars;
    std::vector<std::vector<std::int64_t>> hist_counts;
    std::vector<MetricId> touched;
  };

  MetricId define(std::string name, MetricKind kind);
  [[nodiscard]] const Def& def(MetricId id) const;
  void ensure_shard_capacity(ShardSlots& slots) const;

  std::vector<Def> defs_;
  std::vector<std::int64_t> scalars_;
  std::vector<Hist> hists_;
  std::vector<ShardSlots> staged_;
};

}  // namespace ftc::obs
