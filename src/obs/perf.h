// Perf-attribution plane for the observability stack (DESIGN.md §12).
//
// Answers "where does round time go": per round, wall time is broken down
// by engine phase (compute, the three delivery sub-phases, channel decide,
// fault apply, obs merge, …) AND per shard, plus the ThreadPool's barrier
// wait and claim stall. From those samples the plane derives load-imbalance
// factors (max/mean shard busy time), straggler identification (which shard
// was slowest, how often, with its node/message volume), and run-wide
// attribution coverage (how much of the measured wall time the phase
// intervals explain).
//
// Determinism contract: timing follows the exact staging discipline of
// obs::Trace / obs::Registry — workers write only shard-owned staging slots
// (shard_add / note_shard_work), the owner folds them in ascending shard
// order at the round barrier (end_round) — so *enabling* the plane never
// perturbs the simulated execution and SyncNetwork's set_threads bitwise
// invariance holds with perf on. The recorded nanoseconds themselves are of
// course wall-clock facts: they live in this side structure and its own
// JSONL export, never in the deterministic trace stream; the only registry
// contact is the "perf."-prefixed steady-state gauges, which determinism
// comparisons drop via Registry::write_json(os, "perf.").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace ftc::obs {

/// Attribution targets. The first block are the round engine's top-level
/// phases: disjoint intervals that tile a SyncNetwork round, so their sum
/// per round is the attribution-coverage numerator. The second block are
/// nested or overlapping attributions (channel decide runs inside the
/// delivery count pass; barrier wait and claim stall overlap the dispatched
/// phases) — reported, but excluded from the coverage sum. The LP block are
/// the top-level phases of one lp_kmds inner iteration.
enum class PerfPhase : std::uint8_t {
  kFaultApply = 0,   ///< scheduled crash/recovery/channel application
  kCompute,          ///< process on_round execution (dispatched)
  kStatsMerge,       ///< shard-stat fold + registry counter publication
  kObsMerge,         ///< trace/metric shard-staging merge at the barrier
  kDeliverCount,     ///< delivery B1: per-receiver counts + channel fates
  kDeliverPrefix,    ///< delivery B2: O(shards) sequential prefix sum
  kDeliverPlace,     ///< delivery B3: counting-sort placement
  kFinalize,         ///< generation swap + gauges + round trace event
  kChannelDecide,    ///< nested in B1: per-message channel verdicts
  kBarrierWait,      ///< caller blocked on the pool's epoch barrier
  kClaimStall,       ///< pool drain time not spent executing tasks
  kLpXUpdate,        ///< lp_kmds lines 5-8: x-update + Lemma 4.1 audit
  kLpDualColor,      ///< lp_kmds lines 10-21: dual bookkeeping + coloring
  kLpDegree,         ///< lp_kmds lines 23-24: dynamic-degree recompute
  kLpZPass,          ///< lp_kmds line 27: final z-pass
};
inline constexpr int kPerfPhaseCount = 15;

/// Stable snake_case key used in the JSONL export and the tools.
[[nodiscard]] std::string_view perf_phase_name(PerfPhase p) noexcept;

/// True for phases whose intervals are disjoint and tile their round —
/// the only ones the attribution-coverage sum may count (summing nested or
/// overlapping phases would claim >100% coverage).
[[nodiscard]] bool perf_phase_top_level(PerfPhase p) noexcept;

/// Phases with per-shard resolution, in slot order. Everything else is
/// owner-side only (sequential barriers have no shard dimension).
inline constexpr int kPerfShardPhaseCount = 4;
[[nodiscard]] PerfPhase perf_shard_phase(int slot) noexcept;
/// Slot of a per-shard phase, or -1 for owner-only phases.
[[nodiscard]] int perf_shard_slot(PerfPhase p) noexcept;

/// One shard's share of one round.
struct PerfShardSample {
  std::int64_t phase_ns[kPerfShardPhaseCount] = {0, 0, 0, 0};
  std::int64_t nodes = 0;     ///< processes executed by this shard
  std::int64_t messages = 0;  ///< messages sent by this shard

  /// Parallel-phase work time: compute + count + place (channel decide is
  /// nested inside count and would double-count).
  [[nodiscard]] std::int64_t busy_ns() const noexcept;
};

/// One fully merged round.
struct PerfRoundSample {
  std::int64_t round = 0;
  std::int64_t total_ns = 0;  ///< measured wall time of the whole round
  std::int64_t phase_ns[kPerfPhaseCount] = {};
  std::vector<PerfShardSample> shards;
  double imbalance = 1.0;  ///< max/mean shard busy_ns (1.0 when idle)
  int straggler = -1;      ///< slowest shard, or -1 when no shard was busy

  /// Sum over top-level phases (the coverage numerator for this round).
  [[nodiscard]] std::int64_t attributed_ns() const noexcept;
};

/// Run-wide per-shard aggregates (never evicted).
struct PerfShardTotals {
  std::int64_t phase_ns[kPerfShardPhaseCount] = {0, 0, 0, 0};
  std::int64_t nodes = 0;
  std::int64_t messages = 0;
  std::int64_t straggler_rounds = 0;  ///< rounds this shard was the slowest

  [[nodiscard]] std::int64_t busy_ns() const noexcept;
};

struct PerfOptions {
  std::size_t capacity = 1u << 12;  ///< retained per-round samples (ring)
};

/// The attribution sink. Thread discipline mirrors obs::Registry: add() and
/// end_round() are owner-thread only; shard_add()/note_shard_work(s, …) may
/// run concurrently as long as each shard index has exactly one owner
/// between end_round() calls.
class PerfPlane {
 public:
  PerfPlane();
  explicit PerfPlane(PerfOptions options);

  PerfPlane(const PerfPlane&) = delete;
  PerfPlane& operator=(const PerfPlane&) = delete;

  /// Registers the steady-state gauges perf.peak_rss_kb and perf.allocs on
  /// `registry` (refreshed at every end_round). The "perf." prefix is the
  /// exclusion key determinism comparisons pass to Registry::write_json.
  void bind_registry(Registry* registry);

  /// Optional allocation-counter source (the bench layer wires
  /// bench/alloc_hooks.cpp in; library users leave it unset and the
  /// perf.allocs gauge stays 0). Read once per end_round.
  void set_alloc_source(std::uint64_t (*source)()) noexcept {
    alloc_source_ = source;
  }

  /// Sizes the shard staging (sequential-only, like Registry::set_shards).
  void set_shards(int shards);
  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(staged_.size());
  }

  /// Owner-thread attribution of `ns` to `phase` for the current round.
  void add(PerfPhase phase, std::int64_t ns) noexcept;
  /// Worker-side attribution into the shard's staging slot. Phases without
  /// a shard slot (perf_shard_slot == -1) assert.
  void shard_add(int shard, PerfPhase phase, std::int64_t ns) noexcept;
  /// Work-volume bookkeeping for straggler reports (owner or shard owner).
  void note_shard_work(int shard, std::int64_t nodes,
                       std::int64_t messages) noexcept;

  /// Round barrier: folds the shard staging in ascending shard order,
  /// computes imbalance + straggler, appends the ring sample, folds the
  /// run-wide aggregates, and refreshes the registry gauges.
  void end_round(std::int64_t round, std::int64_t total_ns);

  /// Clears every sample: staged slots, the current round's phase laps, the
  /// ring, the run-wide aggregates, the per-shard totals, and the imbalance
  /// stats. Shard sizing, the registry binding, and the alloc source are
  /// kept; the perf.* gauges are zeroed. Needed when one process drives
  /// many scenarios through the same plane (the dynamic maintainer's
  /// campaign mode) and each run's attribution must start clean.
  void reset();

  [[nodiscard]] std::int64_t rounds() const noexcept { return rounds_; }
  /// Retained per-round samples, oldest first.
  [[nodiscard]] std::vector<PerfRoundSample> recent() const;
  [[nodiscard]] const std::vector<PerfShardTotals>& shard_totals()
      const noexcept {
    return shard_totals_;
  }
  /// Run-wide sums.
  [[nodiscard]] std::int64_t total_ns() const noexcept { return agg_total_ns_; }
  [[nodiscard]] std::int64_t phase_total_ns(PerfPhase p) const noexcept;
  /// Σ top-level phase time / Σ round wall time (0 when no rounds ended).
  [[nodiscard]] double attribution_coverage() const noexcept;
  [[nodiscard]] double mean_imbalance() const noexcept;
  [[nodiscard]] double max_imbalance() const noexcept { return imb_max_; }

  /// Steady-clock nanoseconds (callable from workers; callers take
  /// differences, so the epoch is irrelevant).
  [[nodiscard]] static std::int64_t now_ns() noexcept;

  /// Writes the side-channel JSONL: one "round" line per retained sample,
  /// then one "summary" line with run-wide aggregates, coverage, imbalance,
  /// per-shard totals, and the trace's clamped-span count.
  void export_jsonl(std::ostream& os, std::int64_t clamped_spans = 0) const;

 private:
  struct ShardStage {
    std::int64_t phase_ns[kPerfShardPhaseCount] = {0, 0, 0, 0};
    std::int64_t nodes = 0;
    std::int64_t messages = 0;
  };

  void refresh_gauges();

  PerfOptions options_;
  std::vector<ShardStage> staged_;
  std::int64_t cur_phase_ns_[kPerfPhaseCount] = {};
  std::vector<PerfRoundSample> ring_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::int64_t rounds_ = 0;
  // Run-wide aggregates (never evicted).
  std::int64_t agg_phase_ns_[kPerfPhaseCount] = {};
  std::int64_t agg_total_ns_ = 0;
  std::vector<PerfShardTotals> shard_totals_;
  double imb_sum_ = 0.0;
  double imb_max_ = 0.0;
  // Registry gauges.
  Registry* registry_ = nullptr;
  MetricId peak_rss_gauge_ = kInvalidMetric;
  MetricId allocs_gauge_ = kInvalidMetric;
  std::uint64_t (*alloc_source_)() = nullptr;
};

}  // namespace ftc::obs
