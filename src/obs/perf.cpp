#include "obs/perf.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ftc::obs {

namespace {

constexpr std::string_view kPhaseNames[kPerfPhaseCount] = {
    "fault_apply",  "compute",       "stats_merge",  "obs_merge",
    "deliver_count", "deliver_prefix", "deliver_place", "finalize",
    "channel_decide", "barrier_wait", "claim_stall",  "lp_x_update",
    "lp_dual_color", "lp_degree",    "lp_z_pass"};

/// Peak resident set size in KiB (getrusage; 0 where unsupported).
std::int64_t peak_rss_kb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes there
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace

std::string_view perf_phase_name(PerfPhase p) noexcept {
  const auto i = static_cast<std::size_t>(p);
  assert(i < kPerfPhaseCount);
  return kPhaseNames[i];
}

bool perf_phase_top_level(PerfPhase p) noexcept {
  switch (p) {
    case PerfPhase::kChannelDecide:
    case PerfPhase::kBarrierWait:
    case PerfPhase::kClaimStall:
      return false;
    default:
      return true;
  }
}

PerfPhase perf_shard_phase(int slot) noexcept {
  assert(slot >= 0 && slot < kPerfShardPhaseCount);
  constexpr PerfPhase kSlots[kPerfShardPhaseCount] = {
      PerfPhase::kCompute, PerfPhase::kDeliverCount, PerfPhase::kDeliverPlace,
      PerfPhase::kChannelDecide};
  return kSlots[slot];
}

int perf_shard_slot(PerfPhase p) noexcept {
  switch (p) {
    case PerfPhase::kCompute:
      return 0;
    case PerfPhase::kDeliverCount:
      return 1;
    case PerfPhase::kDeliverPlace:
      return 2;
    case PerfPhase::kChannelDecide:
      return 3;
    default:
      return -1;
  }
}

std::int64_t PerfShardSample::busy_ns() const noexcept {
  return phase_ns[0] + phase_ns[1] + phase_ns[2];
}

std::int64_t PerfShardTotals::busy_ns() const noexcept {
  return phase_ns[0] + phase_ns[1] + phase_ns[2];
}

std::int64_t PerfRoundSample::attributed_ns() const noexcept {
  std::int64_t sum = 0;
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    if (perf_phase_top_level(static_cast<PerfPhase>(p))) sum += phase_ns[p];
  }
  return sum;
}

PerfPlane::PerfPlane() : PerfPlane(PerfOptions{}) {}

PerfPlane::PerfPlane(PerfOptions options) : options_(options) {
  assert(options_.capacity >= 1);
  ring_.reserve(std::min<std::size_t>(options_.capacity, 1024));
}

void PerfPlane::bind_registry(Registry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) {
    peak_rss_gauge_ = kInvalidMetric;
    allocs_gauge_ = kInvalidMetric;
    return;
  }
  peak_rss_gauge_ = registry_->gauge("perf.peak_rss_kb");
  allocs_gauge_ = registry_->gauge("perf.allocs");
}

void PerfPlane::set_shards(int shards) {
  assert(shards >= 1);
  const auto want = static_cast<std::size_t>(shards);
  if (staged_.size() != want) staged_.resize(want);
  if (shard_totals_.size() < want) shard_totals_.resize(want);
}

std::int64_t PerfPlane::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PerfPlane::add(PerfPhase phase, std::int64_t ns) noexcept {
  cur_phase_ns_[static_cast<std::size_t>(phase)] += ns;
}

void PerfPlane::shard_add(int shard, PerfPhase phase,
                          std::int64_t ns) noexcept {
  const int slot = perf_shard_slot(phase);
  assert(slot >= 0 && "shard_add: phase has no per-shard resolution");
  assert(shard >= 0 && static_cast<std::size_t>(shard) < staged_.size());
  staged_[static_cast<std::size_t>(shard)].phase_ns[slot] += ns;
}

void PerfPlane::note_shard_work(int shard, std::int64_t nodes,
                                std::int64_t messages) noexcept {
  assert(shard >= 0 && static_cast<std::size_t>(shard) < staged_.size());
  ShardStage& st = staged_[static_cast<std::size_t>(shard)];
  st.nodes += nodes;
  st.messages += messages;
}

void PerfPlane::end_round(std::int64_t round, std::int64_t total_ns) {
  PerfRoundSample sample;
  sample.round = round;
  sample.total_ns = total_ns;
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    sample.phase_ns[p] = cur_phase_ns_[p];
    agg_phase_ns_[p] += cur_phase_ns_[p];
    cur_phase_ns_[p] = 0;
  }

  // Fold shard staging in ascending shard order (the sums are commutative;
  // the fixed order keeps the discipline uniform with Trace/Registry) and
  // shard-phase time into the owner totals so per-round attribution covers
  // the dispatched phases even though workers timed them.
  sample.shards.resize(staged_.size());
  std::int64_t busy_sum = 0;
  std::int64_t busy_max = -1;
  std::int64_t channel_ns = 0;
  int straggler = -1;
  for (std::size_t s = 0; s < staged_.size(); ++s) {
    ShardStage& stage = staged_[s];
    PerfShardSample& out = sample.shards[s];
    PerfShardTotals& tot = shard_totals_[s];
    for (int i = 0; i < kPerfShardPhaseCount; ++i) {
      out.phase_ns[i] = stage.phase_ns[i];
      tot.phase_ns[i] += stage.phase_ns[i];
    }
    out.nodes = stage.nodes;
    out.messages = stage.messages;
    tot.nodes += stage.nodes;
    tot.messages += stage.messages;
    const std::int64_t busy = out.busy_ns();
    busy_sum += busy;
    channel_ns += stage.phase_ns[perf_shard_slot(PerfPhase::kChannelDecide)];
    if (busy > busy_max) {
      busy_max = busy;
      straggler = static_cast<int>(s);
    }
    stage = ShardStage{};
  }
  // Channel decide has no owner-side lap (slots 0-2 do, and adding their
  // worker sums to the owner's dispatch wall time would double-count), so
  // surface the worker-staged total in the phase table. It is nested inside
  // deliver_count and therefore excluded from the coverage sum.
  const auto channel = static_cast<std::size_t>(PerfPhase::kChannelDecide);
  sample.phase_ns[channel] += channel_ns;
  agg_phase_ns_[channel] += channel_ns;
  if (busy_sum > 0 && !sample.shards.empty()) {
    const double mean = static_cast<double>(busy_sum) /
                        static_cast<double>(sample.shards.size());
    sample.imbalance = static_cast<double>(busy_max) / mean;
    sample.straggler = straggler;
    shard_totals_[static_cast<std::size_t>(straggler)].straggler_rounds += 1;
  }

  agg_total_ns_ += total_ns;
  imb_sum_ += sample.imbalance;
  imb_max_ = std::max(imb_max_, sample.imbalance);
  ++rounds_;

  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(sample));
    head_ = ring_.size() % options_.capacity;
  } else {
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % options_.capacity;
  }

  refresh_gauges();
}

void PerfPlane::reset() {
  for (ShardStage& stage : staged_) stage = ShardStage{};
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    cur_phase_ns_[p] = 0;
    agg_phase_ns_[p] = 0;
  }
  ring_.clear();
  head_ = 0;
  rounds_ = 0;
  agg_total_ns_ = 0;
  for (PerfShardTotals& tot : shard_totals_) tot = PerfShardTotals{};
  imb_sum_ = 0.0;
  imb_max_ = 0.0;
  // Gauges go to zero rather than being refreshed: a "reset" plane must
  // read as empty until its next end_round publishes fresh facts.
  if (registry_ != nullptr) {
    registry_->set(peak_rss_gauge_, 0);
    registry_->set(allocs_gauge_, 0);
  }
}

void PerfPlane::refresh_gauges() {
  if (registry_ == nullptr) return;
  registry_->set(peak_rss_gauge_, peak_rss_kb());
  if (alloc_source_ != nullptr) {
    registry_->set(allocs_gauge_, static_cast<std::int64_t>(alloc_source_()));
  }
}

std::vector<PerfRoundSample> PerfPlane::recent() const {
  std::vector<PerfRoundSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::int64_t PerfPlane::phase_total_ns(PerfPhase p) const noexcept {
  return agg_phase_ns_[static_cast<std::size_t>(p)];
}

double PerfPlane::attribution_coverage() const noexcept {
  if (agg_total_ns_ <= 0) return 0.0;
  std::int64_t attributed = 0;
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    if (perf_phase_top_level(static_cast<PerfPhase>(p))) {
      attributed += agg_phase_ns_[p];
    }
  }
  return static_cast<double>(attributed) / static_cast<double>(agg_total_ns_);
}

double PerfPlane::mean_imbalance() const noexcept {
  return rounds_ > 0 ? imb_sum_ / static_cast<double>(rounds_) : 0.0;
}

namespace {

void write_phase_object(std::ostream& os, const std::int64_t (&ns)[kPerfPhaseCount]) {
  os << "{";
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    if (p != 0) os << ",";
    os << "\"" << kPhaseNames[p] << "\":" << ns[p];
  }
  os << "}";
}

}  // namespace

void PerfPlane::export_jsonl(std::ostream& os,
                             std::int64_t clamped_spans) const {
  for (const PerfRoundSample& r : recent()) {
    os << "{\"type\":\"round\",\"round\":" << r.round
       << ",\"total_ns\":" << r.total_ns
       << ",\"attributed_ns\":" << r.attributed_ns()
       << ",\"imbalance\":" << r.imbalance
       << ",\"straggler\":" << r.straggler << ",\"phases\":";
    write_phase_object(os, r.phase_ns);
    os << ",\"shards\":[";
    for (std::size_t s = 0; s < r.shards.size(); ++s) {
      const PerfShardSample& sh = r.shards[s];
      if (s != 0) os << ",";
      os << "{\"shard\":" << s << ",\"compute_ns\":" << sh.phase_ns[0]
         << ",\"deliver_count_ns\":" << sh.phase_ns[1]
         << ",\"deliver_place_ns\":" << sh.phase_ns[2]
         << ",\"channel_decide_ns\":" << sh.phase_ns[3]
         << ",\"busy_ns\":" << sh.busy_ns() << ",\"nodes\":" << sh.nodes
         << ",\"messages\":" << sh.messages << "}";
    }
    os << "]}\n";
  }
  os << "{\"type\":\"summary\",\"rounds\":" << rounds_
     << ",\"retained\":" << ring_.size()
     << ",\"shards\":" << shard_totals_.size()
     << ",\"wall_ns\":" << agg_total_ns_
     << ",\"coverage\":" << attribution_coverage()
     << ",\"imbalance_mean\":" << mean_imbalance()
     << ",\"imbalance_max\":" << imb_max_
     << ",\"clamped_spans\":" << clamped_spans << ",\"phases\":";
  write_phase_object(os, agg_phase_ns_);
  os << ",\"shard_totals\":[";
  for (std::size_t s = 0; s < shard_totals_.size(); ++s) {
    const PerfShardTotals& t = shard_totals_[s];
    if (s != 0) os << ",";
    os << "{\"shard\":" << s << ",\"compute_ns\":" << t.phase_ns[0]
       << ",\"deliver_count_ns\":" << t.phase_ns[1]
       << ",\"deliver_place_ns\":" << t.phase_ns[2]
       << ",\"channel_decide_ns\":" << t.phase_ns[3]
       << ",\"busy_ns\":" << t.busy_ns() << ",\"nodes\":" << t.nodes
       << ",\"messages\":" << t.messages
       << ",\"straggler_rounds\":" << t.straggler_rounds << "}";
  }
  os << "]}\n";
}

}  // namespace ftc::obs
