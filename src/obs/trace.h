// Structured trace layer for the observability plane (DESIGN.md §7).
//
// Events are fixed-size binary records held in a ring buffer (oldest events
// are evicted once capacity is reached; evictions are counted). Emission is
// filtered by severity and a category bitmask, so an attached-but-quiet
// trace costs one predicate per candidate event.
//
// Determinism contract: an event carries two clocks.
//   * The logical clock — (round, emission order) — is fully determined by
//     the simulated execution. Events emitted by worker shards are staged
//     per shard and merged at the round barrier in ascending shard order;
//     shards cover ascending contiguous node ranges and nodes execute in
//     ascending order within a shard, so the merged stream is identical for
//     every thread count.
//   * The wall clock — wall_ns / dur_ns, stamped from a steady clock — is
//     inherently nondeterministic and is confined to the Chrome exporter.
//
// export_jsonl() writes logical fields only and is therefore bitwise
// reproducible across thread counts and runs; export_chrome() writes the
// trace_event format (load in Perfetto / about:tracing) using wall time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ftc::obs {

/// Event categories, filterable as a bitmask.
enum class Category : std::uint8_t {
  kEngine = 0,   ///< round engine phases and per-round summaries
  kMessage = 1,  ///< message-plane details
  kFault = 2,    ///< crashes, recoveries, fault plans
  kDetector = 3, ///< failure-detector suspicions / refutations
  kRepair = 4,   ///< self-healing protocol activity
  kAlgo = 5,     ///< algorithm phase progress (LP, rounding, UDG)
  kUser = 6,     ///< application-defined events
};
inline constexpr int kCategoryCount = 7;

[[nodiscard]] std::string_view category_name(Category c) noexcept;
/// Parses one category name; returns false on an unknown name.
[[nodiscard]] bool parse_category(std::string_view name, Category& out) noexcept;
[[nodiscard]] constexpr std::uint32_t category_bit(Category c) noexcept {
  return 1u << static_cast<int>(c);
}
inline constexpr std::uint32_t kAllCategories = (1u << kCategoryCount) - 1;

enum class Severity : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;
[[nodiscard]] bool parse_severity(std::string_view name, Severity& out) noexcept;

/// Interned event-name handle.
using NameId = std::uint16_t;

/// One trace record. `a0`/`a1` are event-defined arguments (node ids,
/// counts, phase indices) and must be deterministic quantities; wall_ns /
/// dur_ns never reach the JSONL stream (see file comment).
struct TraceEvent {
  std::int64_t round = 0;
  std::int32_t node = -1;  ///< -1 = engine-wide
  Category category = Category::kEngine;
  Severity severity = Severity::kInfo;
  NameId name = 0;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
  std::int64_t wall_ns = 0;  ///< start, ns since trace construction
  std::int64_t dur_ns = 0;   ///< span duration; 0 = instant event
};

/// Ring-buffered event sink. Thread discipline mirrors obs::Registry:
/// emit() and the exporters are owner-thread only; shard_emit(s, …) may run
/// concurrently as long as each shard index has one owner between
/// merge_shards() calls.
class Trace {
 public:
  struct Options {
    std::size_t capacity = 1u << 18;  ///< max retained events
    Severity min_severity = Severity::kDebug;
    std::uint32_t category_mask = kAllCategories;
  };

  // Split instead of `Options options = {}`: GCC rejects a brace default
  // argument of a nested class with default member initializers (PR 96645).
  Trace();
  explicit Trace(Options options);

  /// Interns an event name (idempotent; sequential-only).
  NameId intern(std::string_view name);
  [[nodiscard]] const std::string& name(NameId id) const;

  [[nodiscard]] bool enabled(Category c, Severity s) const noexcept {
    return s >= options_.min_severity &&
           (options_.category_mask & category_bit(c)) != 0;
  }

  /// Appends an event (owner thread). Filtered events are dropped for free.
  /// wall_ns is stamped here when the caller left it 0.
  void emit(TraceEvent e);

  /// Worker-side emission into shard staging; merged at the barrier.
  void set_shards(int shards);
  void shard_emit(int shard, TraceEvent e);
  /// Appends every staged event in ascending shard order (owner thread).
  void merge_shards();

  /// Finishes a span event: a non-positive duration is clamped to 1 ns (so
  /// it still renders as a span) and counted in clamped_spans(). Called by
  /// ~SpanTimer, possibly from worker threads (hence the atomic counter);
  /// exposed so tests can drive the clamp path deterministically.
  void finish_span(TraceEvent e, int shard);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  /// Spans whose measured duration was <= 0 and was clamped to 1 ns. A
  /// wall-clock fact (clock resolution dependent), so it is reported via
  /// the perf JSONL summary, never the deterministic registry.
  [[nodiscard]] std::int64_t clamped_spans() const noexcept {
    return clamped_spans_.load(std::memory_order_relaxed);
  }
  /// Zeroes the clamp counter (owner thread, between scenario runs — no
  /// SpanTimer may be live). Paired with PerfPlane::reset() so one process
  /// can run many scenarios with per-run clamp accounting.
  void reset_clamped_spans() noexcept {
    clamped_spans_.store(0, std::memory_order_relaxed);
  }
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Deterministic structured log: one JSON object per line, logical fields
  /// only (round, node, cat, sev, name, a0, a1), in emission order.
  void export_jsonl(std::ostream& os) const;
  /// Chrome trace_event JSON (Perfetto / about:tracing). Spans render as
  /// complete ("X") events on tid = node + 1 (tid 0 = engine); instants as
  /// "i". Timestamps come from the wall clock.
  void export_chrome(std::ostream& os) const;

  /// Nanoseconds since construction (steady clock; callable from workers).
  [[nodiscard]] std::int64_t now_ns() const;

 private:
  void push(const TraceEvent& e);

  Options options_;
  std::vector<std::string> names_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t count_ = 0;
  std::int64_t dropped_ = 0;
  std::atomic<std::int64_t> clamped_spans_{0};
  std::vector<std::vector<TraceEvent>> staged_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records construction→destruction as one complete event. The
/// wall-clock duration only ever reaches the Chrome exporter; a0/a1 (via
/// set_args) must be deterministic. A SpanTimer built with a null trace, or
/// whose (category, severity) is filtered out, is a no-op.
class SpanTimer {
 public:
  SpanTimer() = default;
  SpanTimer(Trace* trace, Category category, Severity severity, NameId name,
            std::int64_t round, std::int32_t node = -1, int shard = -1);
  SpanTimer(SpanTimer&& other) noexcept;
  SpanTimer& operator=(SpanTimer&&) = delete;
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer();

  /// Attaches deterministic arguments to the span event.
  void set_args(std::int64_t a0, std::int64_t a1 = 0) noexcept;

 private:
  Trace* trace_ = nullptr;
  TraceEvent event_;
  int shard_ = -1;
};

}  // namespace ftc::obs
