#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace ftc::obs {

std::int64_t HistogramSnapshot::total() const noexcept {
  std::int64_t t = 0;
  for (std::int64_t c : counts) t += c;
  return t;
}

std::vector<double> pow2_bounds(int lo_exp, int hi_exp) {
  assert(lo_exp <= hi_exp);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(hi_exp - lo_exp + 1));
  for (int e = lo_exp; e <= hi_exp; ++e) {
    bounds.push_back(std::ldexp(1.0, e));
  }
  return bounds;
}

std::size_t Registry::bucket_of(const std::vector<double>& bounds,
                                double value) noexcept {
  // First bound strictly greater than value ⇒ half-open [lo, hi) buckets:
  // a value exactly on an edge lands in the upper bucket.
  return static_cast<std::size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
}

MetricId Registry::define(std::string name, MetricKind kind) {
  const MetricId existing = find(name);
  if (existing != kInvalidMetric) {
    if (defs_[existing].kind != kind) {
      throw std::invalid_argument("Registry: metric '" + name +
                                  "' re-registered with a different kind");
    }
    return existing;
  }
  Def d;
  d.name = std::move(name);
  d.kind = kind;
  if (kind == MetricKind::kHistogram) {
    d.slot = hists_.size();
  } else {
    d.slot = scalars_.size();
    scalars_.push_back(0);
  }
  defs_.push_back(std::move(d));
  return static_cast<MetricId>(defs_.size() - 1);
}

MetricId Registry::counter(std::string name) {
  return define(std::move(name), MetricKind::kCounter);
}

MetricId Registry::gauge(std::string name) {
  return define(std::move(name), MetricKind::kGauge);
}

MetricId Registry::histogram(std::string name, std::vector<double> bounds) {
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  assert(!bounds.empty());
  const MetricId id = define(std::move(name), MetricKind::kHistogram);
  if (defs_[id].slot == hists_.size()) {  // newly defined, not re-found
    Hist h;
    h.counts.assign(bounds.size() + 1, 0);
    h.bounds = std::move(bounds);
    hists_.push_back(std::move(h));
  }
  return id;
}

MetricId Registry::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<MetricId>(i);
  }
  return kInvalidMetric;
}

const Registry::Def& Registry::def(MetricId id) const {
  assert(id < defs_.size());
  return defs_[static_cast<std::size_t>(id)];
}

const std::string& Registry::name(MetricId id) const { return def(id).name; }

MetricKind Registry::kind(MetricId id) const { return def(id).kind; }

void Registry::add(MetricId id, std::int64_t delta) {
  assert(def(id).kind == MetricKind::kCounter);
  scalars_[def(id).slot] += delta;
}

void Registry::set(MetricId id, std::int64_t value) {
  assert(def(id).kind == MetricKind::kGauge);
  scalars_[def(id).slot] = value;
}

void Registry::record(MetricId id, double value) {
  assert(def(id).kind == MetricKind::kHistogram);
  Hist& h = hists_[def(id).slot];
  ++h.counts[bucket_of(h.bounds, value)];
}

void Registry::set_shards(int shards) {
  assert(shards >= 1);
  if (static_cast<int>(staged_.size()) == shards) return;
  // Growing or shrinking between barriers is safe: staging is empty then.
  for (const ShardSlots& s : staged_) {
    assert(s.touched.empty() && "set_shards with staged data pending");
    (void)s;
  }
  staged_.resize(static_cast<std::size_t>(shards));
}

void Registry::ensure_shard_capacity(ShardSlots& slots) const {
  if (slots.scalars.size() < scalars_.size()) {
    slots.scalars.resize(scalars_.size(), 0);
  }
  if (slots.hist_counts.size() < hists_.size()) {
    slots.hist_counts.resize(hists_.size());
  }
}

void Registry::shard_add(int shard, MetricId id, std::int64_t delta) {
  assert(def(id).kind == MetricKind::kCounter &&
         "gauges are sequential-only (no commutative merge)");
  ShardSlots& slots = staged_[static_cast<std::size_t>(shard)];
  ensure_shard_capacity(slots);
  std::int64_t& cell = slots.scalars[def(id).slot];
  if (cell == 0) slots.touched.push_back(id);
  cell += delta;
}

void Registry::shard_record(int shard, MetricId id, double value) {
  assert(def(id).kind == MetricKind::kHistogram);
  ShardSlots& slots = staged_[static_cast<std::size_t>(shard)];
  ensure_shard_capacity(slots);
  auto& counts = slots.hist_counts[def(id).slot];
  const Hist& h = hists_[def(id).slot];
  if (counts.empty()) {
    counts.assign(h.counts.size(), 0);
    slots.touched.push_back(id);
  }
  ++counts[bucket_of(h.bounds, value)];
}

void Registry::merge_shards() {
  for (ShardSlots& slots : staged_) {  // ascending shard order
    for (MetricId id : slots.touched) {
      const Def& d = def(id);
      if (d.kind == MetricKind::kHistogram) {
        auto& staged_counts = slots.hist_counts[d.slot];
        auto& base = hists_[d.slot].counts;
        for (std::size_t b = 0; b < base.size(); ++b) {
          base[b] += staged_counts[b];
        }
        staged_counts.clear();
      } else {
        scalars_[d.slot] += slots.scalars[d.slot];
        slots.scalars[d.slot] = 0;
      }
    }
    slots.touched.clear();
  }
}

std::int64_t Registry::value(MetricId id) const {
  assert(def(id).kind != MetricKind::kHistogram);
  return scalars_[def(id).slot];
}

HistogramSnapshot Registry::histogram_snapshot(MetricId id) const {
  assert(def(id).kind == MetricKind::kHistogram);
  const Hist& h = hists_[def(id).slot];
  return HistogramSnapshot{h.bounds, h.counts};
}

void Registry::reset() {
  std::fill(scalars_.begin(), scalars_.end(), 0);
  for (Hist& h : hists_) {
    std::fill(h.counts.begin(), h.counts.end(), 0);
  }
  for (ShardSlots& slots : staged_) {
    std::fill(slots.scalars.begin(), slots.scalars.end(), 0);
    for (auto& counts : slots.hist_counts) counts.clear();
    slots.touched.clear();
  }
}

void Registry::write_json(std::ostream& os,
                          std::string_view exclude_prefix) const {
  os << "{\n";
  bool first = true;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const Def& d = defs_[i];
    if (!exclude_prefix.empty() &&
        std::string_view(d.name).substr(0, exclude_prefix.size()) ==
            exclude_prefix) {
      continue;
    }
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << d.name << "\": ";
    if (d.kind == MetricKind::kHistogram) {
      const Hist& h = hists_[d.slot];
      os << "{\"bounds\": [";
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        if (b != 0) os << ", ";
        os << h.bounds[b];
      }
      os << "], \"counts\": [";
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        if (b != 0) os << ", ";
        os << h.counts[b];
      }
      os << "]}";
    } else {
      os << scalars_[d.slot];
    }
  }
  if (!first) os << "\n";
  os << "}\n";
}

}  // namespace ftc::obs
