// Tiny command-line argument parser used by the bench and example binaries.
//
// Supported syntax: `--key=value`, `--flag` (value "1"), and positional
// arguments. Unknown keys are collected verbatim so binaries can reject or
// warn about typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftc::util {

/// Parsed command line. Construct from main()'s argc/argv, then query typed
/// values with a default:
///
///   Args args(argc, argv);
///   const int n = args.get_int("n", 1000);
///   const std::string csv = args.get_string("csv", "");
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if --key (with or without a value) appeared.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string value of --key=value, or nullopt if absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters returning `fallback` when the key is absent. Throws
  /// std::invalid_argument when the key is present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;

  /// Parses a comma-separated list of integers ("1,2,5"), or `fallback` when
  /// the key is absent.
  [[nodiscard]] std::vector<long long> get_int_list(
      const std::string& key, std::vector<long long> fallback) const;

  /// Positional (non --key) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The --trace / --metrics flag group shared by bench, example, and tool
/// binaries (consumed by obs::make_plane / obs::export_plane):
///
///   --trace=FILE            Chrome trace_event file at FILE plus the
///                           deterministic JSONL stream at FILE.jsonl
///                           (FILE ending in .jsonl writes JSONL only)
///   --metrics=FILE          metric registry dumped as JSON
///   --trace-categories=a,b  engine,message,fault,detector,repair,algo,user
///                           (default: all)
///   --trace-severity=S      debug | info | warn | error (default: debug)
///   --trace-capacity=N      trace ring capacity in events
///   --perf[=FILE]           perf-attribution plane: per-phase/per-shard
///                           round timing, imbalance + straggler telemetry,
///                           written as JSONL to FILE (default perf.jsonl;
///                           analyze with ftc-trace phases/imbalance/report)
///
/// Kept here as plain strings so the flag syntax lives with the parser and
/// util stays below obs in the layering.
struct ObsFlags {
  std::string trace_path;
  std::string metrics_path;
  std::string categories;
  std::string severity;
  long long capacity = 1 << 18;
  bool perf = false;
  std::string perf_path;

  /// True when any output was requested (observability should be attached).
  [[nodiscard]] bool enabled() const noexcept {
    return !trace_path.empty() || !metrics_path.empty() || perf;
  }
};

/// Extracts the flag group from parsed arguments.
[[nodiscard]] ObsFlags parse_obs_flags(const Args& args);

}  // namespace ftc::util
