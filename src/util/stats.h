// Summary statistics for experiment measurements.
//
// Benchmarks repeat every configuration over several seeds; this module
// aggregates the per-seed measurements into mean / stddev / min / max /
// percentiles and normal-approximation confidence intervals.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ftc::util {

/// Streaming accumulator (Welford) for mean and variance. Suitable when the
/// individual samples need not be retained.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Arithmetic mean of the observations (0 if empty).
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 if fewer than two observations).
  [[nodiscard]] double variance() const noexcept;
  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation (+inf if empty).
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation (-inf if empty).
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One-shot summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;  ///< 10th percentile
  double p90 = 0.0;  ///< 90th percentile

  /// Half-width of the ~95% normal-approximation confidence interval of the
  /// mean (1.96 * stddev / sqrt(count); 0 for count < 2).
  double ci95_halfwidth = 0.0;

  /// Renders "mean ± ci" with the given precision, e.g. "3.142 ± 0.01".
  [[nodiscard]] std::string mean_ci_string(int precision = 3) const;
};

/// Computes a Summary of `samples`. An empty span yields a zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Linear-interpolation percentile of `sorted` (must be ascending),
/// q in [0, 1]. Precondition: sorted is non-empty.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}. Requires
/// xs.size() == ys.size() >= 2 and xs not all equal.
[[nodiscard]] std::pair<double, double> linear_fit(
    std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient of two equal-length samples (0 if either
/// sample is constant).
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace ftc::util
