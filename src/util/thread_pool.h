// Persistent worker pool for deterministic fork-join parallelism.
//
// The simulator's parallel round engine shards nodes across threads every
// round; spawning threads per round would dominate the runtime, so the pool
// keeps its workers alive across run() calls. run() is a strict barrier: it
// dispatches `tasks` independent task indices to the workers (the calling
// thread participates too) and returns only when every task has finished.
//
// Determinism contract: the pool itself imposes no ordering between tasks —
// callers get reproducible results by making tasks write to disjoint,
// task-indexed state and merging sequentially after run() returns. That is
// exactly how SyncNetwork's parallel mode uses it (see network.h).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftc::util {

/// Fixed-size fork-join pool. `threads` counts the calling thread, so a
/// ThreadPool(4) spawns 3 workers and run() uses 4 execution streams.
/// Not thread-safe: run() must not be called concurrently with itself.
class ThreadPool {
 public:
  /// threads >= 1. ThreadPool(1) spawns no workers; run() executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution streams (spawned workers + the caller).
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(0), ..., fn(tasks - 1), each exactly once, distributed over the
  /// pool. Blocks until all calls have returned. fn must not throw.
  void run(int tasks, const std::function<void(int)>& fn);

  /// Threads the hardware supports (>= 1); the default width for callers
  /// that do not specify one.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  void worker_loop();
  /// Claims and executes tasks of job generation `gen` until none remain or
  /// a newer job has been published. `fn` is dereferenced only after a
  /// successful claim, so a stale caller holding a pointer to a completed
  /// job's (possibly destroyed) function never invokes it.
  void drain_tasks(const std::function<void(int)>* fn, int tasks,
                   std::uint64_t gen);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mutex_
  int tasks_ = 0;                                  // guarded by mutex_
  int next_task_ = 0;                              // guarded by mutex_
  int completed_ = 0;                              // guarded by mutex_
  std::uint64_t generation_ = 0;                   // guarded by mutex_
  bool stop_ = false;                              // guarded by mutex_
};

}  // namespace ftc::util
