// Persistent worker pool for deterministic fork-join parallelism.
//
// The simulator's parallel round engine dispatches two to three short
// parallel phases per round; at a million rounds per run the pool's dispatch
// and barrier costs are hot-path costs. The pool therefore avoids mutexes
// and condition variables entirely on the dispatch path:
//
//   * Task claiming is a single atomic compare-exchange on a packed
//     (generation, next-task) word. Packing the job generation into the same
//     word as the task cursor makes the stale-worker race (a worker from job
//     k-1 claiming a task of job k through job k-1's destroyed function)
//     structurally impossible: a claim succeeds only if the generation half
//     of the word still matches the claimer's job.
//   * Workers claim `grain` consecutive task indices per CAS so fine-grained
//     task lists amortize the claim to one atomic RMW per chunk.
//   * The completion barrier is a wait-free epoch counter: the worker whose
//     chunk completes the job bumps `done_epoch_` and wakes the caller via
//     C++20 atomic notify — no condvar round-trips, and a caller that
//     finished the last task itself never blocks at all.
//
// run() is a strict barrier: it dispatches task indices [0, tasks) to the
// workers (the calling thread participates too) and returns only when every
// task has finished.
//
// Determinism contract: the pool itself imposes no ordering between tasks —
// callers get reproducible results by making tasks write to disjoint,
// task-indexed state and merging sequentially after run() returns. That is
// exactly how SyncNetwork's parallel mode uses it (see network.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftc::util {

/// Fixed-size fork-join pool. `threads` counts the calling thread, so a
/// ThreadPool(4) spawns 3 workers and run() uses 4 execution streams.
/// Not thread-safe: run() must not be called concurrently with itself.
class ThreadPool {
 public:
  /// threads >= 1. ThreadPool(1) spawns no workers; run() executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution streams (spawned workers + the caller).
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(0), ..., fn(tasks - 1), each exactly once, distributed over the
  /// pool. Blocks until all calls have returned. fn must not throw.
  /// `grain` >= 1 is the number of consecutive task indices a worker claims
  /// per atomic operation; jobs with tasks <= grain run inline on the caller
  /// (there is nothing to parallelize that would repay a wakeup).
  void run(int tasks, const std::function<void(int)>& fn, int grain = 1);

  /// Threads the hardware supports (>= 1); the default width for callers
  /// that do not specify one.
  [[nodiscard]] static int hardware_threads() noexcept;

  /// Scheduling-overhead counters, accumulated while perf accounting is
  /// enabled and drained by the owner between jobs. Both are wall-clock
  /// facts: they feed the obs perf plane's side channel, never anything
  /// determinism-compared.
  struct PerfCounters {
    std::int64_t barrier_wait_ns = 0;  ///< caller blocked on the epoch barrier
    std::int64_t claim_stall_ns = 0;   ///< drain time not spent running tasks
  };

  /// Enables the counters (two extra clock reads per drain and per caller
  /// wait; off by default so the plain dispatch path stays clock-free).
  void set_perf_enabled(bool enabled) noexcept {
    perf_enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Returns the accumulated counters and zeroes them. Owner-thread only,
  /// outside run() (workers are quiescent between jobs).
  [[nodiscard]] PerfCounters drain_perf() noexcept {
    return {perf_barrier_wait_ns_.exchange(0, std::memory_order_relaxed),
            perf_claim_stall_ns_.exchange(0, std::memory_order_relaxed)};
  }

 private:
  // claim_ layout: high 40 bits job generation, low 24 bits next task index.
  static constexpr int kTaskBits = 24;
  static constexpr std::uint64_t kTaskMask = (1ULL << kTaskBits) - 1;
  /// Largest task count run() accepts (16M; shard counts are tiny).
  static constexpr int kMaxTasks = static_cast<int>(kTaskMask);

  void worker_loop();
  /// Claims and executes chunks of job generation `gen` until none remain or
  /// a newer job has been published (the generation half of claim_ changed).
  void drain_tasks(const std::function<void(int)>* fn, int tasks, int grain,
                   std::uint64_t gen);

  std::vector<std::thread> workers_;
  // Job publication. The descriptor fields are written by run() and read by
  // a freshly woken worker under job_mutex_, which makes each worker's
  // snapshot of (fn, tasks, grain, generation) internally consistent — a
  // worker can never pair job k's function with job k+1's task count. The
  // mutex is touched once per wakeup and once per dispatch, never per task
  // or per barrier, so the hot paths below stay lock-free.
  std::mutex job_mutex_;
  const std::function<void(int)>* job_ = nullptr;
  int tasks_ = 0;
  int grain_ = 1;
  bool stop_ = false;
  std::atomic<std::uint64_t> generation_{0};  ///< workers wait on this
  std::atomic<std::uint64_t> claim_{0};       ///< packed (generation, cursor)
  std::atomic<int> completed_{0};             ///< tasks finished this job
  std::atomic<std::uint64_t> done_epoch_{0};  ///< caller waits on this
  // Perf accounting (relaxed: drained only at quiescent points).
  std::atomic<bool> perf_enabled_{false};
  std::atomic<std::int64_t> perf_barrier_wait_ns_{0};
  std::atomic<std::int64_t> perf_claim_stall_ns_{0};
};

}  // namespace ftc::util
