#include "util/cli.h"

#include <stdexcept>

namespace ftc::util {

Args::Args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Args::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  try {
    return std::stoll(*raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + "=" + *raw + ": not an integer");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  try {
    return std::stod(*raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + "=" + *raw + ": not a number");
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  if (*raw == "1" || *raw == "true" || *raw == "yes" || *raw == "on") {
    return true;
  }
  if (*raw == "0" || *raw == "false" || *raw == "no" || *raw == "off") {
    return false;
  }
  throw std::invalid_argument("--" + key + "=" + *raw + ": not a boolean");
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  try {
    return std::stoull(*raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + "=" + *raw +
                                ": not an unsigned integer");
  }
}

std::vector<long long> Args::get_int_list(
    const std::string& key, std::vector<long long> fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  std::vector<long long> out;
  std::string token;
  for (std::size_t i = 0; i <= raw->size(); ++i) {
    if (i == raw->size() || (*raw)[i] == ',') {
      if (!token.empty()) {
        try {
          out.push_back(std::stoll(token));
        } catch (const std::exception&) {
          throw std::invalid_argument("--" + key + ": bad element '" + token +
                                      "'");
        }
        token.clear();
      }
    } else {
      token += (*raw)[i];
    }
  }
  return out;
}

ObsFlags parse_obs_flags(const Args& args) {
  ObsFlags flags;
  flags.trace_path = args.get_string("trace", "");
  flags.metrics_path = args.get_string("metrics", "");
  flags.categories = args.get_string("trace-categories", "");
  flags.severity = args.get_string("trace-severity", "");
  flags.capacity = args.get_int("trace-capacity", flags.capacity);
  if (args.has("perf")) {
    flags.perf = true;
    // Bare `--perf` parses as value "1"; treat that as "default path".
    const std::string path = args.get_string("perf", "");
    flags.perf_path = (path.empty() || path == "1") ? "perf.jsonl" : path;
  }
  return flags;
}

}  // namespace ftc::util
