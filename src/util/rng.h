// Deterministic random number generation for reproducible experiments.
//
// Every source of randomness in the library flows through util::Rng, seeded
// explicitly by the caller. Rng::split() derives statistically independent
// child streams (e.g. one per simulated node) from a parent seed, so a whole
// distributed execution is a pure function of a single 64-bit seed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ftc::util {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used both as the
/// seed-expansion function and as the stream-splitting hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic pseudo-random generator (xoshiro256** core, SplitMix64
/// seeding). Satisfies the needs of simulation workloads: fast, 2^256-1
/// period, and cheap to fork into independent streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire future output is determined by
  /// `seed`. Two Rng objects with equal seeds produce equal sequences.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Minimum value returned by operator() (for UniformRandomBitGenerator).
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  /// Maximum value returned by operator() (for UniformRandomBitGenerator).
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  /// Returns the next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Returns a uniformly distributed integer in the closed range [lo, hi].
  /// Precondition: lo <= hi.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo,
                                          std::uint64_t hi) noexcept;

  /// Returns a uniformly distributed integer in the closed range [lo, hi].
  /// Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniform_i64(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Returns a uniformly distributed index in [0, n). Precondition: n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Returns a double uniformly distributed in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Returns a double uniformly distributed in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Returns true with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Returns a standard normal (mean 0, stddev 1) variate via Box-Muller.
  [[nodiscard]] double normal() noexcept;

  /// Returns an exponentially distributed variate with rate lambda > 0.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Derives an independent child generator identified by `stream`.
  /// split(a) and split(b) for a != b yield decorrelated sequences, and the
  /// parent's own sequence is unaffected (the parent state is hashed, not
  /// advanced).
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples `count` distinct indices from [0, n) without replacement,
  /// returned in ascending order. Precondition: count <= n.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t count);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so split() can derive children
};

}  // namespace ftc::util
