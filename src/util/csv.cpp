#include "util/csv.h"

#include <stdexcept>

namespace ftc::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::vector<std::string> parse_csv_record(const std::string& text,
                                          std::size_t& pos) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  const std::size_t n = text.size();
  while (pos < n) {
    const char ch = text[pos];
    if (quoted) {
      if (ch == '"') {
        if (pos + 1 < n && text[pos + 1] == '"') {  // doubled quote
          cell += '"';
          pos += 2;
          continue;
        }
        quoted = false;
        ++pos;
        if (pos < n && text[pos] != ',' && text[pos] != '\n' &&
            text[pos] != '\r') {
          throw std::invalid_argument(
              "parse_csv_record: data after closing quote at offset " +
              std::to_string(pos));
        }
        continue;
      }
      cell += ch;
      ++pos;
      continue;
    }
    if (ch == '"' && cell.empty()) {
      quoted = true;
      ++pos;
      continue;
    }
    if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
      ++pos;
      continue;
    }
    if (ch == '\n' || ch == '\r') {
      if (ch == '\r' && pos + 1 < n && text[pos + 1] == '\n') ++pos;
      ++pos;
      cells.push_back(std::move(cell));
      return cells;
    }
    cell += ch;
    ++pos;
  }
  if (quoted) {
    throw std::invalid_argument("parse_csv_record: unterminated quoted cell");
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    records.push_back(parse_csv_record(text, pos));
  }
  return records;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace ftc::util
