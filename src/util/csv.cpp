#include "util/csv.h"

#include <stdexcept>

namespace ftc::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace ftc::util
