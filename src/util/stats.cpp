#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ftc::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string Summary::mean_ci_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean, precision,
                ci95_halfwidth);
  return buf;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double x : sorted) rs.add(x);

  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile_sorted(sorted, 0.5);
  s.p10 = percentile_sorted(sorted, 0.10);
  s.p90 = percentile_sorted(sorted, 0.90);
  if (s.count >= 2) {
    s.ci95_halfwidth = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

std::pair<double, double> linear_fit(std::span<const double> xs,
                                     std::span<const double> ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  assert(denom != 0.0 && "x values must not all be equal");
  const double b = (n * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / n;
  return {a, b};
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  RunningStats rx, ry;
  for (double x : xs) rx.add(x);
  for (double y : ys) ry.add(y);
  if (rx.stddev() == 0.0 || ry.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - rx.mean()) * (ys[i] - ry.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (rx.stddev() * ry.stddev());
}

}  // namespace ftc::util
