#include "util/thread_pool.h"

#include <cassert>

namespace ftc::util {

ThreadPool::ThreadPool(int threads) {
  assert(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::drain_tasks(const std::function<void(int)>* fn, int tasks,
                             std::uint64_t gen) {
  for (;;) {
    int task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Generation guard: after a job's final ++completed_, run() may return
      // and publish a new job before this thread re-reaches the claim check.
      // next_task_/completed_ then belong to the new job, so claiming on
      // `next_task_ < tasks` alone would run a task of the new job through
      // the old (possibly destroyed) fn and break the new job's barrier.
      if (generation_ != gen || next_task_ >= tasks) return;
      task = next_task_++;
    }
    // Between the claim above and the ++completed_ below, completed_ < tasks
    // holds for generation `gen`, so run() cannot return and the job (and
    // *fn) stays alive while we execute.
    (*fn)(task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
      if (completed_ == tasks) job_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_;
      tasks = tasks_;
    }
    drain_tasks(fn, tasks, seen_generation);
  }
}

void ThreadPool::run(int tasks, const std::function<void(int)>& fn) {
  assert(tasks >= 0);
  if (tasks == 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    tasks_ = tasks;
    next_task_ = 0;
    completed_ = 0;
    gen = ++generation_;
  }
  work_ready_.notify_all();
  drain_tasks(&fn, tasks, gen);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return completed_ == tasks_; });
    job_ = nullptr;
  }
}

}  // namespace ftc::util
