#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ftc::util {

namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  assert(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    stop_ = true;
    // Bump the generation so sleeping workers wake, observe stop_, and exit.
    // The claim word is not re-published, so a worker racing past the check
    // can claim nothing from the dead generation.
    generation_.fetch_add(1, std::memory_order_release);
  }
  generation_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::drain_tasks(const std::function<void(int)>* fn, int tasks,
                             int grain, std::uint64_t gen) {
  // Claim-stall accounting: drain time minus task-execution time is the
  // scheduling overhead this thread paid (CAS retries, cache traffic on the
  // claim word, chunk bookkeeping). Two clock reads per chunk when enabled,
  // zero clock reads otherwise.
  const bool perf = perf_enabled_.load(std::memory_order_relaxed);
  const std::int64_t t_enter = perf ? now_ns() : 0;
  std::int64_t exec_ns = 0;
  std::uint64_t word = claim_.load(std::memory_order_acquire);
  for (;;) {
    // Generation guard: after a job's final completion, run() may return and
    // publish a new job before this thread re-reaches the claim check. The
    // generation is packed into the claim word itself, so a CAS from a stale
    // snapshot can never hand this thread a task of the new job — the
    // comparison fails, the reload observes the new generation, and the
    // loop leaves without touching the (possibly destroyed) old fn.
    if ((word >> kTaskBits) != gen) break;
    const int begin = static_cast<int>(word & kTaskMask);
    if (begin >= tasks) break;
    const int end = std::min(begin + grain, tasks);
    if (!claim_.compare_exchange_weak(
            word, word + static_cast<std::uint64_t>(end - begin),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      continue;  // word was reloaded by the failed CAS
    }
    // Between the successful claim above and the completed_ add below,
    // completed_ < tasks holds for generation `gen`, so run() cannot return
    // and the job (and *fn) stays alive while we execute.
    const std::int64_t t_exec = perf ? now_ns() : 0;
    for (int task = begin; task < end; ++task) (*fn)(task);
    if (perf) exec_ns += now_ns() - t_exec;
    const int done =
        completed_.fetch_add(end - begin, std::memory_order_acq_rel) +
        (end - begin);
    assert(done <= tasks);
    if (done == tasks) {
      done_epoch_.fetch_add(1, std::memory_order_release);
      done_epoch_.notify_all();
    }
    word = claim_.load(std::memory_order_acquire);
  }
  if (perf) {
    perf_claim_stall_ns_.fetch_add(now_ns() - t_enter - exec_ns,
                                   std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    generation_.wait(seen, std::memory_order_acquire);
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    int grain = 1;
    std::uint64_t gen = 0;
    {
      // The mutex makes the job snapshot (fn, tasks, grain, generation)
      // internally consistent; it is taken once per wakeup, never per task,
      // so the dispatch and barrier hot paths stay lock-free.
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (stop_) return;
      gen = generation_.load(std::memory_order_relaxed);
      if (gen == seen) continue;  // spurious wake
      seen = gen;
      fn = job_;
      tasks = tasks_;
      grain = grain_;
    }
    if (fn != nullptr) drain_tasks(fn, tasks, grain, gen);
  }
}

void ThreadPool::run(int tasks, const std::function<void(int)>& fn,
                     int grain) {
  assert(tasks >= 0 && tasks <= kMaxTasks);
  assert(grain >= 1);
  if (tasks == 0) return;
  if (workers_.empty() || tasks <= grain) {
    for (int i = 0; i < tasks; ++i) fn(i);
    return;
  }
  const std::uint64_t done_target =
      done_epoch_.load(std::memory_order_relaxed) + 1;
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    job_ = &fn;
    tasks_ = tasks;
    grain_ = grain;
    completed_.store(0, std::memory_order_relaxed);
    gen = generation_.load(std::memory_order_relaxed) + 1;
    claim_.store(gen << kTaskBits, std::memory_order_relaxed);
    generation_.store(gen, std::memory_order_release);
  }
  generation_.notify_all();
  drain_tasks(&fn, tasks, grain, gen);
  // Wait-free in the common case: if the caller executed the last task the
  // epoch already advanced and the loop falls straight through; otherwise
  // block on the epoch word until the finishing worker bumps it. The wait is
  // the caller's barrier-wait time: clocked only once blocking is certain,
  // so the wait-free fall-through stays clock-free even with perf on.
  std::int64_t wait_t0 = 0;
  for (;;) {
    const std::uint64_t epoch = done_epoch_.load(std::memory_order_acquire);
    if (epoch >= done_target) break;
    if (wait_t0 == 0 && perf_enabled_.load(std::memory_order_relaxed)) {
      wait_t0 = now_ns();
    }
    done_epoch_.wait(epoch, std::memory_order_acquire);
  }
  if (wait_t0 != 0) {
    perf_barrier_wait_ns_.fetch_add(now_ns() - wait_t0,
                                    std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    job_ = nullptr;
  }
}

}  // namespace ftc::util
