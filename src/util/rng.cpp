#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace ftc::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // Guard against the (astronomically unlikely) all-zero state, which is the
  // single fixed point of xoshiro256**.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == max()) {
    return (*this)();
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % bound;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  std::uint64_t draw = uniform_u64(0, span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; discards the second variate for statelessness.
  double u1 = uniform01();
  while (u1 <= 0.0) {
    u1 = uniform01();
  }
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = uniform01();
  while (u <= 0.0) {
    u = uniform01();
  }
  return -std::log(u) / lambda;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Hash (seed, stream) into a fresh seed; children of distinct streams are
  // decorrelated because SplitMix64 is a bijective avalanche mixer.
  std::uint64_t h = seed_ ^ (0xD1B54A32D192ED03ULL * (stream + 1));
  const std::uint64_t child_seed = splitmix64(h);
  return Rng{child_seed};
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t count) {
  assert(count <= n);
  // Floyd's algorithm: O(count) expected insertions.
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    const std::size_t candidate = static_cast<std::size_t>(uniform_u64(0, j));
    if (std::find(picked.begin(), picked.end(), candidate) != picked.end()) {
      picked.push_back(j);
    } else {
      picked.push_back(candidate);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace ftc::util
