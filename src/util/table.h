// Formatted ASCII table output for benchmark harnesses.
//
// Every bench binary prints its experiment as a table whose rows mirror the
// series the paper's claims describe. Cells are added row by row; the table
// computes column widths and renders with an aligned header and rule lines.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftc::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table builder.
///
/// Usage:
///   Table t({"n", "ratio"});
///   t.add_row({"100", "1.52"});
///   t.print(std::cout);
class Table {
 public:
  /// Creates a table with the given header cells. All columns default to
  /// right alignment except the first, which is left aligned (typical for a
  /// label column followed by numeric columns).
  explicit Table(std::vector<std::string> header);

  /// Overrides the alignment of column `col`.
  void set_align(std::size_t col, Align align);

  /// Appends one row. The row may have fewer cells than the header (missing
  /// cells render empty) but not more.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal rule between the rows added before and after.
  void add_rule();

  /// Number of data rows added so far (rules not counted).
  [[nodiscard]] std::size_t row_count() const noexcept;

  /// Renders the table to `os`, with an optional title line above it.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders the table to a string (same format as print()).
  [[nodiscard]] std::string to_string(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  // A row with the special sentinel {kRuleSentinel} renders as a rule.
  std::vector<std::vector<std::string>> rows_;
  static const std::string kRuleSentinel;
};

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats an integral value in decimal.
[[nodiscard]] std::string fmt(long long value);
[[nodiscard]] std::string fmt(unsigned long long value);
[[nodiscard]] std::string fmt(long value);
[[nodiscard]] std::string fmt(unsigned long value);
[[nodiscard]] std::string fmt(int value);
[[nodiscard]] std::string fmt(unsigned int value);

}  // namespace ftc::util
