// Minimal CSV emission for machine-readable benchmark output.
//
// Bench binaries accept `--csv=<path>`; when given, each table row is also
// appended to the CSV file so results can be post-processed or plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ftc::util {

/// Writes rows of string cells as RFC-4180-ish CSV (cells containing commas,
/// quotes or newlines are quoted; embedded quotes are doubled).
class CsvWriter {
 public:
  /// Creates a writer that does nothing (no file). Useful as the default when
  /// no --csv flag is provided.
  CsvWriter() = default;

  /// Opens `path` for writing (truncating) and writes `header` as the first
  /// row. Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True if this writer is bound to an open file.
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }

  /// Writes one data row. No-op when not open.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

/// Escapes a single CSV cell per the quoting rules described on CsvWriter.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Parses one CSV record starting at offset `pos` of `text` into cells,
/// inverting CsvWriter's quoting (doubled quotes, embedded commas and
/// newlines inside quoted cells). Advances `pos` past the record and its
/// terminator; `pos == text.size()` after the call means the input is
/// exhausted. Accepts "\n", "\r\n", and end-of-input as terminators. Throws
/// std::invalid_argument on an unterminated quoted cell or on stray data
/// after a closing quote.
[[nodiscard]] std::vector<std::string> parse_csv_record(
    const std::string& text, std::size_t& pos);

/// Parses a whole CSV document into records (convenience wrapper around
/// parse_csv_record). A trailing newline does not produce an empty record.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

}  // namespace ftc::util
