#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ftc::util {

const std::string Table::kRuleSentinel = "\x01__rule__";

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t col, Align align) {
  assert(col < aligns_.size());
  aligns_[col] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= header_.size());
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.push_back({kRuleSentinel}); }

std::size_t Table::row_count() const noexcept {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (row.empty() || row[0] != kRuleSentinel) ++n;
  }
  return n;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kRuleSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_cell = [&](const std::string& text, std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << (widths.empty() ? "+" : "-+") << '\n';
  };

  if (!title.empty()) os << title << '\n';
  emit_rule();
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "| " : " | ");
    emit_cell(header_[c], c);
  }
  os << " |\n";
  emit_rule();
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kRuleSentinel) {
      emit_rule();
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      emit_cell(row[c], c);
    }
    os << " |\n";
  }
  emit_rule();
}

std::string Table::to_string(const std::string& title) const {
  std::ostringstream oss;
  print(oss, title);
  return oss.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt(long long value) { return std::to_string(value); }
std::string fmt(unsigned long long value) { return std::to_string(value); }
std::string fmt(long value) { return std::to_string(value); }
std::string fmt(unsigned long value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }
std::string fmt(unsigned int value) { return std::to_string(value); }

}  // namespace ftc::util
