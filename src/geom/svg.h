// SVG rendering of unit disk deployments — visual inspection of clusterings.
//
// Renders nodes as dots, radio links as thin segments, and any number of
// highlighted node layers (e.g. the k-fold dominating set, then the
// connectors added by the CDS extension) in distinct colors. Pure string
// output; no external dependencies.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"

namespace ftc::geom {

/// One overlay of emphasized nodes.
struct SvgLayer {
  std::vector<graph::NodeId> nodes;
  std::string color = "#1f77b4";  ///< CSS color of the layer's markers
  double radius = 3.5;            ///< marker radius in px
  std::string label;              ///< legend entry (omitted when empty)
};

/// Rendering knobs.
struct SvgOptions {
  double canvas_px = 800.0;   ///< width = height of the drawing area
  double margin_px = 20.0;    ///< border around the deployment
  bool draw_edges = true;     ///< radio links as light segments
  std::string node_color = "#b0b0b0";
  double node_radius = 1.8;
};

/// Writes an SVG of `udg` with the given overlay layers to `os`.
void write_svg(std::ostream& os, const UnitDiskGraph& udg,
               std::span<const SvgLayer> layers, const SvgOptions& options = {});

/// Convenience: renders to a string.
[[nodiscard]] std::string svg_string(const UnitDiskGraph& udg,
                                     std::span<const SvgLayer> layers,
                                     const SvgOptions& options = {});

/// Convenience: writes the SVG to a file. Throws std::runtime_error on IO
/// failure.
void save_svg(const std::string& path, const UnitDiskGraph& udg,
              std::span<const SvgLayer> layers, const SvgOptions& options = {});

}  // namespace ftc::geom
