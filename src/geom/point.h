// 2D Euclidean points for unit disk graph deployments.
#pragma once

#include <cmath>

namespace ftc::geom {

/// A point in the Euclidean plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;

  Point operator+(const Point& o) const noexcept { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const noexcept { return {x - o.x, y - o.y}; }
  Point operator*(double s) const noexcept { return {x * s, y * s}; }
};

/// Squared Euclidean distance (avoids the sqrt when only comparisons are
/// needed, e.g. in the UDG edge test).
[[nodiscard]] inline double dist_sq(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
[[nodiscard]] inline double dist(const Point& a, const Point& b) noexcept {
  return std::sqrt(dist_sq(a, b));
}

/// Euclidean norm of p viewed as a vector.
[[nodiscard]] inline double norm(const Point& p) noexcept {
  return std::sqrt(p.x * p.x + p.y * p.y);
}

}  // namespace ftc::geom
