// Hexagonal-lattice disk coverings — the geometry behind Figure 1 and
// Lemma 5.3 of the paper.
//
// The analysis of Algorithm 3 tiles the plane with small disks C_i of radius
// θ_i/2 arranged on a hexagonal lattice, and for each C_i considers the
// concentric disk D_i of radius 3·θ_i/2 (which intersects 19 lattice disks,
// Figure 1). Lemma 5.3 bounds α(i), the number of lattice disks needed to
// cover a disk of radius 1/2, by η/(4θ_i²) with η = 16π/(3√3).
//
// This module provides the lattice enumeration, the α(i) count, and
// per-disk point counting used by the leaders-per-disk experiment (E5).
#pragma once

#include <vector>

#include "geom/point.h"
#include "graph/graph.h"

namespace ftc::geom {

/// η = 16π/(3√3), the constant of Lemma 5.3.
[[nodiscard]] double lemma53_eta() noexcept;

/// Centers of disks of radius `disk_radius` arranged on a hexagonal lattice
/// so that the union of the disks covers the whole plane, restricted to the
/// centers whose disk intersects the disk of radius `region_radius` around
/// `center`. The lattice is anchored at `center`.
///
/// Lattice geometry: for covering, adjacent centers sit at distance
/// √3·r (rows of pitch √3·r, row spacing 1.5·r, odd rows offset by √3·r/2);
/// every point of the plane is then within r of some center.
[[nodiscard]] std::vector<Point> hex_cover_centers(Point center,
                                                   double region_radius,
                                                   double disk_radius);

/// α(i) as measured: the number of hexagonal-lattice disks of radius
/// `disk_radius` that intersect (and hence are used to cover) a disk of
/// radius `region_radius`. Equals hex_cover_centers(...).size().
[[nodiscard]] std::size_t measured_alpha(double region_radius,
                                         double disk_radius);

/// The bound of Lemma 5.3: η/(4·(disk_radius·2/θ... )) — in the paper's
/// terms, for small-disk radius θ_i/2 covering a region of radius 1/2,
/// the bound is η / (4·θ_i²) where θ_i = 2·disk_radius.
[[nodiscard]] double lemma53_bound(double disk_radius);

/// For each center in `centers`, counts how many of the points indexed by
/// `subset` lie within `disk_radius` of it. Used to count leaders per
/// covering disk (Lemma 5.5 / 5.6 experiments).
[[nodiscard]] std::vector<std::size_t> count_points_per_disk(
    std::span<const Point> points, std::span<const graph::NodeId> subset,
    std::span<const Point> centers, double disk_radius);

/// Verifies Figure 1's containment claim for one lattice cell: the number of
/// lattice disks of radius r that intersect the concentric disk of radius
/// 3r (D_i). The paper states D_i fully or partially covers 19 disks C_i.
[[nodiscard]] std::size_t disks_intersecting_big_disk();

/// Checks the defining property of the covering: every point of the sampled
/// region of radius `region_radius` is within `disk_radius` of some center.
/// Samples on a grid of pitch `sample_step`. Returns true when covered.
[[nodiscard]] bool covering_is_complete(Point center, double region_radius,
                                        double disk_radius,
                                        double sample_step);

}  // namespace ftc::geom
