// Unit disk graphs (UDG): the paper's model for wireless connectivity
// (Section 3). Nodes are points in the plane; two nodes are adjacent iff
// their Euclidean distance is at most the communication radius (1.0 after
// normalization).
//
// A UnitDiskGraph carries both the combinatorial graph and the coordinates,
// because Algorithm 3 assumes nodes can sense distances to their neighbors.
#pragma once

#include <string>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::geom {

/// A unit disk graph: topology plus embedding.
struct UnitDiskGraph {
  graph::Graph graph;           ///< adjacency at distance <= radius
  std::vector<Point> positions; ///< one per node, index = NodeId
  double radius = 1.0;          ///< communication radius used to build graph

  /// Number of nodes (alias for graph.n()).
  [[nodiscard]] graph::NodeId n() const noexcept { return graph.n(); }

  /// Euclidean distance between nodes u and v. This is what the "distance
  /// sensing" assumption of Section 3 exposes to the algorithms.
  [[nodiscard]] double distance(graph::NodeId u,
                                graph::NodeId v) const noexcept {
    return dist(positions[static_cast<std::size_t>(u)],
                positions[static_cast<std::size_t>(v)]);
  }

  /// Graph neighbors of v within distance tau — the paper's N_v(τ),
  /// excluding v itself. Only correct for tau <= radius (which is all the
  /// algorithms need: Algorithm 3 uses θ <= 1/2 <= radius).
  [[nodiscard]] std::vector<graph::NodeId> neighbors_within(
      graph::NodeId v, double tau) const;
};

/// Builds the unit disk graph over `points` with communication radius
/// `radius`. Uses spatial grid hashing: O(n + m) expected for bounded
/// densities.
[[nodiscard]] UnitDiskGraph build_udg(std::vector<Point> points,
                                      double radius = 1.0);

/// n points uniform in the square [0, side] x [0, side].
[[nodiscard]] std::vector<Point> uniform_points(graph::NodeId n, double side,
                                                util::Rng& rng);

/// Clustered deployment: `clusters` Gaussian blobs with the given stddev,
/// blob centers uniform in [0, side]^2, points assigned round-robin and
/// clamped into the square. Models sensor dumps / hotspots.
[[nodiscard]] std::vector<Point> clustered_points(graph::NodeId n,
                                                  graph::NodeId clusters,
                                                  double side, double stddev,
                                                  util::Rng& rng);

/// Perturbed grid: ~n points on a square lattice filling [0, side]^2, each
/// jittered uniformly by at most `jitter` in each coordinate. The returned
/// vector may have slightly fewer than n points when n is not a perfect
/// square (exactly floor(sqrt(n))^2 points).
[[nodiscard]] std::vector<Point> perturbed_grid_points(graph::NodeId n,
                                                       double side,
                                                       double jitter,
                                                       util::Rng& rng);

/// Convenience: uniform deployment scaled so the *expected average degree*
/// is `target_avg_degree` (side chosen from n and the radius-1 disk area).
/// Returns the built UDG.
[[nodiscard]] UnitDiskGraph uniform_udg_with_degree(graph::NodeId n,
                                                    double target_avg_degree,
                                                    util::Rng& rng);

/// Saves a deployment as text: header "n radius", then one "x y" line per
/// node. Edges are not stored (they are recomputed by load_udg, which is
/// cheaper and keeps the file canonical). Throws std::runtime_error on IO
/// failure.
void save_udg(const std::string& path, const UnitDiskGraph& udg);

/// Loads a deployment saved by save_udg and rebuilds its graph.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] UnitDiskGraph load_udg(const std::string& path);

/// "Quasi unit disk" radio graph: real propagation is not a clean disk
/// (the motivation for the paper's general-graph algorithms). Starting from
/// the geometric connectivity of `udg`, each link is severed (an obstacle)
/// independently with probability `sever`, and `reflect_per_node · n`
/// long-range links between uniform random pairs are added (reflections).
/// The result is a plain Graph — by construction it need not be a UDG.
[[nodiscard]] graph::Graph quasi_udg(const UnitDiskGraph& udg, double sever,
                                     double reflect_per_node, util::Rng& rng);

}  // namespace ftc::geom
