#include "geom/dynamic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ftc::geom {

using graph::EdgeDelta;
using graph::NodeId;

DynamicUdg::DynamicUdg(const UnitDiskGraph& udg)
    : g_(udg.graph),
      pos_(udg.positions),
      active_(static_cast<std::size_t>(udg.n()), 1),
      radius_(udg.radius) {
  assert(radius_ > 0.0);
  cells_.reserve(static_cast<std::size_t>(udg.n()));
  for (NodeId v = 0; v < n(); ++v) grid_insert(v);
}

DynamicUdg::CellKey DynamicUdg::cell_of(const Point& p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / radius_)),
          static_cast<std::int64_t>(std::floor(p.y / radius_))};
}

void DynamicUdg::grid_insert(NodeId v) {
  cells_[cell_of(pos_[static_cast<std::size_t>(v)])].push_back(v);
}

void DynamicUdg::grid_erase(NodeId v) {
  const auto it = cells_.find(cell_of(pos_[static_cast<std::size_t>(v)]));
  assert(it != cells_.end());
  auto& bucket = it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), v));
  if (bucket.empty()) cells_.erase(it);
}

std::vector<NodeId> DynamicUdg::in_range(const Point& p,
                                         NodeId exclude) const {
  std::vector<NodeId> out;
  const CellKey base = cell_of(p);
  const double r_sq = radius_ * radius_;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find({base.cx + dx, base.cy + dy});
      if (it == cells_.end()) continue;
      for (NodeId w : it->second) {
        if (w == exclude) continue;
        if (dist_sq(p, pos_[static_cast<std::size_t>(w)]) <= r_sq) {
          out.push_back(w);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeId DynamicUdg::node_join(Point p, EdgeDelta& delta) {
  const NodeId v = g_.add_node();
  pos_.push_back(p);
  active_.push_back(1);
  for (NodeId w : in_range(p, v)) {
    g_.add_edge(v, w);
    delta.added.push_back(w < v ? graph::Edge{w, v} : graph::Edge{v, w});
  }
  grid_insert(v);
  return v;
}

void DynamicUdg::node_leave(NodeId v, EdgeDelta& delta) {
  if (!active(v)) return;
  grid_erase(v);
  active_[static_cast<std::size_t>(v)] = 0;
  auto removed = g_.isolate(v);
  delta.removed.insert(delta.removed.end(), removed.begin(), removed.end());
}

void DynamicUdg::node_move(NodeId v, Point p, EdgeDelta& delta) {
  if (!active(v)) return;
  grid_erase(v);
  pos_[static_cast<std::size_t>(v)] = p;
  grid_insert(v);
  const std::vector<NodeId> now = in_range(p, v);
  // Diff against the current (sorted) adjacency; both lists ascending.
  const auto old_span = g_.neighbors(v);
  const std::vector<NodeId> old(old_span.begin(), old_span.end());
  auto make = [v](NodeId w) {
    return w < v ? graph::Edge{w, v} : graph::Edge{v, w};
  };
  for (NodeId w : old) {
    if (!std::binary_search(now.begin(), now.end(), w)) {
      g_.remove_edge(v, w);
      delta.removed.push_back(make(w));
    }
  }
  for (NodeId w : now) {
    if (g_.add_edge(v, w)) delta.added.push_back(make(w));
  }
}

UnitDiskGraph DynamicUdg::to_udg() const {
  UnitDiskGraph udg;
  udg.graph = g_.to_graph();
  udg.positions = pos_;
  udg.radius = radius_;
  return udg;
}

}  // namespace ftc::geom
