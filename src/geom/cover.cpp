#include "geom/cover.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ftc::geom {

double lemma53_eta() noexcept {
  return 16.0 * std::numbers::pi / (3.0 * std::numbers::sqrt3);
}

std::vector<Point> hex_cover_centers(Point center, double region_radius,
                                     double disk_radius) {
  assert(region_radius > 0.0 && disk_radius > 0.0);
  // Covering lattice for disks of radius r: pitch √3·r within a row, rows
  // 1.5·r apart, odd rows offset √3·r/2. Any plane point is then within r of
  // a center (the hexagonal cell circumradius is exactly r).
  const double r = disk_radius;
  const double pitch = std::numbers::sqrt3 * r;
  const double row_gap = 1.5 * r;
  const double reach = region_radius + disk_radius;  // intersection condition

  std::vector<Point> centers;
  const auto j_max = static_cast<std::int64_t>(std::ceil(reach / row_gap));
  for (std::int64_t j = -j_max; j <= j_max; ++j) {
    const double y = center.y + static_cast<double>(j) * row_gap;
    const double offset = (j % 2 != 0) ? pitch / 2.0 : 0.0;
    const auto i_max =
        static_cast<std::int64_t>(std::ceil((reach + pitch) / pitch));
    for (std::int64_t i = -i_max; i <= i_max; ++i) {
      const double x = center.x + static_cast<double>(i) * pitch + offset;
      const Point c{x, y};
      if (dist(c, center) < reach) {
        centers.push_back(c);
      }
    }
  }
  return centers;
}

std::size_t measured_alpha(double region_radius, double disk_radius) {
  return hex_cover_centers({0.0, 0.0}, region_radius, disk_radius).size();
}

double lemma53_bound(double disk_radius) {
  // In the paper, small disks have radius θ_i/2 and the covered region has
  // radius 1/2; the bound is α(i) < η / (4 θ_i²).
  const double theta = 2.0 * disk_radius;
  return lemma53_eta() / (4.0 * theta * theta);
}

std::vector<std::size_t> count_points_per_disk(
    std::span<const Point> points, std::span<const graph::NodeId> subset,
    std::span<const Point> centers, double disk_radius) {
  std::vector<std::size_t> counts(centers.size(), 0);
  const double r_sq = disk_radius * disk_radius;
  for (graph::NodeId v : subset) {
    const Point& p = points[static_cast<std::size_t>(v)];
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (dist_sq(p, centers[c]) <= r_sq) {
        ++counts[c];
      }
    }
  }
  return counts;
}

std::size_t disks_intersecting_big_disk() {
  // Scale-invariant: lattice disks of radius 1, D_i of radius 3 centered on
  // a lattice point. "Fully or partially covered" = center distance < 3 + 1.
  const auto centers = hex_cover_centers({0.0, 0.0}, 3.0, 1.0);
  return centers.size();
}

bool covering_is_complete(Point center, double region_radius,
                          double disk_radius, double sample_step) {
  assert(sample_step > 0.0);
  const auto centers = hex_cover_centers(center, region_radius, disk_radius);
  const double r_sq = disk_radius * disk_radius;
  for (double x = center.x - region_radius; x <= center.x + region_radius;
       x += sample_step) {
    for (double y = center.y - region_radius; y <= center.y + region_radius;
         y += sample_step) {
      const Point p{x, y};
      if (dist(p, center) > region_radius) continue;  // outside the region
      bool covered = false;
      for (const Point& c : centers) {
        if (dist_sq(p, c) <= r_sq) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return true;
}

}  // namespace ftc::geom
