// Incrementally maintained unit disk graph (DESIGN.md §13).
//
// build_udg() computes a UDG from scratch with a spatial hash grid. The
// dynamic-clustering layer mutates the deployment one node at a time —
// joins, departures, waypoint moves — and rebuilding the whole topology per
// mutation would cost O(n + m). DynamicUdg keeps the same grid (cells of
// side `radius`, 3x3 neighbor-cell scans) live across mutations, so each
// mutation touches only the mutated node's geometric neighborhood: expected
// O(local density) per operation for bounded densities.
//
// Conventions shared with the rest of the repo:
//   - Departed nodes keep their id and become isolated (the
//     Graph::without_nodes / crash convention); ids are never reused.
//   - Joins append a fresh id at the end.
//   - The maintained adjacency is exactly { {u,v} : active(u) && active(v)
//     && dist(u,v) <= radius } — the brute-force rebuild equivalence the
//     DynamicOracle checks case by case.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/udg.h"
#include "graph/dynamic.h"

namespace ftc::geom {

/// A UDG that absorbs node_join/node_leave/node_move mutations, updating
/// edges incrementally via a persistent spatial hash grid.
class DynamicUdg {
 public:
  /// Starts from a built deployment; all nodes begin active.
  explicit DynamicUdg(const UnitDiskGraph& udg);

  /// Current adjacency (only active-active edges, by construction).
  [[nodiscard]] const graph::MutableGraph& graph() const noexcept {
    return g_;
  }

  [[nodiscard]] graph::NodeId n() const noexcept { return g_.n(); }

  [[nodiscard]] bool active(graph::NodeId v) const noexcept {
    return v >= 0 && v < n() && active_[static_cast<std::size_t>(v)] != 0;
  }

  /// One byte per node, 1 = active. Indexed by NodeId.
  [[nodiscard]] const std::vector<std::uint8_t>& active_flags() const noexcept {
    return active_;
  }

  [[nodiscard]] const std::vector<Point>& positions() const noexcept {
    return pos_;
  }

  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// Adds a node at p, links it to every active node within radius, and
  /// returns its id. All new edges land in `delta.added`.
  graph::NodeId node_join(Point p, graph::EdgeDelta& delta);

  /// Deactivates v and removes its incident edges (into `delta.removed`).
  /// No-op on an already-inactive or out-of-range id.
  void node_leave(graph::NodeId v, graph::EdgeDelta& delta);

  /// Moves v to p and rewrites its incident edges to match the new
  /// position: edges to nodes that fell out of range land in
  /// `delta.removed`, newly in-range nodes in `delta.added`. No-op on an
  /// inactive or out-of-range id.
  void node_move(graph::NodeId v, Point p, graph::EdgeDelta& delta);

  /// Freezes the current state into a UnitDiskGraph (inactive nodes stay as
  /// isolated ids, keeping indices aligned).
  [[nodiscard]] UnitDiskGraph to_udg() const;

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const noexcept {
      // Same splitmix64-based mixing as build_udg.
      std::uint64_t h =
          static_cast<std::uint64_t>(k.cx) * 0x9E3779B97F4A7C15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) * 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] CellKey cell_of(const Point& p) const noexcept;
  void grid_insert(graph::NodeId v);
  void grid_erase(graph::NodeId v);
  /// Active nodes (other than `exclude`) within radius of p, ascending id.
  [[nodiscard]] std::vector<graph::NodeId> in_range(
      const Point& p, graph::NodeId exclude) const;

  graph::MutableGraph g_;
  std::vector<Point> pos_;
  std::vector<std::uint8_t> active_;
  double radius_ = 1.0;
  std::unordered_map<CellKey, std::vector<graph::NodeId>, CellHash> cells_;
};

}  // namespace ftc::geom
