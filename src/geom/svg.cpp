#include "geom/svg.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ftc::geom {

using graph::NodeId;

void write_svg(std::ostream& os, const UnitDiskGraph& udg,
               std::span<const SvgLayer> layers, const SvgOptions& options) {
  // Bounding box of the deployment.
  double min_x = 0.0, min_y = 0.0, max_x = 1.0, max_y = 1.0;
  if (!udg.positions.empty()) {
    min_x = max_x = udg.positions.front().x;
    min_y = max_y = udg.positions.front().y;
    for (const Point& p : udg.positions) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  const double span = std::max({max_x - min_x, max_y - min_y, 1e-9});
  const double scale =
      (options.canvas_px - 2.0 * options.margin_px) / span;
  const double total = options.canvas_px;
  auto px = [&](const Point& p) {
    return Point{options.margin_px + (p.x - min_x) * scale,
                 // Flip y: SVG's origin is top-left.
                 total - options.margin_px - (p.y - min_y) * scale};
  };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total
     << "\" height=\"" << total << "\" viewBox=\"0 0 " << total << ' '
     << total << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (options.draw_edges) {
    os << "  <g stroke=\"#e0e0e0\" stroke-width=\"0.6\">\n";
    for (const graph::Edge& e : udg.graph.edges()) {
      const Point a = px(udg.positions[static_cast<std::size_t>(e.u)]);
      const Point b = px(udg.positions[static_cast<std::size_t>(e.v)]);
      os << "    <line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\""
         << b.x << "\" y2=\"" << b.y << "\"/>\n";
    }
    os << "  </g>\n";
  }

  os << "  <g fill=\"" << options.node_color << "\">\n";
  for (const Point& p : udg.positions) {
    const Point c = px(p);
    os << "    <circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
       << options.node_radius << "\"/>\n";
  }
  os << "  </g>\n";

  for (const SvgLayer& layer : layers) {
    os << "  <g fill=\"" << layer.color << "\">\n";
    for (NodeId v : layer.nodes) {
      const Point c = px(udg.positions[static_cast<std::size_t>(v)]);
      os << "    <circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
         << layer.radius << "\"/>\n";
    }
    os << "  </g>\n";
  }

  // Legend.
  double legend_y = options.margin_px;
  for (const SvgLayer& layer : layers) {
    if (layer.label.empty()) continue;
    os << "  <circle cx=\"" << options.margin_px << "\" cy=\"" << legend_y
       << "\" r=\"5\" fill=\"" << layer.color << "\"/>\n";
    os << "  <text x=\"" << options.margin_px + 10 << "\" y=\""
       << legend_y + 4 << "\" font-family=\"sans-serif\" font-size=\"12\">"
       << layer.label << "</text>\n";
    legend_y += 18.0;
  }

  os << "</svg>\n";
}

std::string svg_string(const UnitDiskGraph& udg,
                       std::span<const SvgLayer> layers,
                       const SvgOptions& options) {
  std::ostringstream oss;
  write_svg(oss, udg, layers, options);
  return oss.str();
}

void save_svg(const std::string& path, const UnitDiskGraph& udg,
              std::span<const SvgLayer> layers, const SvgOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_svg: cannot open " + path);
  write_svg(out, udg, layers, options);
  if (!out) throw std::runtime_error("save_svg: write failed " + path);
}

}  // namespace ftc::geom
