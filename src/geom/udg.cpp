#include "geom/udg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <numbers>
#include <unordered_map>

namespace ftc::geom {

using graph::Edge;
using graph::NodeId;

std::vector<NodeId> UnitDiskGraph::neighbors_within(NodeId v,
                                                    double tau) const {
  std::vector<NodeId> out;
  const double tau_sq = tau * tau;
  const Point pv = positions[static_cast<std::size_t>(v)];
  for (NodeId w : graph.neighbors(v)) {
    if (dist_sq(pv, positions[static_cast<std::size_t>(w)]) <= tau_sq) {
      out.push_back(w);
    }
  }
  return out;
}

UnitDiskGraph build_udg(std::vector<Point> points, double radius) {
  assert(radius > 0.0);
  const auto n = static_cast<NodeId>(points.size());

  // Spatial hash: cells of side `radius`; a node's neighbors lie in its own
  // or one of the 8 adjacent cells.
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const noexcept {
      // 2D -> 1D mixing; constants from splitmix64.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9E3779B97F4A7C15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) * 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<CellKey, std::vector<NodeId>, CellHash> cells;
  cells.reserve(static_cast<std::size_t>(n));
  auto cell_of = [radius](const Point& p) -> CellKey {
    return {static_cast<std::int64_t>(std::floor(p.x / radius)),
            static_cast<std::int64_t>(std::floor(p.y / radius))};
  };
  for (NodeId v = 0; v < n; ++v) {
    cells[cell_of(points[static_cast<std::size_t>(v)])].push_back(v);
  }

  const double r_sq = radius * radius;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    const Point pv = points[static_cast<std::size_t>(v)];
    const CellKey base = cell_of(pv);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells.find({base.cx + dx, base.cy + dy});
        if (it == cells.end()) continue;
        for (NodeId w : it->second) {
          if (w <= v) continue;  // each pair once
          if (dist_sq(pv, points[static_cast<std::size_t>(w)]) <= r_sq) {
            edges.push_back({v, w});
          }
        }
      }
    }
  }

  UnitDiskGraph udg;
  udg.graph = graph::Graph::from_edges(n, edges);
  udg.positions = std::move(points);
  udg.radius = radius;
  return udg;
}

std::vector<Point> uniform_points(NodeId n, double side, util::Rng& rng) {
  assert(n >= 0 && side > 0.0);
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    points.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return points;
}

std::vector<Point> clustered_points(NodeId n, NodeId clusters, double side,
                                    double stddev, util::Rng& rng) {
  assert(n >= 0 && clusters >= 1 && side > 0.0 && stddev >= 0.0);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (NodeId c = 0; c < clusters; ++c) {
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const Point& c = centers[static_cast<std::size_t>(v % clusters)];
    Point p{c.x + stddev * rng.normal(), c.y + stddev * rng.normal()};
    p.x = std::clamp(p.x, 0.0, side);
    p.y = std::clamp(p.y, 0.0, side);
    points.push_back(p);
  }
  return points;
}

std::vector<Point> perturbed_grid_points(NodeId n, double side, double jitter,
                                         util::Rng& rng) {
  assert(n >= 0 && side > 0.0 && jitter >= 0.0);
  const auto k = static_cast<NodeId>(std::floor(std::sqrt(static_cast<double>(n))));
  std::vector<Point> points;
  if (k == 0) return points;
  const double step = side / static_cast<double>(k);
  points.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (NodeId r = 0; r < k; ++r) {
    for (NodeId c = 0; c < k; ++c) {
      Point p{(static_cast<double>(c) + 0.5) * step +
                  rng.uniform(-jitter, jitter),
              (static_cast<double>(r) + 0.5) * step +
                  rng.uniform(-jitter, jitter)};
      p.x = std::clamp(p.x, 0.0, side);
      p.y = std::clamp(p.y, 0.0, side);
      points.push_back(p);
    }
  }
  return points;
}

void save_udg(const std::string& path, const UnitDiskGraph& udg) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_udg: cannot open " + path);
  out.precision(17);
  out << udg.n() << ' ' << udg.radius << '\n';
  for (const Point& p : udg.positions) {
    out << p.x << ' ' << p.y << '\n';
  }
  if (!out) throw std::runtime_error("save_udg: write failed " + path);
}

UnitDiskGraph load_udg(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_udg: cannot open " + path);
  long long n = 0;
  double radius = 0.0;
  if (!(in >> n >> radius) || n < 0 || radius <= 0.0) {
    throw std::runtime_error("load_udg: bad header in " + path);
  }
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    Point p;
    if (!(in >> p.x >> p.y)) {
      throw std::runtime_error("load_udg: truncated point list in " + path);
    }
    points.push_back(p);
  }
  return build_udg(std::move(points), radius);
}

graph::Graph quasi_udg(const UnitDiskGraph& udg, double sever,
                       double reflect_per_node, util::Rng& rng) {
  assert(sever >= 0.0 && sever <= 1.0);
  assert(reflect_per_node >= 0.0);
  std::vector<Edge> edges;
  for (const Edge& e : udg.graph.edges()) {
    if (!rng.bernoulli(sever)) edges.push_back(e);
  }
  const auto extra = static_cast<std::size_t>(
      reflect_per_node * static_cast<double>(udg.n()));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u =
        static_cast<NodeId>(rng.index(static_cast<std::size_t>(udg.n())));
    const auto v =
        static_cast<NodeId>(rng.index(static_cast<std::size_t>(udg.n())));
    if (u != v) edges.push_back({u, v});
  }
  return graph::Graph::from_edges(udg.n(), edges);
}

UnitDiskGraph uniform_udg_with_degree(NodeId n, double target_avg_degree,
                                      util::Rng& rng) {
  assert(n > 0 && target_avg_degree > 0.0);
  // Expected degree of a node in a uniform deployment of density ρ with
  // radius 1 is ρ·π (ignoring boundary effects). Choose the square side so
  // that ρ = n / side² gives the target.
  const double density = target_avg_degree / std::numbers::pi;
  const double side = std::sqrt(static_cast<double>(n) / density);
  return build_udg(uniform_points(n, side, rng), 1.0);
}

}  // namespace ftc::geom
