// point.h is header-only; this translation unit exists so the geom library
// always has at least one object file and to hold future non-inline helpers.
#include "geom/point.h"
