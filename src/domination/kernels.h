// High-performance coverage/deficiency kernels over word-packed membership.
//
// The scalar checkers in domination.h are the semantic reference: one byte
// per node, a fresh bitmap and coverage vector allocated per call. That is
// fine for unit tests but became the hot path of the fuzzer's invariant
// battery, the repair watchdog, and every differential oracle once the
// simulator stopped being the bottleneck (PR 7). This header is the shared
// kernel layer those callers — and the upcoming multi-backend solver arena —
// sit on:
//
//   * MembershipBits packs membership into 64-bit words (1 bit/node), so a
//     million-node membership fits in 122 KiB instead of 1 MiB and the
//     whole structure stays cache-resident during neighborhood scans.
//   * closed_coverage_counts() over MembershipBits picks between two
//     kernels by member density: a blocked gather (per node, popcount-style
//     bit tests over its CSR row) when the set is dense, and a member
//     scatter (zero the counts, then bump the closed neighborhood of each
//     member) when it is sparse — for dominating-set-sized sets the scatter
//     touches only the members' edges, a small fraction of 2m. Both kernels
//     produce identical integer counts, so the selection is unobservable.
//   * deficiency()/is_k_dominating() overloads take caller-owned scratch
//     (CoverageScratch) and allocate nothing in steady state.
//
// Every kernel is property-tested bitwise-equal to the scalar reference
// across all fuzzer topology families (tests/domination/kernels_test.cpp and
// the kernel.* fuzz invariants).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::domination {

/// Word-packed membership bitmap over node ids [0, n). Reusable: reset()
/// and the assign() overloads only reallocate when n grows past the
/// high-water capacity, so a long-lived instance reaches a no-alloc steady
/// state.
class MembershipBits {
 public:
  MembershipBits() = default;

  /// Sizes the bitmap for n nodes and clears every bit.
  void reset(graph::NodeId n);

  /// reset(n) followed by setting every id in `set`. Ids must lie in [0, n).
  void assign(graph::NodeId n, std::span<const graph::NodeId> set);

  /// reset(members.size()) followed by setting ids with members[v] != 0.
  void assign(std::span<const std::uint8_t> members);

  void set(graph::NodeId v) noexcept {
    words_[word_of(v)] |= bit_of(v);
  }
  void clear(graph::NodeId v) noexcept {
    words_[word_of(v)] &= ~bit_of(v);
  }
  [[nodiscard]] bool test(graph::NodeId v) const noexcept {
    return (words_[word_of(v)] & bit_of(v)) != 0;
  }

  /// Number of nodes the bitmap spans.
  [[nodiscard]] graph::NodeId n() const noexcept { return n_; }

  /// Number of set bits (members). O(n/64) popcount scan.
  [[nodiscard]] std::int64_t count() const noexcept;

  /// The packed words (ceil(n/64) of them; trailing bits are zero).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return {words_.data(), words_.size()};
  }

 private:
  static std::size_t word_of(graph::NodeId v) noexcept {
    return static_cast<std::size_t>(v) >> 6;
  }
  static std::uint64_t bit_of(graph::NodeId v) noexcept {
    return std::uint64_t{1} << (static_cast<std::uint32_t>(v) & 63);
  }

  std::vector<std::uint64_t> words_;
  graph::NodeId n_ = 0;
};

/// Caller-owned scratch for the no-alloc checker overloads. Reused across
/// calls; buffers grow to the largest instance seen and then stay put.
struct CoverageScratch {
  MembershipBits members;
  std::vector<std::int32_t> cover;
};

/// Closed-neighborhood coverage counts over packed membership, written into
/// caller storage. out.size() must equal g.n(); allocates nothing.
/// Bitwise-equal to the scalar closed_coverage_counts (domination.h).
void closed_coverage_counts(const graph::Graph& g,
                            const MembershipBits& members,
                            std::span<std::int32_t> out);

/// Total demand shortfall of the packed set under `mode`, fused over the
/// graph without materializing a coverage vector. Allocates nothing.
/// Equal to the scalar deficiency() over the same membership.
[[nodiscard]] std::int64_t deficiency(const graph::Graph& g,
                                      const MembershipBits& members,
                                      const Demands& demands,
                                      Mode mode = Mode::kClosedNeighborhood);

/// Scratch-based deficiency over a node-id set: builds the packed
/// membership in `scratch` (no allocation in steady state) and runs the
/// fused kernel. Drop-in for the allocating deficiency() in domination.h.
[[nodiscard]] std::int64_t deficiency(const graph::Graph& g,
                                      std::span<const graph::NodeId> set,
                                      const Demands& demands, Mode mode,
                                      CoverageScratch& scratch);

/// Scratch-based k-domination check (deficiency == 0).
[[nodiscard]] bool is_k_dominating(const graph::Graph& g,
                                   std::span<const graph::NodeId> set,
                                   const Demands& demands, Mode mode,
                                   CoverageScratch& scratch);

}  // namespace ftc::domination
