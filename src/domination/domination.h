// k-fold dominating set definitions and feasibility checking.
//
// The paper uses two closely related notions (Section 4.1):
//
//  * Paper definition (Section 1): S ⊆ V is a k-fold dominating set if every
//    node v ∈ V \ S has at least k neighbors in S. Nodes inside S have no
//    coverage requirement.
//
//  * LP definition (program (PP)): every node i — member of S or not — must
//    satisfy Σ_{j ∈ N_i} x_j ≥ k_i over its *closed* neighborhood N_i
//    (so an S-member covers itself once). Demands k_i may vary per node.
//
// A set feasible under the LP definition is feasible under the paper
// definition for k = min_i k_i (for v ∉ S the closed and open neighborhood
// coverages coincide). The algorithms in this library target the LP
// definition, exactly as in the paper; both checkers are provided.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ftc::domination {

/// Per-node coverage demand k_i. Size must equal the graph's node count.
using Demands = std::vector<std::int32_t>;

/// Which coverage rule to check (see file comment).
enum class Mode {
  kClosedNeighborhood,  ///< LP definition: every node, closed neighborhood
  kOpenForNonMembers,   ///< paper definition: only v ∉ S, open neighborhood
};

/// Demands with k_i = k for every node.
[[nodiscard]] Demands uniform_demands(graph::NodeId n, std::int32_t k);

/// For every node i, the number of set members in its closed neighborhood
/// N_i = {i} ∪ neighbors(i). `members[v]` marks membership. This is the
/// scalar reference implementation; the word-packed kernels in kernels.h
/// are property-tested bitwise-equal to it and are what hot paths use.
[[nodiscard]] std::vector<std::int32_t> closed_coverage_counts(
    const graph::Graph& g, std::span<const std::uint8_t> members);

/// Converts a node-id list to a membership bitmap of size g.n().
[[nodiscard]] std::vector<std::uint8_t> to_membership(
    const graph::Graph& g, std::span<const graph::NodeId> set);

/// Converts a membership bitmap to the sorted list of member ids.
[[nodiscard]] std::vector<graph::NodeId> to_node_list(
    std::span<const std::uint8_t> members);

/// True iff `set` satisfies the demands under `mode`.
[[nodiscard]] bool is_k_dominating(const graph::Graph& g,
                                   std::span<const graph::NodeId> set,
                                   const Demands& demands,
                                   Mode mode = Mode::kClosedNeighborhood);

/// Uniform-k convenience overload.
[[nodiscard]] bool is_k_dominating(const graph::Graph& g,
                                   std::span<const graph::NodeId> set,
                                   std::int32_t k,
                                   Mode mode = Mode::kClosedNeighborhood);

/// Total shortfall Σ_i max(0, required_i - achieved_i) of `set` w.r.t. the
/// demands under `mode`. Zero iff is_k_dominating. Allocates a packed
/// membership per call; callers in loops should hold a CoverageScratch and
/// use the no-alloc overload in kernels.h instead.
[[nodiscard]] std::int64_t deficiency(const graph::Graph& g,
                                      std::span<const graph::NodeId> set,
                                      const Demands& demands,
                                      Mode mode = Mode::kClosedNeighborhood);

/// True iff the instance admits any feasible solution. Under the LP
/// definition this is k_i ≤ deg(i) + 1 for all i (take S = V); under the
/// paper definition every instance is feasible (S = V leaves V \ S empty).
[[nodiscard]] bool instance_feasible(const graph::Graph& g,
                                     const Demands& demands,
                                     Mode mode = Mode::kClosedNeighborhood);

/// Clamps each demand to the maximum satisfiable value deg(i)+1 (LP mode).
/// Useful for generating feasible random instances.
[[nodiscard]] Demands clamp_demands(const graph::Graph& g,
                                    const Demands& demands);

}  // namespace ftc::domination
