#include "domination/bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace ftc::domination {

using graph::NodeId;

std::int64_t packing_lower_bound(const graph::Graph& g,
                                 const Demands& demands) {
  if (g.n() == 0) return 0;
  const std::int64_t total_demand =
      std::accumulate(demands.begin(), demands.end(), std::int64_t{0});
  const std::int64_t capacity = g.max_degree() + 1;
  return (total_demand + capacity - 1) / capacity;
}

std::int64_t max_demand_lower_bound(const Demands& demands) {
  std::int64_t best = 0;
  for (std::int32_t k : demands) best = std::max<std::int64_t>(best, k);
  return best;
}

std::int64_t disjoint_packing_lower_bound(const graph::Graph& g,
                                          const Demands& demands) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  // Sort nodes by demand descending; greedily take nodes whose closed
  // neighborhood does not intersect any already-taken closed neighborhood.
  std::vector<NodeId> order(static_cast<std::size_t>(g.n()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return demands[static_cast<std::size_t>(a)] >
           demands[static_cast<std::size_t>(b)];
  });

  std::vector<bool> blocked(static_cast<std::size_t>(g.n()), false);
  std::int64_t bound = 0;
  for (NodeId v : order) {
    if (demands[static_cast<std::size_t>(v)] <= 0) break;
    // v usable iff no node of N[v] is blocked (i.e. N[v] disjoint from all
    // previously chosen closed neighborhoods).
    bool usable = !blocked[static_cast<std::size_t>(v)];
    if (usable) {
      for (NodeId w : g.neighbors(v)) {
        if (blocked[static_cast<std::size_t>(w)]) {
          usable = false;
          break;
        }
      }
    }
    if (!usable) continue;
    bound += demands[static_cast<std::size_t>(v)];
    // Block N[v] and all nodes adjacent to N[v] (two-hop), so the next
    // chosen node's closed neighborhood cannot share a node with N[v].
    blocked[static_cast<std::size_t>(v)] = true;
    for (NodeId w : g.neighbors(v)) {
      blocked[static_cast<std::size_t>(w)] = true;
      for (NodeId u : g.neighbors(w)) {
        blocked[static_cast<std::size_t>(u)] = true;
      }
    }
  }
  return bound;
}

double dual_lower_bound(const DualSolution& feasible_dual,
                        const Demands& demands) {
  return std::max(0.0, feasible_dual.objective(demands));
}

double harmonic(std::int64_t m) {
  double h = 0.0;
  for (std::int64_t i = 1; i <= m; ++i) {
    h += 1.0 / static_cast<double>(i);
  }
  return h;
}

double best_lower_bound(const graph::Graph& g, const Demands& demands,
                        std::int64_t greedy_size, double dual_objective) {
  double best = static_cast<double>(packing_lower_bound(g, demands));
  best = std::max(best, static_cast<double>(max_demand_lower_bound(demands)));
  best = std::max(
      best, static_cast<double>(disjoint_packing_lower_bound(g, demands)));
  if (greedy_size > 0) {
    best = std::max(best, static_cast<double>(greedy_size) /
                              harmonic(g.max_degree() + 1));
  }
  if (dual_objective > 0.0) {
    best = std::max(best, dual_objective);
  }
  return best;
}

}  // namespace ftc::domination
