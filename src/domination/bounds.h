// Lower bounds on the optimal k-fold dominating set size.
//
// k-MDS is NP-hard, so approximation-ratio measurements need a lower bound
// on OPT as the denominator. Reporting ratio = |S| / lower_bound then makes
// every measured ratio an *upper bound* on the true approximation ratio —
// the conservative direction for validating the paper's claims.
//
// Available bounds:
//  * packing:   Σ_i k_i / (Δ+1) — each selected node covers ≤ Δ+1 nodes,
//               once each (used in the paper's own proof of Lemma 4.2).
//  * max-demand: max_i k_i (LP mode: node i needs k_i members in N_i).
//  * local packing: for any node i, all of demand k_i must come from N_i, so
//    OPT ≥ max over i of (k_i) refined by disjoint neighborhoods — we use a
//    greedy disjoint-neighborhood packing: pick nodes with pairwise disjoint
//    closed neighborhoods; their demands sum to a valid lower bound.
//  * dual: any (DP)-feasible dual solution's objective (weak duality); the
//    scaled dual of Algorithm 1 provides one.
//  * Hs: |greedy| / H(Δ+1) where greedy is the centralized H-approximation
//    (caller supplies |greedy|).
#pragma once

#include <cstdint>

#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/graph.h"

namespace ftc::domination {

/// ⌈Σ_i k_i / (Δ+1)⌉ (0 for the empty graph).
[[nodiscard]] std::int64_t packing_lower_bound(const graph::Graph& g,
                                               const Demands& demands);

/// max_i k_i (valid under the LP/closed-neighborhood definition).
[[nodiscard]] std::int64_t max_demand_lower_bound(const Demands& demands);

/// Greedy disjoint-neighborhood packing: repeatedly pick the unmarked node
/// with the largest demand, add its demand to the bound, and mark its
/// two-hop neighborhood (so chosen nodes have disjoint closed
/// neighborhoods). Sound because coverage for nodes with disjoint closed
/// neighborhoods must come from disjoint dominator sets.
[[nodiscard]] std::int64_t disjoint_packing_lower_bound(
    const graph::Graph& g, const Demands& demands);

/// Weak-duality bound: the objective of a (DP)-feasible dual, floored at 0.
/// The caller is responsible for the dual actually being feasible (e.g.
/// Algorithm 1's dual divided by κ = t(Δ+1)^{1/t}).
[[nodiscard]] double dual_lower_bound(const DualSolution& feasible_dual,
                                      const Demands& demands);

/// Harmonic number H(m) = Σ_{i=1..m} 1/i.
[[nodiscard]] double harmonic(std::int64_t m);

/// Best-of-all combiner. `greedy_size` ≤ 0 and `dual_objective` ≤ 0 mean
/// "not available". Returns a value ≥ 1 whenever some node has demand ≥ 1.
[[nodiscard]] double best_lower_bound(const graph::Graph& g,
                                      const Demands& demands,
                                      std::int64_t greedy_size = 0,
                                      double dual_objective = 0.0);

}  // namespace ftc::domination
