#include "domination/fractional.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ftc::domination {

using graph::NodeId;

double FractionalSolution::objective() const noexcept {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

double DualSolution::objective(const Demands& demands) const noexcept {
  assert(y.size() == demands.size() && z.size() == demands.size());
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    total += static_cast<double>(demands[i]) * y[i] - z[i];
  }
  return total;
}

double closed_neighborhood_sum(const graph::Graph& g, NodeId v,
                               std::span<const double> values) {
  double sum = values[static_cast<std::size_t>(v)];
  for (NodeId w : g.neighbors(v)) {
    sum += values[static_cast<std::size_t>(w)];
  }
  return sum;
}

bool primal_feasible(const graph::Graph& g, const FractionalSolution& x,
                     const Demands& demands, double eps) {
  assert(static_cast<NodeId>(x.x.size()) == g.n());
  assert(static_cast<NodeId>(demands.size()) == g.n());
  for (double v : x.x) {
    if (v < -eps || v > 1.0 + eps) return false;
  }
  return max_primal_violation(g, x, demands) <= eps;
}

double max_primal_violation(const graph::Graph& g,
                            const FractionalSolution& x,
                            const Demands& demands) {
  double worst = -1e300;
  for (NodeId v = 0; v < g.n(); ++v) {
    const double cover = closed_neighborhood_sum(g, v, x.x);
    worst = std::max(
        worst, static_cast<double>(demands[static_cast<std::size_t>(v)]) -
                   cover);
  }
  return g.n() == 0 ? 0.0 : worst;
}

double max_dual_lhs(const graph::Graph& g, const DualSolution& dual) {
  assert(static_cast<NodeId>(dual.y.size()) == g.n());
  assert(static_cast<NodeId>(dual.z.size()) == g.n());
  double worst = -1e300;
  for (NodeId v = 0; v < g.n(); ++v) {
    const double lhs = closed_neighborhood_sum(g, v, dual.y) -
                       dual.z[static_cast<std::size_t>(v)];
    worst = std::max(worst, lhs);
  }
  return g.n() == 0 ? 0.0 : worst;
}

bool dual_feasible(const graph::Graph& g, const DualSolution& dual,
                   double eps) {
  for (double v : dual.y) {
    if (v < -eps) return false;
  }
  for (double v : dual.z) {
    if (v < -eps) return false;
  }
  return max_dual_lhs(g, dual) <= 1.0 + eps;
}

void clamp_tiny_negatives(std::vector<double>& values, double eps) {
  for (double& v : values) {
    if (v < 0.0 && v >= -eps) v = 0.0;
  }
}

}  // namespace ftc::domination
