// Exact fractional k-MDS via a dense two-phase simplex.
//
// The linear program is exactly the paper's (PP):
//
//   min Σ x_i   s.t.  Σ_{j∈N_i} x_j ≥ k_i  ∀i,   0 ≤ x_i ≤ 1.
//
// Solving it exactly gives the true OPT_f, letting experiment E1 report
// Algorithm 1's *actual* approximation ratio on small and medium instances
// instead of a ratio against weaker lower bounds.
//
// Method: textbook two-phase primal simplex on the full tableau with
// Bland's anti-cycling rule. Standard form uses one surplus variable per
// coverage row, one slack per box row, and one artificial per coverage row
// (phase 1 drives Σ artificials to 0 or proves infeasibility). Dense
// tableau of 2n rows × (4n+1) columns — intended for n up to a few
// hundred, which is all the experiments need.
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::domination {

/// Outcome of the exact LP solve.
struct LpSolveResult {
  bool feasible = false;   ///< the instance admits a fractional solution
  double objective = 0.0;  ///< OPT_f when feasible
  std::vector<double> x;   ///< an optimal solution (empty when infeasible)
  std::int64_t iterations = 0;   ///< simplex pivots performed (both phases)
  bool iteration_limit_hit = false;  ///< true → result not certified
};

/// Solves (PP) exactly. `max_iterations` caps total pivots (Bland's rule
/// guarantees termination, the cap only guards pathological sizes).
[[nodiscard]] LpSolveResult solve_lp_exact(
    const graph::Graph& g, const Demands& demands,
    std::int64_t max_iterations = 1'000'000);

}  // namespace ftc::domination
