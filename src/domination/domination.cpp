#include "domination/domination.h"

#include <algorithm>
#include <cassert>

#include "domination/kernels.h"

namespace ftc::domination {

using graph::NodeId;

Demands uniform_demands(NodeId n, std::int32_t k) {
  assert(n >= 0 && k >= 0);
  return Demands(static_cast<std::size_t>(n), k);
}

std::vector<std::int32_t> closed_coverage_counts(
    const graph::Graph& g, std::span<const std::uint8_t> members) {
  assert(static_cast<NodeId>(members.size()) == g.n());
  std::vector<std::int32_t> cover(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (members[idx]) cover[idx] += 1;  // self-coverage (closed neighborhood)
    for (NodeId w : g.neighbors(v)) {
      if (members[static_cast<std::size_t>(w)]) cover[idx] += 1;
    }
  }
  return cover;
}

std::vector<std::uint8_t> to_membership(const graph::Graph& g,
                                std::span<const NodeId> set) {
  std::vector<std::uint8_t> members(static_cast<std::size_t>(g.n()), false);
  for (NodeId v : set) {
    assert(v >= 0 && v < g.n());
    members[static_cast<std::size_t>(v)] = true;
  }
  return members;
}

std::vector<NodeId> to_node_list(std::span<const std::uint8_t> members) {
  std::vector<NodeId> out;
  for (std::size_t v = 0; v < members.size(); ++v) {
    if (members[v]) out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

std::int64_t deficiency(const graph::Graph& g, std::span<const NodeId> set,
                        const Demands& demands, Mode mode) {
  // Convenience wrapper over the packed kernels (kernels.h); hot callers
  // hold a CoverageScratch and use the no-alloc overload directly. The
  // packed path is property-tested equal to the scalar composition
  // to_membership + closed_coverage_counts + shortfall accumulation.
  CoverageScratch scratch;
  return deficiency(g, set, demands, mode, scratch);
}

bool is_k_dominating(const graph::Graph& g, std::span<const NodeId> set,
                     const Demands& demands, Mode mode) {
  return deficiency(g, set, demands, mode) == 0;
}

bool is_k_dominating(const graph::Graph& g, std::span<const NodeId> set,
                     std::int32_t k, Mode mode) {
  return is_k_dominating(g, set, uniform_demands(g.n(), k), mode);
}

bool instance_feasible(const graph::Graph& g, const Demands& demands,
                       Mode mode) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  if (mode == Mode::kOpenForNonMembers) return true;  // S = V always works
  for (NodeId v = 0; v < g.n(); ++v) {
    if (demands[static_cast<std::size_t>(v)] > g.degree(v) + 1) return false;
  }
  return true;
}

Demands clamp_demands(const graph::Graph& g, const Demands& demands) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  Demands out = demands;
  for (NodeId v = 0; v < g.n(); ++v) {
    out[static_cast<std::size_t>(v)] =
        std::min(out[static_cast<std::size_t>(v)], g.degree(v) + 1);
  }
  return out;
}

}  // namespace ftc::domination
