// Demand-vector generators for heterogeneous fault-tolerance requirements.
//
// The LP (PP) allows per-node demands k_i; real deployments want exactly
// that: gateways need more redundancy than leaf sensors, dense regions can
// afford more backup dominators than sparse ones. These profiles generate
// the k_i vectors the experiments and examples use. All profiles clamp to
// deg(i)+1, so the produced instance is always (PP)-feasible.
#pragma once

#include <cstdint>

#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::domination {

/// Uniform k everywhere (clamped).
[[nodiscard]] Demands profile_uniform(const graph::Graph& g, std::int32_t k);

/// Independent uniform demands in [lo, hi] (clamped).
/// Precondition: 1 <= lo <= hi.
[[nodiscard]] Demands profile_random(const graph::Graph& g, std::int32_t lo,
                                     std::int32_t hi, util::Rng& rng);

/// Degree-proportional: k_i = max(1, round(fraction · deg(i))), clamped —
/// hubs (which more traffic depends on) demand more redundancy.
/// Precondition: fraction > 0.
[[nodiscard]] Demands profile_degree_proportional(const graph::Graph& g,
                                                  double fraction);

/// A set of critical nodes demands k_critical; everyone else k_base
/// (both clamped). Models gateways/sinks in a sensor field.
[[nodiscard]] Demands profile_critical_nodes(
    const graph::Graph& g, std::span<const graph::NodeId> critical,
    std::int32_t k_critical, std::int32_t k_base);

/// UDG-specific: nodes within `margin` of the deployment's bounding-box
/// border demand k_border, the interior k_interior (both clamped). Border
/// nodes have fewer neighbors, so they lose coverage first — a common
/// hardening policy.
[[nodiscard]] Demands profile_border(const geom::UnitDiskGraph& udg,
                                     double margin, std::int32_t k_border,
                                     std::int32_t k_interior);

}  // namespace ftc::domination
