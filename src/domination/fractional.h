// Fractional solutions of the k-MDS linear program (PP) and its dual (DP).
//
// Paper Section 4.1:
//
//   (PP)  min Σ x_i                 (DP)  max Σ (k_i y_i - z_i)
//         s.t. ∀i: Σ_{j∈N_i} x_j ≥ k_i    s.t. ∀i: Σ_{j∈N_i} y_j - z_i ≤ 1
//              0 ≤ x_i ≤ 1                     y_i, z_i ≥ 0
//
// where N_i is node i's closed neighborhood. This module defines value
// types for primal/dual solutions plus feasibility and duality checkers
// used by the tests and by experiment E10.
#pragma once

#include <span>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::domination {

/// Default absolute tolerance for floating-point feasibility checks.
inline constexpr double kFeasibilityEps = 1e-7;

/// A primal (fractional) solution x of (PP).
struct FractionalSolution {
  std::vector<double> x;  ///< one value per node, in [0,1] when feasible

  /// Objective Σ x_i.
  [[nodiscard]] double objective() const noexcept;
};

/// A dual solution (y, z) of (DP).
struct DualSolution {
  std::vector<double> y;
  std::vector<double> z;

  /// Dual objective Σ (k_i·y_i − z_i).
  [[nodiscard]] double objective(const Demands& demands) const noexcept;
};

/// Closed-neighborhood weight Σ_{j ∈ N_v} values[j] for one node.
[[nodiscard]] double closed_neighborhood_sum(const graph::Graph& g,
                                             graph::NodeId v,
                                             std::span<const double> values);

/// True iff x is (PP)-feasible: box constraints and coverage constraints
/// within `eps`.
[[nodiscard]] bool primal_feasible(const graph::Graph& g,
                                   const FractionalSolution& x,
                                   const Demands& demands,
                                   double eps = kFeasibilityEps);

/// Largest violation of (PP)'s coverage constraints:
/// max_i (k_i − Σ_{j∈N_i} x_j), negative when strictly feasible.
[[nodiscard]] double max_primal_violation(const graph::Graph& g,
                                          const FractionalSolution& x,
                                          const Demands& demands);

/// Largest left-hand side of (DP)'s constraints:
/// max_i (Σ_{j∈N_i} y_j − z_i). The dual is feasible iff this is ≤ 1 (+eps)
/// and y, z ≥ 0. Algorithm 1's raw dual attains values up to t(Δ+1)^{1/t}
/// (Lemma 4.4); dividing by that factor restores feasibility.
[[nodiscard]] double max_dual_lhs(const graph::Graph& g,
                                  const DualSolution& dual);

/// True iff (y, z) is (DP)-feasible within eps.
[[nodiscard]] bool dual_feasible(const graph::Graph& g,
                                 const DualSolution& dual,
                                 double eps = kFeasibilityEps);

/// Rounds tiny negative values (≥ -eps) in a solution up to zero, leaving
/// anything else untouched. Lets checkers accept fixed-point noise.
void clamp_tiny_negatives(std::vector<double>& values,
                          double eps = kFeasibilityEps);

}  // namespace ftc::domination
