#include "domination/lp_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ftc::domination {

using graph::NodeId;

namespace {

constexpr double kEps = 1e-9;

/// Full-tableau primal simplex with Bland's rule.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        cells_(rows * (cols + 1), 0.0),
        basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return cells_[r * (cols_ + 1) + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return cells_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  [[nodiscard]] double rhs(std::size_t r) const { return at(r, cols_); }

  std::size_t& basis(std::size_t r) { return basis_[r]; }

  /// Pivots without maintaining any cost row (used between phases, where
  /// the next minimize() rebuilds its reduced costs from scratch).
  void pivot_raw(std::size_t prow, std::size_t pcol) {
    std::vector<double> no_costs;  // pivot() tolerates an empty cost row
    pivot(prow, pcol, no_costs);
  }

  /// Drives still-basic artificial variables (columns >= first_artificial)
  /// out of the basis after phase 1. Rows whose non-artificial coefficients
  /// are all zero are redundant and left as-is (their artificial stays
  /// pinned at zero: no positive pivot element ever selects the row).
  void evict_artificials(std::size_t first_artificial) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < first_artificial) continue;
      for (std::size_t c = 0; c < first_artificial; ++c) {
        if (std::abs(at(r, c)) > 1e-7) {
          pivot_raw(r, c);
          break;
        }
      }
    }
  }

  /// Minimizes cᵀ(variables) from the current basic feasible tableau.
  /// `blocked[j]` forbids column j from entering. Returns the achieved
  /// objective; sets limit_hit when the pivot cap is exhausted.
  double minimize(const std::vector<double>& cost,
                  const std::vector<std::uint8_t>& blocked,
                  std::int64_t max_iterations, std::int64_t& iterations,
                  bool& limit_hit) {
    // Reduced-cost row d_j = c_j − Σ_r c_{basis(r)} · T[r][j], maintained
    // explicitly; objective value tracked as z = Σ_r c_{basis(r)} · rhs(r).
    std::vector<double> d(cost.begin(), cost.end());
    d.push_back(0.0);  // objective cell (negated z)
    for (std::size_t r = 0; r < rows_; ++r) {
      const double cb = cost[basis_[r]];
      if (cb == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        d[c] -= cb * at(r, c);
      }
    }

    // Pricing: Dantzig (most negative reduced cost) for speed; after a run
    // of degenerate pivots, fall back to Bland's rule, which provably
    // terminates.
    std::int64_t degenerate_streak = 0;
    constexpr std::int64_t kBlandThreshold = 64;

    while (true) {
      if (iterations >= max_iterations) {
        limit_hit = true;
        break;
      }
      const bool bland = degenerate_streak >= kBlandThreshold;

      std::size_t entering = cols_;
      if (bland) {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!blocked[c] && d[c] < -kEps) {
            entering = c;
            break;
          }
        }
      } else {
        double most_negative = -kEps;
        for (std::size_t c = 0; c < cols_; ++c) {
          if (!blocked[c] && d[c] < most_negative) {
            most_negative = d[c];
            entering = c;
          }
        }
      }
      if (entering == cols_) break;  // optimal

      // Ratio test: strict minimum; among (numerical) ties pick the row
      // whose basic variable has the smallest index (Bland-compatible).
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        const double a = at(r, entering);
        if (a <= kEps) continue;
        const double ratio = rhs(r) / a;
        if (leaving == rows_ || ratio < best_ratio - 1e-12) {
          best_ratio = ratio;
          leaving = r;
        } else if (ratio <= best_ratio + 1e-12 &&
                   basis_[r] < basis_[leaving]) {
          leaving = r;
        }
      }
      assert(leaving != rows_ && "LP is bounded by construction");
      if (leaving == rows_) break;  // defensive: treat as done

      degenerate_streak = best_ratio <= 1e-12 ? degenerate_streak + 1 : 0;
      pivot(leaving, entering, d);
      ++iterations;
    }
    return -d[cols_];  // d's objective cell holds −z
  }

 private:
  void pivot(std::size_t prow, std::size_t pcol, std::vector<double>& d) {
    const double p = at(prow, pcol);
    assert(std::abs(p) > kEps);
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= cols_; ++c) {
      at(prow, c) *= inv;
    }
    at(prow, pcol) = 1.0;  // exact
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == prow) continue;
      const double factor = at(r, pcol);
      if (std::abs(factor) < kEps) {
        at(r, pcol) = 0.0;
        continue;
      }
      for (std::size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(prow, c);
      }
      at(r, pcol) = 0.0;  // exact
    }
    if (!d.empty()) {
      const double dfactor = d[pcol];
      if (std::abs(dfactor) > 0.0) {
        for (std::size_t c = 0; c <= cols_; ++c) {
          d[c] -= dfactor * at(prow, c);
        }
        d[pcol] = 0.0;
      }
    }
    basis_[prow] = pcol;
  }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolveResult solve_lp_exact(const graph::Graph& g, const Demands& demands,
                             std::int64_t max_iterations) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  LpSolveResult result;
  const auto n = static_cast<std::size_t>(g.n());
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Columns: x (0..n-1), surplus s (n..2n-1), box slack u (2n..3n-1),
  // artificial a (3n..4n-1). Rows: coverage (0..n-1), box (n..2n-1).
  const std::size_t cols = 4 * n;
  Tableau tableau(2 * n, cols);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    // Coverage row i: Σ_{j∈N[v]} x_j − s_i + a_i = k_i.
    tableau.at(i, i) = 1.0;  // x_v itself (closed neighborhood)
    for (NodeId w : g.neighbors(v)) {
      tableau.at(i, static_cast<std::size_t>(w)) = 1.0;
    }
    tableau.at(i, n + i) = -1.0;      // surplus
    tableau.at(i, 3 * n + i) = 1.0;   // artificial
    tableau.rhs(i) = static_cast<double>(demands[i]);
    tableau.basis(i) = 3 * n + i;
    // Box row i: x_i + u_i = 1.
    tableau.at(n + i, i) = 1.0;
    tableau.at(n + i, 2 * n + i) = 1.0;
    tableau.rhs(n + i) = 1.0;
    tableau.basis(n + i) = 2 * n + i;
  }

  // Phase 1: minimize Σ artificials.
  std::vector<double> phase1_cost(cols, 0.0);
  for (std::size_t j = 3 * n; j < 4 * n; ++j) phase1_cost[j] = 1.0;
  std::vector<std::uint8_t> blocked(cols, 0);
  const double infeasibility =
      tableau.minimize(phase1_cost, blocked, max_iterations,
                       result.iterations, result.iteration_limit_hit);
  if (result.iteration_limit_hit) return result;
  if (infeasibility > 1e-6) {
    result.feasible = false;
    return result;
  }

  // Phase 2 prep: drive remaining artificials out of the basis (an
  // artificial left basic could otherwise be pushed positive again by
  // phase-2 pivots, silently leaving the feasible region) and forbid them
  // from re-entering.
  tableau.evict_artificials(3 * n);
  for (std::size_t j = 3 * n; j < 4 * n; ++j) blocked[j] = 1;
  std::vector<double> phase2_cost(cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = 1.0;
  result.objective =
      tableau.minimize(phase2_cost, blocked, max_iterations,
                       result.iterations, result.iteration_limit_hit);
  if (result.iteration_limit_hit) return result;

  result.feasible = true;
  result.x.assign(n, 0.0);
  // Read the basic solution.
  for (std::size_t r = 0; r < 2 * n; ++r) {
    const std::size_t var = tableau.basis(r);
    if (var < n) {
      result.x[var] = std::max(0.0, tableau.rhs(r));
    }
  }
  return result;
}

}  // namespace ftc::domination
