#include "domination/kernels.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ftc::domination {

using graph::NodeId;

namespace {

/// Density threshold for the scatter kernel: with fewer than n/8 members
/// the members' closed neighborhoods touch well under 2m edge slots, so
/// zero-and-bump beats scanning every CSR row. Any threshold is correct
/// (the kernels agree exactly); this one just picks the faster path.
[[nodiscard]] bool sparse_enough(std::int64_t member_count, NodeId n) {
  return member_count * 8 <= static_cast<std::int64_t>(n);
}

/// Scatter kernel: counts start at zero; every member bumps itself and its
/// open neighborhood. Work is proportional to the members' degree sum.
void scatter_counts(const graph::Graph& g, const MembershipBits& members,
                    std::span<std::int32_t> out) {
  std::fill(out.begin(), out.end(), 0);
  const std::span<const std::uint64_t> words = members.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t word = words[wi];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      const auto u = static_cast<NodeId>((wi << 6) + static_cast<std::size_t>(bit));
      out[static_cast<std::size_t>(u)] += 1;  // self (closed neighborhood)
      for (const NodeId w : g.neighbors(u)) {
        out[static_cast<std::size_t>(w)] += 1;
      }
    }
  }
}

/// Gather kernel: per node, test the membership bit of every closed
/// neighbor. Touches each CSR row once; the bitmap stays cache-resident.
void gather_counts(const graph::Graph& g, const MembershipBits& members,
                   std::span<std::int32_t> out) {
  const std::uint64_t* words = members.words().data();
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto uv = static_cast<std::uint32_t>(v);
    std::int32_t cnt =
        static_cast<std::int32_t>((words[uv >> 6] >> (uv & 63)) & 1);
    for (const NodeId w : g.neighbors(v)) {
      const auto uw = static_cast<std::uint32_t>(w);
      cnt += static_cast<std::int32_t>((words[uw >> 6] >> (uw & 63)) & 1);
    }
    out[static_cast<std::size_t>(v)] = cnt;
  }
}

/// Shortfall accumulation over precomputed counts.
[[nodiscard]] std::int64_t accumulate_deficiency(
    const MembershipBits& members, const Demands& demands,
    std::span<const std::int32_t> cover, Mode mode) {
  std::int64_t total = 0;
  const std::size_t n = demands.size();
  if (mode == Mode::kOpenForNonMembers) {
    const std::uint64_t* words = members.words().data();
    for (std::size_t i = 0; i < n; ++i) {
      if ((words[i >> 6] >> (i & 63)) & 1) continue;  // members: no demand
      total += std::max<std::int32_t>(0, demands[i] - cover[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      total += std::max<std::int32_t>(0, demands[i] - cover[i]);
    }
  }
  return total;
}

}  // namespace

void MembershipBits::reset(NodeId n) {
  assert(n >= 0);
  n_ = n;
  const std::size_t nwords = (static_cast<std::size_t>(n) + 63) / 64;
  if (words_.size() < nwords) words_.resize(nwords);
  std::fill(words_.begin(), words_.begin() + static_cast<std::ptrdiff_t>(nwords), 0);
  words_.resize(nwords);  // shrink view only; capacity (high water) is kept
}

void MembershipBits::assign(NodeId n, std::span<const NodeId> set) {
  reset(n);
  for (const NodeId v : set) {
    assert(v >= 0 && v < n);
    this->set(v);
  }
}

void MembershipBits::assign(std::span<const std::uint8_t> members) {
  reset(static_cast<NodeId>(members.size()));
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] != 0) set(static_cast<NodeId>(i));
  }
}

std::int64_t MembershipBits::count() const noexcept {
  std::int64_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

void closed_coverage_counts(const graph::Graph& g,
                            const MembershipBits& members,
                            std::span<std::int32_t> out) {
  assert(members.n() == g.n());
  assert(static_cast<NodeId>(out.size()) == g.n());
  if (g.n() == 0) return;
  if (sparse_enough(members.count(), g.n())) {
    scatter_counts(g, members, out);
  } else {
    gather_counts(g, members, out);
  }
}

std::int64_t deficiency(const graph::Graph& g, const MembershipBits& members,
                        const Demands& demands, Mode mode) {
  assert(members.n() == g.n());
  assert(static_cast<NodeId>(demands.size()) == g.n());
  // Fused gather: no coverage vector at all. Per node, count covered
  // closed neighbors from the bitmap and accumulate the shortfall.
  const std::uint64_t* words = members.words().data();
  std::int64_t total = 0;
  const bool open = mode == Mode::kOpenForNonMembers;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto uv = static_cast<std::uint32_t>(v);
    const bool member = ((words[uv >> 6] >> (uv & 63)) & 1) != 0;
    if (open && member) continue;  // members have no requirement
    std::int32_t cnt = member ? 1 : 0;
    for (const NodeId w : g.neighbors(v)) {
      const auto uw = static_cast<std::uint32_t>(w);
      cnt += static_cast<std::int32_t>((words[uw >> 6] >> (uw & 63)) & 1);
    }
    total +=
        std::max<std::int32_t>(0, demands[static_cast<std::size_t>(v)] - cnt);
  }
  return total;
}

std::int64_t deficiency(const graph::Graph& g, std::span<const NodeId> set,
                        const Demands& demands, Mode mode,
                        CoverageScratch& scratch) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  scratch.members.assign(g.n(), set);
  if (scratch.cover.size() < demands.size()) {
    scratch.cover.resize(demands.size());
  }
  const std::span<std::int32_t> cover{scratch.cover.data(), demands.size()};
  // Sparse sets (the common case: dominating sets are ~n·k/Δ nodes) go
  // through the scatter kernel, whose work scales with the members' edges
  // only. Dense sets gather into the scratch coverage vector and accumulate
  // in a second pass — with scratch available this beats the fused
  // single-pass gather (the plain count loop vectorizes better), which
  // remains for the scratch-less MembershipBits overload.
  if (sparse_enough(static_cast<std::int64_t>(set.size()), g.n())) {
    scatter_counts(g, scratch.members, cover);
  } else {
    gather_counts(g, scratch.members, cover);
  }
  return accumulate_deficiency(scratch.members, demands, cover, mode);
}

bool is_k_dominating(const graph::Graph& g, std::span<const NodeId> set,
                     const Demands& demands, Mode mode,
                     CoverageScratch& scratch) {
  return deficiency(g, set, demands, mode, scratch) == 0;
}

}  // namespace ftc::domination
