#include "domination/profiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ftc::domination {

using graph::NodeId;

Demands profile_uniform(const graph::Graph& g, std::int32_t k) {
  return clamp_demands(g, uniform_demands(g.n(), k));
}

Demands profile_random(const graph::Graph& g, std::int32_t lo,
                       std::int32_t hi, util::Rng& rng) {
  assert(1 <= lo && lo <= hi);
  Demands d(static_cast<std::size_t>(g.n()), 0);
  for (auto& k : d) {
    k = static_cast<std::int32_t>(rng.uniform_i64(lo, hi));
  }
  return clamp_demands(g, d);
}

Demands profile_degree_proportional(const graph::Graph& g, double fraction) {
  assert(fraction > 0.0);
  Demands d(static_cast<std::size_t>(g.n()), 1);
  for (NodeId v = 0; v < g.n(); ++v) {
    d[static_cast<std::size_t>(v)] = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(
               std::llround(fraction * static_cast<double>(g.degree(v)))));
  }
  return clamp_demands(g, d);
}

Demands profile_critical_nodes(const graph::Graph& g,
                               std::span<const NodeId> critical,
                               std::int32_t k_critical, std::int32_t k_base) {
  Demands d(static_cast<std::size_t>(g.n()), k_base);
  for (NodeId v : critical) {
    assert(v >= 0 && v < g.n());
    d[static_cast<std::size_t>(v)] = k_critical;
  }
  return clamp_demands(g, d);
}

Demands profile_border(const geom::UnitDiskGraph& udg, double margin,
                       std::int32_t k_border, std::int32_t k_interior) {
  assert(margin >= 0.0);
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
  if (!udg.positions.empty()) {
    min_x = max_x = udg.positions.front().x;
    min_y = max_y = udg.positions.front().y;
    for (const geom::Point& p : udg.positions) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  Demands d(static_cast<std::size_t>(udg.n()), k_interior);
  for (NodeId v = 0; v < udg.n(); ++v) {
    const geom::Point& p = udg.positions[static_cast<std::size_t>(v)];
    const bool border = p.x - min_x < margin || max_x - p.x < margin ||
                        p.y - min_y < margin || max_y - p.y < margin;
    if (border) d[static_cast<std::size_t>(v)] = k_border;
  }
  return clamp_demands(udg.graph, d);
}

}  // namespace ftc::domination
