#include "algo/udg/udg_kmds_process.h"

#include <algorithm>
#include <cassert>

#include "algo/udg/udg_kmds.h"
#include "obs/plane.h"

namespace ftc::algo {

using graph::NodeId;
using sim::Word;

UdgKmdsProcess::UdgKmdsProcess(std::int32_t k) : k_(k) { assert(k >= 1); }

UdgKmdsProcess::UdgKmdsProcess(const UdgOptions& options)
    : k_(options.k), xi_(options.xi), theta_scale_(options.theta_scale) {
  assert(options.k >= 1);
}

void UdgKmdsProcess::ensure_initialized(sim::Context& ctx) {
  if (initialized_) return;
  initialized_ = true;
  assert(ctx.has_distances() &&
         "Algorithm 3 requires a UDG network (distance sensing)");
  rounds_part1_ = udg_part1_rounds_ex(ctx.n(), xi_);
  id_max_ = udg_id_range(ctx.n());
  theta_ = udg_initial_theta_ex(ctx.n(), xi_, theta_scale_);
}

void UdgKmdsProcess::part1_even(sim::Context& ctx, std::int64_t part1_round) {
  if (part1_round > 0) {
    // Election messages of the previous paper round decide survival.
    if (active_) {
      const bool got_message = !ctx.inbox().empty();
      if (!got_message && !elected_) {
        active_ = false;  // line 11: a(v) := false; stop
      }
    }
    theta_ *= 2.0;  // line 13 of the previous paper round
    if (active_) {
      if (obs::Recorder* rec = ctx.obs(); rec != nullptr) {
        rec->count(rec->builtin().probe_doublings);
        rec->event(obs::Category::kAlgo, obs::Severity::kDebug,
                   rec->builtin().n_probe_doubling, ctx.round(),
                   static_cast<std::int32_t>(ctx.self()), part1_round);
      }
    }
  }
  elected_ = false;
  if (!active_) return;
  my_id_ = ctx.rng().uniform_u64(1, id_max_);
  for (NodeId w : ctx.neighbors()) {
    if (ctx.distance_to(w) <= theta_) {
      ctx.send(w, {Word{1}, static_cast<Word>(my_id_)});
    }
  }
}

void UdgKmdsProcess::part1_odd(sim::Context& ctx) {
  if (!active_) return;
  // Elect the highest-id active node within θ, possibly self (ties toward
  // the larger node id — identical to the mirror).
  NodeId best = ctx.self();
  auto best_id = my_id_;
  for (const sim::Message& msg : ctx.inbox()) {
    if (msg.words.size() != 2) continue;  // wrong-shape frame (delayed)
    if (msg.words[0] != 1) continue;  // inactive sender (defensive)
    if (ctx.distance_to(msg.from) > theta_) continue;  // defensive filter
    const auto wid = static_cast<std::uint64_t>(msg.words[1]);
    if (wid > best_id || (wid == best_id && msg.from > best)) {
      best = msg.from;
      best_id = wid;
    }
  }
  if (best == ctx.self()) {
    elected_ = true;  // self-election needs no message
  } else {
    ctx.send(best, {Word{1}});  // M
  }
}

void UdgKmdsProcess::part2(sim::Context& ctx, std::int64_t phase) {
  switch (phase) {
    case 0: {  // B0: absorb promotions, announce leadership.
      for (const sim::Message& msg : ctx.inbox()) {
        (void)msg;
        leader_ = true;  // any PROMOTE suffices
      }
      ctx.broadcast({leader_ ? Word{1} : Word{0}});
      break;
    }
    case 1: {  // B1: coverage + deficiency.
      for (const sim::Message& msg : ctx.inbox()) {
        if (msg.words.size() != 1) continue;
        if (msg.words[0] == 1) {
          const auto it = std::lower_bound(known_leaders_.begin(),
                                           known_leaders_.end(), msg.from);
          if (it == known_leaders_.end() || *it != msg.from) {
            known_leaders_.insert(it, msg.from);
          }
        }
      }
      const auto coverage = static_cast<std::int32_t>(known_leaders_.size()) +
                            (leader_ ? 1 : 0);
      deficient_ = !leader_ && coverage < k_;
      ctx.broadcast({deficient_ ? Word{1} : Word{0}});
      break;
    }
    case 2: {  // B2: leaders promote; everyone checks for quiescence.
      bool neighborhood_deficient = deficient_;
      if (leader_) {
        std::int32_t budget = k_;
        for (const sim::Message& msg : ctx.inbox()) {  // ascending sender id
          if (msg.words.size() != 1) continue;
          if (msg.words[0] != 1) continue;
          neighborhood_deficient = true;
          if (budget > 0) {
            ctx.send(msg.from, {Word{1}});  // PROMOTE
            --budget;
          }
        }
      } else {
        for (const sim::Message& msg : ctx.inbox()) {
          if (msg.words[0] == 1) neighborhood_deficient = true;
        }
      }
      if (!neighborhood_deficient) {
        halt();  // nothing in this closed neighborhood can change anymore
      }
      break;
    }
    default:
      assert(false);
  }
}

void UdgKmdsProcess::on_round(sim::Context& ctx) {
  ensure_initialized(ctx);
  if (step_ < 2 * rounds_part1_) {
    if (step_ % 2 == 0) {
      part1_even(ctx, step_ / 2);
    } else {
      part1_odd(ctx);
    }
  } else {
    if (step_ == 2 * rounds_part1_) {
      // Resolve the final paper round's elections; survivors are leaders
      // (line 15).
      if (active_) {
        const bool got_message = !ctx.inbox().empty();
        if (!got_message && !elected_) active_ = false;
      }
      part1_leader_ = active_;
      leader_ = active_;
    }
    const std::int64_t phase = (step_ - 2 * rounds_part1_) % 3;
    part2(ctx, phase);
  }
  ++step_;
}

}  // namespace ftc::algo
