#include "algo/udg/udg_kmds.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace ftc::algo {

using graph::NodeId;

std::int64_t udg_part1_rounds_ex(NodeId n, double xi) {
  assert(xi > 1.0);
  if (n < 4) return 1;
  const double log2n = std::log2(static_cast<double>(n));
  const double log2xi = std::log2(xi);
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::log2(log2n) / log2xi)));
}

double udg_initial_theta_ex(NodeId n, double xi, double theta_scale) {
  assert(xi > 1.0 && theta_scale > 0.0);
  if (n < 4) return 0.5;
  const double log2n = std::log2(static_cast<double>(n));
  const double log2xi = std::log2(xi);
  const double theta1 =
      theta_scale * 0.5 * std::pow(log2n, -1.0 / log2xi);
  // Clamp so the final round's radius θ₁·2^{R-1} stays within 1/2 (the
  // probe must never exceed the communication radius).
  const auto rounds = udg_part1_rounds_ex(n, xi);
  const double last_factor =
      std::pow(2.0, static_cast<double>(rounds - 1));
  return std::min(theta1, 0.5 / last_factor);
}

std::int64_t udg_part1_rounds(NodeId n) { return udg_part1_rounds_ex(n, 1.5); }

double udg_initial_theta(NodeId n) {
  return udg_initial_theta_ex(n, 1.5, 1.0);
}

std::uint64_t udg_id_range(NodeId n) {
  const auto nn = static_cast<unsigned __int128>(std::max<NodeId>(n, 2));
  const unsigned __int128 fourth = nn * nn * nn * nn;
  const unsigned __int128 cap = static_cast<unsigned __int128>(1) << 62;
  return static_cast<std::uint64_t>(fourth < cap ? fourth : cap);
}

UdgResult solve_udg_kmds(const geom::UnitDiskGraph& udg,
                         const UdgOptions& options, std::uint64_t seed) {
  assert(options.k >= 1);
  const graph::Graph& g = udg.graph;
  const auto n = static_cast<std::size_t>(g.n());

  UdgResult result;
  if (n == 0) return result;

  const std::int64_t rounds = udg_part1_rounds_ex(g.n(), options.xi);
  const std::uint64_t id_max = udg_id_range(g.n());
  result.part1_rounds = rounds;

  // Per-node random streams identical to the simulator's.
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) rngs.push_back(root.split(v));

  // ---- Part I: leader election with doubling probe radius. ----
  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint64_t> id(n, 0);
  std::vector<std::uint8_t> elected(n, 0);
  double theta =
      udg_initial_theta_ex(g.n(), options.xi, options.theta_scale);

  for (std::int64_t r = 0; r < rounds; ++r) {
    // Fresh ids for active nodes (passive nodes stopped executing Part I
    // and draw nothing — keeps mirror and process streams aligned).
    for (std::size_t v = 0; v < n; ++v) {
      if (active[v]) id[v] = rngs[v].uniform_u64(1, id_max);
    }
    std::fill(elected.begin(), elected.end(), 0);
    // Every active node elects the highest-id active node within θ
    // (ties broken toward the larger node id), possibly itself.
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!active[vi]) continue;
      NodeId best = v;
      std::uint64_t best_id = id[vi];
      for (NodeId w : udg.neighbors_within(v, theta)) {
        const auto wi = static_cast<std::size_t>(w);
        if (!active[wi]) continue;
        if (id[wi] > best_id || (id[wi] == best_id && w > best)) {
          best = w;
          best_id = id[wi];
        }
      }
      elected[static_cast<std::size_t>(best)] = 1;
    }
    // Active nodes elected by nobody become passive.
    std::int64_t still_active = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (active[v] && !elected[v]) active[v] = 0;
      if (active[v]) ++still_active;
    }
    result.active_after_round.push_back(still_active);
    theta *= 2.0;
  }

  std::vector<std::uint8_t> leader = active;  // survivors become leaders
  for (std::size_t v = 0; v < n; ++v) {
    if (leader[v]) result.part1_leaders.push_back(static_cast<NodeId>(v));
  }

  // ---- Part II: extend to a k-fold dominating set. ----
  const std::int32_t k = options.k;
  auto coverage_of = [&](NodeId v) {
    const auto vi = static_cast<std::size_t>(v);
    std::int32_t c = leader[vi] ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      c += leader[static_cast<std::size_t>(w)] ? 1 : 0;
    }
    return c;
  };

  while (true) {
    // Deficient = non-leader with coverage below k. (Members need no
    // coverage under the paper's Section-1 definition.)
    std::vector<std::uint8_t> deficient(n, 0);
    bool any_deficient = false;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!leader[vi] && coverage_of(v) < k) {
        deficient[vi] = 1;
        any_deficient = true;
      }
    }
    if (!any_deficient) break;

    // Each leader selects up to k lowest-id deficient closed neighbors and
    // promotes them — synchronously (all selections read this iteration's
    // deficiency snapshot).
    std::vector<std::uint8_t> promoted(n, 0);
    bool any_promoted = false;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (!leader[static_cast<std::size_t>(v)]) continue;
      // Leaders select independently (a distributed leader cannot see other
      // leaders' selections): the k lowest-id deficient neighbors each.
      std::int32_t budget = k;
      for (NodeId w : g.neighbors(v)) {  // ascending ids
        if (budget <= 0) break;
        const auto wi = static_cast<std::size_t>(w);
        if (deficient[wi]) {
          promoted[wi] = 1;
          any_promoted = true;
          --budget;
        }
      }
    }
    if (!any_promoted) {
      // Every deficient node is isolated from all leaders — possible only
      // when its whole closed neighborhood is smaller than k (infeasible)
      // or it has no leader neighbor (cannot happen by Lemma 5.1).
      result.fully_satisfied = false;
      break;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (promoted[v]) leader[v] = 1;
    }
    ++result.part2_iterations;
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (leader[v]) result.leaders.push_back(static_cast<NodeId>(v));
  }
  return result;
}

}  // namespace ftc::algo
