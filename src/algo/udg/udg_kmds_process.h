// Algorithm 3 as a faithful per-node program for the synchronous simulator.
//
// Requires a network built from a UnitDiskGraph (distance sensing).
//
// Schedule — Part I (R = udg_part1_rounds(n) paper rounds, 2 network rounds
// each; θ doubles every paper round):
//
//   round 2r:   [r > 0: process election messages; unelected actives go
//               passive] active nodes draw a fresh id from [1, n⁴] and send
//               (active, id) to every neighbor within θ.        [2 words]
//   round 2r+1: active nodes elect the highest-id active sender within θ
//               (possibly themselves) and send M to it.          [1 word]
//
// Schedule — Part II (3 network rounds per while-iteration, starting at
// round 2R):
//
//   B0: [process PROMOTE messages] every running node broadcasts its leader
//       flag.                                                    [1 word]
//   B1: update the cumulative known-leader set; compute coverage c(v) and
//       the deficiency flag (!leader && c < k); broadcast it.    [1 word]
//   B2: leaders send PROMOTE to their (up to) k lowest-id deficient
//       neighbors. A node halts here once neither it nor any neighbor is
//       deficient.                                               [1 word]
//
// All messages are O(1) words = O(log n) bits. Produces exactly the leader
// set of solve_udg_kmds() (the centralized mirror) for the same seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace ftc::algo {

struct UdgOptions;  // udg_kmds.h

/// Per-node process implementing Algorithm 3. Construct with the uniform
/// fold parameter k (paper constants), or with full UdgOptions to match a
/// mirror run using non-default ξ / θ-scale.
class UdgKmdsProcess final : public sim::Process {
 public:
  explicit UdgKmdsProcess(std::int32_t k);
  explicit UdgKmdsProcess(const UdgOptions& options);

  void on_round(sim::Context& ctx) override;

  /// True iff this node is in the final k-fold dominating set (valid after
  /// the process halts).
  [[nodiscard]] bool leader() const noexcept { return leader_; }
  /// True iff this node survived Part I (before the Part-II extension).
  [[nodiscard]] bool part1_leader() const noexcept { return part1_leader_; }

 private:
  void ensure_initialized(sim::Context& ctx);
  void part1_even(sim::Context& ctx, std::int64_t part1_round);
  void part1_odd(sim::Context& ctx);
  void part2(sim::Context& ctx, std::int64_t phase);

  std::int32_t k_ = 1;
  double xi_ = 1.5;
  double theta_scale_ = 1.0;

  bool initialized_ = false;
  std::int64_t rounds_part1_ = 0;  // R
  std::uint64_t id_max_ = 0;
  double theta_ = 0.0;

  // Part I state.
  bool active_ = true;
  bool elected_ = false;       // received an election (or elected self)
  std::uint64_t my_id_ = 0;    // this paper-round's random id
  bool part1_leader_ = false;

  // Part II state.
  bool leader_ = false;
  bool deficient_ = false;
  std::vector<graph::NodeId> known_leaders_;  // cumulative, sorted

  std::int64_t step_ = 0;
};

}  // namespace ftc::algo
