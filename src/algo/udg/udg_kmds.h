// Algorithm 3 of the paper: O(log log n)-time k-fold dominating set in unit
// disk graphs (Section 5) — centralized mirror.
//
// Part I (Gao et al. [7]-style leader election, rounds r_1..r_R with
// R = ⌈log_{3/2} log₂ n⌉): every node starts *active* with probe radius
// θ = ½·(log₂ n)^{-1/log₂(3/2)}. In each round, every active node draws a
// fresh random id from [1, n⁴] and elects the highest-id active node within
// distance θ (possibly itself); nodes elected by nobody become passive and
// stop. θ doubles every round. Survivors after round R are *leaders*, and
// they form an ordinary dominating set (Lemma 5.1) of expected O(1) size per
// unit disk (Lemma 5.5).
//
// Part II (the paper's fault-tolerance extension): every node learns which
// closed neighbors are leaders, giving its coverage c(v). While some leader
// v sees a *deficient* neighbor (a non-leader u with c(u) < k), it selects
// up to k lowest-id deficient neighbors and promotes them to leaders.
// Leaders per 1/2-radius disk stay O(k) in expectation (Lemma 5.6), so the
// result is an expected O(1)-approximation of k-MDS (Theorem 5.7). The
// output satisfies the paper's Section-1 definition: every NON-member has
// ≥ k member neighbors (domination::Mode::kOpenForNonMembers).
//
// The mirror draws node v's ids from Rng(seed).split(v), exactly the stream
// the simulator hands the corresponding process, so both implementations
// elect identical leader sets.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Tuning/audit parameters of Algorithm 3. The defaults are the paper's
/// constants; `xi` and `theta_scale` exist for the A5 ablation that probes
/// how sensitive the algorithm is to them.
struct UdgOptions {
  std::int32_t k = 1;  ///< fold parameter (uniform demand)

  /// The paper's ξ (default 3/2): Part I runs ⌈log_ξ log₂ n⌉ rounds and
  /// the initial radius is ½(log₂ n)^{-1/log₂ ξ}. Must be > 1.
  double xi = 1.5;

  /// Multiplier on the initial probe radius θ₁ (the paper uses 1). The
  /// probe radius is still clamped so the final round's θ stays ≤ 1/2.
  double theta_scale = 1.0;
};

/// Outcome of Algorithm 3.
struct UdgResult {
  std::vector<graph::NodeId> leaders;  ///< final k-fold dominating set

  std::vector<graph::NodeId> part1_leaders;  ///< dominating set after Part I
  std::int64_t part1_rounds = 0;   ///< paper rounds in Part I (R)
  std::int64_t part2_iterations = 0;  ///< while-loop iterations in Part II

  /// Number of active nodes after each Part-I round (index 0 = after r_1);
  /// the doubly-exponential decay behind the O(log log n) bound.
  std::vector<std::int64_t> active_after_round;

  /// True when Part II satisfied every node; false only when some node's
  /// demand exceeded its closed neighborhood (infeasible residue).
  bool fully_satisfied = true;
};

/// R = ⌈log_{3/2} log₂ n⌉, clamped to ≥ 1 (and defined as 1 for n < 4).
[[nodiscard]] std::int64_t udg_part1_rounds(graph::NodeId n);

/// Initial probe radius θ₁ = ½·(log₂ n)^{-1/log₂(3/2)} (=: ½ for n < 4).
[[nodiscard]] double udg_initial_theta(graph::NodeId n);

/// Generalized variants for non-default ξ / θ-scale (A5 ablation). With
/// xi = 1.5 and theta_scale = 1 they reduce to the functions above. The
/// initial radius is clamped so θ in the final Part-I round stays ≤ 1/2
/// (the probing range must remain within the communication radius).
[[nodiscard]] std::int64_t udg_part1_rounds_ex(graph::NodeId n, double xi);
[[nodiscard]] double udg_initial_theta_ex(graph::NodeId n, double xi,
                                          double theta_scale);

/// Upper bound of the per-round random id range: min(n⁴, 2⁶²).
[[nodiscard]] std::uint64_t udg_id_range(graph::NodeId n);

/// Runs the centralized mirror of Algorithm 3 on `udg`. `seed` must equal
/// the SyncNetwork seed for mirror/simulator equality.
[[nodiscard]] UdgResult solve_udg_kmds(const geom::UnitDiskGraph& udg,
                                       const UdgOptions& options,
                                       std::uint64_t seed);

}  // namespace ftc::algo
