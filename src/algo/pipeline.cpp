#include "algo/pipeline.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "algo/lp/lp_kmds_process.h"
#include "algo/rounding/rounding_process.h"

namespace ftc::algo {

using graph::NodeId;

namespace {

PipelineResult run_mirror(const graph::Graph& g,
                          const domination::Demands& demands,
                          const PipelineOptions& options) {
  PipelineResult result;
  LpOptions lp_options;
  lp_options.t = options.t;
  result.lp = solve_fractional_kmds(g, demands, lp_options);
  result.rounding =
      round_fractional(g, result.lp.primal, demands, options.seed);
  result.total_rounds = result.lp.rounds + result.rounding.rounds;
  return result;
}

PipelineResult run_distributed(const graph::Graph& g,
                               const domination::Demands& demands,
                               const PipelineOptions& options) {
  PipelineResult result;
  const auto n = static_cast<std::size_t>(g.n());

  // Phase 1: Algorithm 1 processes.
  sim::SyncNetwork lp_net(g, options.seed);
  lp_net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(demands[static_cast<std::size_t>(v)],
                                           options.t);
  });
  const std::int64_t lp_rounds = lp_net.run(lp_round_count(options.t) + 8);

  result.lp.primal.x.resize(n);
  result.lp.dual.y.resize(n);
  result.lp.dual.z.resize(n);
  result.lp.kappa =
      static_cast<double>(options.t) *
      std::pow(static_cast<double>(g.max_degree()) + 1.0, 1.0 / options.t);
  result.lp.rounds = lp_rounds;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& proc = lp_net.process_as<LpKmdsProcess>(v);
    const auto i = static_cast<std::size_t>(v);
    result.lp.primal.x[i] = proc.x();
    result.lp.dual.y[i] = proc.y();
    result.lp.dual.z[i] = proc.z();
  }

  // Phase 2: Algorithm 2 processes (fresh network, same seed: Algorithm 1
  // consumes no randomness, so per-node streams align with the mirror).
  sim::SyncNetwork rounding_net(g, options.seed);
  rounding_net.set_all_processes([&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    return std::make_unique<RoundingProcess>(result.lp.primal.x[i],
                                             demands[i]);
  });
  const std::int64_t rounding_rounds = rounding_net.run(8);

  result.rounding.rounds = rounding_rounds;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& proc = rounding_net.process_as<RoundingProcess>(v);
    if (proc.in_set()) {
      result.rounding.set.push_back(v);
      if (proc.chosen_by_coin()) {
        ++result.rounding.chosen_by_coin;
      } else {
        ++result.rounding.chosen_by_request;
      }
    }
  }

  result.total_rounds = lp_rounds + rounding_rounds;
  result.metrics = lp_net.metrics();
  result.metrics.rounds += rounding_net.metrics().rounds;
  result.metrics.messages_sent += rounding_net.metrics().messages_sent;
  result.metrics.words_sent += rounding_net.metrics().words_sent;
  result.metrics.max_message_words =
      std::max(result.metrics.max_message_words,
               rounding_net.metrics().max_message_words);
  return result;
}

}  // namespace

PipelineResult run_kmds_pipeline(const graph::Graph& g,
                                 const domination::Demands& demands,
                                 const PipelineOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(options.t >= 1);
  return options.execution == Execution::kMirror
             ? run_mirror(g, demands, options)
             : run_distributed(g, demands, options);
}

}  // namespace ftc::algo
