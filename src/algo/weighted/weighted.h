// Weighted k-fold dominating set — the extension the paper notes in
// Section 4.1 ("It would also be possible to extend our algorithm to also
// solve the weighted version of the k-MDS problem").
//
// Every node carries a selection cost w_v > 0 (e.g. remaining battery:
// expensive nodes should cluster-head rarely); the objective becomes
// min Σ_{v∈S} w_v subject to the same closed-neighborhood coverage
// constraints as (PP).
//
// Provided here:
//  * weighted greedy — the classical cost-effectiveness greedy for set
//    multicover (pick argmax span/weight), an H(Δ+1)-approximation
//    [Rajagopalan–Vazirani];
//  * weighted exact — branch and bound minimizing total weight (ground
//    truth for small instances);
//  * weighted randomized rounding — Algorithm 2 with the request rule
//    picking the *cheapest* absent closed neighbor; the Theorem 4.6
//    argument carries over verbatim with the weighted objective
//    (E[w(X)] = ln(Δ+1)·Σ w_i x_i by linearity);
//  * a packing lower bound on the weighted optimum.
//
// A *distributed* weighted fractional solver is out of scope: the paper
// only remarks that the extension is possible, and its Algorithm 1 analysis
// is stated for the unweighted LP. Rounding accepts any externally computed
// weighted-feasible fractional solution.
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::algo {

/// Per-node selection costs; all entries must be > 0.
using NodeWeights = std::vector<double>;

/// Weights all equal to 1 (the unweighted special case).
[[nodiscard]] NodeWeights uniform_weights(graph::NodeId n);

/// Independent uniform weights in [lo, hi]. Precondition: 0 < lo <= hi.
[[nodiscard]] NodeWeights random_weights(graph::NodeId n, double lo,
                                         double hi, util::Rng& rng);

/// Total weight of a node set.
[[nodiscard]] double set_weight(std::span<const graph::NodeId> set,
                                const NodeWeights& weights);

/// Result of the weighted greedy.
struct WeightedGreedyResult {
  std::vector<graph::NodeId> set;  ///< chosen nodes, sorted
  double weight = 0.0;             ///< Σ w over the set
  bool fully_satisfied = true;
};

/// Cost-effectiveness greedy: repeatedly select the node minimizing
/// weight / (number of still-deficient closed neighbors). Deterministic
/// (ties toward smaller id). O(n·Δ + n log n)-ish via a lazy heap.
[[nodiscard]] WeightedGreedyResult weighted_greedy_kmds(
    const graph::Graph& g, const domination::Demands& demands,
    const NodeWeights& weights);

/// Result of the weighted exact solver.
struct WeightedExactResult {
  std::vector<graph::NodeId> set;
  double weight = 0.0;
  bool optimal = false;
  bool feasible = true;
  std::int64_t nodes_explored = 0;
};

/// Branch-and-bound options (weight-domain).
struct WeightedExactOptions {
  std::int64_t node_budget = 5'000'000;
};

/// Minimum-weight k-fold dominating set (closed-neighborhood definition).
[[nodiscard]] WeightedExactResult weighted_exact_kmds(
    const graph::Graph& g, const domination::Demands& demands,
    const NodeWeights& weights, const WeightedExactOptions& options = {});

/// Result of weighted rounding.
struct WeightedRoundingResult {
  std::vector<graph::NodeId> set;
  double weight = 0.0;
  std::int64_t chosen_by_coin = 0;
  std::int64_t chosen_by_request = 0;
};

/// Algorithm 2 with weight-aware requests: coins exactly as in the
/// unweighted version (p_i = min{1, x_i ln(Δ+1)}); deficient nodes request
/// their shortfall from the *cheapest* absent closed neighbors (ties toward
/// the smaller id, self treated like any other candidate).
[[nodiscard]] WeightedRoundingResult weighted_round_fractional(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const domination::Demands& demands, const NodeWeights& weights,
    std::uint64_t seed);

/// Weighted packing bound: OPT_w ≥ (Σ_i k_i / (Δ+1)) · min_i w_i, plus the
/// per-node refinement max_i (cheapest k_i weights in N[i] summed).
[[nodiscard]] double weighted_lower_bound(const graph::Graph& g,
                                          const domination::Demands& demands,
                                          const NodeWeights& weights);

}  // namespace ftc::algo
