#include "algo/weighted/weighted.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace ftc::algo {

using domination::Demands;
using graph::NodeId;

NodeWeights uniform_weights(NodeId n) {
  return NodeWeights(static_cast<std::size_t>(n), 1.0);
}

NodeWeights random_weights(NodeId n, double lo, double hi, util::Rng& rng) {
  assert(lo > 0.0 && lo <= hi);
  NodeWeights w;
  w.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    w.push_back(rng.uniform(lo, hi));
  }
  return w;
}

double set_weight(std::span<const NodeId> set, const NodeWeights& weights) {
  double total = 0.0;
  for (NodeId v : set) {
    total += weights[static_cast<std::size_t>(v)];
  }
  return total;
}

WeightedGreedyResult weighted_greedy_kmds(const graph::Graph& g,
                                          const Demands& demands,
                                          const NodeWeights& weights) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(static_cast<NodeId>(weights.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());

  WeightedGreedyResult result;
  std::vector<std::int32_t> residual(demands.begin(), demands.end());
  std::vector<std::uint8_t> chosen(n, 0);

  auto span_of = [&](NodeId v) {
    std::int32_t s = residual[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      if (residual[static_cast<std::size_t>(w)] > 0) ++s;
    }
    return s;
  };
  // Cost-effectiveness = weight / span; lower is better. Lazy min-heap of
  // (cost_effectiveness, id); spans only shrink so stale entries are only
  // too optimistic and re-verified at pop time.
  using Entry = std::pair<double, NodeId>;
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::int32_t s = span_of(v);
    if (s > 0) {
      heap.push({weights[static_cast<std::size_t>(v)] / s, v});
    }
  }

  std::int64_t deficient_total = 0;
  for (std::int32_t r : residual) {
    if (r > 0) ++deficient_total;
  }

  while (deficient_total > 0 && !heap.empty()) {
    const auto [claimed, v] = heap.top();
    heap.pop();
    if (chosen[static_cast<std::size_t>(v)]) continue;
    const std::int32_t s = span_of(v);
    if (s <= 0) continue;
    const double actual = weights[static_cast<std::size_t>(v)] / s;
    if (actual > claimed + 1e-15) {
      heap.push({actual, v});  // stale; reinsert with the true value
      continue;
    }
    chosen[static_cast<std::size_t>(v)] = 1;
    result.weight += weights[static_cast<std::size_t>(v)];
    auto cover_one = [&](NodeId u) {
      auto& r = residual[static_cast<std::size_t>(u)];
      if (r > 0 && --r == 0) --deficient_total;
    };
    cover_one(v);
    for (NodeId w : g.neighbors(v)) cover_one(w);
  }

  result.fully_satisfied = deficient_total == 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (chosen[v]) result.set.push_back(static_cast<NodeId>(v));
  }
  return result;
}

namespace {

struct WeightedSearcher {
  const graph::Graph& g;
  const Demands& demands;
  const NodeWeights& weights;
  std::int64_t node_budget;

  std::vector<std::int32_t> residual;
  std::vector<std::uint8_t> chosen;
  std::vector<std::uint8_t> excluded;
  double chosen_weight = 0.0;
  std::int64_t deficient_total = 0;
  double min_weight = 0.0;

  std::vector<NodeId> best_set;
  double best_weight = 0.0;
  bool budget_exhausted = false;
  std::int64_t nodes_explored = 0;

  WeightedSearcher(const graph::Graph& graph, const Demands& d,
                   const NodeWeights& w, std::int64_t budget)
      : g(graph), demands(d), weights(w), node_budget(budget) {
    const auto n = static_cast<std::size_t>(g.n());
    residual.assign(d.begin(), d.end());
    chosen.assign(n, 0);
    excluded.assign(n, 0);
    for (std::int32_t r : residual) deficient_total += std::max(r, 0);
    min_weight = w.empty() ? 1.0
                           : *std::min_element(w.begin(), w.end());
  }

  [[nodiscard]] std::int32_t available(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    std::int32_t a = (!chosen[i] && !excluded[i]) ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      const auto j = static_cast<std::size_t>(w);
      if (!chosen[j] && !excluded[j]) ++a;
    }
    return a;
  }

  [[nodiscard]] std::int32_t span(NodeId v) const {
    std::int32_t s = residual[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      if (residual[static_cast<std::size_t>(w)] > 0) ++s;
    }
    return s;
  }

  void include(NodeId v, std::vector<NodeId>& covered) {
    chosen[static_cast<std::size_t>(v)] = 1;
    chosen_weight += weights[static_cast<std::size_t>(v)];
    auto cover = [&](NodeId u) {
      auto& r = residual[static_cast<std::size_t>(u)];
      if (r > 0) {
        --r;
        --deficient_total;
        covered.push_back(u);
      }
    };
    cover(v);
    for (NodeId w : g.neighbors(v)) cover(w);
  }

  void undo_include(NodeId v, const std::vector<NodeId>& covered) {
    chosen[static_cast<std::size_t>(v)] = 0;
    chosen_weight -= weights[static_cast<std::size_t>(v)];
    for (NodeId u : covered) {
      ++residual[static_cast<std::size_t>(u)];
      ++deficient_total;
    }
  }

  void dfs() {
    if (budget_exhausted) return;
    if (++nodes_explored > node_budget) {
      budget_exhausted = true;
      return;
    }
    if (deficient_total == 0) {
      if (chosen_weight < best_weight - 1e-12) {
        best_weight = chosen_weight;
        best_set = domination::to_node_list(chosen);
      }
      return;
    }

    std::int32_t max_residual = 0;
    for (std::int32_t r : residual) max_residual = std::max(max_residual, r);
    const std::int64_t capacity = g.max_degree() + 1;
    const auto picks_needed = std::max<std::int64_t>(
        (deficient_total + capacity - 1) / capacity, max_residual);
    if (chosen_weight + static_cast<double>(picks_needed) * min_weight >=
        best_weight - 1e-12) {
      return;
    }

    NodeId pivot = -1;
    std::int32_t pivot_slack = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (residual[i] <= 0) continue;
      const std::int32_t slack = available(v) - residual[i];
      if (slack < 0) return;
      if (pivot == -1 || slack < pivot_slack) {
        pivot = v;
        pivot_slack = slack;
      }
    }
    assert(pivot >= 0);

    // Branch on the most cost-effective available helper of the pivot.
    NodeId branch = -1;
    double branch_ce = std::numeric_limits<double>::infinity();
    auto consider = [&](NodeId v) {
      const auto i = static_cast<std::size_t>(v);
      if (chosen[i] || excluded[i]) return;
      const std::int32_t s = span(v);
      if (s <= 0) return;
      const double ce = weights[i] / s;
      if (ce < branch_ce) {
        branch_ce = ce;
        branch = v;
      }
    };
    consider(pivot);
    for (NodeId w : g.neighbors(pivot)) consider(w);
    assert(branch >= 0);

    std::vector<NodeId> covered;
    include(branch, covered);
    dfs();
    undo_include(branch, covered);

    excluded[static_cast<std::size_t>(branch)] = 1;
    dfs();
    excluded[static_cast<std::size_t>(branch)] = 0;
  }
};

}  // namespace

WeightedExactResult weighted_exact_kmds(const graph::Graph& g,
                                        const Demands& demands,
                                        const NodeWeights& weights,
                                        const WeightedExactOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(static_cast<NodeId>(weights.size()) == g.n());
  WeightedExactResult result;
  if (!domination::instance_feasible(g, demands)) {
    result.feasible = false;
    return result;
  }

  WeightedSearcher searcher(g, demands, weights, options.node_budget);
  const auto greedy = weighted_greedy_kmds(g, demands, weights);
  assert(greedy.fully_satisfied);
  searcher.best_set = greedy.set;
  searcher.best_weight = greedy.weight;

  searcher.dfs();

  result.set = std::move(searcher.best_set);
  result.weight = set_weight(result.set, weights);
  result.optimal = !searcher.budget_exhausted;
  result.nodes_explored = searcher.nodes_explored;
  return result;
}

WeightedRoundingResult weighted_round_fractional(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const Demands& demands, const NodeWeights& weights, std::uint64_t seed) {
  assert(static_cast<NodeId>(x.x.size()) == g.n());
  assert(static_cast<NodeId>(weights.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);

  WeightedRoundingResult result;
  std::vector<std::uint8_t> in_set(n, 0);
  const util::Rng root(seed);
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng node_rng = root.split(i);
    if (node_rng.bernoulli(std::min(1.0, x.x[i] * ln_d1))) {
      in_set[i] = 1;
      ++result.chosen_by_coin;
    }
  }

  std::vector<std::uint8_t> requested(n, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    std::int32_t coverage = in_set[i];
    for (NodeId w : g.neighbors(v)) {
      coverage += in_set[static_cast<std::size_t>(w)];
    }
    std::int32_t shortfall = demands[i] - coverage;
    if (shortfall <= 0) continue;
    // Candidates: absent closed neighbors, cheapest first (ties by id).
    std::vector<NodeId> candidates;
    if (!in_set[i]) candidates.push_back(v);
    for (NodeId w : g.neighbors(v)) {
      if (!in_set[static_cast<std::size_t>(w)]) candidates.push_back(w);
    }
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const double wa = weights[static_cast<std::size_t>(a)];
      const double wb = weights[static_cast<std::size_t>(b)];
      if (wa != wb) return wa < wb;
      return a < b;
    });
    for (NodeId c : candidates) {
      if (shortfall <= 0) break;
      requested[static_cast<std::size_t>(c)] = 1;
      --shortfall;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (requested[i] && !in_set[i]) {
      in_set[i] = 1;
      ++result.chosen_by_request;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (in_set[i]) {
      result.set.push_back(static_cast<NodeId>(i));
      result.weight += weights[i];
    }
  }
  return result;
}

double weighted_lower_bound(const graph::Graph& g, const Demands& demands,
                            const NodeWeights& weights) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(static_cast<NodeId>(weights.size()) == g.n());
  if (g.n() == 0) return 0.0;

  const double min_w = *std::min_element(weights.begin(), weights.end());
  const auto total_demand =
      std::accumulate(demands.begin(), demands.end(), std::int64_t{0});
  const double packing =
      std::ceil(static_cast<double>(total_demand) /
                static_cast<double>(g.max_degree() + 1)) *
      min_w;

  // Per-node refinement: node i's demand must be met by k_i distinct nodes
  // of N[i]; the cheapest possible way costs the sum of the k_i smallest
  // weights in N[i].
  double per_node = 0.0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    const std::int32_t k = demands[i];
    if (k <= 0) continue;
    std::vector<double> local{weights[i]};
    for (NodeId w : g.neighbors(v)) {
      local.push_back(weights[static_cast<std::size_t>(w)]);
    }
    if (static_cast<std::int32_t>(local.size()) < k) continue;  // infeasible
    std::nth_element(local.begin(), local.begin() + (k - 1), local.end());
    double cheapest_sum = 0.0;
    std::sort(local.begin(), local.begin() + k);
    for (std::int32_t j = 0; j < k; ++j) cheapest_sum += local[static_cast<std::size_t>(j)];
    per_node = std::max(per_node, cheapest_sum);
  }
  return std::max(packing, per_node);
}

}  // namespace ftc::algo
