#include "algo/exact/exact.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "algo/baseline/greedy.h"

namespace ftc::algo {

using graph::NodeId;

namespace {

struct Searcher {
  const graph::Graph& g;
  const domination::Demands& demands;
  std::int64_t node_budget;

  std::vector<std::int32_t> residual;
  std::vector<std::uint8_t> chosen;
  std::vector<std::uint8_t> excluded;
  std::int64_t chosen_count = 0;
  std::int64_t deficient_total = 0;  // Σ max(residual, 0)

  std::vector<NodeId> best_set;
  std::int64_t best_size = 0;
  bool budget_exhausted = false;
  std::int64_t nodes_explored = 0;

  Searcher(const graph::Graph& graph, const domination::Demands& d,
           std::int64_t budget)
      : g(graph), demands(d), node_budget(budget) {
    const auto n = static_cast<std::size_t>(g.n());
    residual.assign(d.begin(), d.end());
    chosen.assign(n, 0);
    excluded.assign(n, 0);
    for (std::int32_t r : residual) deficient_total += std::max(r, 0);
  }

  /// Available helpers of v: unchosen, unexcluded closed neighbors.
  [[nodiscard]] std::int32_t available(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    std::int32_t a = (!chosen[i] && !excluded[i]) ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      const auto j = static_cast<std::size_t>(w);
      if (!chosen[j] && !excluded[j]) ++a;
    }
    return a;
  }

  [[nodiscard]] std::int32_t span(NodeId v) const {
    std::int32_t s = residual[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      if (residual[static_cast<std::size_t>(w)] > 0) ++s;
    }
    return s;
  }

  void include(NodeId v, std::vector<NodeId>& covered) {
    chosen[static_cast<std::size_t>(v)] = 1;
    ++chosen_count;
    auto cover = [&](NodeId u) {
      auto& r = residual[static_cast<std::size_t>(u)];
      if (r > 0) {
        --r;
        --deficient_total;
        covered.push_back(u);
      }
    };
    cover(v);
    for (NodeId w : g.neighbors(v)) cover(w);
  }

  void undo_include(NodeId v, const std::vector<NodeId>& covered) {
    chosen[static_cast<std::size_t>(v)] = 0;
    --chosen_count;
    for (NodeId u : covered) {
      ++residual[static_cast<std::size_t>(u)];
      ++deficient_total;
    }
  }

  void dfs() {
    if (budget_exhausted) return;
    if (++nodes_explored > node_budget) {
      budget_exhausted = true;
      return;
    }

    if (deficient_total == 0) {
      if (chosen_count < best_size) {
        best_size = chosen_count;
        best_set = domination::to_node_list(chosen);
      }
      return;
    }

    // Bound prune: every further pick covers ≤ Δ+1 demand units, and some
    // node still needs `max residual` distinct picks.
    std::int32_t max_residual = 0;
    for (std::int32_t r : residual) max_residual = std::max(max_residual, r);
    const std::int64_t capacity = g.max_degree() + 1;
    const std::int64_t need =
        std::max<std::int64_t>((deficient_total + capacity - 1) / capacity,
                               max_residual);
    if (chosen_count + need >= best_size) return;

    // Most-constrained deficient node: fewest spare helpers.
    NodeId pivot = -1;
    std::int32_t pivot_slack = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (residual[i] <= 0) continue;
      const std::int32_t slack = available(v) - residual[i];
      if (slack < 0) return;  // infeasible branch
      if (pivot == -1 || slack < pivot_slack) {
        pivot = v;
        pivot_slack = slack;
      }
    }
    assert(pivot >= 0);

    // Branch variable: the available helper of `pivot` with maximal span.
    NodeId branch = -1;
    std::int32_t branch_span = -1;
    auto consider = [&](NodeId v) {
      const auto i = static_cast<std::size_t>(v);
      if (chosen[i] || excluded[i]) return;
      const std::int32_t s = span(v);
      if (s > branch_span) {
        branch_span = s;
        branch = v;
      }
    };
    consider(pivot);
    for (NodeId w : g.neighbors(pivot)) consider(w);
    assert(branch >= 0);

    // Include branch first (tends to find good incumbents early).
    std::vector<NodeId> covered;
    include(branch, covered);
    dfs();
    undo_include(branch, covered);

    // Exclude branch.
    excluded[static_cast<std::size_t>(branch)] = 1;
    dfs();
    excluded[static_cast<std::size_t>(branch)] = 0;
  }
};

}  // namespace

ExactResult exact_kmds(const graph::Graph& g,
                       const domination::Demands& demands,
                       const ExactOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  ExactResult result;
  if (!domination::instance_feasible(g, demands)) {
    result.feasible = false;
    return result;
  }

  Searcher searcher(g, demands, options.node_budget);

  // Incumbent from greedy (feasible because the instance is feasible).
  const GreedyResult greedy = greedy_kmds(g, demands);
  assert(greedy.fully_satisfied);
  searcher.best_set = greedy.set;
  searcher.best_size = static_cast<std::int64_t>(greedy.set.size());

  searcher.dfs();

  result.set = std::move(searcher.best_set);
  result.optimal = !searcher.budget_exhausted;
  result.nodes_explored = searcher.nodes_explored;
  return result;
}

}  // namespace ftc::algo
