// Exact k-MDS via branch and bound — ground truth for small instances.
//
// k-MDS is NP-hard (it generalizes minimum dominating set), so exact
// solutions are only practical for small n; the experiment suite uses them
// to measure true approximation ratios on instances up to a few dozen
// nodes and to cross-validate the lower-bound toolkit.
//
// Method: depth-first branch and bound on include/exclude decisions.
//  * Upper bound: the greedy H_Δ solution initializes the incumbent.
//  * Variable choice: among the closed neighbors of the most-constrained
//    deficient node (fewest available helpers per unit of residual demand),
//    pick the one covering the most deficient nodes.
//  * Pruning: (a) infeasibility — some deficient node has fewer available
//    (non-excluded, unchosen) closed neighbors than residual demand;
//    (b) bound — |chosen| + max(⌈Σresidual/(Δ+1)⌉, max residual) reaches
//    the incumbent.
//
// Solves the LP (closed-neighborhood) definition; a search-node budget
// keeps worst cases bounded (result flagged non-optimal when exhausted).
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Budget and behavior knobs for the exact solver.
struct ExactOptions {
  /// Maximum branch-and-bound search nodes before giving up (the incumbent
  /// is still returned, flagged non-optimal).
  std::int64_t node_budget = 5'000'000;
};

/// Result of the exact solver.
struct ExactResult {
  std::vector<graph::NodeId> set;  ///< best solution found, sorted
  bool optimal = false;            ///< proven optimal within budget
  bool feasible = true;            ///< instance admits any solution
  std::int64_t nodes_explored = 0;
};

/// Solves min-|S| subject to closed-neighborhood coverage ≥ demands.
[[nodiscard]] ExactResult exact_kmds(const graph::Graph& g,
                                     const domination::Demands& demands,
                                     const ExactOptions& options = {});

}  // namespace ftc::algo
