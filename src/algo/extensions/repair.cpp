#include "algo/extensions/repair.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>

namespace ftc::algo {

using domination::Demands;
using domination::Mode;
using graph::NodeId;

RepairResult repair_after_failures(const graph::Graph& g,
                                   std::span<const NodeId> old_set,
                                   std::span<const NodeId> failed,
                                   const Demands& demands, Mode mode) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());

  RepairResult result;
  std::vector<std::uint8_t> dead(n, 0);
  for (NodeId v : failed) dead[static_cast<std::size_t>(v)] = 1;
  std::vector<std::uint8_t> member(n, 0);
  for (NodeId v : old_set) {
    const auto i = static_cast<std::size_t>(v);
    if (!dead[i]) member[i] = 1;
  }

  // Damage region: live nodes within 2 hops of a failed dominator — only
  // they can have lost coverage (1 hop) or be promotion candidates whose
  // spans changed (2 hops). Everything else is untouched.
  std::vector<std::uint8_t> touched(n, 0);
  for (NodeId f : failed) {
    for (NodeId u : g.neighbors(f)) {
      const auto ui = static_cast<std::size_t>(u);
      if (dead[ui]) continue;
      if (!touched[ui]) touched[ui] = 1;
      for (NodeId w : g.neighbors(u)) {
        const auto wi = static_cast<std::size_t>(w);
        if (!dead[wi]) touched[wi] = 1;
      }
    }
  }
  for (std::uint8_t t : touched) result.touched += t;

  // Live coverage and residual demand of a node.
  auto live_coverage = [&](NodeId v) {
    const auto vi = static_cast<std::size_t>(v);
    std::int32_t c = member[vi] ? 1 : 0;  // self (closed neighborhood)
    for (NodeId w : g.neighbors(v)) {
      const auto wi = static_cast<std::size_t>(w);
      if (!dead[wi] && member[wi]) ++c;
    }
    return c;
  };
  auto residual_of = [&](NodeId v) -> std::int32_t {
    const auto vi = static_cast<std::size_t>(v);
    if (dead[vi]) return 0;
    if (mode == Mode::kOpenForNonMembers && member[vi]) return 0;
    return std::max(0, demands[vi] - live_coverage(v));
  };

  // Deficient nodes are confined to the damage region.
  std::set<NodeId> deficient;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (touched[static_cast<std::size_t>(v)] && residual_of(v) > 0) {
      deficient.insert(v);
    }
  }

  while (!deficient.empty()) {
    const NodeId v = *deficient.begin();
    const std::int32_t need = residual_of(v);
    if (need <= 0) {
      deficient.erase(deficient.begin());
      continue;
    }
    // Promote the live non-member closed neighbor covering the most
    // deficient nodes (ties toward the smaller id).
    NodeId best = -1;
    std::int64_t best_span = -1;
    auto consider = [&](NodeId c) {
      const auto ci = static_cast<std::size_t>(c);
      if (dead[ci] || member[ci]) return;
      std::int64_t span = residual_of(c) > 0 ? 1 : 0;
      for (NodeId w : g.neighbors(c)) {
        if (residual_of(w) > 0) ++span;
      }
      if (span > best_span) {
        best_span = span;
        best = c;
      }
    };
    consider(v);
    for (NodeId w : g.neighbors(v)) consider(w);

    if (best == -1) {
      // v's whole live closed neighborhood is already in the set: the
      // demand became unsatisfiable (or, in open mode, v must join itself
      // — handled by `consider(v)` above, so this is genuinely stuck).
      result.fully_satisfied = false;
      deficient.erase(deficient.begin());
      continue;
    }

    member[static_cast<std::size_t>(best)] = 1;
    ++result.promoted;
    // Promotion changes residuals only in N[best]; re-examine them.
    auto reexamine = [&](NodeId u) {
      if (residual_of(u) <= 0) {
        deficient.erase(u);
      } else if (!dead[static_cast<std::size_t>(u)]) {
        deficient.insert(u);
      }
    };
    reexamine(best);
    for (NodeId w : g.neighbors(best)) reexamine(w);
  }

  result.set = domination::to_node_list(member);
  return result;
}

}  // namespace ftc::algo
