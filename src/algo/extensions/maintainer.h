// Incremental maintenance of a k-fold dominating set under live churn
// (DESIGN.md §13).
//
// repair_after_failures (PR 1) restores coverage after crashes; this
// generalizes it to the full mutation vocabulary of sim::DynamicWorld —
// joins, departures, moves, edge flips — while keeping the same locality
// story: per mutation batch, only the affected two-hop ball is examined and
// only nodes inside it change membership. A full greedy re-solve recomputes
// every node's decision; the maintainer's work (and its membership churn)
// scales with the damage, not with n. bench_dynamic measures the gap.
//
// Contract (the DynamicOracle checks every clause per fuzzed trace):
//   * k-coverage: if membership fully covered the effective demands before
//     the batch, it fully covers them after. Effective demand of an active
//     node is min(k, deg+1) — the clamp_demands convention; inactive nodes
//     demand and provide nothing.
//   * locality: membership changes only inside ball2 = the two-hop
//     neighborhood (in the post-mutation graph) of the batch's seed nodes
//     (mutated nodes, anchors, and delta-edge endpoints).
//   * bounded over-promotion: promotions <= the batch's coverage deficiency
//     (each greedy promotion satisfies at least one missing unit).
//   * determinism: identical inputs produce identical membership, changed
//     lists, and counters.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "graph/dynamic.h"
#include "obs/metrics.h"
#include "sim/mutation.h"

namespace ftc::obs {
class Plane;
}

namespace ftc::algo {

struct MaintainerOptions {
  std::int32_t k = 1;   ///< redundancy target (clamped per node to deg+1)
  bool demote = true;   ///< demote members made redundant by the batch
  bool promote = true;  ///< promotion waves (off only in mutant harnesses)
};

/// Outcome of one apply_batch call.
struct MaintainResult {
  std::int64_t promoted = 0;  ///< non-members pulled into the set
  std::int64_t demoted = 0;   ///< redundant members released
  std::int64_t dropped = 0;   ///< members removed because they departed
  std::int64_t ball1 = 0;     ///< nodes whose coverage was audited (1-hop)
  std::int64_t ball2 = 0;     ///< locality ball size (2-hop)
  /// Every node whose membership changed, ascending. The oracle checks
  /// this is exactly the pre/post membership diff and lies inside ball2.
  std::vector<graph::NodeId> changed;
  /// False only if a deficiency could not be repaired — impossible under
  /// the clamped-demand convention, kept as a defensive signal (mirrors
  /// RepairResult::fully_satisfied).
  bool fully_satisfied = true;
};

/// Stateful incremental k-MDS maintainer. Feed it the world's graph, the
/// active flags, and each batch's AppliedMutations (from
/// DynamicWorld::apply); it keeps its membership fully covering between
/// batches. Precondition: the initial set fully covers the initial
/// topology's effective demands (e.g. any greedy/LP solution).
class IncrementalMaintainer {
 public:
  IncrementalMaintainer(graph::NodeId n,
                        std::span<const graph::NodeId> initial_set,
                        MaintainerOptions options = {});

  /// Publishes dyn.* metrics (batches, mutations, promotions, demotions,
  /// drops, ball/changed size histograms, member gauge) to the plane's
  /// registry. Pass nullptr to detach.
  void bind_plane(obs::Plane* plane);

  /// Applies one mutation batch. `g`/`active` must be the post-mutation
  /// world state; `batch` the AppliedMutations that produced it.
  MaintainResult apply_batch(const graph::MutableGraph& g,
                             std::span<const std::uint8_t> active,
                             std::span<const sim::AppliedMutation> batch);

  /// One byte per node, 1 = member. Size tracks the last-seen n.
  [[nodiscard]] const std::vector<std::uint8_t>& membership() const noexcept {
    return member_;
  }

  [[nodiscard]] bool is_member(graph::NodeId v) const noexcept {
    return v >= 0 && static_cast<std::size_t>(v) < member_.size() &&
           member_[static_cast<std::size_t>(v)] != 0;
  }

  /// Member ids, ascending.
  [[nodiscard]] std::vector<graph::NodeId> member_set() const;

  [[nodiscard]] std::int64_t members() const noexcept;

  [[nodiscard]] const MaintainerOptions& options() const noexcept {
    return options_;
  }

  // Lifetime totals across batches.
  [[nodiscard]] std::int64_t batches() const noexcept { return batches_; }
  [[nodiscard]] std::int64_t total_promoted() const noexcept {
    return total_promoted_;
  }
  [[nodiscard]] std::int64_t total_demoted() const noexcept {
    return total_demoted_;
  }

 private:
  void publish(const MaintainResult& result, std::size_t mutations);

  MaintainerOptions options_;
  std::vector<std::uint8_t> member_;

  std::int64_t batches_ = 0;
  std::int64_t total_promoted_ = 0;
  std::int64_t total_demoted_ = 0;

  obs::Plane* plane_ = nullptr;
  obs::MetricId batches_id_ = obs::kInvalidMetric;
  obs::MetricId mutations_id_ = obs::kInvalidMetric;
  obs::MetricId promotions_id_ = obs::kInvalidMetric;
  obs::MetricId demotions_id_ = obs::kInvalidMetric;
  obs::MetricId dropped_id_ = obs::kInvalidMetric;
  obs::MetricId members_id_ = obs::kInvalidMetric;
  obs::MetricId ball_hist_id_ = obs::kInvalidMetric;
  obs::MetricId changed_hist_id_ = obs::kInvalidMetric;

  // Scratch reused across batches (sized to n on entry).
  std::vector<std::uint8_t> seed_mark_;
  std::vector<std::uint8_t> ball_;  ///< 0 = outside, 1 = ball2, 2 = ball1
  std::vector<std::int32_t> cover_;
  std::vector<std::uint8_t> promoted_now_;
};

}  // namespace ftc::algo
