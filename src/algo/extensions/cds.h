// Connecting a dominating set into a backbone (CDS extension).
//
// The paper's introduction motivates dominating sets as virtual backbones
// for routing [1, 22, 23], which additionally requires the set to be
// *connected* inside every connected component of the network. This module
// upgrades any dominating set (k-fold or not) into a connected one:
//
//   1. Group the set into clusters (connected components of the induced
//      subgraph G[S]).
//   2. Multi-source BFS from S labels every node with its nearest cluster
//      and its parent toward it.
//   3. Every G-edge {u, v} with different labels yields a candidate bridge
//      whose connector cost is (depth(u) + depth(v)) intermediate nodes.
//   4. Kruskal over candidate bridges (cheapest first) merges clusters,
//      adding only the connector nodes of accepted bridges.
//
// When S dominates G, every node has depth ≤ 1, so each accepted bridge
// adds at most 2 connectors, giving the classical |S'| ≤ 3|S| bound (tested
// as a property). The construction works for arbitrary S as well; bridges
// just get longer.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ftc::algo {

/// Result of the connection step.
struct ConnectResult {
  /// The input set plus connectors, sorted. Its induced subgraph is
  /// connected within every connected component of g that contains at
  /// least one input node.
  std::vector<graph::NodeId> set;
  /// How many connector nodes were added.
  std::int64_t connectors_added = 0;
  /// Number of cluster merges performed.
  std::int64_t bridges_used = 0;
};

/// Connects `set` as described above. Precondition: set ⊆ [0, g.n()).
/// Nodes of g in components containing no set member are left untouched
/// (there is nothing to connect them to).
[[nodiscard]] ConnectResult connect_dominating_set(
    const graph::Graph& g, std::span<const graph::NodeId> set);

/// True iff the subgraph induced by `set` is connected inside every
/// connected component of g that intersects `set`.
[[nodiscard]] bool is_connected_within_components(
    const graph::Graph& g, std::span<const graph::NodeId> set);

}  // namespace ftc::algo
