#include "algo/extensions/watchdog.h"

#include <cassert>
#include <utility>
#include <vector>

#include "algo/extensions/repair.h"
#include "obs/plane.h"

namespace ftc::algo {

using graph::NodeId;

CoverageWatchdog::CoverageWatchdog(domination::Demands demands,
                                   CoverageWatchdogOptions options,
                                   IsMember is_member, Promote promote)
    : options_(options),
      demands_(std::move(demands)),
      is_member_(std::move(is_member)),
      promote_(std::move(promote)) {
  assert(options_.patience >= 1);
  assert(is_member_ && promote_);
}

bool CoverageWatchdog::poll(const sim::SyncNetwork& net) {
  const graph::Graph& g = net.graph();
  assert(static_cast<NodeId>(demands_.size()) == g.n());

  std::vector<NodeId> failed;
  std::vector<NodeId> members;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) {
      failed.push_back(v);
    } else if (is_member_(v)) {
      members.push_back(v);
    }
  }

  // Ground-truth audit on the live topology: dead nodes neither demand nor
  // provide coverage, and surviving demands are clamped to what their live
  // closed neighborhoods can still satisfy (unsatisfiable residue is an
  // instance property, not an SLO violation).
  const graph::Graph live = g.without_nodes(failed);
  domination::Demands live_demands = domination::clamp_demands(live, demands_);
  for (const NodeId f : failed) {
    live_demands[static_cast<std::size_t>(f)] = 0;
  }
  uncovered_demand_ =
      domination::deficiency(live, members, live_demands, options_.mode);

  const bool violated = uncovered_demand_ > 0;
  std::int64_t promoted = 0;
  std::int64_t repaired_after = 0;  // episode length if a repair completed
  if (!violated) {
    streak_ = 0;
    if (episode_rounds_ > 0) {
      // The violation episode just ended: its length in polls is the
      // repair latency (interventions do not end an episode — only
      // restored coverage does).
      repaired_after = episode_rounds_;
      episode_rounds_ = 0;
      ++repairs_completed_;
    }
  } else {
    ++violation_rounds_;
    ++streak_;
    ++episode_rounds_;
    if (streak_ >= options_.patience) {
      // Patience exhausted: run the centralized repair oracle around the
      // failed nodes and re-issue exactly the missing promotions. The
      // network gets a fresh patience window to absorb them before the
      // next escalation.
      const RepairResult fix = repair_after_failures(
          g, members, failed, live_demands, options_.mode);
      for (const NodeId v : fix.set) {
        if (!net.crashed(v) && !is_member_(v)) {
          promote_(v);
          ++promoted;
        }
      }
      ++interventions_;
      promotions_issued_ += promoted;
      streak_ = 0;
    }
  }
  publish(net, violated, promoted, repaired_after);
  return violated;
}

void CoverageWatchdog::publish(const sim::SyncNetwork& net, bool violated,
                               std::int64_t promoted,
                               std::int64_t repaired_after) {
  obs::Plane* const plane = net.observability();
  if (plane == nullptr) return;
  if (plane != plane_) {
    plane_ = plane;
    auto& reg = plane->metrics();
    slo_violation_rounds_ = reg.counter("slo.coverage_violation_rounds");
    slo_uncovered_ = reg.gauge("slo.uncovered_demand");
    interventions_id_ = reg.counter("watchdog.interventions");
    promotions_id_ = reg.counter("watchdog.promotions");
    repair_latency_id_ =
        reg.histogram("slo.repair_latency_rounds", obs::pow2_bounds(0, 10));
  }
  auto& reg = plane->metrics();
  if (violated) reg.add(slo_violation_rounds_, 1);
  reg.set(slo_uncovered_, uncovered_demand_);
  if (repaired_after > 0) {
    reg.record(repair_latency_id_, static_cast<double>(repaired_after));
  }
  if (promoted > 0 || (violated && streak_ == 0)) {
    reg.add(interventions_id_, 1);
    reg.add(promotions_id_, promoted);
    if (plane->trace().enabled(obs::Category::kRepair,
                               obs::Severity::kInfo)) {
      obs::TraceEvent e;
      e.round = net.round();
      e.node = -1;  // the watchdog is not a node
      e.category = obs::Category::kRepair;
      e.severity = obs::Severity::kInfo;
      e.name = plane->builtin().n_watchdog;
      e.a0 = uncovered_demand_;
      e.a1 = promoted;
      plane->trace().emit(e);
    }
  }
}

}  // namespace ftc::algo
