// Coverage-SLO degradation watchdog for long-running deployments.
//
// RepairProcess heals coverage from inside the network, but its wave can
// stall under sustained channel impairment: votes get lost, false
// suspicions mask live members, and a deficient node may sit uncovered for
// many waves. CoverageWatchdog is the operator's backstop — a host-side
// daemon polled between rounds that audits ground-truth k-coverage of the
// live topology, tracks how long the deployment has been out of SLO, and
// escalates to a targeted promotion wave when the degradation persists
// longer than its patience.
//
// Division of labor:
//
//   * poll(net), called after each step(), recomputes the live coverage
//     shortfall (crashed nodes neither demand nor provide coverage; demands
//     are clamped to what the surviving closed neighborhoods can satisfy —
//     the same convention as repair_after_failures);
//   * every polled round with a positive shortfall increments the SLO
//     counter `slo.coverage_violation_rounds` and publishes the shortfall
//     as the gauge `slo.uncovered_demand`;
//   * after `patience` consecutive violating polls the watchdog intervenes:
//     it runs the centralized repair oracle on the live topology and issues
//     the missing promotions through the `promote` callback (idempotent —
//     promoting a node that is already promoting itself is harmless),
//     emitting a `watchdog.repair` trace event and counting
//     `watchdog.interventions` / `watchdog.promotions`. The streak then
//     restarts, giving the network another `patience` rounds to absorb the
//     re-issued wave before the watchdog escalates again.
//
// The watchdog reads simulator ground truth (crash flags), which a real
// deployment's operator console would approximate with gossip; the point
// here is the SLO accounting and the escalation policy, both of which are
// pure functions of the polled state and therefore deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "domination/domination.h"
#include "sim/network.h"

namespace ftc::algo {

struct CoverageWatchdogOptions {
  /// Coverage rule audited (must match the protocol being watched).
  domination::Mode mode = domination::Mode::kClosedNeighborhood;
  /// Consecutive violating polls tolerated before an intervention; >= 1.
  std::int64_t patience = 8;
};

/// Host-side coverage auditor + escalation daemon. Construct with the
/// deployment's demand vector and two callbacks into the hosted protocol;
/// call poll(net) after every network step.
class CoverageWatchdog {
 public:
  /// True iff node v currently claims set membership.
  using IsMember = std::function<bool(graph::NodeId)>;
  /// Force node v into the set (re-issue a promotion). Must be idempotent.
  using Promote = std::function<void(graph::NodeId)>;

  CoverageWatchdog(domination::Demands demands,
                   CoverageWatchdogOptions options, IsMember is_member,
                   Promote promote);

  /// Audits live k-coverage and applies the SLO/escalation policy above.
  /// Returns true iff this poll found a violation. Publishes to the
  /// network's attached observability plane, if any.
  bool poll(const sim::SyncNetwork& net);

  /// Rounds polled in violation of the coverage SLO (the SLO metric).
  [[nodiscard]] std::int64_t violation_rounds() const noexcept {
    return violation_rounds_;
  }
  /// Live coverage shortfall found by the last poll (0 = in SLO).
  [[nodiscard]] std::int64_t uncovered_demand() const noexcept {
    return uncovered_demand_;
  }
  /// Escalations performed (patience exhausted).
  [[nodiscard]] std::int64_t interventions() const noexcept {
    return interventions_;
  }
  /// Promotions issued through the callback, summed over interventions.
  [[nodiscard]] std::int64_t promotions_issued() const noexcept {
    return promotions_issued_;
  }
  /// Consecutive violating polls so far (resets on a clean poll or an
  /// intervention).
  [[nodiscard]] std::int64_t streak() const noexcept { return streak_; }

  /// Completed repair episodes (violation streaks that ended with coverage
  /// restored). Each one's length in polls lands in the
  /// `slo.repair_latency_rounds` histogram — the repair-latency metric the
  /// dynamic-maintenance SLO story is built on (DESIGN.md §13).
  [[nodiscard]] std::int64_t repairs_completed() const noexcept {
    return repairs_completed_;
  }

 private:
  void publish(const sim::SyncNetwork& net, bool violated,
               std::int64_t promoted, std::int64_t repaired_after);

  CoverageWatchdogOptions options_;
  domination::Demands demands_;
  IsMember is_member_;
  Promote promote_;

  std::int64_t violation_rounds_ = 0;
  std::int64_t uncovered_demand_ = 0;
  std::int64_t interventions_ = 0;
  std::int64_t promotions_issued_ = 0;
  std::int64_t streak_ = 0;
  std::int64_t episode_rounds_ = 0;  ///< polls since the violation began
  std::int64_t repairs_completed_ = 0;

  // Lazily registered on the first poll that sees an attached plane.
  obs::Plane* plane_ = nullptr;
  obs::MetricId slo_violation_rounds_ = obs::kInvalidMetric;
  obs::MetricId slo_uncovered_ = obs::kInvalidMetric;
  obs::MetricId interventions_id_ = obs::kInvalidMetric;
  obs::MetricId promotions_id_ = obs::kInvalidMetric;
  obs::MetricId repair_latency_id_ = obs::kInvalidMetric;
};

}  // namespace ftc::algo
