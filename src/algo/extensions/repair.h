// Local repair of a k-fold dominating set after node failures.
//
// The fault-tolerance story of the paper's introduction has two halves:
// k-fold redundancy *masks* failures for a while (experiment E9), and when
// coverage finally erodes, the network must re-cluster. A full re-run of
// any construction algorithm touches every node; this extension instead
// repairs *locally*: only neighborhoods that actually lost coverage act.
//
// repair_after_failures() removes the failed nodes from the set and the
// graph, finds every live node whose residual demand is no longer met, and
// greedily promotes live non-member neighbors (highest deficiency-span
// first, ties toward smaller ids) until all satisfiable demands are met
// again. The touched region is exactly the 2-hop neighborhood of the
// failed dominators — the cost scales with the damage, not with n.
//
// This is a centralized statement of what a distributed repair would do in
// O(1) rounds per promotion wave; the bench (A4) compares its cost against
// full re-clustering.
#pragma once

#include <span>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Outcome of a repair.
struct RepairResult {
  std::vector<graph::NodeId> set;  ///< repaired set (failed nodes removed)
  std::int64_t promoted = 0;       ///< nodes newly added
  /// Nodes whose coverage checks ran (the 2-hop damage region) — the
  /// "work" a local distributed repair would perform.
  std::int64_t touched = 0;
  bool fully_satisfied = true;  ///< false only if damage made demands
                                ///< unsatisfiable (k_i > live closed nbhd)
};

/// Repairs `old_set` on graph `g` after `failed` nodes crashed. `demands`
/// are interpreted on the *live* subgraph (failed nodes neither need nor
/// provide coverage) under `mode`. `old_set` may contain failed nodes (they
/// are dropped). Deterministic.
[[nodiscard]] RepairResult repair_after_failures(
    const graph::Graph& g, std::span<const graph::NodeId> old_set,
    std::span<const graph::NodeId> failed, const domination::Demands& demands,
    domination::Mode mode = domination::Mode::kClosedNeighborhood);

}  // namespace ftc::algo
