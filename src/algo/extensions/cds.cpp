#include "algo/extensions/cds.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "domination/domination.h"
#include "graph/properties.h"

namespace ftc::algo {

using graph::NodeId;

namespace {

/// Union-find over cluster ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true when a merge happened (the sets were distinct).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ConnectResult connect_dominating_set(const graph::Graph& g,
                                     std::span<const NodeId> set) {
  ConnectResult result;
  const auto n = static_cast<std::size_t>(g.n());
  auto members = domination::to_membership(g, set);

  // Step 1: clusters of G[S] via BFS restricted to members.
  std::vector<std::int32_t> cluster(n, -1);
  std::int32_t cluster_count = 0;
  for (NodeId s : set) {
    if (cluster[static_cast<std::size_t>(s)] != -1) continue;
    const std::int32_t id = cluster_count++;
    std::queue<NodeId> frontier;
    cluster[static_cast<std::size_t>(s)] = id;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(u)) {
        const auto wi = static_cast<std::size_t>(w);
        if (members[wi] && cluster[wi] == -1) {
          cluster[wi] = id;
          frontier.push(w);
        }
      }
    }
  }

  if (cluster_count <= 1) {
    result.set.assign(set.begin(), set.end());
    std::sort(result.set.begin(), result.set.end());
    return result;
  }

  // Step 2: multi-source BFS from all members; every node learns its
  // nearest cluster, depth, and BFS parent.
  std::vector<std::int32_t> label(n, -1);
  std::vector<NodeId> parent(n, -1);
  std::vector<std::int32_t> depth(n, -1);
  std::queue<NodeId> frontier;
  for (NodeId s : set) {
    const auto si = static_cast<std::size_t>(s);
    label[si] = cluster[si];
    depth[si] = 0;
    frontier.push(s);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId w : g.neighbors(u)) {
      const auto wi = static_cast<std::size_t>(w);
      if (label[wi] == -1) {
        label[wi] = label[static_cast<std::size_t>(u)];
        parent[wi] = u;
        depth[wi] = depth[static_cast<std::size_t>(u)] + 1;
        frontier.push(w);
      }
    }
  }

  // Step 3: candidate bridges across label boundaries.
  struct Bridge {
    std::int32_t cost;  // connector count
    NodeId u, v;
  };
  std::vector<Bridge> bridges;
  for (const graph::Edge& e : g.edges()) {
    const auto ui = static_cast<std::size_t>(e.u);
    const auto vi = static_cast<std::size_t>(e.v);
    if (label[ui] == -1 || label[vi] == -1) continue;  // memberless part
    if (label[ui] == label[vi]) continue;
    bridges.push_back({depth[ui] + depth[vi], e.u, e.v});
  }
  std::sort(bridges.begin(), bridges.end(), [](const Bridge& a,
                                               const Bridge& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  // Step 4: Kruskal over clusters; accepted bridges add their connector
  // chains (the BFS paths from u and v back to their clusters).
  UnionFind uf(static_cast<std::size_t>(cluster_count));
  auto add_chain = [&](NodeId start) {
    NodeId cur = start;
    while (cur != -1 && !members[static_cast<std::size_t>(cur)]) {
      members[static_cast<std::size_t>(cur)] = 1;
      ++result.connectors_added;
      cur = parent[static_cast<std::size_t>(cur)];
    }
  };
  for (const Bridge& bridge : bridges) {
    const auto cu = static_cast<std::size_t>(
        label[static_cast<std::size_t>(bridge.u)]);
    const auto cv = static_cast<std::size_t>(
        label[static_cast<std::size_t>(bridge.v)]);
    if (uf.unite(cu, cv)) {
      add_chain(bridge.u);
      add_chain(bridge.v);
      ++result.bridges_used;
    }
  }

  result.set = domination::to_node_list(members);
  return result;
}

bool is_connected_within_components(const graph::Graph& g,
                                    std::span<const NodeId> set) {
  if (set.empty()) return true;
  const auto n = static_cast<std::size_t>(g.n());
  const auto members = domination::to_membership(g, set);
  const auto components = graph::connected_components(g);

  // BFS in G[S] from one member per G-component; afterwards every member
  // of that component must be visited.
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::uint8_t> component_seeded(
      static_cast<std::size_t>(components.count), 0);
  for (NodeId s : set) {
    const auto comp = static_cast<std::size_t>(
        components.component[static_cast<std::size_t>(s)]);
    if (component_seeded[comp]) continue;
    component_seeded[comp] = 1;
    std::queue<NodeId> frontier;
    visited[static_cast<std::size_t>(s)] = 1;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(u)) {
        const auto wi = static_cast<std::size_t>(w);
        if (members[wi] && !visited[wi]) {
          visited[wi] = 1;
          frontier.push(w);
        }
      }
    }
  }
  for (NodeId s : set) {
    if (!visited[static_cast<std::size_t>(s)]) return false;
  }
  return true;
}

}  // namespace ftc::algo
