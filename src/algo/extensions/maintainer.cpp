#include "algo/extensions/maintainer.h"

#include <algorithm>
#include <cassert>

#include "obs/plane.h"

namespace ftc::algo {

using graph::Edge;
using graph::NodeId;

IncrementalMaintainer::IncrementalMaintainer(
    NodeId n, std::span<const NodeId> initial_set, MaintainerOptions options)
    : options_(options), member_(static_cast<std::size_t>(n), 0) {
  assert(n >= 0 && options_.k >= 1);
  for (NodeId v : initial_set) {
    assert(v >= 0 && v < n);
    member_[static_cast<std::size_t>(v)] = 1;
  }
}

void IncrementalMaintainer::bind_plane(obs::Plane* plane) {
  plane_ = plane;
  if (plane_ == nullptr) return;
  auto& reg = plane_->metrics();
  batches_id_ = reg.counter("dyn.batches");
  mutations_id_ = reg.counter("dyn.mutations");
  promotions_id_ = reg.counter("dyn.promotions");
  demotions_id_ = reg.counter("dyn.demotions");
  dropped_id_ = reg.counter("dyn.dropped");
  members_id_ = reg.gauge("dyn.members");
  ball_hist_id_ = reg.histogram("dyn.ball_nodes", obs::pow2_bounds(0, 20));
  changed_hist_id_ =
      reg.histogram("dyn.changed_nodes", obs::pow2_bounds(0, 16));
}

std::vector<NodeId> IncrementalMaintainer::member_set() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < member_.size(); ++i) {
    if (member_[i]) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::int64_t IncrementalMaintainer::members() const noexcept {
  std::int64_t count = 0;
  for (std::uint8_t m : member_) count += m;
  return count;
}

MaintainResult IncrementalMaintainer::apply_batch(
    const graph::MutableGraph& g, std::span<const std::uint8_t> active,
    std::span<const sim::AppliedMutation> batch) {
  const auto n = static_cast<std::size_t>(g.n());
  assert(active.size() == n);
  assert(member_.size() <= n && "topologies only grow");
  member_.resize(n, 0);
  seed_mark_.assign(n, 0);
  ball_.assign(n, 0);
  cover_.assign(n, 0);
  promoted_now_.assign(n, 0);

  MaintainResult result;
  std::vector<NodeId> changed;

  // Seeds: everything a mutation named plus every delta-edge endpoint. A
  // departed node's former neighbors are delta endpoints, so coverage lost
  // to the departure is rooted here.
  std::vector<NodeId> seeds;
  auto add_seed = [&](NodeId v) {
    if (v < 0 || static_cast<std::size_t>(v) >= n) return;
    auto& mark = seed_mark_[static_cast<std::size_t>(v)];
    if (!mark) {
      mark = 1;
      seeds.push_back(v);
    }
  };
  for (const sim::AppliedMutation& am : batch) {
    add_seed(am.m.node);
    add_seed(am.m.peer);
    for (const Edge& e : am.delta.added) {
      add_seed(e.u);
      add_seed(e.v);
    }
    for (const Edge& e : am.delta.removed) {
      add_seed(e.u);
      add_seed(e.v);
    }
  }
  std::sort(seeds.begin(), seeds.end());

  // Drop members that departed. Only seeds can have turned inactive: the
  // world deactivates nodes solely through leave mutations.
  for (NodeId s : seeds) {
    const auto si = static_cast<std::size_t>(s);
    if (member_[si] && !active[si]) {
      member_[si] = 0;
      ++result.dropped;
      changed.push_back(s);
    }
  }

  // ball1 = seeds + 1 hop (coverage can only have changed there);
  // ball2 = ball1 + 1 hop (where promotion candidates live). Both in the
  // post-mutation graph.
  std::vector<NodeId> ball1;
  for (NodeId s : seeds) {
    ball_[static_cast<std::size_t>(s)] = 2;
    ball1.push_back(s);
  }
  const std::size_t seed_count = ball1.size();
  for (std::size_t i = 0; i < seed_count; ++i) {
    for (NodeId w : g.neighbors(ball1[i])) {
      auto& mark = ball_[static_cast<std::size_t>(w)];
      if (mark != 2) {
        mark = 2;
        ball1.push_back(w);
      }
    }
  }
  std::vector<NodeId> ball2 = ball1;
  for (std::size_t i = 0; i < ball1.size(); ++i) {
    for (NodeId w : g.neighbors(ball1[i])) {
      auto& mark = ball_[static_cast<std::size_t>(w)];
      if (mark == 0) {
        mark = 1;
        ball2.push_back(w);
      }
    }
  }
  std::sort(ball1.begin(), ball1.end());
  result.ball1 = static_cast<std::int64_t>(ball1.size());
  result.ball2 = static_cast<std::int64_t>(ball2.size());

  // Effective demand: the clamp_demands convention, recomputed against the
  // current degree (a move can change what is satisfiable).
  auto eff_demand = [&](NodeId v) -> std::int32_t {
    if (!active[static_cast<std::size_t>(v)]) return 0;
    return std::min(options_.k, g.degree(v) + 1);
  };
  // Honest closed-neighborhood coverage (O(deg) scan).
  auto coverage_of = [&](NodeId v) -> std::int32_t {
    std::int32_t c = member_[static_cast<std::size_t>(v)] ? 1 : 0;
    for (NodeId w : g.neighbors(v)) c += member_[static_cast<std::size_t>(w)];
    return c;
  };
  for (NodeId v : ball1) cover_[static_cast<std::size_t>(v)] = coverage_of(v);
  // Residual demand, cached-cover fast path. Outside ball1 the pre-batch
  // full-coverage invariant still holds, so the residual is 0 by
  // construction — that is what confines the wave.
  auto residual_of = [&](NodeId v) -> std::int32_t {
    const auto vi = static_cast<std::size_t>(v);
    if (ball_[vi] != 2 || !active[vi]) return 0;
    return std::max(0, eff_demand(v) - cover_[vi]);
  };

  // Promotion wave: same greedy as repair_after_failures — promote the
  // closed neighbor spanning the most deficient nodes, ties toward the
  // smaller id, re-examining only N[best].
  std::set<NodeId> deficient;
  for (NodeId v : ball1) {
    if (residual_of(v) > 0) deficient.insert(v);
  }
  if (!options_.promote) {
    // Mutant-harness mode: report the deficiency but leave it unrepaired.
    result.fully_satisfied = deficient.empty();
    deficient.clear();
  }
  while (!deficient.empty()) {
    const NodeId v = *deficient.begin();
    if (residual_of(v) <= 0) {
      deficient.erase(deficient.begin());
      continue;
    }
    NodeId best = -1;
    std::int64_t best_span = -1;
    auto consider = [&](NodeId c) {
      const auto ci = static_cast<std::size_t>(c);
      if (!active[ci] || member_[ci]) return;
      std::int64_t span = residual_of(c) > 0 ? 1 : 0;
      for (NodeId w : g.neighbors(c)) {
        if (residual_of(w) > 0) ++span;
      }
      if (span > best_span) {
        best_span = span;
        best = c;
      }
    };
    consider(v);
    for (NodeId w : g.neighbors(v)) consider(w);

    if (best == -1) {
      // Unreachable under clamped demands (a deficient node always has a
      // non-member in its closed neighborhood); defensive parity with the
      // repair oracle.
      result.fully_satisfied = false;
      deficient.erase(deficient.begin());
      continue;
    }

    member_[static_cast<std::size_t>(best)] = 1;
    promoted_now_[static_cast<std::size_t>(best)] = 1;
    ++result.promoted;
    changed.push_back(best);
    auto reexamine = [&](NodeId u) {
      const auto ui = static_cast<std::size_t>(u);
      if (ball_[ui] == 2) ++cover_[ui];
      if (residual_of(u) <= 0) {
        deficient.erase(u);
      } else {
        deficient.insert(u);
      }
    };
    reexamine(best);
    for (NodeId w : g.neighbors(best)) reexamine(w);
  }

  // Demotion wave: release members the batch made redundant (a join or a
  // move can over-cover a region). One ascending pass; a member may go if
  // every active node in its closed neighborhood stays at its effective
  // demand without it. Freshly-promoted nodes are exempt — promoting and
  // demoting the same node in one batch would thrash.
  if (options_.demote) {
    for (NodeId v : ball1) {
      const auto vi = static_cast<std::size_t>(v);
      if (!member_[vi] || !active[vi] || promoted_now_[vi]) continue;
      auto still_covered = [&](NodeId w) {
        if (!active[static_cast<std::size_t>(w)]) return true;
        return coverage_of(w) - 1 >= eff_demand(w);
      };
      bool removable = still_covered(v);
      if (removable) {
        for (NodeId w : g.neighbors(v)) {
          if (!still_covered(w)) {
            removable = false;
            break;
          }
        }
      }
      if (!removable) continue;
      member_[vi] = 0;
      ++result.demoted;
      changed.push_back(v);
    }
  }

  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  result.changed = std::move(changed);

  ++batches_;
  total_promoted_ += result.promoted;
  total_demoted_ += result.demoted;
  publish(result, batch.size());
  return result;
}

void IncrementalMaintainer::publish(const MaintainResult& result,
                                    std::size_t mutations) {
  if (plane_ == nullptr) return;
  auto& reg = plane_->metrics();
  reg.add(batches_id_, 1);
  reg.add(mutations_id_, static_cast<std::int64_t>(mutations));
  reg.add(promotions_id_, result.promoted);
  reg.add(demotions_id_, result.demoted);
  reg.add(dropped_id_, result.dropped);
  reg.set(members_id_, members());
  reg.record(ball_hist_id_, static_cast<double>(result.ball2));
  reg.record(changed_hist_id_, static_cast<double>(result.changed.size()));
}

}  // namespace ftc::algo
