// Distributed self-healing of a k-fold dominating set (mirror: repair.h).
//
// repair_after_failures() is the omniscient statement of local repair: an
// observer who knows every crash removes the dead dominators and greedily
// promotes highest-deficiency-span neighbors until coverage is restored.
// RepairProcess is the same idea as an actual protocol: every node runs it
// forever as a daemon, detects dead neighbors itself with a heartbeat
// failure detector (sim/heartbeat.h), and repairs coverage with local
// promotion waves — no global coordinator, no global knowledge.
//
// One repair wave spans kRepairRoundsPerWave = 4 network rounds, keyed on
// the globally known round number (ctx.round() % 4), so nodes — including
// ones that just rejoined after churn — are always phase-aligned:
//
//   P0 MEMBER:  absorb VOTE messages from the previous wave: a non-member
//               named by any vote promotes itself. Broadcast the (possibly
//               new) membership bit.                              [2 words]
//   P1 DEFICIT: absorb membership bits; recompute the residual demand
//               (own demand minus live, unsuspected members in the closed
//               neighborhood). Broadcast the deficiency flag.     [2 words]
//   P2 SPAN:    absorb deficiency flags; a non-member computes its span =
//               number of deficient nodes in its closed neighborhood it
//               could help. Broadcast the span (members: 0).      [2 words]
//   P3 VOTE:    absorb spans; a deficient node elects the best candidate
//               in its closed neighborhood — highest span wins, ids break
//               ties — and broadcasts the vote.                   [2 words]
//
// Every message is [phase, value]: the phase tag of the round it was sent
// in. Under reliable links the tag is redundant (a message sent in phase P
// always arrives in phase P+1), but reordering links (sim/channel.h) can
// deliver a frame rounds late and duplication can replay it; a receiver
// only absorbs messages whose tag matches the previous phase and drops the
// rest, so a stale SPAN word is never misread as a VOTE. Dropping a stale
// message is always safe: it is indistinguishable from the loss the wave
// already tolerates, and every phase re-broadcasts fresh state.
//
// Every round broadcasts exactly one message, so protocol traffic doubles
// as the heartbeat (piggybacking; the failure detector never sends
// anything — and counts *any* arrival as life, stale or not).
//
// Relation to the centralized oracle: the oracle promotes sequentially, one
// globally best candidate at a time; a wave promotes every elected
// candidate in parallel. Each deficient node's winner is a live non-member
// in its closed neighborhood chosen by the same (span, id) order, so with
// perfect detection (no message loss) the repaired set satisfies every
// satisfiable live demand, and the parallelism costs at most the 2-hop
// damage region in extra promotions — the differential tests pin both
// properties. Residual demands shrink by at least one per wave per
// deficient node, so repair completes within max demand waves after
// detection: coverage is restored in O(timeout + k) rounds.
//
// Under message loss the detector can falsely suspect a live member; the
// protocol then over-promotes (never under-covers) and the false suspicion
// is withdrawn and counted when the member is heard again. Under churn a
// rejoined node boots a fresh non-member RepairProcess; its own coverage
// demand re-enters through the normal deficiency path.
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "sim/heartbeat.h"
#include "sim/network.h"

namespace ftc::algo {

/// Rounds per repair wave (phases P0..P3 above).
inline constexpr std::int64_t kRepairRoundsPerWave = 4;

/// Knobs for the self-healing daemon.
struct RepairProcessOptions {
  /// Coverage rule being maintained (see domination.h).
  domination::Mode mode = domination::Mode::kClosedNeighborhood;
  /// Heartbeat timeout in rounds: a silent neighbor is suspected dead after
  /// timeout rounds beyond the normal one-round delivery gap.
  std::int64_t detection_timeout = 4;
  /// When > 0, the detector runs in M-of-N mode instead: suspect a neighbor
  /// after detection_misses missed beats within a sliding window of
  /// detection_window rounds (see sim::HeartbeatMonitor). Use under lossy
  /// links, where consecutive-timeout detection false-suspects too eagerly.
  int detection_window = 0;
  /// M-of-N mode: misses needed to suspect (0 defaults to the full window).
  int detection_misses = 0;
};

/// Per-node self-healing daemon. Never halts — run the network for a round
/// budget and inspect member() afterwards.
class RepairProcess final : public sim::Process {
 public:
  /// `demand` is this node's k_i; `initially_member` marks the backbone
  /// membership computed by whichever construction algorithm ran before.
  RepairProcess(std::int32_t demand, bool initially_member,
                RepairProcessOptions options = {});

  void on_round(sim::Context& ctx) override;

  /// True iff this node currently believes it is in the dominating set.
  [[nodiscard]] bool member() const noexcept { return member_; }
  /// Residual demand as of the last DEFICIT phase (0 = covered).
  [[nodiscard]] std::int32_t residual() const noexcept { return residual_; }
  /// True iff the last wave found this node deficient with no live
  /// non-member candidate left in its closed neighborhood (the distributed
  /// analogue of RepairResult::fully_satisfied == false).
  [[nodiscard]] bool unsatisfied() const noexcept { return unsatisfied_; }
  /// Number of times this node joined the set (self-elected or external).
  [[nodiscard]] std::int64_t joins() const noexcept { return joins_; }

  /// External promotion re-issue (CoverageWatchdog escalation): idempotently
  /// forces this node into the set. Call between rounds; the membership bit
  /// goes out at the next P0 broadcast like any self-promotion.
  void promote() noexcept {
    if (!member_) {
      member_ = true;
      ++joins_;
    }
  }
  /// The embedded failure detector (suspicion statistics).
  [[nodiscard]] const sim::HeartbeatMonitor& monitor() const noexcept {
    return monitor_;
  }

 private:
  void phase_member(sim::Context& ctx);
  void phase_deficit(sim::Context& ctx);
  void phase_span(sim::Context& ctx);
  void phase_vote(sim::Context& ctx);

  /// Index of neighbor w in the sorted neighbor list.
  [[nodiscard]] std::size_t index_of(sim::Context& ctx,
                                     graph::NodeId w) const;

  RepairProcessOptions options_;
  sim::HeartbeatMonitor monitor_;
  std::int32_t demand_ = 0;
  bool member_ = false;
  std::int32_t residual_ = 0;
  bool deficient_ = false;
  bool unsatisfied_ = false;
  std::int64_t joins_ = 0;
  std::int64_t own_span_ = 0;
  bool self_elected_ = false;  ///< won this wave's own vote; join at next P0

  // Per-neighbor knowledge, indexed like ctx.neighbors(). kUnknown until
  // the first membership bit is heard (fresh boot / churn rejoin): a node
  // never acts on a neighborhood it has not fully heard from.
  enum : std::uint8_t { kUnknown = 0, kNonMember = 1, kMember = 2 };
  std::vector<std::uint8_t> nbr_membership_;
  std::vector<std::uint8_t> nbr_deficient_;
  std::vector<std::int64_t> nbr_span_;
};

}  // namespace ftc::algo
