// Soak harness: long self-healing executions under continuous faults.
//
// Ties the whole robustness stack together: a backbone is built once, every
// node then runs the RepairProcess daemon, and a FaultPlan (typically
// churn) batters the network for thousands of rounds while an omniscient
// observer — used for *measurement only*, never for control — tracks how
// coverage behaves:
//
//   * violation windows: maximal runs of rounds in which some live node's
//     satisfiable demand is unmet (its length is the repair latency the
//     survivors actually experienced);
//   * the repair threshold: detection timeout + the wave bound
//     (kRepairRoundsPerWave * (max demand + 3)) — a window longer than
//     this means the protocol failed to self-heal in time;
//   * promotion overhead vs. a full re-cluster of the final live graph;
//   * message cost, since heartbeats ride on every protocol word.
//
// A demand is "satisfiable" when clamped to the live closed neighborhood
// (min(k_i, live_deg + 1) in closed mode) — demands that churn has made
// impossible are excluded from violation accounting, exactly like the
// fully_satisfied handling of the centralized oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/fault.h"

namespace ftc::algo {

/// Knobs for one soak run.
struct SoakOptions {
  std::int64_t rounds = 2000;          ///< total rounds to execute
  std::int64_t detection_timeout = 4;  ///< heartbeat timeout (rounds)
  /// M-of-N loss-aware detection (sim::HeartbeatMonitor): window of N
  /// rounds (0 = legacy consecutive-timeout mode) and the misses needed
  /// to suspect within it (0 = the full window).
  int detection_window = 0;
  int detection_misses = 0;
  domination::Mode mode = domination::Mode::kClosedNeighborhood;
  double message_loss = 0.0;           ///< link loss probability
  std::uint64_t network_seed = 1;      ///< per-node process randomness
  std::uint64_t fault_seed = 2;        ///< fault plan compilation
  int threads = 1;                     ///< round-engine shards (determinism-safe)
  obs::Plane* plane = nullptr;         ///< optional observability plane
};

/// What the observer saw.
struct SoakReport {
  std::int64_t rounds = 0;
  std::int64_t crashes = 0;     ///< crash events in the compiled schedule
  std::int64_t recoveries = 0;  ///< rejoin events in the compiled schedule

  std::int64_t violation_rounds = 0;   ///< rounds with >= 1 unmet live demand
  std::int64_t violation_windows = 0;  ///< maximal violated intervals
  std::int64_t max_violation_window = 0;
  double mean_violation_window = 0.0;
  std::int64_t repair_threshold = 0;   ///< see file comment
  std::int64_t windows_over_threshold = 0;  ///< unrepaired violations
  bool violated_at_end = false;        ///< window still open at the horizon

  std::int64_t promotions = 0;         ///< self-promotions observed
  std::int64_t final_live = 0;         ///< live nodes at the horizon
  std::int64_t final_set_size = 0;     ///< live members at the horizon
  std::int64_t rebuild_set_size = 0;   ///< fresh greedy on the live graph
  std::int64_t final_unsatisfied = 0;  ///< live nodes stuck unsatisfiable

  std::int64_t messages_sent = 0;
  std::int64_t words_sent = 0;
  double messages_per_live_node_round = 0.0;  ///< heartbeat+protocol cost
  std::int64_t suspicions_raised = 0;
  std::int64_t refuted_suspicions = 0;  ///< false suspicions + churn rejoins
};

/// Runs one soak execution: builds a SyncNetwork over `g` (UDG optional —
/// required only by region fault plans), installs a RepairProcess per node
/// seeded with `initial_set` membership, installs `plan`, and steps
/// `options.rounds` rounds while tracking the report. Deterministic in
/// (g, demands, initial_set, plan, options).
[[nodiscard]] SoakReport run_soak(const graph::Graph& g,
                                  const geom::UnitDiskGraph* udg,
                                  const domination::Demands& demands,
                                  std::span<const graph::NodeId> initial_set,
                                  const sim::FaultPlan& plan,
                                  const SoakOptions& options);

}  // namespace ftc::algo
