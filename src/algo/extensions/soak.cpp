#include "algo/extensions/soak.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "algo/baseline/greedy.h"
#include "algo/extensions/repair_process.h"
#include "sim/network.h"

namespace ftc::algo {

using domination::Mode;
using graph::NodeId;

SoakReport run_soak(const graph::Graph& g, const geom::UnitDiskGraph* udg,
                    const domination::Demands& demands,
                    std::span<const NodeId> initial_set,
                    const sim::FaultPlan& plan, const SoakOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());

  SoakReport report;
  std::int32_t max_demand = 0;
  for (std::int32_t k : demands) max_demand = std::max(max_demand, k);
  // Detection latency: consecutive-timeout rounds in legacy mode, up to a
  // full window in M-of-N mode (a crash is suspected once the required
  // misses accumulate, at worst detection_window rounds later).
  const std::int64_t detection_latency =
      options.detection_window > 0
          ? std::max<std::int64_t>(options.detection_timeout,
                                   options.detection_window)
          : options.detection_timeout;
  report.repair_threshold =
      detection_latency +
      kRepairRoundsPerWave * (static_cast<std::int64_t>(max_demand) + 3);

  std::vector<std::uint8_t> initial_member(n, 0);
  for (NodeId v : initial_set) initial_member[static_cast<std::size_t>(v)] = 1;

  RepairProcessOptions popts;
  popts.mode = options.mode;
  popts.detection_timeout = options.detection_timeout;
  popts.detection_window = options.detection_window;
  popts.detection_misses = options.detection_misses;

  // Build from the embedding when one is provided so region fault plans can
  // see it; the repair protocol itself never uses distances.
  assert(udg == nullptr || &udg->graph == &g);
  const auto net_holder =
      udg != nullptr
          ? std::make_unique<sim::SyncNetwork>(*udg, options.network_seed)
          : std::make_unique<sim::SyncNetwork>(g, options.network_seed);
  sim::SyncNetwork& net = *net_holder;
  if (options.plane != nullptr) net.set_observability(options.plane);
  if (options.threads > 1) net.set_threads(options.threads);
  if (options.message_loss > 0.0) {
    net.set_message_loss(options.message_loss,
                         options.fault_seed ^ 0x6C6F7373ULL);
  }
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(
        demands[static_cast<std::size_t>(v)],
        initial_member[static_cast<std::size_t>(v)] != 0, popts);
  });

  // Rejoining nodes boot as fresh non-members and re-request coverage
  // through the normal deficiency path.
  sim::FaultInjector injector(plan, options.fault_seed);
  injector.install(net, options.rounds, [&](NodeId v) {
    return std::make_unique<RepairProcess>(
        demands[static_cast<std::size_t>(v)], false, popts);
  });
  report.crashes = injector.crash_count();
  report.recoveries = injector.recovery_count();

  // Omniscient per-round observation (measurement only).
  std::vector<std::uint8_t> prev_member = initial_member;
  std::vector<std::uint8_t> was_crashed(n, 0);
  std::vector<std::int64_t> seen_suspicions(n, 0);
  std::vector<std::int64_t> seen_refuted(n, 0);
  std::vector<std::uint8_t> member_now(n, 0);
  std::int64_t window_length = 0;
  double window_length_sum = 0.0;

  auto coverage_violated = [&]() {
    // Direct per-node check against demands clamped to the live closed
    // neighborhood — O(m), no graph rebuild.
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (net.crashed(v)) continue;
      std::int32_t live_nbrs = 0;
      std::int32_t covered = 0;
      for (NodeId w : g.neighbors(v)) {
        if (net.crashed(w)) continue;
        ++live_nbrs;
        if (member_now[static_cast<std::size_t>(w)]) ++covered;
      }
      std::int32_t required;
      if (options.mode == Mode::kClosedNeighborhood) {
        required = std::min(demands[vi], live_nbrs + 1);
        if (member_now[vi]) ++covered;
      } else {
        if (member_now[vi]) continue;  // members need nothing in open mode
        required = std::min(demands[vi], live_nbrs);
      }
      if (covered < required) return true;
    }
    return false;
  };

  for (std::int64_t r = 0; r < options.rounds; ++r) {
    net.step();

    std::int64_t round_promotions = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (net.crashed(v)) {
        was_crashed[vi] = 1;
        prev_member[vi] = 0;
        member_now[vi] = 0;
        continue;
      }
      auto& p = net.process_as<RepairProcess>(v);
      if (was_crashed[vi]) {
        // Fresh process after a rejoin: its counters restarted at zero.
        was_crashed[vi] = 0;
        seen_suspicions[vi] = 0;
        seen_refuted[vi] = 0;
      }
      member_now[vi] = p.member() ? 1 : 0;
      if (member_now[vi] && !prev_member[vi]) {
        ++report.promotions;
        ++round_promotions;
      }
      prev_member[vi] = member_now[vi];
      report.suspicions_raised += p.monitor().suspicions_raised() -
                                  seen_suspicions[vi];
      seen_suspicions[vi] = p.monitor().suspicions_raised();
      report.refuted_suspicions += p.monitor().refuted_suspicions() -
                                   seen_refuted[vi];
      seen_refuted[vi] = p.monitor().refuted_suspicions();
    }

    // Promotions only land in the P0 (member) phase; a non-empty P0 round
    // is one completed repair wave. The observer sees global wave sizes the
    // per-node processes cannot, so the histogram is published from here.
    if (options.plane != nullptr && round_promotions > 0 && r % 4 == 0) {
      obs::Plane& pl = *options.plane;
      pl.metrics().add(pl.builtin().repair_waves, 1);
      pl.metrics().record(pl.builtin().wave_joins,
                          static_cast<double>(round_promotions));
    }

    if (coverage_violated()) {
      ++report.violation_rounds;
      ++window_length;
    } else if (window_length > 0) {
      ++report.violation_windows;
      report.max_violation_window =
          std::max(report.max_violation_window, window_length);
      if (window_length > report.repair_threshold) {
        ++report.windows_over_threshold;
      }
      window_length_sum += static_cast<double>(window_length);
      window_length = 0;
    }
  }
  if (window_length > 0) {
    report.violated_at_end = true;
    ++report.violation_windows;
    report.max_violation_window =
        std::max(report.max_violation_window, window_length);
    if (window_length > report.repair_threshold) {
      ++report.windows_over_threshold;
    }
    window_length_sum += static_cast<double>(window_length);
  }

  report.rounds = options.rounds;
  report.mean_violation_window =
      report.violation_windows == 0
          ? 0.0
          : window_length_sum / static_cast<double>(report.violation_windows);

  std::vector<NodeId> crashed_final;
  std::vector<NodeId> final_set;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) {
      crashed_final.push_back(v);
      continue;
    }
    ++report.final_live;
    const auto& p = net.process_as<RepairProcess>(v);
    if (p.member()) final_set.push_back(v);
    if (p.unsatisfied()) ++report.final_unsatisfied;
  }
  report.final_set_size = static_cast<std::int64_t>(final_set.size());

  const graph::Graph live = g.without_nodes(crashed_final);
  auto live_demands = domination::clamp_demands(live, demands);
  for (NodeId v : crashed_final) {
    live_demands[static_cast<std::size_t>(v)] = 0;
  }
  report.rebuild_set_size = static_cast<std::int64_t>(
      greedy_kmds(live, live_demands).set.size());

  report.messages_sent = net.metrics().messages_sent;
  report.words_sent = net.metrics().words_sent;
  // Every live node broadcasts one word to each neighbor per round; this is
  // the combined heartbeat + repair-protocol cost (~average live degree).
  const double node_rounds =
      static_cast<double>(report.rounds) * static_cast<double>(g.n());
  report.messages_per_live_node_round =
      node_rounds == 0.0
          ? 0.0
          : static_cast<double>(report.messages_sent) / node_rounds;

  return report;
}

}  // namespace ftc::algo
