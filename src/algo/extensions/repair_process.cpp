#include "algo/extensions/repair_process.h"

#include <algorithm>
#include <cassert>

#include "obs/plane.h"

namespace ftc::algo {

using domination::Mode;
using graph::NodeId;
using sim::Message;
using sim::Word;

namespace {

/// Phase tag carried as word 0 of every repair message. Messages sent in
/// phase P arrive in phase P + 1; anything else is channel reordering or
/// duplication and is dropped by the reader.
constexpr Word prev_phase(std::int64_t round) {
  return static_cast<Word>((round + kRepairRoundsPerWave - 1) %
                           kRepairRoundsPerWave);
}

}  // namespace

RepairProcess::RepairProcess(std::int32_t demand, bool initially_member,
                             RepairProcessOptions options)
    : options_(options),
      monitor_(sim::HeartbeatMonitor::Options{options.detection_timeout,
                                              options.detection_window,
                                              options.detection_misses}),
      demand_(demand),
      member_(initially_member) {}

std::size_t RepairProcess::index_of(sim::Context& ctx, NodeId w) const {
  const auto nbrs = ctx.neighbors();
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
  assert(it != nbrs.end() && *it == w);
  return static_cast<std::size_t>(it - nbrs.begin());
}

void RepairProcess::on_round(sim::Context& ctx) {
  if (nbr_membership_.empty() && ctx.degree() > 0) {
    const auto deg = static_cast<std::size_t>(ctx.degree());
    nbr_membership_.assign(deg, kUnknown);
    nbr_deficient_.assign(deg, 0);
    nbr_span_.assign(deg, 0);
  }
  monitor_.observe(ctx);

  // Phases are keyed on the globally known round number, so every node —
  // including one that just rejoined mid-execution — agrees on the current
  // phase and therefore on how to read this round's single-word messages.
  switch (ctx.round() % kRepairRoundsPerWave) {
    case 0: phase_member(ctx); break;
    case 1: phase_deficit(ctx); break;
    case 2: phase_span(ctx); break;
    default: phase_vote(ctx); break;
  }
}

void RepairProcess::phase_member(sim::Context& ctx) {
  bool elected = self_elected_;
  self_elected_ = false;
  for (const Message& msg : ctx.inbox()) {
    if (msg.words.at(0) != prev_phase(ctx.round())) continue;  // stale
    if (msg.words.at(1) == static_cast<Word>(ctx.self())) elected = true;
  }
  if (elected && !member_) {
    member_ = true;
    ++joins_;
    if (obs::Recorder* rec = ctx.obs(); rec != nullptr) {
      rec->count(rec->builtin().promotions);
      rec->event(obs::Category::kRepair, obs::Severity::kInfo,
                 rec->builtin().n_promote, ctx.round(),
                 static_cast<std::int32_t>(ctx.self()), demand_);
    }
  }
  ctx.broadcast({static_cast<Word>(ctx.round() % kRepairRoundsPerWave),
                 member_ ? Word{1} : Word{0}});
}

void RepairProcess::phase_deficit(sim::Context& ctx) {
  for (const Message& msg : ctx.inbox()) {
    if (msg.words.at(0) != prev_phase(ctx.round())) continue;  // stale
    nbr_membership_[index_of(ctx, msg.from)] =
        msg.words.at(1) != 0 ? kMember : kNonMember;
  }

  if (options_.mode == Mode::kOpenForNonMembers && member_) {
    residual_ = 0;
  } else {
    std::int32_t coverage =
        (options_.mode == Mode::kClosedNeighborhood && member_) ? 1 : 0;
    bool unknown_live_neighbor = false;
    const auto nbrs = ctx.neighbors();
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (monitor_.suspects(nbrs[j])) continue;
      if (nbr_membership_[j] == kUnknown) {
        unknown_live_neighbor = true;
      } else if (nbr_membership_[j] == kMember) {
        ++coverage;
      }
    }
    // Never act on a neighborhood not fully heard from (fresh boot or churn
    // rejoin): one wave of patience instead of a spurious promotion.
    residual_ = unknown_live_neighbor ? 0 : std::max(0, demand_ - coverage);
  }
  if (residual_ > 0) {
    if (obs::Recorder* rec = ctx.obs(); rec != nullptr) {
      rec->record(rec->builtin().coverage_deficit,
                  static_cast<double>(residual_));
    }
  }
  deficient_ = residual_ > 0;
  ctx.broadcast({static_cast<Word>(ctx.round() % kRepairRoundsPerWave),
                 deficient_ ? Word{1} : Word{0}});
}

void RepairProcess::phase_span(sim::Context& ctx) {
  for (const Message& msg : ctx.inbox()) {
    if (msg.words.at(0) != prev_phase(ctx.round())) continue;  // stale
    nbr_deficient_[index_of(ctx, msg.from)] = msg.words.at(1) != 0 ? 1 : 0;
  }

  own_span_ = 0;
  if (!member_) {
    if (deficient_) ++own_span_;
    const auto nbrs = ctx.neighbors();
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (!monitor_.suspects(nbrs[j]) && nbr_deficient_[j] != 0) ++own_span_;
    }
  }
  ctx.broadcast({static_cast<Word>(ctx.round() % kRepairRoundsPerWave),
                 static_cast<Word>(own_span_)});
}

void RepairProcess::phase_vote(sim::Context& ctx) {
  for (const Message& msg : ctx.inbox()) {
    if (msg.words.at(0) != prev_phase(ctx.round())) continue;  // stale
    nbr_span_[index_of(ctx, msg.from)] = msg.words.at(1);
  }

  Word vote = -1;
  if (deficient_) {
    // Scan the closed neighborhood (self included, at its sorted position)
    // in ascending id order with strict improvement only: ties resolve to
    // the lowest id. All voters in a symmetric damage region therefore name
    // the same candidate, mirroring the centralized oracle's pick instead
    // of electing one replacement per voter.
    NodeId best = -1;
    std::int64_t best_span = 0;  // candidates need span > 0
    bool self_considered = false;
    auto consider_self = [&] {
      if (self_considered) return;
      self_considered = true;
      if (!member_ && own_span_ > best_span) {
        best = ctx.self();
        best_span = own_span_;
      }
    };
    const auto nbrs = ctx.neighbors();
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (nbrs[j] > ctx.self()) consider_self();
      if (monitor_.suspects(nbrs[j])) continue;
      // A positive span implies the sender was a non-member this wave.
      if (nbr_span_[j] > best_span) {
        best = nbrs[j];
        best_span = nbr_span_[j];
      }
    }
    consider_self();
    unsatisfied_ = best == -1;
    if (best == ctx.self()) self_elected_ = true;
    vote = static_cast<Word>(best);
  } else {
    unsatisfied_ = false;
  }
  ctx.broadcast({static_cast<Word>(ctx.round() % kRepairRoundsPerWave), vote});
}

}  // namespace ftc::algo
