// Algorithm 2 of the paper: distributed randomized rounding (Section 4.2) —
// centralized mirror.
//
// Given a (PP)-feasible fractional solution x, every node joins the
// dominating set with probability p_i = min{1, x_i·ln(Δ+1)}. Nodes still
// short of their demand k_i then request exactly their shortfall from
// closed-neighborhood members that stayed out; requested nodes join.
//
//   Theorem 4.6: starting from a ρ-approximate fractional solution the
//   result is an integral k-fold dominating set (LP definition) of expected
//   size ρ·ln(Δ+1)·OPT + O(OPT), i.e. ratio ρ·lnΔ + O(1), in O(1) rounds.
//
// The mirror reproduces the per-node randomness of the distributed process
// exactly: node v's coin uses stream Rng(seed).split(v), the same stream the
// simulator hands the process, so mirror and simulator pick identical sets.
//
// Deterministic request rule (the paper leaves the choice free): a deficient
// node requests itself first (if it stayed out), then its absent neighbors
// in ascending id order, until the shortfall is met.
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Outcome of the rounding step.
struct RoundingResult {
  std::vector<graph::NodeId> set;  ///< the integral dominating set, sorted

  /// Nodes chosen by the probabilistic step (the X of Theorem 4.6's proof).
  std::int64_t chosen_by_coin = 0;
  /// Nodes added by coverage requests (the Y of Theorem 4.6's proof).
  std::int64_t chosen_by_request = 0;
  /// Synchronous rounds consumed (constant: 3).
  std::int64_t rounds = 3;
};

/// Reusable buffers for the no-alloc rounding overload. A scratch reused
/// across trials reaches a zero-allocation steady state (the buffers grow
/// to the largest instance seen and stay put).
struct RoundingScratch {
  std::vector<std::uint8_t> in_set;
  std::vector<std::uint8_t> requested;
};

/// Rounds the fractional solution `x` into an integral k-fold dominating
/// set. `seed` must equal the SyncNetwork seed for mirror/simulator
/// equality. Preconditions: x.x.size() == g.n() == demands.size().
[[nodiscard]] RoundingResult round_fractional(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const domination::Demands& demands, std::uint64_t seed);

/// No-alloc variant: writes the result into `out` (set cleared and refilled,
/// counters reset) using caller-owned scratch. Identical output to
/// round_fractional — the value-returning overload delegates here. In
/// steady state (scratch and out reused, instance size not growing) the
/// call performs zero heap allocations.
void round_fractional(const graph::Graph& g,
                      const domination::FractionalSolution& x,
                      const domination::Demands& demands, std::uint64_t seed,
                      RoundingScratch& scratch, RoundingResult& out);

/// Best-of-N rounding: Theorem 4.6 bounds the set size only in
/// expectation, so practical deployments re-draw the coins a few times and
/// keep the smallest result (each trial is 3 rounds; trials can also run
/// concurrently on disjoint seed ranges). Returns the best of
/// round_fractional(g, x, demands, seed), ..., (seed + trials - 1).
/// Precondition: trials >= 1. The trial loop reuses one scratch and two
/// result buffers, so steady-state trials allocate nothing
/// (bench_algo_kernels records allocs/trial ≈ 0).
[[nodiscard]] RoundingResult round_fractional_best_of(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const domination::Demands& demands, std::uint64_t seed, int trials);

}  // namespace ftc::algo
