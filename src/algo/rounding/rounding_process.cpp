#include "algo/rounding/rounding_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/plane.h"

namespace ftc::algo {

using graph::NodeId;
using sim::Word;

RoundingProcess::RoundingProcess(double x, std::int32_t demand)
    : x_(x), demand_(demand) {
  assert(demand >= 0);
}

void RoundingProcess::on_round(sim::Context& ctx) {
  if (step_ == 0) {
    const double ln_d1 =
        std::log(static_cast<double>(ctx.max_degree()) + 1.0);
    const double p = std::min(1.0, x_ * ln_d1);
    if (ctx.rng().bernoulli(p)) {
      in_set_ = true;
      by_coin_ = true;
    }
    if (obs::Recorder* rec = ctx.obs(); rec != nullptr) {
      rec->count(rec->builtin().rounding_trials);
      rec->event(obs::Category::kAlgo, obs::Severity::kDebug,
                 rec->builtin().n_rounding_trial, ctx.round(),
                 static_cast<std::int32_t>(ctx.self()),
                 by_coin_ ? 1 : 0);
    }
    ctx.broadcast({in_set_ ? Word{1} : Word{0}});
  } else if (step_ == 1) {
    // Coverage snapshot from the coin phase. Missing messages (crashed
    // neighbors) count as absent.
    std::int32_t coverage = in_set_ ? 1 : 0;
    for (const sim::Message& msg : ctx.inbox()) {
      if (msg.words.size() != 1) continue;  // wrong-shape frame (delayed)
      coverage += msg.words[0] == 1 ? 1 : 0;
    }
    std::int32_t shortfall = demand_ - coverage;
    if (shortfall > 0) {
      if (!in_set_) {
        in_set_ = true;  // request self first (no message needed)
        --shortfall;
      }
      // Inbox is sorted by sender id: ascending-id absent neighbors.
      for (const sim::Message& msg : ctx.inbox()) {
        if (shortfall <= 0) break;
        if (msg.words[0] == 0) {
          ctx.send(msg.from, {Word{1}});  // REQ
          --shortfall;
        }
      }
    }
  } else {
    if (!ctx.inbox().empty() && !in_set_) {
      in_set_ = true;  // someone requested us
    }
    halt();
  }
  ++step_;
}

}  // namespace ftc::algo
