// Algorithm 2 as a faithful per-node program for the synchronous simulator.
//
// Round 0: flip the coin with p_i = min{1, x_i·ln(Δ+1)}; broadcast the
//          membership bit.                                        [1 word]
// Round 1: count closed-neighborhood members; if short of k_i, send REQ to
//          the first (shortfall) absent candidates — self first, then
//          absent neighbors in ascending id order.                [1 word]
// Round 2: absent nodes that received a REQ join; halt.
//
// Matches round_fractional() (the centralized mirror) node for node when
// the network seed equals the mirror seed.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace ftc::algo {

/// Per-node process implementing Algorithm 2. Construct with the node's
/// fractional value x_i (from Algorithm 1) and demand k_i.
class RoundingProcess final : public sim::Process {
 public:
  RoundingProcess(double x, std::int32_t demand);

  void on_round(sim::Context& ctx) override;

  /// True iff this node ended up in the dominating set (valid after halt).
  [[nodiscard]] bool in_set() const noexcept { return in_set_; }
  /// True iff membership came from the probabilistic step.
  [[nodiscard]] bool chosen_by_coin() const noexcept { return by_coin_; }

 private:
  double x_ = 0.0;
  std::int32_t demand_ = 1;
  bool in_set_ = false;
  bool by_coin_ = false;
  std::int64_t step_ = 0;
};

}  // namespace ftc::algo
