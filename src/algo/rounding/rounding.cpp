#include "algo/rounding/rounding.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace ftc::algo {

using domination::Demands;
using graph::NodeId;

void round_fractional(const graph::Graph& g,
                      const domination::FractionalSolution& x,
                      const Demands& demands, std::uint64_t seed,
                      RoundingScratch& scratch, RoundingResult& out) {
  assert(static_cast<NodeId>(x.x.size()) == g.n());
  assert(static_cast<NodeId>(demands.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);

  out.set.clear();
  out.chosen_by_coin = 0;
  out.chosen_by_request = 0;
  out.rounds = 3;
  scratch.in_set.assign(n, 0);
  scratch.requested.assign(n, 0);
  std::vector<std::uint8_t>& in_set = scratch.in_set;
  std::vector<std::uint8_t>& requested = scratch.requested;

  // Line 1-2: independent coins, one per node, from the node's own stream
  // (identical to what the simulator hands each process).
  const util::Rng root(seed);
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng node_rng = root.split(i);
    const double p = std::min(1.0, x.x[i] * ln_d1);
    if (node_rng.bernoulli(p)) {
      in_set[i] = 1;
      ++out.chosen_by_coin;
    }
  }

  // Lines 4-6: every deficient node requests its shortfall, reading only the
  // coin-phase choices (the synchronous semantics: all requests are decided
  // against the same snapshot).
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    std::int32_t coverage = in_set[i];
    for (NodeId w : g.neighbors(v)) {
      coverage += in_set[static_cast<std::size_t>(w)];
    }
    std::int32_t shortfall = demands[i] - coverage;
    if (shortfall <= 0) continue;
    // Deterministic request rule: self first, then neighbors ascending.
    if (!in_set[i] && shortfall > 0) {
      requested[i] = 1;
      --shortfall;
    }
    for (NodeId w : g.neighbors(v)) {
      if (shortfall <= 0) break;
      const auto j = static_cast<std::size_t>(w);
      if (!in_set[j]) {  // requests to already-requested nodes are idempotent
        requested[j] = 1;
        --shortfall;
      }
    }
  }

  // Line 7: requested nodes join.
  for (std::size_t i = 0; i < n; ++i) {
    if (requested[i] && !in_set[i]) {
      in_set[i] = 1;
      ++out.chosen_by_request;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (in_set[i]) out.set.push_back(static_cast<NodeId>(i));
  }
}

RoundingResult round_fractional(const graph::Graph& g,
                                const domination::FractionalSolution& x,
                                const Demands& demands, std::uint64_t seed) {
  RoundingScratch scratch;
  RoundingResult result;
  round_fractional(g, x, demands, seed, scratch, result);
  return result;
}

RoundingResult round_fractional_best_of(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const Demands& demands, std::uint64_t seed, int trials) {
  assert(trials >= 1);
  // One scratch and two result buffers for the whole trial loop: after the
  // first couple of trials every buffer has reached its high-water size and
  // the per-trial work allocates nothing.
  RoundingScratch scratch;
  RoundingResult best, candidate;
  round_fractional(g, x, demands, seed, scratch, best);
  for (int trial = 1; trial < trials; ++trial) {
    round_fractional(g, x, demands,
                     seed + static_cast<std::uint64_t>(trial), scratch,
                     candidate);
    if (candidate.set.size() < best.set.size()) {
      std::swap(best, candidate);
    }
  }
  best.rounds = 3 * trials;
  return best;
}

}  // namespace ftc::algo
