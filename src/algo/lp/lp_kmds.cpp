// Optimized centralized mirror of Algorithm 1 (see lp_kmds.h).
//
// This is the kernelized rewrite of the reference solver
// (lp_kmds_reference.cpp); it must produce a bitwise-identical LpResult —
// the property tests and the kernel.lp_reference_equiv fuzz invariant
// enforce exactly that. Three structural changes carry the speedup:
//
//   * Power tables. The reference calls std::pow(d1v[i], e/t) three times
//     per node per (p, q) phase. All exponents come from the finite set
//     {-(t-1)/t .. t/t}, so the full pow family is precomputed once into
//     flat tables (one shared row under global-Δ knowledge, where every
//     node has the same base; one row per node under kTwoHop). Hoisting a
//     pure call is exact: the tables hold the very doubles the reference
//     computes inline.
//   * Flat CSR arenas. The per-node vector<vector<double>> alpha/beta
//     tables (2n allocations, pointer-chasing per access) become two flat
//     arenas of n + 2m doubles indexed by closed-neighborhood slot:
//     arena[base[i]] is node i's self slot, arena[base[i] + 1 + s] its s-th
//     sorted neighbor. The final z-pass replaces per-edge binary searches
//     with a precomputed reverse-slot array (the position of v inside w's
//     adjacency row, built in one O(m) counting sweep).
//   * Pool-parallel phases. Each of the three per-phase node loops (and
//     the z-pass) is embarrassingly parallel: every node writes only its
//     own slots and reads only values fixed before the loop started. The
//     loops run over fixed node blocks on a util::ThreadPool; the one
//     reduction (Lemma 4.1's max ratio) is collected per block and merged
//     in block order after the barrier. Blocks are carved independently of
//     the thread count and max is order-insensitive over a fixed set, so
//     the output is bitwise identical at ANY width — the same determinism
//     contract the simulator's round engine ships (DESIGN.md §11).
#include "algo/lp/lp_kmds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "obs/perf.h"
#include "sim/message.h"
#include "util/thread_pool.h"

namespace ftc::algo {

using domination::Demands;
using domination::DualSolution;
using graph::NodeId;

DualSolution LpResult::scaled_dual() const {
  DualSolution scaled = dual;
  for (double& v : scaled.y) v /= kappa;
  for (double& v : scaled.z) v /= kappa;
  return scaled;
}

double LpResult::dual_bound(const Demands& demands) const {
  return std::max(0.0, scaled_dual().objective(demands));
}

double theorem45_bound(int t, NodeId max_degree) {
  assert(t >= 1);
  const double d1 = static_cast<double>(max_degree) + 1.0;
  const double td = static_cast<double>(t);
  return td * (std::pow(d1, 2.0 / td) + std::pow(d1, 1.0 / td));
}

std::int64_t lp_round_count(int t) {
  return 2 * static_cast<std::int64_t>(t) * static_cast<std::int64_t>(t) + 2;
}

namespace {

/// Applies the message quantization the distributed processes incur, or the
/// identity when modeling exact real-valued messages.
double transmit(double value, bool quantize) {
  return quantize ? sim::decode_fixed(sim::encode_fixed(value)) : value;
}

/// Fixed-block parallel-for over [0, n). The block decomposition depends
/// only on (n, block) — never on the thread count — so any reduction merged
/// in block order is width-independent by construction.
class BlockRunner {
 public:
  BlockRunner(std::size_t n, int threads, int block_nodes)
      : n_(n),
        block_(block_nodes > 0 ? static_cast<std::size_t>(block_nodes)
                               : kDefaultBlockNodes),
        blocks_(n == 0 ? 0 : (n + block_ - 1) / block_) {
    if (threads > 1 && blocks_ > 1) {
      pool_ = std::make_unique<util::ThreadPool>(threads);
    }
  }

  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] util::ThreadPool* pool() const noexcept { return pool_.get(); }

  /// Runs fn(first, last, block_index) over every block; strict barrier.
  template <typename Fn>
  void run(const Fn& fn) const {
    if (pool_ != nullptr) {
      pool_->run(static_cast<int>(blocks_), [&](int b) {
        const auto ub = static_cast<std::size_t>(b);
        fn(ub * block_, std::min(n_, (ub + 1) * block_), ub);
      });
    } else {
      for (std::size_t b = 0; b < blocks_; ++b) {
        fn(b * block_, std::min(n_, (b + 1) * block_), b);
      }
    }
  }

 private:
  static constexpr std::size_t kDefaultBlockNodes = 8192;

  std::size_t n_;
  std::size_t block_;
  std::size_t blocks_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace

std::vector<double> two_hop_d1(const graph::Graph& g) {
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<double> hop1(n, 0.0);
  for (NodeId v = 0; v < g.n(); ++v) {
    double m = static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      m = std::max(m, static_cast<double>(g.degree(w)));
    }
    hop1[static_cast<std::size_t>(v)] = m;
  }
  std::vector<double> d1(n, 1.0);
  for (NodeId v = 0; v < g.n(); ++v) {
    double m = hop1[static_cast<std::size_t>(v)];
    for (NodeId w : g.neighbors(v)) {
      m = std::max(m, hop1[static_cast<std::size_t>(w)]);
    }
    d1[static_cast<std::size_t>(v)] = m + 1.0;
  }
  return d1;
}

LpResult solve_fractional_kmds(const graph::Graph& g, const Demands& demands,
                               const LpOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(options.t >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  const int t = options.t;
  const auto ts = static_cast<std::size_t>(t);
  const bool quantize = options.quantize_messages;
  const bool two_hop = options.degree_knowledge == DegreeKnowledge::kTwoHop;

  // Per-node base Δ_v + 1 (two_hop) or the single global base (kGlobal).
  std::vector<double> d1v;
  if (two_hop) d1v = two_hop_d1(g);
  const double d1 = static_cast<double>(g.max_degree()) + 1.0;

  LpResult result;
  result.kappa = static_cast<double>(t) * std::pow(d1, 1.0 / t);
  result.rounds = lp_round_count(t);
  result.primal.x.assign(n, 0.0);
  result.dual.y.assign(n, 0.0);
  result.dual.z.assign(n, 0.0);
  if (n == 0) return result;

  // Power tables: pos_pow[row·(t+1) + e] = base^{e/t} for e ∈ [0, t],
  // neg_pow[row·t + q] = base^{-q/t} for q ∈ [0, t). Under global Δ every
  // node shares one row (stride 0); under kTwoHop each node has its own.
  // Entries are computed with the exact std::pow expressions the reference
  // solver (and the distributed process) evaluates inline, so reading the
  // table is bitwise-equivalent to recomputing.
  const std::size_t rows = two_hop ? n : 1;
  const std::size_t row_stride_pos = two_hop ? ts + 1 : 0;
  const std::size_t row_stride_neg = two_hop ? ts : 0;
  std::vector<double> pos_pow(rows * (ts + 1));
  std::vector<double> neg_pow(rows * ts);
  for (std::size_t r = 0; r < rows; ++r) {
    const double base = two_hop ? d1v[r] : d1;
    for (std::size_t e = 0; e <= ts; ++e) {
      pos_pow[r * (ts + 1) + e] =
          std::pow(base, static_cast<double>(e) / t);
    }
    for (std::size_t q = 0; q < ts; ++q) {
      neg_pow[r * ts + q] =
          std::pow(base, -static_cast<double>(q) / t);
    }
  }

  std::vector<double>& x = result.primal.x;
  std::vector<double> x_plus(n, 0.0);
  std::vector<double> x_plus_wire(n, 0.0);  // as seen by receivers
  std::vector<double> c(n, 0.0);
  std::vector<std::uint8_t> white(n, 1);
  std::vector<std::int32_t> dyn_deg(n, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    dyn_deg[static_cast<std::size_t>(v)] = g.degree(v) + 1;
  }

  // Flat alpha/beta arenas in closed-neighborhood slot order: node i owns
  // [base[i], base[i] + deg(i)] — slot 0 is i itself, slot 1+s its s-th
  // sorted neighbor. base[i] = i + (sum of degrees of nodes < i).
  std::vector<std::size_t> adj_prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    adj_prefix[i + 1] =
        adj_prefix[i] + static_cast<std::size_t>(g.degree(static_cast<NodeId>(i)));
  }
  const auto base = [&adj_prefix](std::size_t i) {
    return i + adj_prefix[i];
  };
  std::vector<double> alpha(n + adj_prefix[n], 0.0);
  std::vector<double> beta(n + adj_prefix[n], 0.0);

  // Reverse slots: for the directed edge at position e = adj_prefix[v] + s
  // (v's s-th neighbor w), rev_slot[e] is v's position inside w's adjacency
  // row. One counting sweep: scanning v ascending, v is appended to each
  // neighbor w's row in sorted order, so v's position in w's row equals the
  // number of smaller neighbors of w seen so far.
  std::vector<std::uint32_t> rev_slot(adj_prefix[n]);
  {
    std::vector<std::uint32_t> cursor(n, 0);
    for (NodeId v = 0; v < g.n(); ++v) {
      std::size_t e = adj_prefix[static_cast<std::size_t>(v)];
      for (const NodeId w : g.neighbors(v)) {
        rev_slot[e++] = cursor[static_cast<std::size_t>(w)]++;
      }
    }
  }

  const BlockRunner runner(n, options.threads, options.parallel_block);
  std::vector<double> block_ratio(runner.blocks(), 0.0);

  // Optional perf attribution: each (p, q) iteration is one perf "round"
  // (kLpXUpdate / kLpDualColor / kLpDegree laps), the z-pass one more. The
  // sink only receives wall times — it cannot touch the solution state.
  obs::PerfPlane* const pf = options.perf;
  if (pf != nullptr && runner.pool() != nullptr) {
    runner.pool()->set_perf_enabled(true);
  }
  std::int64_t t_mark = pf != nullptr ? obs::PerfPlane::now_ns() : 0;
  auto lap = [&](obs::PerfPhase phase) {
    if (pf == nullptr) return;
    const std::int64_t now = obs::PerfPlane::now_ns();
    pf->add(phase, now - t_mark);
    t_mark = now;
  };
  std::int64_t perf_iter = 0;
  auto perf_end_iter = [&](std::int64_t iter_t0) {
    if (pf == nullptr) return;
    if (runner.pool() != nullptr) {
      const util::ThreadPool::PerfCounters pc = runner.pool()->drain_perf();
      pf->add(obs::PerfPhase::kBarrierWait, pc.barrier_wait_ns);
      pf->add(obs::PerfPhase::kClaimStall, pc.claim_stall_ns);
    }
    pf->end_round(perf_iter++, t_mark - iter_t0);
  };

  for (int p = t - 1; p >= 0; --p) {
    for (int q = t - 1; q >= 0; --q) {
      const std::int64_t iter_t0 = t_mark;
      const auto pe = static_cast<std::size_t>(p);
      const auto qe = static_cast<std::size_t>(q);
      // Lines 5-8: x-update (plus Lemma 4.1 audit), all nodes in lockstep.
      // Each node touches only its own x/x_plus/wire slots; the Lemma 4.1
      // ratio reduces into the task's block slot and is merged below.
      runner.run([&](std::size_t first, std::size_t last, std::size_t b) {
        double ratio = 0.0;
        for (std::size_t i = first; i < last; ++i) {
          const std::size_t row_pos = row_stride_pos * i;
          const std::size_t row_neg = row_stride_neg * i;
          const double threshold = pos_pow[row_pos + pe];
          const double lemma41_bound = pos_pow[row_pos + pe + 1];
          x_plus[i] = 0.0;
          if (x[i] < 1.0) {
            ratio = std::max(ratio,
                             static_cast<double>(dyn_deg[i]) / lemma41_bound);
            if (static_cast<double>(dyn_deg[i]) >= threshold) {
              x_plus[i] = std::min(neg_pow[row_neg + qe], 1.0 - x[i]);
              x[i] += x_plus[i];
            }
          }
          x_plus_wire[i] = transmit(x_plus[i], quantize);
        }
        block_ratio[b] = ratio;
      });
      for (std::size_t b = 0; b < runner.blocks(); ++b) {
        result.max_lemma41_ratio =
            std::max(result.max_lemma41_ratio, block_ratio[b]);
      }
      lap(obs::PerfPhase::kLpXUpdate);

      // Lines 10-21: dual bookkeeping and coloring at white nodes. Node i
      // writes c/alpha/beta/white/y slots it owns and reads only x_plus
      // values fixed by the previous loop's barrier.
      runner.run([&](std::size_t first, std::size_t last, std::size_t) {
        for (std::size_t i = first; i < last; ++i) {
          if (!white[i]) continue;
          const double inv_dp = neg_pow[row_stride_neg * i + pe];
          const NodeId v = static_cast<NodeId>(i);
          double c_plus = x_plus[i];  // own increase, known exactly
          for (NodeId w : g.neighbors(v)) {
            c_plus += x_plus_wire[static_cast<std::size_t>(w)];
          }
          const double k_i = static_cast<double>(demands[i]);
          const double lambda =
              c_plus > 0.0 ? std::min(1.0, (k_i - c[i]) / c_plus) : 1.0;
          c[i] += c_plus;
          double* const alpha_i = alpha.data() + base(i);
          double* const beta_i = beta.data() + base(i);
          alpha_i[0] += lambda * x_plus[i];
          beta_i[0] += lambda * x_plus[i] * inv_dp;
          std::size_t slot = 1;
          for (NodeId w : g.neighbors(v)) {
            const double xj = x_plus_wire[static_cast<std::size_t>(w)];
            alpha_i[slot] += lambda * xj;
            beta_i[slot] += lambda * xj * inv_dp;
            ++slot;
          }
          if (c[i] + kCoverageEps >= k_i) {
            white[i] = 0;
            result.dual.y[i] = inv_dp;
          }
        }
      });
      lap(obs::PerfPhase::kLpDualColor);

      // Lines 23-24: exchange colors, recompute dynamic degrees (reads the
      // white[] snapshot the previous barrier fixed).
      runner.run([&](std::size_t first, std::size_t last, std::size_t) {
        for (std::size_t i = first; i < last; ++i) {
          const NodeId v = static_cast<NodeId>(i);
          std::int32_t deg = white[i] ? 1 : 0;
          for (NodeId w : g.neighbors(v)) {
            deg += white[static_cast<std::size_t>(w)] ? 1 : 0;
          }
          dyn_deg[i] = deg;
        }
      });
      lap(obs::PerfPhase::kLpDegree);
      perf_end_iter(iter_t0);
    }
  }
  const std::int64_t z_t0 = t_mark;

  // Line 27: z_i = Σ_{j∈N_i} (α_{i,j}·y_j − β_{i,j}). α_{i,j} lives at node
  // j (in i's slot — rev_slot gives it without a binary search); in the
  // distributed version j sends the share across the edge, so neighbor
  // shares are quantized like any other message.
  runner.run([&](std::size_t first, std::size_t last, std::size_t) {
    for (std::size_t i = first; i < last; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      double z = alpha[base(i)] * result.dual.y[i] - beta[base(i)];  // j = i
      std::size_t e = adj_prefix[i];
      for (NodeId w : g.neighbors(v)) {
        const auto j = static_cast<std::size_t>(w);
        const std::size_t slot = base(j) + 1 + rev_slot[e++];
        const double share = alpha[slot] * result.dual.y[j] - beta[slot];
        z += transmit(share, quantize);
      }
      result.dual.z[i] = z;
    }
  });
  lap(obs::PerfPhase::kLpZPass);
  perf_end_iter(z_t0);

  return result;
}

}  // namespace ftc::algo
