// Unoptimized reference implementation of Algorithm 1's centralized mirror.
//
// This is the pre-kernel-layer solver kept verbatim: per-(p,q) std::pow
// calls, per-node vector<vector<double>> alpha/beta tables, binary-search
// slot lookups. It exists for two reasons:
//
//   * Correctness anchor: the optimized solve_fractional_kmds (lp_kmds.cpp
//     — power tables, flat CSR arenas, pool-parallel phases) must produce a
//     bitwise-identical LpResult at every thread width. The property tests
//     and the kernel.lp_reference_equiv fuzz invariant compare against this
//     function directly, without going through the simulator.
//   * Benchmark baseline: bench_algo_kernels prices the optimized solver
//     against this one, so BENCH_algo.json carries real before/after rows.
//
// Do not optimize this file; optimizations belong in lp_kmds.cpp.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "algo/lp/lp_kmds.h"
#include "sim/message.h"

namespace ftc::algo {

using domination::Demands;
using graph::NodeId;

namespace {

/// Applies the message quantization the distributed processes incur, or the
/// identity when modeling exact real-valued messages.
double transmit(double value, bool quantize) {
  return quantize ? sim::decode_fixed(sim::encode_fixed(value)) : value;
}

}  // namespace

LpResult solve_fractional_kmds_reference(const graph::Graph& g,
                                         const Demands& demands,
                                         const LpOptions& options) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  assert(options.t >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  const int t = options.t;
  const bool quantize = options.quantize_messages;
  // Per-node base Δ_v + 1: the global maximum in the paper's baseline
  // model, the 2-hop local maximum in the Remark's Δ-free variant.
  std::vector<double> d1v;
  if (options.degree_knowledge == DegreeKnowledge::kTwoHop) {
    d1v = two_hop_d1(g);
  } else {
    d1v.assign(n, static_cast<double>(g.max_degree()) + 1.0);
  }
  const double d1 = static_cast<double>(g.max_degree()) + 1.0;

  LpResult result;
  result.kappa = static_cast<double>(t) * std::pow(d1, 1.0 / t);
  result.rounds = lp_round_count(t);
  result.primal.x.assign(n, 0.0);
  result.dual.y.assign(n, 0.0);
  result.dual.z.assign(n, 0.0);

  std::vector<double>& x = result.primal.x;
  std::vector<double> x_plus(n, 0.0);
  std::vector<double> x_plus_wire(n, 0.0);  // as seen by receivers
  std::vector<double> c(n, 0.0);
  std::vector<std::uint8_t> white(n, 1);
  std::vector<std::int32_t> dyn_deg(n, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    dyn_deg[static_cast<std::size_t>(v)] = g.degree(v) + 1;
  }

  // alpha[i]/beta[i] indexed by closed-neighborhood slot of node i:
  // slot 0 = i itself, slot 1+s = s-th sorted neighbor. alpha[i][slot of j]
  // holds the paper's α_{j,i} ("j's contribution accounted by i").
  std::vector<std::vector<double>> alpha(n), beta(n);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    alpha[idx].assign(static_cast<std::size_t>(g.degree(v)) + 1, 0.0);
    beta[idx].assign(static_cast<std::size_t>(g.degree(v)) + 1, 0.0);
  }
  // Slot of neighbor j within node i's closed neighborhood (j != i).
  const auto slot_of = [&g](NodeId i, NodeId j) -> std::size_t {
    const auto nbrs = g.neighbors(i);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), j);
    assert(it != nbrs.end() && *it == j);
    return 1 + static_cast<std::size_t>(it - nbrs.begin());
  };

  for (int p = t - 1; p >= 0; --p) {
    for (int q = t - 1; q >= 0; --q) {
      // Lines 5-8: x-update (plus Lemma 4.1 audit), all nodes in lockstep.
      for (std::size_t i = 0; i < n; ++i) {
        const double threshold = std::pow(d1v[i], static_cast<double>(p) / t);
        const double increment =
            std::pow(d1v[i], -static_cast<double>(q) / t);
        const double lemma41_bound =
            std::pow(d1v[i], static_cast<double>(p + 1) / t);
        x_plus[i] = 0.0;
        if (x[i] < 1.0) {
          result.max_lemma41_ratio =
              std::max(result.max_lemma41_ratio,
                       static_cast<double>(dyn_deg[i]) / lemma41_bound);
          if (static_cast<double>(dyn_deg[i]) >= threshold) {
            x_plus[i] = std::min(increment, 1.0 - x[i]);
            x[i] += x_plus[i];
          }
        }
        x_plus_wire[i] = transmit(x_plus[i], quantize);
      }

      // Lines 10-21: dual bookkeeping and coloring at white nodes.
      for (NodeId v = 0; v < g.n(); ++v) {
        const auto i = static_cast<std::size_t>(v);
        if (!white[i]) continue;
        const double inv_dp = std::pow(d1v[i], -static_cast<double>(p) / t);
        double c_plus = x_plus[i];  // own increase, known exactly
        for (NodeId w : g.neighbors(v)) {
          c_plus += x_plus_wire[static_cast<std::size_t>(w)];
        }
        const double k_i = static_cast<double>(demands[i]);
        const double lambda =
            c_plus > 0.0 ? std::min(1.0, (k_i - c[i]) / c_plus) : 1.0;
        c[i] += c_plus;
        alpha[i][0] += lambda * x_plus[i];
        beta[i][0] += lambda * x_plus[i] * inv_dp;
        std::size_t slot = 1;
        for (NodeId w : g.neighbors(v)) {
          const double xj = x_plus_wire[static_cast<std::size_t>(w)];
          alpha[i][slot] += lambda * xj;
          beta[i][slot] += lambda * xj * inv_dp;
          ++slot;
        }
        if (c[i] + kCoverageEps >= k_i) {
          white[i] = 0;
          result.dual.y[i] = inv_dp;
        }
      }

      // Lines 23-24: exchange colors, recompute dynamic degrees.
      for (NodeId v = 0; v < g.n(); ++v) {
        const auto i = static_cast<std::size_t>(v);
        std::int32_t deg = white[i] ? 1 : 0;
        for (NodeId w : g.neighbors(v)) {
          deg += white[static_cast<std::size_t>(w)] ? 1 : 0;
        }
        dyn_deg[i] = deg;
      }
    }
  }

  // Line 27: z_i = Σ_{j∈N_i} (α_{i,j}·y_j − β_{i,j}). α_{i,j} lives at node
  // j (in i's slot); in the distributed version j sends the share across the
  // edge, so neighbor shares are quantized like any other message.
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    double z = alpha[i][0] * result.dual.y[i] - beta[i][0];  // j = i
    for (NodeId w : g.neighbors(v)) {
      const auto j = static_cast<std::size_t>(w);
      const std::size_t slot = slot_of(w, v);
      const double share = alpha[j][slot] * result.dual.y[j] - beta[j][slot];
      z += transmit(share, quantize);
    }
    result.dual.z[i] = z;
  }

  return result;
}

}  // namespace ftc::algo
