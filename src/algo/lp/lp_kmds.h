// Algorithm 1 of the paper: distributed LP approximation for fractional
// k-fold dominating set (Section 4.1) — centralized mirror.
//
// The algorithm runs t² "inner iterations" indexed by (p, q), both counting
// down from t-1 to 0. In iteration (p, q), every node v_i with x_i < 1 whose
// *dynamic degree* δ̃_i (number of white = not-yet-k_i-covered nodes in its
// closed neighborhood, itself included) is at least (Δ+1)^{p/t} raises its
// x-value by (Δ+1)^{-q/t}. Alongside the primal x it maintains dual values
// (y, z) via the α/β bookkeeping of the dual-fitting analysis
// (Lemmas 4.2-4.4), yielding:
//
//   Theorem 4.5: the result is (PP)-feasible, computed in O(t²) rounds, with
//   Σx_i ≤ t·((Δ+1)^{2/t} + (Δ+1)^{1/t}) · OPT_f, and the raw dual (y, z) is
//   (DP)-feasible after division by κ = t(Δ+1)^{1/t}.
//
// This file is the *centralized mirror*: it performs exactly the computation
// the per-node sim::Process (lp_kmds_process.h) performs — including the
// fixed-point quantization of values carried in messages — but in plain
// loops, so large parameter sweeps don't pay simulator overhead. Tests
// assert the two produce identical solutions.
#pragma once

#include <cstdint>

#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/graph.h"

namespace ftc::obs {
class PerfPlane;
}

namespace ftc::algo {

/// What each node knows about the maximum degree Δ (the paper's Remark at
/// the end of Section 4.2 notes the global-Δ assumption can be removed
/// using the techniques of [16, 11]).
enum class DegreeKnowledge {
  /// Every node knows the global Δ (the paper's baseline assumption).
  kGlobal,
  /// Every node uses the maximum degree within its 2-hop neighborhood,
  /// learned in a 2-round warm-up. Primal feasibility is unaffected (the
  /// final forcing iteration uses exponent 0 regardless of the base), and
  /// the measured quality matches the global variant closely (bench A7);
  /// the dual (y, z) accounting, however, is heterogeneous and its
  /// Lemma 4.4 guarantee no longer applies — dual_bound() must not be used
  /// as an OPT_f certificate in this mode.
  kTwoHop,
};

/// Parameters of Algorithm 1.
struct LpOptions {
  /// The paper's trade-off parameter t (≥ 1): t² iterations, ratio
  /// t((Δ+1)^{2/t} + (Δ+1)^{1/t}).
  int t = 3;

  /// When true (default), values exchanged "between nodes" pass through the
  /// same fixed-point word encoding the distributed processes transmit, so
  /// mirror and simulator agree bit-for-bit. When false, full doubles are
  /// used everywhere (pure-math variant for numerical comparisons).
  bool quantize_messages = true;

  /// Degree knowledge model (see DegreeKnowledge). kTwoHop adds 2 warm-up
  /// rounds in the distributed implementation.
  DegreeKnowledge degree_knowledge = DegreeKnowledge::kGlobal;

  /// ThreadPool width for the mirror's per-phase node loops (1 = fully
  /// sequential, no pool). The solver's output is bitwise identical at any
  /// width: every loop writes only node-owned state between barriers, the
  /// node-block decomposition is independent of the thread count, and the
  /// single reduction (Lemma 4.1's max) merges per-block maxima in block
  /// order (DESIGN.md §11).
  int threads = 1;

  /// Nodes per parallel task (0 = default 8192). Exposed so determinism
  /// tests can force multi-block execution on tiny graphs; leave at 0
  /// otherwise.
  int parallel_block = 0;

  /// Optional perf-attribution sink (obs/perf.h). Each (p, q) inner
  /// iteration reports its phase wall times (x-update, dual/coloring,
  /// degree recompute) as one perf "round", the final z-pass as one more,
  /// and the block pool's barrier/claim counters are drained per iteration.
  /// Timing lives entirely in PerfPlane side state, so attaching a sink
  /// cannot affect the solution. Null (the default) = no timing at all.
  obs::PerfPlane* perf = nullptr;
};

/// Everything Algorithm 1 produces, plus audit data for experiment E10.
struct LpResult {
  domination::FractionalSolution primal;  ///< the fractional solution x
  domination::DualSolution dual;          ///< raw dual; feasible only /κ
  double kappa = 1.0;                     ///< t(Δ+1)^{1/t} (Lemma 4.4)
  std::int64_t rounds = 0;                ///< synchronous rounds consumed

  /// Largest δ̃_i/(Δ+1)^{(p+1)/t} observed over nodes with x_i < 1 at any
  /// x-update step — Lemma 4.1 asserts this never exceeds 1.
  double max_lemma41_ratio = 0.0;

  /// The raw dual divided by κ — (DP)-feasible by Lemma 4.4, hence a valid
  /// lower bound on OPT_f by weak duality.
  [[nodiscard]] domination::DualSolution scaled_dual() const;

  /// Weak-duality lower bound on OPT_f: objective of scaled_dual().
  [[nodiscard]] double dual_bound(const domination::Demands& demands) const;
};

/// Tolerance for the gray-coloring test c_i ≥ k_i. With exact reals the
/// comparison is exact (the paper's setting); with fixed-point message
/// quantization a node whose demand equals its closed-neighborhood size
/// would otherwise miss graying by ~1e-10 of accumulated rounding, leaving
/// y = 0 and a negative z. The epsilon is far below any genuine x-increment
/// (the smallest is (Δ+1)^{-(t-1)/t}), so it can never gray a node early.
inline constexpr double kCoverageEps = 1e-6;

/// Theorem 4.5's approximation-ratio bound t((Δ+1)^{2/t} + (Δ+1)^{1/t}).
[[nodiscard]] double theorem45_bound(int t, graph::NodeId max_degree);

/// Rounds Algorithm 1 consumes for parameter t: 2 per inner iteration plus
/// a final 2-round exchange computing the z-values.
[[nodiscard]] std::int64_t lp_round_count(int t);

/// Per-node Δ_v + 1 where Δ_v is the maximum degree within v's closed
/// 2-hop neighborhood — what the kTwoHop warm-up computes distributively.
[[nodiscard]] std::vector<double> two_hop_d1(const graph::Graph& g);

/// Runs the centralized mirror of Algorithm 1 (optimized: precomputed
/// power tables, flat CSR-indexed alpha/beta arenas, optionally
/// pool-parallel phase loops — see lp_kmds.cpp).
/// Preconditions: demands.size() == g.n(), t >= 1.
[[nodiscard]] LpResult solve_fractional_kmds(const graph::Graph& g,
                                             const domination::Demands& demands,
                                             const LpOptions& options = {});

/// The pre-optimization solver kept verbatim (lp_kmds_reference.cpp) as
/// the correctness anchor and benchmark baseline: solve_fractional_kmds
/// must match it bitwise (options.threads/parallel_block are ignored — the
/// reference is always sequential).
[[nodiscard]] LpResult solve_fractional_kmds_reference(
    const graph::Graph& g, const domination::Demands& demands,
    const LpOptions& options = {});

}  // namespace ftc::algo
