// Algorithm 1 as a faithful per-node program for the synchronous simulator.
//
// Message schedule (matching the paper's "every iteration of the inner loop
// can be computed in 2 rounds", proof of Theorem 4.5):
//
//   round 2m   (m = 0..t²-1): [receive colors of iteration m-1, update δ̃]
//                             x-update of iteration m;
//                             send (x_i, x_i⁺, δ̃_i)            [3 words]
//   round 2m+1:               receive the x⁺-values; update c, α, β, color;
//                             send col_i                        [1 word]
//   round 2t²:                receive final colors; for every neighbor j
//                             send the z-share α_{j,i}·y_i − β_{j,i}
//                                                               [1 word]
//   round 2t²+1:              receive shares, z_i := Σ_j share_j; halt.
//
// Every message is a constant number of words, i.e. O(log n) bits, as the
// model requires. Fractional values are carried in fixed-point (see
// sim/message.h); the centralized mirror applies the same quantization, so
// the two implementations produce identical results for equal inputs.
//
// Crash tolerance: a crashed neighbor simply stops sending; its x⁺
// contribution is treated as 0 and its color as gray. The algorithm then
// degrades gracefully (it computes a solution for the surviving subgraph).
#pragma once

#include <cstdint>
#include <vector>

#include "algo/lp/lp_kmds.h"
#include "sim/network.h"

namespace ftc::algo {

/// Per-node process implementing Algorithm 1. Install one per node with the
/// node's demand k_i and the global parameter t, then run the network for
/// lp_round_count(t) rounds.
class LpKmdsProcess final : public sim::Process {
 public:
  /// `demand` is this node's k_i; `t` is the trade-off parameter (≥ 1).
  /// With DegreeKnowledge::kTwoHop the process prepends a 2-round warm-up
  /// that computes the 2-hop maximum degree (the Remark's Δ-free variant);
  /// total rounds become lp_round_count(t) + 2.
  LpKmdsProcess(std::int32_t demand, int t,
                DegreeKnowledge degree_knowledge = DegreeKnowledge::kGlobal);

  void on_round(sim::Context& ctx) override;

  /// Results, valid after the process halts.
  [[nodiscard]] double x() const noexcept { return x_; }
  [[nodiscard]] double y() const noexcept { return y_; }
  [[nodiscard]] double z() const noexcept { return z_; }
  /// True once c_i ≥ k_i (node colored gray).
  [[nodiscard]] bool covered() const noexcept { return !white_; }

 private:
  void ensure_initialized(sim::Context& ctx);
  void update_dynamic_degree(sim::Context& ctx);
  void do_x_update_and_send(sim::Context& ctx);
  void do_cover_update_and_send(sim::Context& ctx);
  void send_z_shares(sim::Context& ctx);
  void finish_z(sim::Context& ctx);

  /// Slot of neighbor `j` in this node's closed-neighborhood arrays
  /// (slot 0 = self).
  [[nodiscard]] std::size_t slot_of(sim::Context& ctx,
                                    graph::NodeId j) const;

  // Configuration.
  std::int32_t demand_ = 1;
  int t_ = 1;
  DegreeKnowledge degree_knowledge_ = DegreeKnowledge::kGlobal;
  std::int64_t warmup_hop1_ = 0;  // scratch during the kTwoHop warm-up
  int warmup_rounds_ = 0;

  // Derived once at round 0.
  bool initialized_ = false;
  double d1_ = 0.0;  // Δ+1

  // Paper state.
  double x_ = 0.0;
  double x_plus_ = 0.0;
  double c_ = 0.0;
  double y_ = 0.0;
  double z_ = 0.0;
  bool white_ = true;
  std::int32_t dyn_deg_ = 0;
  std::vector<double> alpha_;  // α_{j,i} by slot
  std::vector<double> beta_;   // β_{j,i} by slot

  // Schedule position.
  std::int64_t step_ = 0;  // local round counter
};

}  // namespace ftc::algo
