#include "algo/lp/lp_kmds_process.h"

#include "algo/lp/lp_kmds.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/plane.h"
#include "sim/message.h"

namespace ftc::algo {

using graph::NodeId;
using sim::Word;

LpKmdsProcess::LpKmdsProcess(std::int32_t demand, int t,
                             DegreeKnowledge degree_knowledge)
    : demand_(demand), t_(t), degree_knowledge_(degree_knowledge) {
  assert(t >= 1);
  assert(demand >= 0);
}

std::size_t LpKmdsProcess::slot_of(sim::Context& ctx, NodeId j) const {
  const auto nbrs = ctx.neighbors();
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), j);
  assert(it != nbrs.end() && *it == j);
  return 1 + static_cast<std::size_t>(it - nbrs.begin());
}

void LpKmdsProcess::ensure_initialized(sim::Context& ctx) {
  if (initialized_) return;
  initialized_ = true;
  // In kTwoHop mode d1_ is learned in the warm-up instead.
  d1_ = static_cast<double>(ctx.max_degree()) + 1.0;
  dyn_deg_ = ctx.degree() + 1;
  alpha_.assign(static_cast<std::size_t>(ctx.degree()) + 1, 0.0);
  beta_.assign(static_cast<std::size_t>(ctx.degree()) + 1, 0.0);
}

void LpKmdsProcess::update_dynamic_degree(sim::Context& ctx) {
  // Inbox holds color messages [white?1:0]. Crashed neighbors are absent
  // and counted as gray (they can no longer demand coverage). An unreliable
  // channel can delay a frame from another phase into this round; frames of
  // the wrong shape are ignored rather than misread.
  std::int32_t deg = white_ ? 1 : 0;
  for (const sim::Message& msg : ctx.inbox()) {
    if (msg.words.size() != 1) continue;
    deg += msg.words[0] == 1 ? 1 : 0;
  }
  dyn_deg_ = deg;
}

void LpKmdsProcess::do_x_update_and_send(sim::Context& ctx) {
  const std::int64_t m = step_ / 2;  // inner-iteration index
  const int p = t_ - 1 - static_cast<int>(m / t_);
  const int q = t_ - 1 - static_cast<int>(m % t_);
  const double threshold = std::pow(d1_, static_cast<double>(p) / t_);
  const double increment = std::pow(d1_, -static_cast<double>(q) / t_);

  x_plus_ = 0.0;
  if (x_ < 1.0 && static_cast<double>(dyn_deg_) >= threshold) {
    x_plus_ = std::min(increment, 1.0 - x_);
    x_ += x_plus_;
  }
  if (obs::Recorder* rec = ctx.obs(); rec != nullptr) {
    rec->count(rec->builtin().lp_iterations);
    rec->event(obs::Category::kAlgo, obs::Severity::kDebug,
               rec->builtin().n_lp_iteration, ctx.round(),
               static_cast<std::int32_t>(ctx.self()), m,
               x_plus_ > 0.0 ? 1 : 0);
  }
  ctx.broadcast({sim::encode_fixed(x_), sim::encode_fixed(x_plus_),
                 static_cast<Word>(dyn_deg_)});
}

void LpKmdsProcess::do_cover_update_and_send(sim::Context& ctx) {
  const std::int64_t m = (step_ - 1) / 2;
  const int p = t_ - 1 - static_cast<int>(m / t_);
  const double inv_dp = std::pow(d1_, -static_cast<double>(p) / t_);

  if (white_) {
    // Inbox is sorted by sender id, matching the mirror's neighbor order.
    // Wrong-shape frames (phase traffic delayed here by a reordering
    // channel) are skipped, never decoded.
    double c_plus = x_plus_;  // own increase, exact
    for (const sim::Message& msg : ctx.inbox()) {
      if (msg.words.size() != 3) continue;
      c_plus += sim::decode_fixed(msg.words[1]);
    }
    const double k_i = static_cast<double>(demand_);
    const double lambda =
        c_plus > 0.0 ? std::min(1.0, (k_i - c_) / c_plus) : 1.0;
    c_ += c_plus;
    alpha_[0] += lambda * x_plus_;
    beta_[0] += lambda * x_plus_ * inv_dp;
    for (const sim::Message& msg : ctx.inbox()) {
      if (msg.words.size() != 3) continue;
      const double xj = sim::decode_fixed(msg.words[1]);
      const std::size_t slot = slot_of(ctx, msg.from);
      alpha_[slot] += lambda * xj;
      beta_[slot] += lambda * xj * inv_dp;
    }
    if (c_ + kCoverageEps >= k_i) {
      white_ = false;
      y_ = inv_dp;
    }
  }
  ctx.broadcast({white_ ? Word{1} : Word{0}});
}

void LpKmdsProcess::send_z_shares(sim::Context& ctx) {
  for (NodeId j : ctx.neighbors()) {
    const std::size_t slot = slot_of(ctx, j);
    const double share = alpha_[slot] * y_ - beta_[slot];
    ctx.send(j, {sim::encode_fixed(share)});
  }
}

void LpKmdsProcess::finish_z(sim::Context& ctx) {
  double z = alpha_[0] * y_ - beta_[0];  // own share (j = i), exact
  for (const sim::Message& msg : ctx.inbox()) {
    if (msg.words.size() != 1) continue;
    z += sim::decode_fixed(msg.words[0]);
  }
  z_ = z;
  halt();
}

void LpKmdsProcess::on_round(sim::Context& ctx) {
  ensure_initialized(ctx);

  // Warm-up (kTwoHop only): two max-degree relay rounds, after which d1_
  // is Δ_v + 1 for the closed 2-hop neighborhood. step_ stays at 0 for the
  // main schedule below.
  if (degree_knowledge_ == DegreeKnowledge::kTwoHop && warmup_rounds_ < 2) {
    if (warmup_rounds_ == 0) {
      warmup_hop1_ = ctx.degree();
      ctx.broadcast({static_cast<sim::Word>(ctx.degree())});
    } else {
      for (const sim::Message& msg : ctx.inbox()) {
        if (msg.words.size() != 1) continue;
        warmup_hop1_ = std::max<std::int64_t>(warmup_hop1_, msg.words[0]);
      }
      ctx.broadcast({static_cast<sim::Word>(warmup_hop1_)});
    }
    ++warmup_rounds_;
    return;
  }
  if (degree_knowledge_ == DegreeKnowledge::kTwoHop && warmup_rounds_ == 2) {
    std::int64_t two_hop = warmup_hop1_;
    for (const sim::Message& msg : ctx.inbox()) {
      if (msg.words.size() != 1) continue;
      two_hop = std::max<std::int64_t>(two_hop, msg.words[0]);
    }
    d1_ = static_cast<double>(two_hop) + 1.0;
    ++warmup_rounds_;  // fall through into main round 0 this same round
  }

  const std::int64_t iterations = static_cast<std::int64_t>(t_) * t_;
  if (step_ < 2 * iterations) {
    if (step_ % 2 == 0) {
      if (step_ > 0) update_dynamic_degree(ctx);
      do_x_update_and_send(ctx);
    } else {
      do_cover_update_and_send(ctx);
    }
  } else if (step_ == 2 * iterations) {
    update_dynamic_degree(ctx);  // final color exchange (audit only)
    send_z_shares(ctx);
  } else {
    finish_z(ctx);
  }
  ++step_;
}

}  // namespace ftc::algo
