// End-to-end k-MDS pipeline for general graphs: Algorithm 1 (fractional LP
// approximation) followed by Algorithm 2 (randomized rounding).
//
// Combined guarantee (Theorems 4.5 + 4.6): an integral k-fold dominating
// set of expected size O(t·Δ^{2/t}·log Δ)·OPT, computed in O(t²) rounds
// with O(log n)-bit messages.
//
// Two execution paths produce identical output for equal (graph, demands,
// t, seed):
//  * kMirror      — centralized mirrors; fast, used for large sweeps;
//  * kDistributed — per-node processes on the synchronous simulator; used
//                   when round/message metrics are measured, and as the
//                   ground truth the mirror is tested against.
#pragma once

#include <cstdint>

#include "algo/lp/lp_kmds.h"
#include "algo/rounding/rounding.h"
#include "domination/domination.h"
#include "graph/graph.h"
#include "sim/network.h"

namespace ftc::algo {

/// Which implementation executes the pipeline.
enum class Execution {
  kMirror,       ///< centralized mirrors (no simulator overhead)
  kDistributed,  ///< per-node processes on sim::SyncNetwork
};

/// Pipeline configuration.
struct PipelineOptions {
  int t = 3;                 ///< Algorithm 1 trade-off parameter
  std::uint64_t seed = 1;    ///< randomness root (rounding coins)
  Execution execution = Execution::kMirror;
};

/// Everything the pipeline produces.
struct PipelineResult {
  LpResult lp;               ///< Algorithm 1 output (x, dual, audit data)
  RoundingResult rounding;   ///< Algorithm 2 output (the integral set)
  std::int64_t total_rounds = 0;  ///< LP rounds + rounding rounds

  /// Simulator metrics; meaningful only for Execution::kDistributed.
  sim::Metrics metrics;

  /// The integral k-fold dominating set (alias of rounding.set).
  [[nodiscard]] const std::vector<graph::NodeId>& set() const noexcept {
    return rounding.set;
  }
};

/// Runs Algorithm 1 + Algorithm 2 on `g` with per-node `demands`.
[[nodiscard]] PipelineResult run_kmds_pipeline(
    const graph::Graph& g, const domination::Demands& demands,
    const PipelineOptions& options = {});

}  // namespace ftc::algo
