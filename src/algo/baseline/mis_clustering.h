// MIS-based k-fold clustering baseline for unit disk graphs.
//
// The classical UDG clustering approach (Alzoubi–Wan–Frieder; Gerla–Tsai):
// a maximal independent set is a dominating set, and in a UDG its size is
// within a constant factor of the minimum dominating set. For fault
// tolerance we take k *disjoint* MISs: round i computes a greedy MIS of the
// subgraph induced by the still-unchosen nodes. Any node never chosen is,
// in every round, adjacent to that round's MIS (maximality), so it ends up
// with ≥ k chosen neighbors — a k-fold dominating set under the paper's
// Section-1 definition. Nodes whose unchosen neighborhood runs out simply
// join the set themselves (and then need no coverage).
//
// The construction is graph-only (it never reads coordinates), so it also
// runs on general graphs; its approximation guarantee, however, is specific
// to bounded-independence graphs like UDGs. Worst-case time O(k·(n + m)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ftc::algo {

/// Result of the k-disjoint-MIS baseline.
struct MisResult {
  std::vector<graph::NodeId> set;  ///< union of the k disjoint MISs, sorted
  std::vector<std::int64_t> mis_sizes;  ///< size of each round's MIS
};

/// Computes k disjoint greedy MISs (ascending-id greedy per round) and
/// returns their union. Precondition: k >= 1.
[[nodiscard]] MisResult mis_kfold(const graph::Graph& g, std::int32_t k);

/// Greedy (ascending-id) maximal independent set of the subgraph induced by
/// nodes where eligible[v] != 0. Exposed for testing.
[[nodiscard]] std::vector<graph::NodeId> greedy_mis(
    const graph::Graph& g, const std::vector<std::uint8_t>& eligible);

}  // namespace ftc::algo
