// Luby k-fold MIS as a faithful per-node program for the synchronous
// simulator (mirror: luby.h).
//
// Global schedule, derived from n (which every node knows): each of the k
// phases spans luby_phase_rounds(n) paper rounds of 2 network rounds each:
//
//   A (even): absorb JOIN announcements of the previous paper round — an
//             undecided node with a joined neighbor drops out. At a phase
//             boundary, also finalize the old phase (still-undecided nodes
//             force-join) and reset for the new one. Then every undecided
//             node draws a fresh 63-bit value and broadcasts it. [1 word]
//   B (odd):  an undecided node whose value is the strict minimum among
//             the undecided closed neighborhood (ties toward the lower id)
//             joins its fold and announces JOIN.                  [1 word]
//
// One trailing round absorbs the final JOINs; total rounds are
// 2·k·luby_phase_rounds(n) + 1, i.e. O(k log n) — the contrast class for
// Algorithm 3's O(log log n).
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace ftc::algo {

/// Per-node process implementing Luby k-fold MIS clustering.
class LubyMisProcess final : public sim::Process {
 public:
  explicit LubyMisProcess(std::int32_t k);

  void on_round(sim::Context& ctx) override;

  /// True iff this node is in the final k-fold set (valid after halt).
  [[nodiscard]] bool selected() const noexcept { return selected_; }
  /// True iff the node force-joined at a phase window end (w.h.p. never).
  [[nodiscard]] bool force_joined() const noexcept { return force_joined_; }

 private:
  enum class Status : std::uint8_t { kUndecided, kJoined, kOut };

  void begin_phase();

  std::int32_t k_ = 1;
  std::int64_t budget_ = 0;  // paper rounds per phase; set at round 0
  std::int32_t phase_ = 0;
  Status status_ = Status::kUndecided;
  bool selected_ = false;
  bool force_joined_ = false;
  std::uint64_t my_value_ = 0;
  std::int64_t step_ = 0;
};

}  // namespace ftc::algo
