#include "algo/baseline/lrg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace ftc::algo {

using graph::NodeId;

namespace {

/// Smallest power of two ≥ x (x ≥ 1).
std::int64_t round_up_pow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

std::int64_t lrg_max_iterations(graph::NodeId n, graph::NodeId max_degree) {
  return 200 + 40 * static_cast<std::int64_t>(
                        std::log2(static_cast<double>(n) + 2.0) *
                        std::log2(static_cast<double>(max_degree) + 2.0));
}

LrgResult lrg_kmds(const graph::Graph& g, const domination::Demands& demands,
                   std::uint64_t seed) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());

  LrgResult result;
  std::vector<std::int32_t> residual(demands.begin(), demands.end());
  std::vector<std::uint8_t> chosen(n, 0);

  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) rngs.push_back(root.split(v));

  std::int64_t deficient_total = 0;
  for (std::int32_t r : residual) {
    if (r > 0) ++deficient_total;
  }

  std::vector<std::int64_t> span(n, 0);
  std::vector<std::int64_t> rounded(n, 0);
  std::vector<std::int64_t> hop1_max(n, 0);
  std::vector<std::int64_t> hop2_max(n, 0);
  std::vector<std::uint8_t> candidate(n, 0);
  std::vector<std::int32_t> support(n, 0);

  const std::int64_t max_iterations = lrg_max_iterations(g.n(), g.max_degree());

  while (deficient_total > 0 && result.iterations < max_iterations) {
    ++result.iterations;

    // Step 1: spans (a chosen node's span is 0 — it cannot join again).
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (chosen[i]) {
        span[i] = 0;
        rounded[i] = 0;
        continue;
      }
      std::int64_t s = residual[i] > 0 ? 1 : 0;
      for (NodeId w : g.neighbors(v)) {
        if (residual[static_cast<std::size_t>(w)] > 0) ++s;
      }
      span[i] = s;
      rounded[i] = s > 0 ? round_up_pow2(s) : 0;
    }

    // Step 2: candidates = nodes whose rounded span is maximal within two
    // hops (computed with two neighborhood-max passes).
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      std::int64_t m = rounded[i];
      for (NodeId w : g.neighbors(v)) {
        m = std::max(m, rounded[static_cast<std::size_t>(w)]);
      }
      hop1_max[i] = m;
    }
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      std::int64_t m = hop1_max[i];
      for (NodeId w : g.neighbors(v)) {
        m = std::max(m, hop1_max[static_cast<std::size_t>(w)]);
      }
      hop2_max[i] = m;
    }
    for (std::size_t i = 0; i < n; ++i) {
      candidate[i] = rounded[i] > 0 && rounded[i] >= hop2_max[i] ? 1 : 0;
    }

    // Step 3a: supports at deficient nodes.
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (residual[i] <= 0) {
        support[i] = 0;
        continue;
      }
      std::int32_t s = candidate[i] ? 1 : 0;
      for (NodeId w : g.neighbors(v)) {
        s += candidate[static_cast<std::size_t>(w)] ? 1 : 0;
      }
      support[i] = s;
    }

    // Step 3b: candidates flip with probability 1/median-support.
    std::vector<NodeId> joined;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (!candidate[i]) continue;
      std::vector<std::int32_t> supports;
      if (residual[i] > 0) supports.push_back(support[i]);
      for (NodeId w : g.neighbors(v)) {
        const auto j = static_cast<std::size_t>(w);
        if (residual[j] > 0) supports.push_back(support[j]);
      }
      double median = 1.0;
      if (!supports.empty()) {
        std::sort(supports.begin(), supports.end());
        median = static_cast<double>(supports[supports.size() / 2]);
      }
      if (rngs[i].bernoulli(1.0 / std::max(1.0, median))) {
        joined.push_back(v);
      }
    }

    // Step 4: apply.
    for (NodeId v : joined) {
      const auto i = static_cast<std::size_t>(v);
      if (chosen[i]) continue;
      chosen[i] = 1;
      auto cover_one = [&](NodeId u) {
        auto& r = residual[static_cast<std::size_t>(u)];
        if (r > 0 && --r == 0) --deficient_total;
      };
      cover_one(v);
      for (NodeId w : g.neighbors(v)) cover_one(w);
    }

    // Infeasible residue: some deficient node's entire closed neighborhood
    // is already chosen, so its residual can never decrease.
    if (deficient_total > 0) {
      bool stuck = true;
      for (NodeId v = 0; v < g.n() && stuck; ++v) {
        const auto i = static_cast<std::size_t>(v);
        if (residual[i] <= 0) continue;
        if (!chosen[i]) {
          stuck = false;
          break;
        }
        for (NodeId w : g.neighbors(v)) {
          if (!chosen[static_cast<std::size_t>(w)]) {
            stuck = false;
            break;
          }
        }
      }
      if (stuck) break;
    }
  }

  result.fully_satisfied = deficient_total == 0;
  result.rounds = result.iterations * kLrgRoundsPerIteration;
  for (std::size_t i = 0; i < n; ++i) {
    if (chosen[i]) result.set.push_back(static_cast<NodeId>(i));
  }
  return result;
}

}  // namespace ftc::algo
