#include "algo/baseline/mis_clustering.h"

#include <cassert>

namespace ftc::algo {

using graph::NodeId;

std::vector<NodeId> greedy_mis(const graph::Graph& g,
                               const std::vector<std::uint8_t>& eligible) {
  assert(static_cast<NodeId>(eligible.size()) == g.n());
  std::vector<std::uint8_t> blocked(static_cast<std::size_t>(g.n()), 0);
  std::vector<NodeId> mis;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (!eligible[i] || blocked[i]) continue;
    mis.push_back(v);
    blocked[i] = 1;
    for (NodeId w : g.neighbors(v)) {
      blocked[static_cast<std::size_t>(w)] = 1;
    }
  }
  return mis;
}

MisResult mis_kfold(const graph::Graph& g, std::int32_t k) {
  assert(k >= 1);
  const auto n = static_cast<std::size_t>(g.n());
  MisResult result;
  std::vector<std::uint8_t> eligible(n, 1);
  std::vector<std::uint8_t> chosen(n, 0);

  for (std::int32_t round = 0; round < k; ++round) {
    const auto mis = greedy_mis(g, eligible);
    result.mis_sizes.push_back(static_cast<std::int64_t>(mis.size()));
    for (NodeId v : mis) {
      const auto i = static_cast<std::size_t>(v);
      chosen[i] = 1;
      eligible[i] = 0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (chosen[i]) result.set.push_back(static_cast<NodeId>(i));
  }
  return result;
}

}  // namespace ftc::algo
