// LRG-style distributed greedy baseline (Jia, Rajaraman, Suel,
// "An efficient distributed algorithm for constructing small dominating
// sets", Distributed Computing 15(4), 2002), adapted to k-fold demands.
//
// This is the prior-work comparator the paper cites for general graphs
// (Section 2): expected O(log n·log Δ) rounds and an expected O(log Δ)
// approximation. One LRG iteration:
//
//   1. span d(v) = number of still-deficient closed neighbors of v;
//   2. v is a *candidate* iff its span, rounded up to a power of two, is
//      maximal within its 2-hop neighborhood;
//   3. every deficient node u computes its support s(u) = number of
//      candidates in N[u]; every candidate joins the dominating set with
//      probability 1/median{s(u) : deficient u ∈ N[v]};
//   4. coverage counts are updated; repeat until no node is deficient.
//
// Each iteration costs kLrgRoundsPerIteration = 6 communication rounds —
// the schedule the faithful distributed implementation (lrg_process.h)
// actually uses: deficiency flags, spans, two hops of max-relaying,
// candidate flags, supports, and join announcements (joins fold into the
// next iteration's first round).
//
// This adaptation (residual demands instead of a covered bit) follows the
// k-MDS variant sketched in their Section 5; it is a faithful comparator,
// not a bit-exact reimplementation of their pseudocode.
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Communication rounds per LRG iteration (see lrg_process.h's schedule).
inline constexpr std::int64_t kLrgRoundsPerIteration = 6;

/// The iteration safety cap shared by mirror and process (both compute it
/// from globally known n and Δ): LRG converges in O(log n·logΔ) iterations
/// w.h.p.; the cap only guards pathological stalls.
[[nodiscard]] std::int64_t lrg_max_iterations(graph::NodeId n,
                                              graph::NodeId max_degree);

/// Result of the LRG baseline.
struct LrgResult {
  std::vector<graph::NodeId> set;  ///< chosen dominators, sorted
  std::int64_t iterations = 0;     ///< LRG iterations executed
  std::int64_t rounds = 0;         ///< iterations × kLrgRoundsPerIteration
  bool fully_satisfied = true;     ///< false only on infeasible instances
};

/// Runs LRG until all demands are met (or provably unmeetable). Node v's
/// coins come from Rng(seed).split(v), one draw per iteration in which v is
/// a candidate.
[[nodiscard]] LrgResult lrg_kmds(const graph::Graph& g,
                                 const domination::Demands& demands,
                                 std::uint64_t seed);

}  // namespace ftc::algo
