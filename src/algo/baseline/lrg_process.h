// LRG (Jia–Rajaraman–Suel style) as a faithful per-node program for the
// synchronous simulator (mirror: lrg.h).
//
// One LRG iteration spans kLrgRoundsPerIteration = 6 network rounds:
//
//   A0: absorb JOIN announcements (previous iteration) into the residual
//       demand; broadcast the deficiency flag.                    [1 word]
//   A1: compute span = #deficient closed neighbors and its power-of-two
//       rounding; broadcast the rounding.                         [1 word]
//   A2: hop-1 max of the roundings; broadcast it. A node halts here once
//       its whole closed neighborhood reports zero spans — no deficiency
//       within two hops can ever reappear (residuals only shrink), and a
//       silent node is indistinguishable from one broadcasting zeros.
//                                                                 [1 word]
//   A3: hop-2 max; candidate iff own rounding > 0 and equals the 2-hop
//       max; broadcast the candidate flag.                        [1 word]
//   A4: deficient nodes count candidate closed neighbors (their support)
//       and broadcast support+1 (0 = not deficient).              [1 word]
//   A5: candidates take the (upper) median support over the deficient
//       closed neighborhood and join with probability 1/median;
//       joiners announce JOIN.                                    [1 word]
//
// For equal seeds the process computes exactly the mirror's set; the
// shared iteration cap lrg_max_iterations(n, Δ) bounds the runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace ftc::algo {

/// Per-node process implementing LRG for k-fold demands.
class LrgProcess final : public sim::Process {
 public:
  /// `demand` is this node's k_i.
  explicit LrgProcess(std::int32_t demand);

  void on_round(sim::Context& ctx) override;

  /// True iff this node is in the dominating set (valid after halt).
  [[nodiscard]] bool selected() const noexcept { return selected_; }
  /// This node's remaining unmet demand (0 on feasible instances).
  [[nodiscard]] std::int32_t residual() const noexcept { return residual_; }

 private:
  std::int32_t residual_ = 0;
  bool selected_ = false;
  bool joined_this_iteration_ = false;

  // Per-iteration scratch.
  std::int64_t span_ = 0;
  std::int64_t rounded_ = 0;
  std::int64_t hop1_max_ = 0;
  std::int64_t own_support_ = 0;
  bool candidate_ = false;

  std::int64_t max_iterations_ = 0;  // set at round 0
  std::int64_t step_ = 0;
};

}  // namespace ftc::algo
