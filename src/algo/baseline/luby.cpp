#include "algo/baseline/luby.h"

#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace ftc::algo {

using graph::NodeId;

std::int64_t luby_phase_rounds(NodeId n) {
  const double log2n = std::log2(static_cast<double>(n) + 2.0);
  return 8 * static_cast<std::int64_t>(std::ceil(log2n)) + 8;
}

LubyResult luby_mis_kfold(const graph::Graph& g, std::int32_t k,
                          std::uint64_t seed) {
  assert(k >= 1);
  const auto n = static_cast<std::size_t>(g.n());

  LubyResult result;
  // 2 network rounds per paper round, plus the final join-absorption round
  // the distributed schedule needs (see luby_process.h).
  result.rounds =
      2 * static_cast<std::int64_t>(k) * luby_phase_rounds(g.n()) + 1;

  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) rngs.push_back(root.split(v));

  // Permanent selection across folds.
  std::vector<std::uint8_t> selected(n, 0);

  enum class Status : std::uint8_t { kUndecided, kJoined, kOut };

  for (std::int32_t phase = 0; phase < k; ++phase) {
    std::vector<Status> status(n, Status::kUndecided);
    for (std::size_t v = 0; v < n; ++v) {
      if (selected[v]) status[v] = Status::kOut;  // not a candidate
    }

    const std::int64_t budget = luby_phase_rounds(g.n());
    std::vector<std::uint64_t> value(n, 0);
    for (std::int64_t round = 0; round < budget; ++round) {
      // Value draw: every undecided node, fresh each round (exactly one
      // rng draw — keeps mirror/process streams aligned).
      bool any_undecided = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (status[v] == Status::kUndecided) {
          // 63-bit draw: the value rides a sim::Word (int64) on the wire.
          value[v] = rngs[v]() >> 1;
          any_undecided = true;
        }
      }
      if (!any_undecided) break;  // mirror may exit early; the process
                                  // idles out the window, same result

      // Join: strict local minimum among undecided closed neighborhood,
      // ties toward the smaller node id.
      std::vector<std::uint8_t> joins(n, 0);
      for (NodeId v = 0; v < g.n(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (status[vi] != Status::kUndecided) continue;
        bool is_min = true;
        for (NodeId w : g.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (status[wi] != Status::kUndecided) continue;
          if (value[wi] < value[vi] ||
              (value[wi] == value[vi] && w < v)) {
            is_min = false;
            break;
          }
        }
        if (is_min) joins[vi] = 1;
      }

      // Apply joins and knock out their neighbors.
      for (NodeId v = 0; v < g.n(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (!joins[vi]) continue;
        status[vi] = Status::kJoined;
        for (NodeId w : g.neighbors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (status[wi] == Status::kUndecided) status[wi] = Status::kOut;
        }
      }
    }

    // Window end: forced joins (w.h.p. none).
    std::int64_t fold_size = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (status[v] == Status::kUndecided) {
        status[v] = Status::kJoined;
        ++result.forced_joins;
      }
      if (status[v] == Status::kJoined) {
        selected[v] = 1;
        ++fold_size;
      }
    }
    result.fold_sizes.push_back(fold_size);
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (selected[v]) result.set.push_back(static_cast<NodeId>(v));
  }
  return result;
}

}  // namespace ftc::algo
