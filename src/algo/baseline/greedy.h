// Centralized greedy k-MDS — the classical H_Δ-approximation baseline.
//
// This is the algorithm the paper's Section 4.1 distributes ("In the greedy
// algorithm, we start with an empty set S. In each step, a node with a
// maximal number of not yet completely covered neighbors is added to S"),
// i.e. greedy set multicover [Rajagopalan–Vazirani]: repeatedly add the node
// covering the most still-deficient closed neighbors. Guarantees an
// H(Δ+1)-approximation for the LP (closed-neighborhood) definition, so
// |greedy| / H(Δ+1) is also a valid OPT lower bound (domination/bounds.h).
#pragma once

#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::algo {

/// Result of the greedy baseline.
struct GreedyResult {
  std::vector<graph::NodeId> set;  ///< chosen dominators, sorted
  std::int64_t steps = 0;          ///< greedy selections performed

  /// True when all demands were satisfied (false only on infeasible
  /// instances, where greedy covers as much as possible and stops).
  bool fully_satisfied = true;
};

/// Runs greedy set multicover for the demands (LP definition). Ties are
/// broken toward the smaller node id, making the result deterministic.
/// O((n + m) log n) via a lazy priority queue.
[[nodiscard]] GreedyResult greedy_kmds(const graph::Graph& g,
                                       const domination::Demands& demands);

}  // namespace ftc::algo
