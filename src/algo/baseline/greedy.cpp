#include "algo/baseline/greedy.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ftc::algo {

using graph::NodeId;

GreedyResult greedy_kmds(const graph::Graph& g,
                         const domination::Demands& demands) {
  assert(static_cast<NodeId>(demands.size()) == g.n());
  const auto n = static_cast<std::size_t>(g.n());

  GreedyResult result;
  // residual[i]: how many more dominators node i still needs.
  std::vector<std::int32_t> residual(demands.begin(), demands.end());
  std::vector<std::uint8_t> chosen(n, 0);

  // span(v): number of closed neighbors with residual > 0 — the coverage
  // gain of picking v. A node can dominate each neighbor at most once, so
  // gain is the count of deficient closed neighbors, independent of how
  // deficient they are.
  auto span_of = [&](NodeId v) {
    std::int32_t s = residual[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      if (residual[static_cast<std::size_t>(w)] > 0) ++s;
    }
    return s;
  };

  // Lazy max-heap of (span, -id): spans only decrease, so stale entries are
  // detected by recomputation at pop time.
  using Entry = std::pair<std::int32_t, NodeId>;
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // smaller id wins ties
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::int32_t s = span_of(v);
    if (s > 0) heap.push({s, v});
  }

  std::int64_t deficient_total = 0;
  for (std::int32_t r : residual) {
    if (r > 0) ++deficient_total;
  }

  while (deficient_total > 0 && !heap.empty()) {
    const auto [claimed_span, v] = heap.top();
    heap.pop();
    if (chosen[static_cast<std::size_t>(v)]) continue;
    const std::int32_t actual = span_of(v);
    if (actual <= 0) continue;
    if (actual < claimed_span) {
      heap.push({actual, v});  // stale entry; reinsert with true span
      continue;
    }
    // Select v.
    chosen[static_cast<std::size_t>(v)] = 1;
    ++result.steps;
    auto cover_one = [&](NodeId u) {
      auto& r = residual[static_cast<std::size_t>(u)];
      if (r > 0 && --r == 0) --deficient_total;
    };
    cover_one(v);
    for (NodeId w : g.neighbors(v)) cover_one(w);
  }

  result.fully_satisfied = deficient_total == 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (chosen[v]) result.set.push_back(static_cast<NodeId>(v));
  }
  return result;
}

}  // namespace ftc::algo
