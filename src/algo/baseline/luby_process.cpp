#include "algo/baseline/luby_process.h"

#include <cassert>

#include "algo/baseline/luby.h"

namespace ftc::algo {

using graph::NodeId;
using sim::Word;

LubyMisProcess::LubyMisProcess(std::int32_t k) : k_(k) { assert(k >= 1); }

void LubyMisProcess::begin_phase() {
  status_ = selected_ ? Status::kOut : Status::kUndecided;
}

void LubyMisProcess::on_round(sim::Context& ctx) {
  if (step_ == 0) {
    budget_ = luby_phase_rounds(ctx.n());
    begin_phase();
  }

  const std::int64_t phase_span = 2 * budget_;
  const std::int64_t local = step_ - static_cast<std::int64_t>(phase_) * phase_span;

  if (local % 2 == 0) {
    // ---- A: absorb JOINs, maybe finalize a phase, then draw & send. ----
    if (status_ == Status::kUndecided && !ctx.inbox().empty()) {
      status_ = Status::kOut;  // a neighbor joined last paper round
    }
    if (local == phase_span) {
      // Phase boundary (this A belongs to the next phase): finalize.
      if (status_ == Status::kUndecided) {
        status_ = Status::kJoined;
        selected_ = true;
        force_joined_ = true;
      }
      ++phase_;
      if (phase_ >= k_) {
        halt();
        return;
      }
      begin_phase();
    }
    if (status_ == Status::kUndecided) {
      my_value_ = ctx.rng()() >> 1;
      ctx.broadcast({static_cast<Word>(my_value_)});
    }
  } else {
    // ---- B: decide membership from the received values. ----
    if (status_ == Status::kUndecided) {
      bool is_min = true;
      for (const sim::Message& msg : ctx.inbox()) {
        if (msg.words.size() != 1) continue;  // wrong-shape frame (delayed)
        const auto wv = static_cast<std::uint64_t>(msg.words[0]);
        if (wv < my_value_ || (wv == my_value_ && msg.from < ctx.self())) {
          is_min = false;
          break;
        }
      }
      if (is_min) {
        status_ = Status::kJoined;
        selected_ = true;
        ctx.broadcast({Word{1}});  // JOIN
      }
    }
  }
  ++step_;
}

}  // namespace ftc::algo
