// Luby-style distributed k-fold MIS clustering — centralized mirror.
//
// The classical fully distributed counterpart of mis_clustering.h: instead
// of a sequential greedy MIS per fold, each fold ("phase") runs Luby's
// randomized MIS algorithm, O(log n) rounds w.h.p.:
//
//   round: every undecided node draws a fresh random value and broadcasts
//          it; a node whose value is the strict minimum among its undecided
//          closed neighborhood joins the MIS (ties broken toward the lower
//          id); neighbors of joiners drop out of the phase.
//
// Phases are laid out on a fixed global round schedule (everyone knows n,
// so everyone computes the same per-phase round budget). In the
// vanishingly unlikely event a node is still undecided when its phase
// window closes, it joins the set — this can cost independence within the
// fold but never k-fold domination (Lemma: a node unselected after phase i
// was "out", i.e. had a phase-i joiner in its neighborhood; window-end
// joiners only add members).
//
// Result: a k-fold dominating set under the paper's Section-1 definition,
// computed in k·luby_phase_rounds(n) synchronous rounds with 1-word
// messages — the distributed classical baseline against which Algorithm 3's
// O(log log n) round count is the headline improvement.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ftc::algo {

/// Round budget of one Luby phase: 8⌈log₂(n+2)⌉ + 8 paper rounds (each
/// costing 2 network rounds: value exchange + join announcements).
[[nodiscard]] std::int64_t luby_phase_rounds(graph::NodeId n);

/// Result of the Luby k-fold clustering.
struct LubyResult {
  std::vector<graph::NodeId> set;       ///< union of the k folds, sorted
  std::vector<std::int64_t> fold_sizes; ///< nodes selected per phase
  std::int64_t forced_joins = 0;  ///< window-end joiners (0 in practice)
  std::int64_t rounds = 0;        ///< 2 · k · luby_phase_rounds(n)
};

/// Runs the centralized mirror. `seed` must equal the SyncNetwork seed for
/// mirror/process equality. Precondition: k >= 1.
[[nodiscard]] LubyResult luby_mis_kfold(const graph::Graph& g,
                                        std::int32_t k, std::uint64_t seed);

}  // namespace ftc::algo
