#include "algo/baseline/lrg_process.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "algo/baseline/lrg.h"

namespace ftc::algo {

using graph::NodeId;
using sim::Word;

namespace {

std::int64_t round_up_pow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

LrgProcess::LrgProcess(std::int32_t demand) : residual_(demand) {
  assert(demand >= 0);
}

void LrgProcess::on_round(sim::Context& ctx) {
  if (step_ == 0) {
    max_iterations_ = lrg_max_iterations(ctx.n(), ctx.max_degree());
  }
  const std::int64_t iteration = step_ / kLrgRoundsPerIteration;
  const std::int64_t phase = step_ % kLrgRoundsPerIteration;
  ++step_;

  switch (phase) {
    case 0: {  // absorb JOINs, broadcast deficiency
      std::int32_t joined_nearby =
          static_cast<std::int32_t>(ctx.inbox().size());
      if (joined_this_iteration_) ++joined_nearby;  // cover self once
      joined_this_iteration_ = false;
      while (joined_nearby-- > 0 && residual_ > 0) --residual_;
      if (iteration >= max_iterations_) {
        halt();
        return;
      }
      ctx.broadcast({residual_ > 0 ? Word{1} : Word{0}});
      break;
    }
    case 1: {  // spans
      if (selected_) {
        span_ = 0;  // a chosen node cannot join again
      } else {
        span_ = residual_ > 0 ? 1 : 0;
        for (const sim::Message& msg : ctx.inbox()) {
          if (msg.words.at(0) == 1) ++span_;
        }
      }
      rounded_ = span_ > 0 ? round_up_pow2(span_) : 0;
      ctx.broadcast({static_cast<Word>(rounded_)});
      break;
    }
    case 2: {  // hop-1 max; quiescence detection
      hop1_max_ = rounded_;
      bool all_zero = span_ == 0;
      for (const sim::Message& msg : ctx.inbox()) {
        hop1_max_ = std::max(hop1_max_, msg.words.at(0));
        if (msg.words.at(0) != 0) all_zero = false;
      }
      if (all_zero) {
        // No deficiency within two hops, now or ever again: this node will
        // only broadcast zeros, which receivers treat like silence.
        halt();
        return;
      }
      ctx.broadcast({static_cast<Word>(hop1_max_)});
      break;
    }
    case 3: {  // hop-2 max, candidacy
      std::int64_t hop2 = hop1_max_;
      for (const sim::Message& msg : ctx.inbox()) {
        hop2 = std::max(hop2, msg.words.at(0));
      }
      candidate_ = rounded_ > 0 && rounded_ >= hop2;
      ctx.broadcast({candidate_ ? Word{1} : Word{0}});
      break;
    }
    case 4: {  // supports (deficient nodes only); encoded as support+1
      own_support_ = 0;
      if (residual_ > 0) {
        own_support_ = candidate_ ? 1 : 0;
        for (const sim::Message& msg : ctx.inbox()) {
          if (msg.words.at(0) == 1) ++own_support_;
        }
        ctx.broadcast({static_cast<Word>(own_support_ + 1)});
      } else {
        ctx.broadcast({Word{0}});
      }
      break;
    }
    default: {  // 5: median + coin + JOIN
      if (candidate_) {
        std::vector<std::int64_t> supports;
        if (residual_ > 0) supports.push_back(own_support_);
        for (const sim::Message& msg : ctx.inbox()) {
          if (msg.words.at(0) > 0) supports.push_back(msg.words.at(0) - 1);
        }
        double median = 1.0;
        if (!supports.empty()) {
          std::sort(supports.begin(), supports.end());
          median = static_cast<double>(supports[supports.size() / 2]);
        }
        if (ctx.rng().bernoulli(1.0 / std::max(1.0, median))) {
          selected_ = true;
          joined_this_iteration_ = true;
          ctx.broadcast({Word{1}});  // JOIN
        }
      }
      break;
    }
  }
}

}  // namespace ftc::algo
