// Campaign runner and test-case shrinker for the fuzzing harness
// (DESIGN.md §8).
//
// run_fuzz() drives N cases derived from one root seed through the
// invariant library and collects every failing case; because a case is a
// pure function of its 64-bit case seed, any reported failure is replayable
// with `ftc-fuzz replay <case-seed>` — bit for bit, on any machine.
//
// shrink_case() reduces a failing case to a minimal reproducer: it walks a
// fixed list of field reductions (halve n, drop t/k, disable loss, faults,
// engine width, optional suites, ...) and keeps each mutation only if the
// *same leading invariant* still fails, so shrinking cannot slide onto an
// unrelated bug. The output is again a FuzzCase, serialized by
// to_string(), replayable with `ftc-fuzz replay --case="..."`.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "testing/generators.h"
#include "testing/invariants.h"
#include "testing/mutants.h"

namespace ftc::testing {

/// Campaign parameters.
struct FuzzOptions {
  std::uint64_t seed = 1;        ///< root seed; case i uses case_seed_of(seed, i)
  std::int64_t cases = 1000;     ///< cases to run
  FuzzConfig config;             ///< generator bounds
  Mutation mutation = Mutation::kNone;  ///< injected bug (harness self-test)
  std::int64_t max_failures = 1; ///< stop the campaign after this many
  /// Progress callback, invoked every `progress_every` cases (0 = never).
  std::int64_t progress_every = 0;
  std::function<void(std::int64_t cases_run, std::int64_t failures)> progress;
};

/// One failing case with everything needed to reproduce and triage it.
struct CaseFailure {
  std::uint64_t case_seed = 0;
  FuzzCase fuzz_case;
  Violations violations;
};

/// Campaign outcome.
struct FuzzReport {
  std::int64_t cases_run = 0;
  std::vector<CaseFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs one case end to end (generate → materialize → all invariants).
/// Deterministic: equal (case, mutation) always yields equal violations.
[[nodiscard]] Violations run_case(const FuzzCase& c,
                                  Mutation mutation = Mutation::kNone);

/// Runs a campaign of `options.cases` cases.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Shrinks `failing` (which must currently fail under `mutation`) to a
/// smaller case that fails the same leading invariant. `max_steps` bounds
/// the total number of candidate evaluations. Returns the original case
/// unchanged if it does not fail.
[[nodiscard]] FuzzCase shrink_case(const FuzzCase& failing,
                                   Mutation mutation = Mutation::kNone,
                                   int max_steps = 400);

}  // namespace ftc::testing
