// DynamicOracle: replay-based auditing of the incremental-maintenance
// stack (DESIGN.md §13).
//
// A fuzz case with run_dynamic carries a seed-pure mutation trace. The
// oracle replays that trace through sim::DynamicWorld +
// algo::IncrementalMaintainer and, after every batch, re-derives the ground
// truth from scratch: a full coverage re-solve for k-coverage, an
// independent two-hop BFS for the locality ball, a brute-force O(n²)
// geometric rebuild for the UDG edge set, and a second full replay for
// determinism. Every clause of the maintainer contract (maintainer.h) is a
// named invariant, so a violation shrinks like any other fuzz failure —
// including trace-length shrinking, which is sound because the trace is
// drawn per-mutation in order (generators.h).
#pragma once

#include "sim/mutation.h"
#include "testing/generators.h"
#include "testing/invariants.h"
#include "testing/mutants.h"

namespace ftc::testing {

/// Materializes the mutation trace a case describes — a pure function of
/// (c.mutation_seed, c.mutations, c.mutation_batch, inst). Draws happen
/// per-mutation in order, so a case with `mutations` reduced yields an
/// exact prefix of the longer trace: trace shrinking minimizes the trace,
/// not just the topology. Geometric instances draw join/leave/move with
/// positions inside the deployment's bounding box (grown by half a radius
/// so joins can land just outside the swarm); combinatorial instances draw
/// anchored joins, leaves, and edge flips.
[[nodiscard]] sim::MutationTrace trace_from_case(const FuzzCase& c,
                                                 const Instance& inst);

/// Replays the case's trace and checks, per batch:
///   dynamic.coverage        — membership k-covers the post-batch world
///   dynamic.locality        — membership diff ⊆ independently-computed ball2
///   dynamic.over_promotion  — promotions <= the batch's coverage deficit
///   dynamic.changed_report  — MaintainResult::changed == actual diff
///   dynamic.member_live     — no inactive node stays a member
///   dynamic.udg_incremental — incremental UDG edges == brute-force rebuild
/// and, once per case:
///   dynamic.packed_roundtrip — PackedAdjacency round-trips the final
///                              mutated snapshot (rebuild-vs-mutate)
///   dynamic.determinism      — a second full replay is bitwise identical
///   engine.dynamic_parallel  — RepairProcess over the post-churn topology
///                              (case channel installed) is width-invariant
///                              (run_differential cases with threads > 1)
/// Mutation::kMaintainerNoPromotion disables the maintainer's promotion
/// wave, which dynamic.coverage must catch — the harness-sensitivity tests
/// assert it does within a bounded number of cases.
void check_dynamic(const FuzzCase& c, const Instance& inst, Mutation mutation,
                   Violations& out);

}  // namespace ftc::testing
