// Deliberately broken algorithm variants for mutation-testing the fuzz
// harness itself (DESIGN.md §8).
//
// A property harness that never fires is indistinguishable from one that
// cannot fire. These mutants inject known, paper-relevant bugs; the sanity
// tests (tests/fuzz) assert the invariant library flags each one within a
// bounded number of fuzz cases — and the same switch is exposed on the
// ftc-fuzz CLI so the harness can be re-validated after any change.
#pragma once

#include <cstdint>
#include <string>

#include "algo/rounding/rounding.h"
#include "domination/domination.h"
#include "graph/graph.h"

namespace ftc::testing {

/// Which bug to inject into the pipeline under test.
enum class Mutation : std::int32_t {
  kNone = 0,
  /// Algorithm 2 request step believes every shortfall is one smaller than
  /// it is (off-by-one coverage): deficient nodes under-request, so the
  /// integral set can miss demands — must be caught by the k-coverage
  /// invariant.
  kRoundingUnderRequest,
  /// Algorithm 2 skips the coin phase's last node (boundary bug in the
  /// per-node loop): its x-mass is silently dropped.
  kRoundingDropLastCoin,
  /// The IncrementalMaintainer's promotion wave never runs (its demotion
  /// and drop bookkeeping stay intact): any mutation batch that creates a
  /// coverage deficit leaves it unrepaired — must be caught by the
  /// DynamicOracle's k-coverage invariant, and trace shrinking must
  /// minimize the mutation count, not just the topology.
  kMaintainerNoPromotion,
};

/// Parses a CLI spelling ("none", "rounding-under-request",
/// "rounding-drop-last-coin", "maintainer-no-promotion"); throws
/// std::invalid_argument otherwise.
[[nodiscard]] Mutation parse_mutation(const std::string& name);

/// Name of a mutation (inverse of parse_mutation).
[[nodiscard]] const char* mutation_name(Mutation m);

/// Algorithm 2 with `mutation` injected. For Mutation::kNone this computes
/// exactly round_fractional() (same coins, same request rule), which the
/// harness tests assert — so a mutant differs from the real algorithm by
/// precisely its injected bug.
[[nodiscard]] algo::RoundingResult round_fractional_mutant(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const domination::Demands& demands, std::uint64_t seed, Mutation mutation);

}  // namespace ftc::testing
