#include "testing/mutants.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ftc::testing {

using domination::Demands;
using graph::NodeId;

Mutation parse_mutation(const std::string& name) {
  if (name == "none") return Mutation::kNone;
  if (name == "rounding-under-request") return Mutation::kRoundingUnderRequest;
  if (name == "rounding-drop-last-coin") return Mutation::kRoundingDropLastCoin;
  if (name == "maintainer-no-promotion") return Mutation::kMaintainerNoPromotion;
  throw std::invalid_argument("unknown mutation '" + name + "'");
}

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kRoundingUnderRequest: return "rounding-under-request";
    case Mutation::kRoundingDropLastCoin: return "rounding-drop-last-coin";
    case Mutation::kMaintainerNoPromotion: return "maintainer-no-promotion";
  }
  return "?";
}

algo::RoundingResult round_fractional_mutant(
    const graph::Graph& g, const domination::FractionalSolution& x,
    const Demands& demands, std::uint64_t seed, Mutation mutation) {
  const auto n = static_cast<std::size_t>(g.n());
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);
  algo::RoundingResult result;

  // Coin phase — identical streams to round_fractional() so the kNone
  // mutant reproduces it exactly and every other mutant differs from the
  // real algorithm only by its injected bug.
  std::vector<std::uint8_t> in_set(n, 0);
  const util::Rng root(seed);
  const std::size_t coin_limit =
      mutation == Mutation::kRoundingDropLastCoin && n > 0 ? n - 1 : n;
  for (std::size_t i = 0; i < coin_limit; ++i) {
    util::Rng node_rng = root.split(i);
    const double p = std::min(1.0, x.x[i] * ln_d1);
    if (node_rng.bernoulli(p)) {
      in_set[i] = 1;
      ++result.chosen_by_coin;
    }
  }

  // Request phase against the coin snapshot.
  std::vector<std::uint8_t> requested(n, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    std::int32_t coverage = in_set[i];
    for (NodeId w : g.neighbors(v)) {
      coverage += in_set[static_cast<std::size_t>(w)];
    }
    std::int32_t shortfall = demands[i] - coverage;
    if (mutation == Mutation::kRoundingUnderRequest) --shortfall;
    if (shortfall <= 0) continue;
    if (!in_set[i]) {
      requested[i] = 1;
      --shortfall;
    }
    for (NodeId w : g.neighbors(v)) {
      if (shortfall <= 0) break;
      const auto j = static_cast<std::size_t>(w);
      if (!in_set[j]) {
        requested[j] = 1;
        --shortfall;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (requested[i] && !in_set[i]) {
      in_set[i] = 1;
      ++result.chosen_by_request;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (in_set[i]) result.set.push_back(static_cast<NodeId>(i));
  }
  return result;
}

}  // namespace ftc::testing
