#include "testing/runner.h"

#include <algorithm>
#include <utility>

namespace ftc::testing {

Violations run_case(const FuzzCase& c, Mutation mutation) {
  return check_case(c, mutation);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  for (std::int64_t i = 0; i < options.cases; ++i) {
    const std::uint64_t case_seed = case_seed_of(options.seed, i);
    const FuzzCase c = generate_case(case_seed, options.config);
    Violations violations = run_case(c, options.mutation);
    ++report.cases_run;
    if (!violations.empty()) {
      report.failures.push_back({case_seed, c, std::move(violations)});
      if (static_cast<std::int64_t>(report.failures.size()) >=
          options.max_failures) {
        break;
      }
    }
    if (options.progress_every > 0 && options.progress &&
        report.cases_run % options.progress_every == 0) {
      options.progress(report.cases_run,
                       static_cast<std::int64_t>(report.failures.size()));
    }
  }
  return report;
}

namespace {

/// The shrink predicate: the candidate still fails, and its leading
/// violation names the same invariant as the original failure (so the
/// minimization cannot wander onto a different bug).
bool still_fails(const FuzzCase& candidate, Mutation mutation,
                 const std::string& invariant) {
  const Violations v = run_case(candidate, mutation);
  return !v.empty() && v.front().invariant == invariant;
}

/// One pass of field reductions, cheapest-win first. Returns true if any
/// mutation was kept. `budget` counts down per candidate evaluation.
bool shrink_pass(FuzzCase& c, Mutation mutation, const std::string& invariant,
                 int& budget) {
  bool changed = false;
  auto try_mutation = [&](auto&& mutate) {
    if (budget <= 0) return;
    FuzzCase candidate = c;
    mutate(candidate);
    if (candidate == c) return;
    --budget;
    if (still_fails(candidate, mutation, invariant)) {
      c = candidate;
      changed = true;
    }
  };

  // Structural knobs off first: every disabled subsystem shrinks the
  // repro's moving parts even when it cannot shrink n.
  try_mutation([](FuzzCase& f) { f.fault_kind = FaultKind::kNone; });
  try_mutation([](FuzzCase& f) { f.loss = 0.0; });
  try_mutation([](FuzzCase& f) {
    f.dup = 0.0;
    f.reorder = 0.0;
    f.burst = 0.0;
    f.burst_in = 0.0;
    f.asym = 0.0;
  });
  try_mutation([](FuzzCase& f) { f.dup = 0.0; });
  try_mutation([](FuzzCase& f) { f.reorder = 0.0; });
  try_mutation([](FuzzCase& f) {
    f.burst = 0.0;
    f.burst_in = 0.0;
  });
  try_mutation([](FuzzCase& f) { f.asym = 0.0; });
  try_mutation([](FuzzCase& f) { f.run_transport = false; });
  try_mutation([](FuzzCase& f) { f.run_dynamic = false; });
  try_mutation([](FuzzCase& f) { f.threads = 1; });
  try_mutation([](FuzzCase& f) { f.run_obs = false; });
  try_mutation([](FuzzCase& f) { f.run_async = false; });
  try_mutation([](FuzzCase& f) { f.run_small_oracles = false; });
  try_mutation([](FuzzCase& f) { f.run_differential = false; });
  try_mutation([](FuzzCase& f) {
    f.min_delay = 1;
    f.max_delay = 1;
  });
  try_mutation([](FuzzCase& f) { f.uniform_demand = true; });

  // Size reductions: halve toward the floor, then creep linearly.
  try_mutation([](FuzzCase& f) { f.n = std::max<graph::NodeId>(3, f.n / 2); });
  try_mutation([](FuzzCase& f) { f.n = std::max<graph::NodeId>(3, f.n - 1); });
  try_mutation([](FuzzCase& f) { f.t = std::max(1, f.t / 2); });
  try_mutation([](FuzzCase& f) { f.t = std::max(1, f.t - 1); });
  try_mutation([](FuzzCase& f) { f.k = std::max(1, f.k - 1); });
  try_mutation([](FuzzCase& f) { f.aux = std::max<graph::NodeId>(1, f.aux / 2); });
  try_mutation(
      [](FuzzCase& f) { f.horizon = std::max<std::int64_t>(8, f.horizon / 2); });
  try_mutation([](FuzzCase& f) {
    f.fault_count = std::max<graph::NodeId>(1, f.fault_count / 2);
  });
  try_mutation([](FuzzCase& f) { f.fault_rate = 0.0; });
  try_mutation([](FuzzCase& f) { f.fault_rate /= 2.0; });
  // Trace minimization: because traces are drawn per-mutation in order,
  // reducing `mutations` replays an exact prefix — a smaller trace, not a
  // different one. Halve first, then creep, then collapse batching.
  try_mutation(
      [](FuzzCase& f) { f.mutations = std::max<std::int32_t>(1, f.mutations / 2); });
  try_mutation(
      [](FuzzCase& f) { f.mutations = std::max<std::int32_t>(1, f.mutations - 1); });
  try_mutation([](FuzzCase& f) { f.mutation_batch = 1; });
  return changed;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& failing, Mutation mutation,
                     int max_steps) {
  const Violations initial = run_case(failing, mutation);
  if (initial.empty()) return failing;
  const std::string invariant = initial.front().invariant;

  FuzzCase current = failing;
  int budget = max_steps;
  while (budget > 0 && shrink_pass(current, mutation, invariant, budget)) {
  }
  return current;
}

}  // namespace ftc::testing
