// Seed-driven random test-case generation for the adversarial fuzzing
// harness (DESIGN.md §8).
//
// The paper's guarantees quantify over *all* graphs, demand vectors, fault
// patterns, and message schedules; hand-picked unit-test instances explore a
// vanishingly small corner of that space. A FuzzCase is a declarative,
// fully-serializable description of one randomized instance — topology
// family and size, demands, algorithm parameters, engine width, async delay
// schedule, loss rate, and fault plan — derived as a pure function of a
// single 64-bit case seed. Everything downstream (materialization, the
// invariant checks in invariants.h, the runner) is deterministic given the
// case, which is what makes every failure a one-line repro and makes
// shrinking (runner.h) sound: a shrunk case is just another FuzzCase.
#pragma once

#include <cstdint>
#include <string>

#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/channel.h"

namespace ftc::testing {

/// Topology families the generator draws from. UDG families carry an
/// embedding and additionally exercise Algorithm 3 + region faults.
enum class GraphFamily : std::int32_t {
  kGnp = 0,
  kGnm,
  kBarabasiAlbert,
  kTree,
  kGrid,
  kPath,
  kCycle,
  kStar,
  kComplete,
  kRegular,
  kCaveman,
  kWattsStrogatz,
  kUdgUniform,
  kUdgClustered,
};

/// Number of GraphFamily values (for drawing and validation).
inline constexpr std::int32_t kGraphFamilyCount = 14;

/// Fault-process shapes a case may carry (compiled via sim::FaultPlan).
enum class FaultKind : std::int32_t {
  kNone = 0,
  kIid,
  kTargeted,
  kChurn,
  kRegion,  ///< UDG families only
};

/// Bounds the generator samples within. The defaults keep instances small
/// enough that a full oracle battery runs in well under a millisecond and
/// tens of thousands of cases stay interactive.
struct FuzzConfig {
  graph::NodeId min_n = 3;
  graph::NodeId max_n = 56;
  std::int32_t max_k = 4;    ///< maximum coverage demand
  int max_t = 4;             ///< maximum LP trade-off parameter
  double max_loss = 0.3;     ///< maximum message-loss probability
  /// Nodes at or below which the exact branch-and-bound oracle is eligible.
  graph::NodeId exact_oracle_max_n = 22;
  /// Loss-fuzz mode: force every case onto an impaired channel (at least
  /// iid loss), so a campaign concentrates on the unreliable-link paths.
  bool force_lossy = false;
  /// Dynamic-fuzz mode: force every case to carry a mutation trace, so a
  /// campaign concentrates on the incremental-maintenance paths.
  bool force_dynamic = false;
  /// Longest mutation trace the generator draws (>= 1).
  std::int32_t max_mutations = 20;
};

/// One fully-specified fuzz case. All fields that affect execution are
/// explicit (no hidden state), so to_string()/parse_fuzz_case() round-trips
/// reproduce the exact instance bit for bit.
struct FuzzCase {
  std::uint64_t case_seed = 0;  ///< the seed this case was derived from

  // Topology.
  GraphFamily family = GraphFamily::kGnp;
  graph::NodeId n = 8;      ///< target node count (families may adjust)
  double p = 0.1;           ///< gnp edge prob / watts_strogatz beta
  graph::NodeId aux = 1;    ///< attach / degree / rows / cliques / k_nearest
  double avg_degree = 6.0;  ///< UDG families: target average degree
  std::uint64_t graph_seed = 1;  ///< randomness of the generator itself

  // Demands.
  std::int32_t k = 1;            ///< max (uniform_demands) demand level
  bool uniform_demand = true;    ///< false: per-node demand in [1, k]

  // Algorithm parameters.
  int t = 2;                     ///< Algorithm 1 trade-off parameter
  std::uint64_t algo_seed = 1;   ///< network / mirror seed

  // Schedule exploration.
  int threads = 1;               ///< parallel engine width to cross-check
  std::int64_t min_delay = 1;    ///< async uniform link-delay bounds
  std::int64_t max_delay = 8;
  std::uint64_t delay_seed = 1;  ///< async delay randomness
  double loss = 0.0;             ///< message-loss probability

  // Channel impairment beyond iid loss (sim/channel.h); all default to a
  // clean channel so pre-existing case lines shrink naturally.
  double dup = 0.0;              ///< per-delivery duplication probability
  double reorder = 0.0;          ///< per-delivery reorder probability
  int reorder_delay = 2;         ///< max extra rounds a delayed copy waits
  double burst = 0.0;            ///< Gilbert–Elliott burst-state loss
  double burst_in = 0.0;         ///< per-round good→burst probability
  double burst_out = 0.5;        ///< per-round burst→good probability
  double asym = 0.0;             ///< directed-link loss asymmetry in [0, 1]
  bool run_transport = false;    ///< reliable-transport invariant suite

  // Fault process.
  FaultKind fault_kind = FaultKind::kNone;
  double fault_rate = 0.0;       ///< iid / churn per-round crash probability
  graph::NodeId fault_count = 0; ///< targeted: victims; region: unused
  std::uint64_t fault_seed = 1;
  std::int64_t horizon = 20;     ///< rounds the fault plan spans

  // Dynamic churn: a seed-pure mutation trace replayed through
  // DynamicWorld + IncrementalMaintainer and audited by the DynamicOracle
  // (testing/dynamic.h). The trace itself is a pure function of
  // (mutation_seed, mutations, mutation_batch, instance), drawn
  // per-mutation in order, so truncating `mutations` yields an exact
  // prefix — that is what makes trace shrinking sound. Defaults mean
  // "off", so pre-existing case lines parse and shrink unchanged.
  bool run_dynamic = false;
  std::int32_t mutations = 0;      ///< trace length
  std::int32_t mutation_batch = 1; ///< mutations applied per batch (>= 1)
  std::uint64_t mutation_seed = 1; ///< trace randomness

  // Which optional invariant suites this case runs (the mandatory LP +
  // rounding battery always runs). Drawn as random toggles so a long fuzz
  // run amortizes the expensive oracles over the whole campaign.
  bool run_differential = true;   ///< mirror vs distributed vs parallel
  bool run_async = false;         ///< sync vs async schedule independence
  bool run_small_oracles = false; ///< exact / greedy cross-checks
  bool run_obs = false;           ///< observability-plane consistency

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// A materialized case: the concrete topology plus the (feasible, clamped)
/// demand vector the invariants run against.
struct Instance {
  graph::Graph g;               ///< used when !has_udg
  geom::UnitDiskGraph udg;      ///< used when has_udg (graph lives inside)
  bool has_udg = false;
  domination::Demands demands;  ///< clamped to feasibility, size = n

  [[nodiscard]] const graph::Graph& graph() const noexcept {
    return has_udg ? udg.graph : g;
  }
};

/// Derives the case for `case_seed` — a pure function of (case_seed,
/// config); equal inputs yield equal cases.
[[nodiscard]] FuzzCase generate_case(std::uint64_t case_seed,
                                     const FuzzConfig& config = {});

/// Case seed of campaign case `index` under root seed `seed` (the stream
/// the runner and the CLI both use, so any reported case is replayable from
/// its seed alone).
[[nodiscard]] std::uint64_t case_seed_of(std::uint64_t root_seed,
                                         std::int64_t index);

/// Builds the concrete instance a case describes. Family parameters are
/// defensively clamped to valid ranges so that *any* field mutation the
/// shrinker performs still yields a well-formed instance. Deterministic.
[[nodiscard]] Instance materialize(const FuzzCase& c);

/// The channel mix a case describes, clamped into validity (same
/// shrinker-robust philosophy as materialize); impaired() == false iff the
/// case carries no link impairment at all.
[[nodiscard]] sim::ChannelOptions channel_from_case(const FuzzCase& c);

/// Human-readable family name ("gnp", "udg_uniform", ...).
[[nodiscard]] const char* family_name(GraphFamily family);

/// Serializes a case as a single "key=value key=value ..." line carrying
/// full double precision; parse_fuzz_case() inverts it exactly.
[[nodiscard]] std::string to_string(const FuzzCase& c);

/// Parses a line produced by to_string(). Throws std::invalid_argument on
/// malformed input or unknown keys.
[[nodiscard]] FuzzCase parse_fuzz_case(const std::string& line);

}  // namespace ftc::testing
