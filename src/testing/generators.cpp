#include "testing/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::testing {

using graph::NodeId;

namespace {

NodeId clamp_node(NodeId v, NodeId lo, NodeId hi) {
  return std::max(lo, std::min(hi, v));
}

/// Biases sizes toward the small end (shrink-friendly, oracle-friendly)
/// while still reaching max_n regularly.
NodeId draw_n(util::Rng& rng, const FuzzConfig& config) {
  const double u = rng.uniform01();
  const double span = static_cast<double>(config.max_n - config.min_n);
  return config.min_n + static_cast<NodeId>(u * u * (span + 0.999));
}

}  // namespace

std::uint64_t case_seed_of(std::uint64_t root_seed, std::int64_t index) {
  // One splitmix64 step over (root, index); matches nothing else in the
  // library so campaign streams cannot collide with algorithm streams.
  std::uint64_t state =
      root_seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(index + 1));
  return util::splitmix64(state);
}

FuzzCase generate_case(std::uint64_t case_seed, const FuzzConfig& config) {
  util::Rng rng(case_seed);
  FuzzCase c;
  c.case_seed = case_seed;

  c.family = static_cast<GraphFamily>(
      rng.uniform_i64(0, kGraphFamilyCount - 1));
  c.n = draw_n(rng, config);
  c.p = rng.uniform(0.03, 0.5);
  c.aux = static_cast<NodeId>(rng.uniform_i64(1, 6));
  c.avg_degree = rng.uniform(3.0, 11.0);
  c.graph_seed = rng();

  c.k = static_cast<std::int32_t>(
      rng.uniform_i64(1, std::max(1, config.max_k)));
  c.uniform_demand = rng.bernoulli(0.6);

  c.t = static_cast<int>(rng.uniform_i64(1, std::max(1, config.max_t)));
  c.algo_seed = rng();

  static constexpr int kWidths[] = {1, 2, 3, 4, 8};
  c.threads = kWidths[rng.index(std::size(kWidths))];
  c.min_delay = rng.uniform_i64(1, 3);
  c.max_delay = c.min_delay + rng.uniform_i64(0, 7);
  c.delay_seed = rng();
  c.loss = rng.bernoulli(0.4) ? rng.uniform(0.0, config.max_loss) : 0.0;

  const bool is_udg = c.family == GraphFamily::kUdgUniform ||
                      c.family == GraphFamily::kUdgClustered;
  const double fault_draw = rng.uniform01();
  if (fault_draw < 0.45) {
    c.fault_kind = FaultKind::kNone;
  } else if (fault_draw < 0.65) {
    c.fault_kind = FaultKind::kIid;
  } else if (fault_draw < 0.8) {
    c.fault_kind = FaultKind::kTargeted;
  } else if (fault_draw < 0.9 || !is_udg) {
    c.fault_kind = FaultKind::kChurn;
  } else {
    c.fault_kind = FaultKind::kRegion;
  }
  c.fault_rate = rng.uniform(0.005, 0.05);
  c.fault_count = static_cast<NodeId>(rng.uniform_i64(1, 1 + c.n / 8));
  c.fault_seed = rng();
  c.horizon = rng.uniform_i64(8, 24);

  c.run_differential = rng.bernoulli(0.55);
  c.run_async = rng.bernoulli(0.4);
  c.run_small_oracles =
      c.n <= config.exact_oracle_max_n && rng.bernoulli(0.8);
  c.run_obs = rng.bernoulli(0.3);

  // Channel impairments. Appended after every pre-existing draw so a given
  // case_seed keeps generating the exact same topology/algorithm fields it
  // always did — old repro lines stay repro lines.
  c.dup = rng.bernoulli(0.25) ? rng.uniform(0.0, 0.3) : 0.0;
  c.reorder = rng.bernoulli(0.25) ? rng.uniform(0.0, 0.3) : 0.0;
  c.reorder_delay = static_cast<int>(rng.uniform_i64(1, 4));
  if (rng.bernoulli(0.15)) {
    c.burst = rng.uniform(0.3, 0.9);
    c.burst_in = rng.uniform(0.02, 0.2);
    c.burst_out = rng.uniform(0.2, 0.8);
  }
  c.asym = rng.bernoulli(0.2) ? rng.uniform(0.0, 1.0) : 0.0;
  c.run_transport = rng.bernoulli(0.35);
  if (config.force_lossy && c.loss == 0.0) {
    c.loss = rng.uniform(0.05, std::max(0.05, config.max_loss));
  }

  // Dynamic churn. Appended after every pre-existing draw (same rule as the
  // channel block above) so old case seeds keep their exact cases.
  c.mutation_seed = rng();
  c.mutations = static_cast<std::int32_t>(
      rng.uniform_i64(1, std::max(1, config.max_mutations)));
  c.mutation_batch = static_cast<std::int32_t>(rng.uniform_i64(1, 4));
  c.run_dynamic = rng.bernoulli(0.35);
  if (config.force_dynamic) c.run_dynamic = true;
  return c;
}

Instance materialize(const FuzzCase& c) {
  Instance inst;
  util::Rng rng(c.graph_seed);
  const NodeId n = std::max<NodeId>(3, c.n);

  switch (c.family) {
    case GraphFamily::kGnp:
      inst.g = graph::gnp(n, std::clamp(c.p, 0.0, 1.0), rng);
      break;
    case GraphFamily::kGnm: {
      const std::size_t max_m =
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
      const auto m = static_cast<std::size_t>(
          std::clamp(c.p, 0.0, 1.0) * static_cast<double>(max_m));
      inst.g = graph::gnm(n, std::min(m, max_m), rng);
      break;
    }
    case GraphFamily::kBarabasiAlbert:
      inst.g = graph::barabasi_albert(
          n, clamp_node(c.aux, 1, static_cast<NodeId>(n - 1)), rng);
      break;
    case GraphFamily::kTree:
      inst.g = graph::random_tree(n, rng);
      break;
    case GraphFamily::kGrid: {
      const NodeId rows = clamp_node(c.aux, 1, n);
      const NodeId cols = std::max<NodeId>(1, n / rows);
      inst.g = graph::grid(rows, cols);
      break;
    }
    case GraphFamily::kPath:
      inst.g = graph::path(n);
      break;
    case GraphFamily::kCycle:
      inst.g = graph::cycle(n);
      break;
    case GraphFamily::kStar:
      inst.g = graph::star(n);
      break;
    case GraphFamily::kComplete:
      // Dense: cap so closed neighborhoods stay small enough for oracles.
      inst.g = graph::complete(std::min<NodeId>(n, 24));
      break;
    case GraphFamily::kRegular: {
      NodeId d = clamp_node(c.aux, 1, static_cast<NodeId>(n - 1));
      if ((static_cast<std::int64_t>(n) * d) % 2 != 0) {
        d = d > 1 ? d - 1 : d + 1;  // n*d must be even
      }
      d = clamp_node(d, 1, static_cast<NodeId>(n - 1));
      inst.g = graph::random_regular(n, d, rng);
      break;
    }
    case GraphFamily::kCaveman: {
      const NodeId size = clamp_node(c.aux, 2, 7);
      const NodeId cliques = std::max<NodeId>(1, n / size);
      inst.g = graph::caveman(cliques, size);
      break;
    }
    case GraphFamily::kWattsStrogatz: {
      NodeId k_nearest = clamp_node(c.aux, 2, static_cast<NodeId>(n - 1));
      k_nearest -= k_nearest % 2;  // must be even and >= 2
      k_nearest = std::max<NodeId>(2, k_nearest);
      if (k_nearest >= n) {
        inst.g = graph::cycle(n);
      } else {
        inst.g =
            graph::watts_strogatz(n, k_nearest, std::clamp(c.p, 0.0, 1.0), rng);
      }
      break;
    }
    case GraphFamily::kUdgUniform:
      inst.udg = geom::uniform_udg_with_degree(
          n, std::clamp(c.avg_degree, 1.0, 16.0), rng);
      inst.has_udg = true;
      break;
    case GraphFamily::kUdgClustered: {
      const NodeId clusters = clamp_node(c.aux, 1, 5);
      const double side = std::sqrt(static_cast<double>(n));
      auto pts = geom::clustered_points(n, clusters, side, side / 6.0, rng);
      inst.udg = geom::build_udg(std::move(pts), 1.0);
      inst.has_udg = true;
      break;
    }
  }

  const NodeId gn = inst.graph().n();
  domination::Demands demands(static_cast<std::size_t>(gn), c.k);
  if (!c.uniform_demand) {
    // Per-node demands share the graph stream (already advanced past the
    // generator draws), keeping the whole instance a function of the case.
    for (auto& d : demands) {
      d = static_cast<std::int32_t>(rng.uniform_i64(1, std::max(1, c.k)));
    }
  }
  inst.demands = domination::clamp_demands(inst.graph(), demands);
  return inst;
}

sim::ChannelOptions channel_from_case(const FuzzCase& c) {
  sim::ChannelOptions o;
  o.loss = std::clamp(c.loss, 0.0, 0.999);
  o.asymmetry = std::clamp(c.asym, 0.0, 1.0);
  o.duplicate = std::clamp(c.dup, 0.0, 1.0);
  o.reorder = std::clamp(c.reorder, 0.0, 1.0);
  o.max_reorder_delay = std::max(1, c.reorder_delay);
  o.burst_loss = std::clamp(c.burst, 0.0, 0.999);
  o.p_enter_burst = std::clamp(c.burst_in, 0.0, 1.0);
  o.p_exit_burst = std::clamp(c.burst_out, 0.001, 1.0);
  o.seed = c.algo_seed ^ 0x10551055ULL;
  return o;
}

const char* family_name(GraphFamily family) {
  switch (family) {
    case GraphFamily::kGnp: return "gnp";
    case GraphFamily::kGnm: return "gnm";
    case GraphFamily::kBarabasiAlbert: return "barabasi_albert";
    case GraphFamily::kTree: return "tree";
    case GraphFamily::kGrid: return "grid";
    case GraphFamily::kPath: return "path";
    case GraphFamily::kCycle: return "cycle";
    case GraphFamily::kStar: return "star";
    case GraphFamily::kComplete: return "complete";
    case GraphFamily::kRegular: return "regular";
    case GraphFamily::kCaveman: return "caveman";
    case GraphFamily::kWattsStrogatz: return "watts_strogatz";
    case GraphFamily::kUdgUniform: return "udg_uniform";
    case GraphFamily::kUdgClustered: return "udg_clustered";
  }
  return "?";
}

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_string(const FuzzCase& c) {
  std::ostringstream os;
  os << "case_seed=" << c.case_seed
     << " family=" << static_cast<std::int32_t>(c.family)
     << " n=" << c.n
     << " p=" << fmt_double(c.p)
     << " aux=" << c.aux
     << " avg_degree=" << fmt_double(c.avg_degree)
     << " graph_seed=" << c.graph_seed
     << " k=" << c.k
     << " uniform_demand=" << (c.uniform_demand ? 1 : 0)
     << " t=" << c.t
     << " algo_seed=" << c.algo_seed
     << " threads=" << c.threads
     << " min_delay=" << c.min_delay
     << " max_delay=" << c.max_delay
     << " delay_seed=" << c.delay_seed
     << " loss=" << fmt_double(c.loss)
     << " fault_kind=" << static_cast<std::int32_t>(c.fault_kind)
     << " fault_rate=" << fmt_double(c.fault_rate)
     << " fault_count=" << c.fault_count
     << " fault_seed=" << c.fault_seed
     << " horizon=" << c.horizon
     << " run_differential=" << (c.run_differential ? 1 : 0)
     << " run_async=" << (c.run_async ? 1 : 0)
     << " run_small_oracles=" << (c.run_small_oracles ? 1 : 0)
     << " run_obs=" << (c.run_obs ? 1 : 0)
     << " dup=" << fmt_double(c.dup)
     << " reorder=" << fmt_double(c.reorder)
     << " reorder_delay=" << c.reorder_delay
     << " burst=" << fmt_double(c.burst)
     << " burst_in=" << fmt_double(c.burst_in)
     << " burst_out=" << fmt_double(c.burst_out)
     << " asym=" << fmt_double(c.asym)
     << " run_transport=" << (c.run_transport ? 1 : 0)
     << " run_dynamic=" << (c.run_dynamic ? 1 : 0)
     << " mutations=" << c.mutations
     << " mutation_batch=" << c.mutation_batch
     << " mutation_seed=" << c.mutation_seed;
  return os.str();
}

FuzzCase parse_fuzz_case(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fuzz case: malformed token '" + token + "'");
    }
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  auto take = [&kv](const char* key) {
    auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::invalid_argument(std::string("fuzz case: missing key '") +
                                  key + "'");
    }
    std::string value = it->second;
    kv.erase(it);
    return value;
  };
  auto to_i64 = [](const std::string& s) {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("fuzz case: bad int " + s);
    return static_cast<std::int64_t>(v);
  };
  auto to_u64 = [](const std::string& s) {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("fuzz case: bad u64 " + s);
    return static_cast<std::uint64_t>(v);
  };
  auto to_dbl = [](const std::string& s) {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("fuzz case: bad double " + s);
    return v;
  };

  FuzzCase c;
  c.case_seed = to_u64(take("case_seed"));
  const auto family = to_i64(take("family"));
  if (family < 0 || family >= kGraphFamilyCount) {
    throw std::invalid_argument("fuzz case: family out of range");
  }
  c.family = static_cast<GraphFamily>(family);
  c.n = static_cast<NodeId>(to_i64(take("n")));
  c.p = to_dbl(take("p"));
  c.aux = static_cast<NodeId>(to_i64(take("aux")));
  c.avg_degree = to_dbl(take("avg_degree"));
  c.graph_seed = to_u64(take("graph_seed"));
  c.k = static_cast<std::int32_t>(to_i64(take("k")));
  c.uniform_demand = to_i64(take("uniform_demand")) != 0;
  c.t = static_cast<int>(to_i64(take("t")));
  c.algo_seed = to_u64(take("algo_seed"));
  c.threads = static_cast<int>(to_i64(take("threads")));
  c.min_delay = to_i64(take("min_delay"));
  c.max_delay = to_i64(take("max_delay"));
  c.delay_seed = to_u64(take("delay_seed"));
  c.loss = to_dbl(take("loss"));
  const auto fault = to_i64(take("fault_kind"));
  if (fault < 0 || fault > static_cast<std::int64_t>(FaultKind::kRegion)) {
    throw std::invalid_argument("fuzz case: fault_kind out of range");
  }
  c.fault_kind = static_cast<FaultKind>(fault);
  c.fault_rate = to_dbl(take("fault_rate"));
  c.fault_count = static_cast<NodeId>(to_i64(take("fault_count")));
  c.fault_seed = to_u64(take("fault_seed"));
  c.horizon = to_i64(take("horizon"));
  c.run_differential = to_i64(take("run_differential")) != 0;
  c.run_async = to_i64(take("run_async")) != 0;
  c.run_small_oracles = to_i64(take("run_small_oracles")) != 0;
  c.run_obs = to_i64(take("run_obs")) != 0;
  c.dup = to_dbl(take("dup"));
  c.reorder = to_dbl(take("reorder"));
  c.reorder_delay = static_cast<int>(to_i64(take("reorder_delay")));
  c.burst = to_dbl(take("burst"));
  c.burst_in = to_dbl(take("burst_in"));
  c.burst_out = to_dbl(take("burst_out"));
  c.asym = to_dbl(take("asym"));
  c.run_transport = to_i64(take("run_transport")) != 0;
  // Dynamic-churn keys are optional (defaults = "off"): repro lines written
  // before the dimension existed must keep parsing.
  auto take_opt = [&kv](const char* key) -> std::string {
    auto it = kv.find(key);
    if (it == kv.end()) return {};
    std::string value = it->second;
    kv.erase(it);
    return value;
  };
  if (const std::string v = take_opt("run_dynamic"); !v.empty()) {
    c.run_dynamic = to_i64(v) != 0;
  }
  if (const std::string v = take_opt("mutations"); !v.empty()) {
    c.mutations = static_cast<std::int32_t>(to_i64(v));
  }
  if (const std::string v = take_opt("mutation_batch"); !v.empty()) {
    c.mutation_batch = static_cast<std::int32_t>(to_i64(v));
  }
  if (const std::string v = take_opt("mutation_seed"); !v.empty()) {
    c.mutation_seed = to_u64(v);
  }
  if (!kv.empty()) {
    throw std::invalid_argument("fuzz case: unknown key '" +
                                kv.begin()->first + "'");
  }
  if (c.n < 1 || c.t < 1 || c.k < 1 || c.threads < 1 ||
      c.min_delay < 1 || c.max_delay < c.min_delay || c.reorder_delay < 1 ||
      c.mutations < 0 || c.mutation_batch < 1) {
    throw std::invalid_argument("fuzz case: field out of range");
  }
  return c;
}

}  // namespace ftc::testing
