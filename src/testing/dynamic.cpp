#include "testing/dynamic.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/extensions/maintainer.h"
#include "algo/extensions/repair_process.h"
#include "domination/domination.h"
#include "domination/kernels.h"
#include "geom/dynamic.h"
#include "geom/point.h"
#include "graph/dynamic.h"
#include "graph/packed.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::testing {

using domination::Demands;
using graph::Graph;
using graph::NodeId;

namespace {

void add(Violations& out, const char* invariant, std::string detail) {
  out.push_back({invariant, std::move(detail)});
}

/// Effective demands of the mutated world: min(k, deg+1) for active nodes
/// (the clamp_demands convention), 0 for departed ones — exactly what the
/// maintainer contract promises to keep satisfied.
Demands effective_demands(const Graph& g, std::span<const std::uint8_t> active,
                          std::int32_t k) {
  Demands demands(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (active[i] == 0) continue;
    demands[i] = std::min(k, g.degree(v) + 1);
  }
  return demands;
}

/// Independent two-hop ball around the batch's seed nodes in the
/// post-mutation graph — recomputed from the AppliedMutations alone, so it
/// shares no code with the maintainer's own ball construction.
std::vector<std::uint8_t> locality_ball(
    const Graph& g, std::span<const sim::AppliedMutation> batch) {
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<std::uint8_t> ball(n, 0);
  std::vector<NodeId> frontier;
  auto seed = [&](NodeId v) {
    if (v < 0 || static_cast<std::size_t>(v) >= n) return;
    if (!ball[static_cast<std::size_t>(v)]) {
      ball[static_cast<std::size_t>(v)] = 1;
      frontier.push_back(v);
    }
  };
  for (const sim::AppliedMutation& am : batch) {
    seed(am.m.node);
    seed(am.m.peer);
    for (const graph::Edge& e : am.delta.added) {
      seed(e.u);
      seed(e.v);
    }
    for (const graph::Edge& e : am.delta.removed) {
      seed(e.u);
      seed(e.v);
    }
  }
  for (int hop = 0; hop < 2; ++hop) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const NodeId w : g.neighbors(v)) {
        if (!ball[static_cast<std::size_t>(w)]) {
          ball[static_cast<std::size_t>(w)] = 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  return ball;
}

/// What one full replay of a trace produced — compared bitwise between two
/// independent replays for the determinism invariant.
struct ReplaySummary {
  std::vector<std::uint8_t> final_member;
  std::int64_t promoted = 0;
  std::int64_t demoted = 0;
  std::int64_t batches = 0;

  friend bool operator==(const ReplaySummary&, const ReplaySummary&) = default;
};

/// Per-batch audit hook: (applied batch, maintainer result, pre-batch
/// membership, post-batch world, maintainer).
using BatchHook = std::function<void(std::span<const sim::AppliedMutation>,
                                     const algo::MaintainResult&,
                                     const std::vector<std::uint8_t>&,
                                     const sim::DynamicWorld&,
                                     const algo::IncrementalMaintainer&)>;

ReplaySummary replay_trace(const FuzzCase& c, const Instance& inst,
                           const sim::MutationTrace& trace, bool promote,
                           const BatchHook& hook) {
  const Graph& g0 = inst.graph();
  auto world = inst.has_udg
                   ? std::make_unique<sim::DynamicWorld>(inst.udg)
                   : std::make_unique<sim::DynamicWorld>(inst.g);

  // Any fully-covering initial set satisfies the maintainer precondition;
  // greedy over the clamped uniform-k demands is the cheapest one.
  const auto initial_demands = domination::clamp_demands(
      g0, domination::uniform_demands(g0.n(), c.k));
  const auto initial_set = algo::greedy_kmds(g0, initial_demands).set;

  algo::MaintainerOptions mopts;
  mopts.k = c.k;
  mopts.promote = promote;
  algo::IncrementalMaintainer maintainer(g0.n(), initial_set, mopts);

  ReplaySummary summary;
  std::size_t i = 0;
  std::vector<sim::AppliedMutation> batch;
  while (i < trace.size()) {
    const std::int64_t round = trace[i].round;
    batch.clear();
    for (; i < trace.size() && trace[i].round == round; ++i) {
      batch.push_back(world->apply(trace[i].m));
    }
    const std::vector<std::uint8_t> pre = maintainer.membership();
    const algo::MaintainResult result =
        maintainer.apply_batch(world->graph(), world->active_flags(), batch);
    ++summary.batches;
    if (hook) hook(batch, result, pre, *world, maintainer);
  }
  summary.final_member = maintainer.membership();
  summary.promoted = maintainer.total_promoted();
  summary.demoted = maintainer.total_demoted();
  return summary;
}

/// One width's outcome in the post-churn width-invariance check.
struct Run {
  std::vector<NodeId> final_set;
  std::int64_t unsatisfied = 0;
  sim::Metrics metrics;

  friend bool operator==(const Run&, const Run&) = default;
};

/// Width-invariance of the repair daemon over the post-churn topology: the
/// dynamic path must hand the engine a graph on which serial and parallel
/// runs stay bitwise equal, including under the case's impaired channel.
void check_dynamic_parallel(const FuzzCase& c, const Graph& g,
                            const std::vector<std::uint8_t>& active,
                            const std::vector<std::uint8_t>& member,
                            Violations& out) {
  const Demands demands = effective_demands(g, active, c.k);
  algo::RepairProcessOptions popts;
  popts.detection_timeout = 3;

  auto run_width = [&](int threads) {
    sim::SyncNetwork net(g, c.algo_seed);
    net.set_threads(threads);
    net.set_parallel_grain(0);
    sim::ChannelOptions channel = channel_from_case(c);
    if (channel.impaired()) {
      channel.seed = c.algo_seed ^ 0xD15EA5EULL;
      net.set_channel(channel);
    }
    net.set_all_processes([&](NodeId v) {
      const auto i = static_cast<std::size_t>(v);
      return std::make_unique<algo::RepairProcess>(
          demands[i], member[i] != 0, popts);
    });
    net.run(40);
    Run run;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto& p = net.process_as<algo::RepairProcess>(v);
      if (p.member()) run.final_set.push_back(v);
      if (p.unsatisfied()) ++run.unsatisfied;
    }
    run.metrics = net.metrics();
    return run;
  };

  const Run serial = run_width(1);
  const Run parallel = run_width(c.threads);
  if (!(parallel == serial)) {
    add(out, "engine.dynamic_parallel",
        "post-churn repair run differs at threads=" +
            std::to_string(c.threads));
  }
}

}  // namespace

sim::MutationTrace trace_from_case(const FuzzCase& c, const Instance& inst) {
  sim::MutationTrace trace;
  if (c.mutations <= 0) return trace;
  util::Rng rng(c.mutation_seed);

  // Geometric draws land inside the deployment's bounding box grown by half
  // a radius, so joins/moves exercise both dense cores and the boundary.
  double lo_x = 0.0, hi_x = 1.0, lo_y = 0.0, hi_y = 1.0;
  if (inst.has_udg && !inst.udg.positions.empty()) {
    lo_x = hi_x = inst.udg.positions.front().x;
    lo_y = hi_y = inst.udg.positions.front().y;
    for (const geom::Point& p : inst.udg.positions) {
      lo_x = std::min(lo_x, p.x);
      hi_x = std::max(hi_x, p.x);
      lo_y = std::min(lo_y, p.y);
      hi_y = std::max(hi_y, p.y);
    }
    const double pad = inst.udg.radius / 2.0;
    lo_x -= pad;
    hi_x += pad;
    lo_y -= pad;
    hi_y += pad;
  }

  // All draws happen per-mutation in trace order (batch-boundary round
  // advances included), so truncating c.mutations yields an exact prefix —
  // the property trace shrinking relies on.
  const std::int32_t batch = std::max<std::int32_t>(1, c.mutation_batch);
  NodeId current_n = inst.graph().n();
  std::int64_t round = 0;
  for (std::int32_t i = 0; i < c.mutations; ++i) {
    if (i > 0 && i % batch == 0) round += rng.uniform_i64(1, 3);
    sim::Mutation m;
    const double u = rng.uniform01();
    if (inst.has_udg) {
      if (u < 0.25) {
        m.kind = sim::MutationKind::kJoin;
        m.x = rng.uniform(lo_x, hi_x);
        m.y = rng.uniform(lo_y, hi_y);
      } else if (u < 0.60) {
        m.kind = sim::MutationKind::kLeave;
        m.node = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
      } else {
        m.kind = sim::MutationKind::kMove;
        m.node = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
        m.x = rng.uniform(lo_x, hi_x);
        m.y = rng.uniform(lo_y, hi_y);
      }
    } else {
      if (u < 0.30) {
        m.kind = sim::MutationKind::kJoin;
        m.peer = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
      } else if (u < 0.65) {
        m.kind = sim::MutationKind::kLeave;
        m.node = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
      } else {
        // Flip may draw node == peer; DynamicWorld clamps that to a no-op,
        // which is itself a path worth fuzzing.
        m.kind = sim::MutationKind::kFlip;
        m.node = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
        m.peer = static_cast<NodeId>(rng.index(
            static_cast<std::size_t>(current_n)));
      }
    }
    if (m.kind == sim::MutationKind::kJoin) ++current_n;
    trace.push_back({round, m});
  }
  return trace;
}

void check_dynamic(const FuzzCase& c, const Instance& inst, Mutation mutation,
                   Violations& out) {
  const sim::MutationTrace trace = trace_from_case(c, inst);
  if (trace.empty()) return;
  const bool promote = mutation != Mutation::kMaintainerNoPromotion;

  domination::CoverageScratch scratch;
  std::int64_t batch_index = 0;

  const BatchHook audit = [&](std::span<const sim::AppliedMutation> batch,
                              const algo::MaintainResult& result,
                              const std::vector<std::uint8_t>& pre,
                              const sim::DynamicWorld& world,
                              const algo::IncrementalMaintainer& maintainer) {
    const std::int64_t b = batch_index++;
    const Graph g = world.snapshot();
    const auto n = static_cast<std::size_t>(g.n());
    const std::vector<std::uint8_t>& active = world.active_flags();
    const std::vector<std::uint8_t>& post = maintainer.membership();

    // changed_report: the reported changed list is exactly the pre/post
    // membership diff (joins extend the id space; absent pre bits are 0).
    std::vector<NodeId> diff;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t before = i < pre.size() ? pre[i] : 0;
      if (before != post[i]) diff.push_back(static_cast<NodeId>(i));
    }
    if (diff != result.changed) {
      add(out, "dynamic.changed_report",
          "batch " + std::to_string(b) + ": reported " +
              std::to_string(result.changed.size()) +
              " changed nodes, actual diff " + std::to_string(diff.size()));
    }

    // member_live: departed nodes must not linger in the set.
    for (std::size_t i = 0; i < n; ++i) {
      if (post[i] != 0 && active[i] == 0) {
        add(out, "dynamic.member_live",
            "batch " + std::to_string(b) + ": inactive node " +
                std::to_string(i) + " is still a member");
        break;
      }
    }

    // coverage: full re-solve ground truth — the membership k-covers the
    // post-batch effective demands. This is the clause the
    // maintainer-no-promotion mutant must trip.
    const Demands demands = effective_demands(g, active, c.k);
    const auto members = domination::to_node_list(post);
    const auto deficit = domination::deficiency(
        g, members, demands, domination::Mode::kClosedNeighborhood, scratch);
    if (deficit != 0) {
      add(out, "dynamic.coverage",
          "batch " + std::to_string(b) + ": shortfall " +
              std::to_string(deficit) + " after " +
              std::to_string(batch.size()) + " mutation(s)");
    }

    // locality: every membership change sits inside the independently
    // recomputed two-hop ball of the batch's seeds.
    const auto ball = locality_ball(g, batch);
    for (const NodeId v : diff) {
      if (!ball[static_cast<std::size_t>(v)]) {
        add(out, "dynamic.locality",
            "batch " + std::to_string(b) + ": node " + std::to_string(v) +
                " changed membership outside the two-hop ball");
        break;
      }
    }

    // over_promotion: promotions are bounded by the deficit the batch
    // actually opened (pre-membership minus departed members, measured on
    // the post-mutation graph). Each greedy promotion must close >= 1 unit.
    std::vector<std::uint8_t> base(n, 0);
    for (std::size_t i = 0; i < n && i < pre.size(); ++i) {
      base[i] = static_cast<std::uint8_t>(pre[i] != 0 && active[i] != 0);
    }
    const auto opened = domination::deficiency(
        g, domination::to_node_list(base), demands,
        domination::Mode::kClosedNeighborhood, scratch);
    if (result.promoted > opened) {
      add(out, "dynamic.over_promotion",
          "batch " + std::to_string(b) + ": promoted " +
              std::to_string(result.promoted) + " for a deficit of " +
              std::to_string(opened));
    }

    // udg_incremental: the incrementally maintained edge set equals a
    // brute-force O(n^2) geometric rebuild — the grid took no shortcuts.
    if (world.geometric()) {
      const geom::DynamicUdg& udg = *world.udg();
      const double r_sq = udg.radius() * udg.radius();
      std::vector<graph::Edge> expected;
      for (NodeId uu = 0; uu < g.n(); ++uu) {
        if (!udg.active(uu)) continue;
        for (NodeId vv = uu + 1; vv < g.n(); ++vv) {
          if (!udg.active(vv)) continue;
          if (geom::dist_sq(udg.positions()[static_cast<std::size_t>(uu)],
                            udg.positions()[static_cast<std::size_t>(vv)]) <=
              r_sq) {
            expected.push_back({uu, vv});
          }
        }
      }
      if (world.graph().edges() != expected) {
        add(out, "dynamic.udg_incremental",
            "batch " + std::to_string(b) +
                ": incremental UDG edges diverge from geometric rebuild (" +
                std::to_string(world.graph().m()) + " vs " +
                std::to_string(expected.size()) + " edges)");
      }
    }
  };

  const ReplaySummary first = replay_trace(c, inst, trace, promote, audit);

  // determinism: a second, independent replay of the same trace must land
  // on the identical membership and counters.
  const ReplaySummary second =
      replay_trace(c, inst, trace, promote, BatchHook{});
  if (!(second == first)) {
    add(out, "dynamic.determinism",
        "replaying the identical trace changed the outcome");
  }

  // packed_roundtrip: rebuild-vs-mutate — the final mutated topology,
  // frozen to CSR, survives a PackedAdjacency encode/decode round-trip and
  // equals Graph::from_edges over the same edge list.
  {
    auto world = inst.has_udg
                     ? std::make_unique<sim::DynamicWorld>(inst.udg)
                     : std::make_unique<sim::DynamicWorld>(inst.g);
    for (const sim::TimedMutation& tm : trace) world->apply(tm.m);
    const Graph snap = world->snapshot();
    const Graph rebuilt = Graph::from_edges(world->n(), world->graph().edges());
    const graph::PackedAdjacency packed(snap);
    bool ok = packed.n() == snap.n() && rebuilt.n() == snap.n();
    std::vector<NodeId> decoded;
    for (NodeId v = 0; ok && v < snap.n(); ++v) {
      packed.decode(v, decoded);
      const auto nbrs = snap.neighbors(v);
      const auto rb = rebuilt.neighbors(v);
      ok = std::equal(decoded.begin(), decoded.end(), nbrs.begin(),
                      nbrs.end()) &&
           std::equal(rb.begin(), rb.end(), nbrs.begin(), nbrs.end());
    }
    if (!ok) {
      add(out, "dynamic.packed_roundtrip",
          "mutated snapshot failed the PackedAdjacency/from_edges "
          "round-trip");
    }

    // Width invariance of the engine on the post-churn topology, including
    // under the case's impaired channel.
    if (c.run_differential && c.threads > 1) {
      check_dynamic_parallel(c, snap, world->active_flags(),
                             first.final_member, out);
    }
  }
}

}  // namespace ftc::testing
