// Reusable invariant library for the fuzzing harness (DESIGN.md §8).
//
// Each check encodes one guarantee the stack claims — straight from the
// paper's theorems or from the simulator's own contracts — as a predicate
// over a materialized fuzz case:
//
//   * lp.*        — Theorem 4.5: (PP)-feasibility of Algorithm 1's primal,
//                   Lemma 4.1's ratio bound, (DP)-feasibility of the scaled
//                   dual, weak duality, and the approximation-ratio bound
//                   against the best lower bound;
//   * rounding.*  — Theorem 4.6: the integral set k-covers every demand,
//                   and the mirror's accounting is self-consistent;
//   * oracle.*    — differential cross-checks on small instances: exact
//                   branch-and-bound vs greedy vs LP+rounding orderings;
//   * engine.*    — serial-vs-parallel bitwise equality of the round engine
//                   (set_threads) and sync-vs-async schedule independence
//                   (the α-synchronizer must make delay schedules
//                   unobservable);
//   * udg.*       — Theorem 5.7 / Lemmas 5.1: Algorithm 3's leader sets
//                   dominate, and mirror == distributed;
//   * repair.*    — the self-healing daemon restores coverage and promotes
//                   at most the centralized oracle plus the 2-hop damage
//                   slack (PR 1's differential contract);
//   * obs.*       — the observability registry agrees with the engine's
//                   Metrics struct and is itself deterministic across
//                   thread counts;
//   * term.*      — every bounded protocol halts within its round budget.
//
// All checks append Violations instead of asserting, so one case can report
// every broken invariant at once and the runner/shrinker can match on the
// invariant name.
#pragma once

#include <string>
#include <vector>

#include "algo/lp/lp_kmds.h"
#include "domination/domination.h"
#include "domination/kernels.h"
#include "graph/graph.h"
#include "testing/generators.h"
#include "testing/mutants.h"

namespace ftc::testing {

/// One broken invariant: a stable name (for matching/shrinking) plus a
/// human-readable detail.
struct Violation {
  std::string invariant;
  std::string detail;
};

using Violations = std::vector<Violation>;

/// Runs every invariant suite the case selects against its materialized
/// instance and returns all violations (empty = the case passed). The
/// mandatory LP + rounding battery always runs; optional suites follow the
/// case's run_* toggles. `mutation` injects a known bug into the pipeline
/// under test (mutation-testing the harness itself).
[[nodiscard]] Violations check_case(const FuzzCase& c,
                                    Mutation mutation = Mutation::kNone);

// ---- Granular checks (exposed so unit tests can probe them directly) ----

/// Theorem 4.5 battery over an Algorithm 1 result.
void check_lp_invariants(const graph::Graph& g,
                         const domination::Demands& demands,
                         const algo::LpResult& lp, int t, Violations& out);

/// k-coverage of an integral set under the LP (closed-neighborhood)
/// definition. `who` labels the producing subsystem in the invariant name
/// ("rounding", "repair", ...).
void check_coverage_invariant(const graph::Graph& g,
                              const domination::Demands& demands,
                              const std::vector<graph::NodeId>& set,
                              const char* who, Violations& out);

/// No-alloc variant: same check routed through the packed coverage kernels
/// (domination/kernels.h) with caller-owned scratch — what check_case uses
/// for every coverage check in a case.
void check_coverage_invariant(const graph::Graph& g,
                              const domination::Demands& demands,
                              const std::vector<graph::NodeId>& set,
                              const char* who, Violations& out,
                              domination::CoverageScratch& scratch);

}  // namespace ftc::testing
