#include "testing/invariants.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "algo/baseline/greedy.h"
#include "algo/exact/exact.h"
#include "algo/extensions/repair.h"
#include "algo/extensions/repair_process.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/rounding/rounding.h"
#include "algo/rounding/rounding_process.h"
#include "algo/udg/udg_kmds.h"
#include "algo/udg/udg_kmds_process.h"
#include "domination/bounds.h"
#include "domination/fractional.h"
#include "domination/kernels.h"
#include "testing/dynamic.h"
#include "util/rng.h"
#include "obs/plane.h"
#include "sim/async.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/transport.h"

namespace ftc::testing {

using domination::Demands;
using graph::Graph;
using graph::NodeId;

namespace {

constexpr double kEps = 1e-6;

void add(Violations& out, const char* invariant, std::string detail) {
  out.push_back({invariant, std::move(detail)});
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// ---------------------------------------------------------------- LP + rounding

void check_rounding_result(const Graph& g, const Demands& demands,
                           const algo::RoundingResult& r,
                           domination::CoverageScratch& scratch,
                           Violations& out) {
  check_coverage_invariant(g, demands, r.set, "rounding", out, scratch);
  if (!std::is_sorted(r.set.begin(), r.set.end()) ||
      std::adjacent_find(r.set.begin(), r.set.end()) != r.set.end()) {
    add(out, "rounding.set_canonical", "set not sorted/unique");
  }
  for (NodeId v : r.set) {
    if (v < 0 || v >= g.n()) {
      add(out, "rounding.set_canonical", "member id out of range");
      break;
    }
  }
  if (r.chosen_by_coin + r.chosen_by_request !=
      static_cast<std::int64_t>(r.set.size())) {
    add(out, "rounding.accounting",
        "coin + request != |set|: " + std::to_string(r.chosen_by_coin) + "+" +
            std::to_string(r.chosen_by_request) + " vs " +
            std::to_string(r.set.size()));
  }
}

// ------------------------------------------------------------- distributed runs

struct LpDistRun {
  std::vector<double> x, y, z;
  sim::Metrics metrics;
  std::int64_t executed = 0;

  friend bool operator==(const LpDistRun&, const LpDistRun&) = default;
};

LpDistRun run_lp_distributed(const Graph& g, const Demands& demands, int t,
                             std::uint64_t seed, int threads,
                             const sim::ChannelOptions& channel) {
  sim::SyncNetwork net(g, seed);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // fuzz sizes are tiny; always exercise the pool
  if (channel.impaired()) net.set_channel(channel);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<algo::LpKmdsProcess>(
        demands[static_cast<std::size_t>(v)], t);
  });
  LpDistRun run;
  run.executed = net.run(algo::lp_round_count(t) + 8);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& proc = net.process_as<algo::LpKmdsProcess>(v);
    run.x.push_back(proc.x());
    run.y.push_back(proc.y());
    run.z.push_back(proc.z());
  }
  run.metrics = net.metrics();
  return run;
}

struct RoundingDistRun {
  std::vector<NodeId> set;
  sim::Metrics metrics;
  std::int64_t executed = 0;

  friend bool operator==(const RoundingDistRun&, const RoundingDistRun&) =
      default;
};

RoundingDistRun run_rounding_distributed(const Graph& g,
                                         const std::vector<double>& x,
                                         const Demands& demands,
                                         std::uint64_t seed, int threads,
                                         const sim::ChannelOptions& channel,
                                         obs::Plane* plane) {
  sim::SyncNetwork net(g, seed);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // fuzz sizes are tiny; always exercise the pool
  if (plane != nullptr) net.set_observability(plane);
  if (channel.impaired()) net.set_channel(channel);
  net.set_all_processes([&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    return std::make_unique<algo::RoundingProcess>(x[i], demands[i]);
  });
  RoundingDistRun run;
  run.executed = net.run(8);
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.process_as<algo::RoundingProcess>(v).in_set()) {
      run.set.push_back(v);
    }
  }
  run.metrics = net.metrics();
  return run;
}

void check_differential(const FuzzCase& c, const Graph& g,
                        const Demands& demands, const algo::LpResult& mirror_lp,
                        const algo::RoundingResult& mirror_rounding,
                        Violations& out) {
  // Mirror vs distributed (clean-channel contract): the per-node processes
  // must reproduce the centralized mirror bit for bit.
  const sim::ChannelOptions channel = channel_from_case(c);
  if (!channel.impaired()) {
    const LpDistRun serial = run_lp_distributed(g, demands, c.t, c.algo_seed,
                                                1, sim::ChannelOptions{});
    if (serial.x != mirror_lp.primal.x || serial.y != mirror_lp.dual.y ||
        serial.z != mirror_lp.dual.z) {
      add(out, "lp.differential", "distributed LP != centralized mirror");
    }
    if (serial.executed != mirror_lp.rounds) {
      add(out, "term.lp",
          "distributed LP rounds " + std::to_string(serial.executed) +
              " != mirror " + std::to_string(mirror_lp.rounds));
    }
    if (serial.metrics.max_message_words > 3) {
      add(out, "lp.message_bound",
          "LP message exceeded 3 words: " +
              std::to_string(serial.metrics.max_message_words));
    }
    if (c.threads > 1) {
      const LpDistRun parallel = run_lp_distributed(
          g, demands, c.t, c.algo_seed, c.threads, sim::ChannelOptions{});
      if (parallel != serial) {
        add(out, "engine.lp_parallel",
            "LP run differs at threads=" + std::to_string(c.threads));
      }
    }

    const RoundingDistRun rserial =
        run_rounding_distributed(g, mirror_lp.primal.x, demands, c.algo_seed,
                                 1, sim::ChannelOptions{}, nullptr);
    if (rserial.set != mirror_rounding.set) {
      add(out, "rounding.differential",
          "distributed rounding != centralized mirror (" +
              std::to_string(rserial.set.size()) + " vs " +
              std::to_string(mirror_rounding.set.size()) + " members)");
    }
    if (rserial.metrics.max_message_words > 1) {
      add(out, "rounding.message_bound",
          "rounding message exceeded 1 word: " +
              std::to_string(rserial.metrics.max_message_words));
    }
    if (rserial.executed > 4) {
      add(out, "term.rounding",
          "rounding took " + std::to_string(rserial.executed) + " rounds");
    }
    if (c.threads > 1) {
      const RoundingDistRun rparallel =
          run_rounding_distributed(g, mirror_lp.primal.x, demands, c.algo_seed,
                                   c.threads, sim::ChannelOptions{}, nullptr);
      if (rparallel != rserial) {
        add(out, "engine.rounding_parallel",
            "rounding run differs at threads=" + std::to_string(c.threads));
      }
    }
  } else if (c.threads > 1) {
    // Under an impaired channel the outcome is channel-seed-dependent but
    // still a pure function of the case: the engine must stay
    // width-invariant through loss, duplication, and reordering.
    const LpDistRun serial =
        run_lp_distributed(g, demands, c.t, c.algo_seed, 1, channel);
    const LpDistRun parallel =
        run_lp_distributed(g, demands, c.t, c.algo_seed, c.threads, channel);
    if (parallel != serial) {
      add(out, "engine.lp_parallel",
          "impaired LP run differs at threads=" + std::to_string(c.threads));
    }
  }
}

// -------------------------------------------------------------- small oracles

void check_small_oracles(const FuzzCase& /*c*/, const Graph& g,
                         const Demands& demands, const algo::LpResult& lp,
                         const algo::RoundingResult& rounding,
                         domination::CoverageScratch& scratch,
                         Violations& out) {
  algo::ExactOptions eopts;
  eopts.node_budget = 300'000;
  const auto exact = algo::exact_kmds(g, demands, eopts);
  const auto greedy = algo::greedy_kmds(g, demands);
  if (!exact.feasible) {
    // clamp_demands guarantees feasibility; an infeasible verdict is a bug.
    add(out, "oracle.exact_feasible",
        "exact solver declared a clamped instance infeasible");
    return;
  }
  check_coverage_invariant(g, demands, exact.set, "oracle.exact", out,
                           scratch);
  check_coverage_invariant(g, demands, greedy.set, "oracle.greedy", out,
                           scratch);
  if (!exact.optimal) return;  // budget exhausted: orderings not guaranteed

  const auto opt = static_cast<double>(exact.set.size());
  if (static_cast<double>(greedy.set.size()) <
      opt - kEps) {
    add(out, "oracle.exact_optimal",
        "greedy beat the 'optimal' exact solution: " +
            std::to_string(greedy.set.size()) + " < " +
            std::to_string(exact.set.size()));
  }
  if (static_cast<double>(rounding.set.size()) < opt - kEps) {
    add(out, "oracle.exact_optimal",
        "rounding beat the 'optimal' exact solution");
  }
  // Greedy's H(Δ+1) guarantee, checked against true OPT.
  const double h_bound =
      domination::harmonic(static_cast<std::int64_t>(g.max_degree()) + 1);
  if (static_cast<double>(greedy.set.size()) > h_bound * opt + kEps) {
    add(out, "oracle.greedy_ratio",
        "greedy exceeded H(D+1)*OPT: " + std::to_string(greedy.set.size()) +
            " > " + fmt(h_bound * opt));
  }
  // Weak duality against true OPT (stronger than against the primal).
  if (lp.dual_bound(demands) > opt + 1e-4) {
    add(out, "lp.weak_duality_vs_opt",
        "dual bound " + fmt(lp.dual_bound(demands)) + " exceeds OPT " +
            fmt(opt));
  }
  // The fractional optimum lower-bounds the integral one.
  if (lp.primal.objective() > 0.0 &&
      static_cast<double>(exact.set.size()) <
          lp.dual_bound(demands) - 1e-4) {
    add(out, "oracle.bound_order", "OPT below the weak-duality bound");
  }
}

// ----------------------------------------------------------------- async

void check_async(const FuzzCase& c, const Graph& g, const Demands& demands,
                 const algo::LpResult& mirror_lp,
                 const algo::RoundingResult& mirror_rounding, Violations& out) {
  // The α-synchronizer must make the delay schedule unobservable: any
  // (bounds, seed) combination yields exactly the synchronous output.
  const std::uint64_t delay_seeds[] = {c.delay_seed,
                                       c.delay_seed ^ 0x5DEECE66DULL};
  for (const std::uint64_t dseed : delay_seeds) {
    sim::AsyncOptions opts;
    opts.min_delay = c.min_delay;
    opts.max_delay = c.max_delay;
    opts.delay_seed = dseed;
    sim::AsyncNetwork net(g, c.algo_seed, opts);
    net.set_all_processes([&](NodeId v) {
      const auto i = static_cast<std::size_t>(v);
      return std::make_unique<algo::RoundingProcess>(mirror_lp.primal.x[i],
                                                     demands[i]);
    });
    const std::int64_t pulses = net.run(16);
    if (pulses >= 16) {
      add(out, "term.async", "async rounding failed to halt in 16 pulses");
      continue;
    }
    std::vector<NodeId> set;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (net.process_as<algo::RoundingProcess>(v).in_set()) set.push_back(v);
    }
    if (set != mirror_rounding.set) {
      add(out, "engine.async_schedule",
          "async schedule (delay_seed=" + std::to_string(dseed) +
              ") changed the rounding output");
    }
  }
}

// ------------------------------------------------------------------- UDG

void check_udg(const FuzzCase& c, const geom::UnitDiskGraph& udg,
               domination::CoverageScratch& scratch, Violations& out) {
  const Graph& g = udg.graph;
  algo::UdgOptions opts;
  opts.k = c.k;
  const auto mirror = algo::solve_udg_kmds(udg, opts, c.algo_seed);

  // Lemma 5.1: Part-I leaders form an ordinary dominating set.
  if (!domination::is_k_dominating(g, mirror.part1_leaders,
                                   domination::uniform_demands(g.n(), 1),
                                   domination::Mode::kOpenForNonMembers,
                                   scratch)) {
    add(out, "udg.part1_dominates",
        "Part-I leaders are not a dominating set");
  }
  // Theorem 5.7: the extended set k-covers every non-member (paper
  // definition) whenever the instance was satisfiable.
  if (mirror.fully_satisfied &&
      !domination::is_k_dominating(g, mirror.leaders,
                                   domination::uniform_demands(g.n(), c.k),
                                   domination::Mode::kOpenForNonMembers,
                                   scratch)) {
    add(out, "udg.coverage",
        "Algorithm 3 output misses open-mode k-coverage (k=" +
            std::to_string(c.k) + ")");
  }
  // Part II only promotes: leaders ⊇ part1_leaders.
  if (!std::includes(mirror.leaders.begin(), mirror.leaders.end(),
                     mirror.part1_leaders.begin(),
                     mirror.part1_leaders.end())) {
    add(out, "udg.monotone_promotion",
        "Part II dropped a Part-I leader");
  }

  if (!c.run_differential) return;
  for (const int threads : {1, c.threads}) {
    sim::SyncNetwork net(udg, c.algo_seed);
    net.set_threads(threads);
    net.set_parallel_grain(0);
    net.set_all_processes(
        [&](NodeId) { return std::make_unique<algo::UdgKmdsProcess>(opts); });
    const std::int64_t budget =
        4 * algo::udg_part1_rounds(g.n()) + 3 * (g.n() + 8);
    const std::int64_t executed = net.run(budget);
    if (executed >= budget) {
      add(out, "term.udg",
          "distributed Algorithm 3 failed to halt (threads=" +
              std::to_string(threads) + ")");
      continue;
    }
    std::vector<NodeId> leaders;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (net.process_as<algo::UdgKmdsProcess>(v).leader()) {
        leaders.push_back(v);
      }
    }
    if (leaders != mirror.leaders) {
      add(out, "udg.differential",
          "distributed leader set != mirror (threads=" +
              std::to_string(threads) + ")");
    }
    if (threads == c.threads) break;  // threads == 1: single iteration
  }
}

// ----------------------------------------------------------------- repair

struct RepairRun {
  std::vector<NodeId> final_set;
  std::int64_t promoted = 0;
  std::int64_t unsatisfied = 0;
  std::vector<bool> crashed;
  sim::Metrics metrics;

  friend bool operator==(const RepairRun&, const RepairRun&) = default;
};

sim::FaultPlan build_fault_plan(const FuzzCase& c,
                                const geom::UnitDiskGraph* udg) {
  switch (c.fault_kind) {
    case FaultKind::kNone:
      return sim::FaultPlan::none();
    case FaultKind::kIid:
      return sim::FaultPlan::iid_crashes(c.fault_rate, 0, c.horizon);
    case FaultKind::kTargeted:
      return sim::FaultPlan::targeted_by_degree(std::max<NodeId>(1, c.fault_count),
                                                c.horizon / 2);
    case FaultKind::kChurn:
      return sim::FaultPlan::churn(c.fault_rate, 2, 6, 0, c.horizon);
    case FaultKind::kRegion:
      if (udg == nullptr) {  // shrinker may have changed the family
        return sim::FaultPlan::targeted_by_degree(
            std::max<NodeId>(1, c.fault_count), c.horizon / 2);
      }
      return sim::FaultPlan::region(
          udg->positions[static_cast<std::size_t>(
              c.fault_seed % static_cast<std::uint64_t>(udg->n()))],
          1.0, c.horizon / 2);
  }
  return sim::FaultPlan::none();
}

RepairRun run_repair(const FuzzCase& c, const Instance& inst,
                     const std::vector<std::uint8_t>& base_member,
                     const Demands& demands, int threads,
                     std::vector<NodeId>* failed_out) {
  const Graph& g = inst.graph();
  algo::RepairProcessOptions popts;
  popts.detection_timeout = 3;
  auto make_process = [&](NodeId v, bool member) {
    return std::make_unique<algo::RepairProcess>(
        demands[static_cast<std::size_t>(v)], member, popts);
  };

  std::unique_ptr<sim::SyncNetwork> net;
  if (inst.has_udg) {
    net = std::make_unique<sim::SyncNetwork>(inst.udg, c.algo_seed);
  } else {
    net = std::make_unique<sim::SyncNetwork>(inst.g, c.algo_seed);
  }
  net->set_threads(threads);
  net->set_parallel_grain(0);
  sim::ChannelOptions channel = channel_from_case(c);
  if (channel.impaired()) {
    channel.seed = c.algo_seed ^ 0xC0FFEEULL;
    net->set_channel(channel);
  }
  net->set_all_processes([&](NodeId v) {
    return make_process(v, base_member[static_cast<std::size_t>(v)] != 0);
  });

  sim::FaultInjector injector(
      build_fault_plan(c, inst.has_udg ? &inst.udg : nullptr), c.fault_seed);
  const auto& schedule = injector.install(
      *net, c.horizon, [&](NodeId v) { return make_process(v, false); });
  if (failed_out != nullptr) {
    for (const sim::FaultEvent& e : schedule) {
      if (!e.recover) failed_out->push_back(e.node);
    }
  }

  net->run(c.horizon + 80);
  RepairRun run;
  for (NodeId v = 0; v < g.n(); ++v) {
    run.crashed.push_back(net->crashed(v));
    if (net->crashed(v)) continue;
    const auto& p = net->process_as<algo::RepairProcess>(v);
    if (p.member()) {
      run.final_set.push_back(v);
      if (!base_member[static_cast<std::size_t>(v)]) ++run.promoted;
    }
    if (p.unsatisfied()) ++run.unsatisfied;
  }
  run.metrics = net->metrics();
  return run;
}

void check_repair(const FuzzCase& c, const Instance& inst,
                  domination::CoverageScratch& scratch, Violations& out) {
  const Graph& g = inst.graph();
  const Demands& demands = inst.demands;
  const auto base = algo::greedy_kmds(g, demands).set;
  std::vector<std::uint8_t> base_member(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v : base) base_member[static_cast<std::size_t>(v)] = 1;

  std::vector<NodeId> failed;
  const RepairRun serial = run_repair(c, inst, base_member, demands, 1, &failed);

  // Serial-vs-parallel equality holds for every fault modality and loss
  // rate — the engine contract is unconditional.
  if (c.threads > 1) {
    const RepairRun parallel =
        run_repair(c, inst, base_member, demands, c.threads, nullptr);
    if (parallel != serial) {
      add(out, "engine.repair_parallel",
          "repair run differs at threads=" + std::to_string(c.threads));
    }
  }

  // The oracle comparison needs perfect detection (a clean channel) and a
  // crash-only plan (the oracle has no churn model).
  if (channel_from_case(c).impaired() || c.fault_kind == FaultKind::kChurn) {
    return;
  }

  const auto oracle = algo::repair_after_failures(g, base, failed, demands);
  const Graph live = g.without_nodes(failed);
  auto live_demands = domination::clamp_demands(live, demands);
  for (NodeId f : failed) live_demands[static_cast<std::size_t>(f)] = 0;
  if (!domination::is_k_dominating(live, serial.final_set, live_demands,
                                   domination::Mode::kClosedNeighborhood,
                                   scratch)) {
    add(out, "repair.coverage",
        "self-healed set misses live demands after " +
            std::to_string(failed.size()) + " crashes");
  }
  if (serial.promoted > oracle.promoted + oracle.touched) {
    add(out, "repair.over_promotion",
        "promoted " + std::to_string(serial.promoted) + " > oracle " +
            std::to_string(oracle.promoted) + " + touched " +
            std::to_string(oracle.touched));
  }
  if (oracle.fully_satisfied && serial.unsatisfied != 0) {
    add(out, "repair.unsatisfied",
        std::to_string(serial.unsatisfied) +
            " nodes stuck although the oracle repaired everything");
  }
}

// -------------------------------------------------------------- transport

/// Max-id flood where every update travels through the reliable transport:
/// the channel may drop, duplicate, and reorder frames, yet every node must
/// still converge to its component's maximum id — the end-to-end statement
/// of the transport's exactly-once, in-order delivery contract.
class TransportFloodProcess final : public sim::Process {
 public:
  void on_round(sim::Context& ctx) override {
    if (value_ < 0) {
      value_ = static_cast<sim::Word>(ctx.self());
      dirty_ = true;
    }
    for (const auto& d : transport_.receive(ctx)) {
      if (d.words.at(0) > value_) {
        value_ = d.words.at(0);
        dirty_ = true;
      }
    }
    if (dirty_) {
      transport_.broadcast(ctx, {value_});
      dirty_ = false;
    }
    transport_.flush(ctx);
  }

  [[nodiscard]] sim::Word value() const noexcept { return value_; }
  [[nodiscard]] const sim::ReliableTransport& transport() const noexcept {
    return transport_;
  }

 private:
  sim::ReliableTransport transport_;
  sim::Word value_ = -1;
  bool dirty_ = false;
};

struct TransportRun {
  std::vector<sim::Word> values;
  std::int64_t frames = 0;
  std::int64_t retransmissions = 0;
  std::int64_t duplicates = 0;
  std::int64_t delivered = 0;
  sim::Metrics metrics;

  friend bool operator==(const TransportRun&, const TransportRun&) = default;
};

TransportRun run_transport_flood(const FuzzCase& c, const Graph& g,
                                 int threads, std::int64_t budget) {
  sim::SyncNetwork net(g, c.algo_seed);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // fuzz sizes are tiny; always exercise the pool
  const sim::ChannelOptions channel = channel_from_case(c);
  if (channel.impaired()) net.set_channel(channel);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<TransportFloodProcess>(); });
  net.run(budget);
  TransportRun run;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.process_as<TransportFloodProcess>(v);
    run.values.push_back(p.value());
    run.frames += p.transport().frames_sent();
    run.retransmissions += p.transport().retransmissions();
    run.duplicates += p.transport().duplicates_suppressed();
    run.delivered += p.transport().delivered();
  }
  run.metrics = net.metrics();
  return run;
}

void check_transport(const FuzzCase& c, const Graph& g, Violations& out) {
  // Retransmission latency is geometric, so the budget is generous: the
  // flood's longest per-link backlog is O(n) payloads at a couple of rounds
  // each, inflated by loss. A failure to converge inside it is a transport
  // bug for any channel the generator can produce, not bad luck.
  const std::int64_t budget = 160 + 16 * static_cast<std::int64_t>(g.n());
  const TransportRun serial = run_transport_flood(c, g, 1, budget);

  // Reliable-equivalence: the impaired-channel flood must end exactly where
  // a clean-channel run ends — every node at its component's maximum id.
  std::vector<sim::Word> expected(static_cast<std::size_t>(g.n()), -1);
  for (NodeId v = g.n() - 1; v >= 0; --v) {
    if (expected[static_cast<std::size_t>(v)] >= 0) continue;
    std::vector<NodeId> stack{v};
    expected[static_cast<std::size_t>(v)] = v;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(u)) {
        if (expected[static_cast<std::size_t>(w)] < 0) {
          expected[static_cast<std::size_t>(w)] = v;
          stack.push_back(w);
        }
      }
    }
  }
  if (serial.values != expected) {
    std::int64_t stuck = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (serial.values[i] != expected[i]) ++stuck;
    }
    add(out, "transport.convergence",
        std::to_string(stuck) + " nodes missed their component max over " +
            std::to_string(budget) + " rounds");
  }

  if (c.threads > 1) {
    const TransportRun parallel = run_transport_flood(c, g, c.threads, budget);
    if (parallel != serial) {
      add(out, "engine.transport_parallel",
          "transport flood differs at threads=" + std::to_string(c.threads));
    }
  }
}

// ---------------------------------------------------------------- kernels

/// Returns true iff two LpResults are bitwise-identical in every field the
/// solver contract covers.
bool lp_results_equal(const algo::LpResult& a, const algo::LpResult& b) {
  return a.primal.x == b.primal.x && a.dual.y == b.dual.y &&
         a.dual.z == b.dual.z && a.kappa == b.kappa && a.rounds == b.rounds &&
         a.max_lemma41_ratio == b.max_lemma41_ratio;
}

/// kernel.* invariants: the packed coverage/deficiency kernels (kernels.h)
/// must agree exactly with the scalar references in domination.h, and the
/// optimized LP solver must reproduce the kept reference solver bitwise at
/// every thread width (the same contract the simulator's parallel round
/// engine ships). Runs on every case — the kernels are now what the rest of
/// the invariant battery itself computes with.
void check_kernels(const FuzzCase& c, const Graph& g, const Demands& demands,
                   const algo::LpResult& lp, const algo::RoundingResult& r,
                   domination::CoverageScratch& scratch, Violations& out) {
  const auto n = static_cast<std::size_t>(g.n());

  // Packed vs scalar over a membership bitmap: coverage counts, fused
  // deficiency, and the node-list scratch overload, in both modes.
  const auto check_membership = [&](const std::vector<std::uint8_t>& members,
                                    const char* which) {
    const auto ref_cover = domination::closed_coverage_counts(g, members);
    domination::MembershipBits bits;
    bits.assign(members);
    std::vector<std::int32_t> packed_cover(n, 0);
    domination::closed_coverage_counts(g, bits, packed_cover);
    if (ref_cover != packed_cover) {
      add(out, "kernel.coverage_equiv",
          std::string("packed coverage counts != scalar reference (") +
              which + ")");
    }
    const auto set = domination::to_node_list(members);
    for (const auto mode : {domination::Mode::kClosedNeighborhood,
                            domination::Mode::kOpenForNonMembers}) {
      std::int64_t ref_def = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mode == domination::Mode::kOpenForNonMembers && members[i]) {
          continue;
        }
        ref_def += std::max<std::int32_t>(
            0, demands[i] - ref_cover[i]);
      }
      if (domination::deficiency(g, bits, demands, mode) != ref_def) {
        add(out, "kernel.deficiency_equiv",
            std::string("fused packed deficiency != scalar (") + which + ")");
      }
      if (domination::deficiency(g, set, demands, mode, scratch) != ref_def) {
        add(out, "kernel.deficiency_equiv",
            std::string("scratch deficiency != scalar (") + which + ")");
      }
    }
  };
  // The rounding set is dominating-set-shaped (sparse → scatter kernel);
  // the hashed membership is ~50% dense (gather kernel). Both paths must
  // agree with the reference on every topology family.
  check_membership(domination::to_membership(g, r.set), "rounding_set");
  std::vector<std::uint8_t> dense(n, 0);
  std::uint64_t hash_state = c.case_seed ^ 0xA076'1D64'78BD'642FULL;
  for (std::size_t i = 0; i < n; ++i) {
    dense[i] = static_cast<std::uint8_t>(util::splitmix64(hash_state) & 1);
  }
  check_membership(dense, "hashed_dense");

  // Optimized LP == kept reference, sequentially and at forced-parallel
  // widths (parallel_block=2 makes even fuzz-sized graphs span many
  // blocks). Output must be bitwise identical in every case.
  algo::LpOptions opts;
  opts.t = c.t;
  const algo::LpResult ref = solve_fractional_kmds_reference(g, demands, opts);
  if (!lp_results_equal(ref, lp)) {
    add(out, "kernel.lp_reference_equiv",
        "optimized LP solver != reference solver");
  }
  opts.parallel_block = 2;
  for (const int width : {2, c.threads}) {
    if (width <= 1) continue;
    opts.threads = width;
    const algo::LpResult par = algo::solve_fractional_kmds(g, demands, opts);
    if (!lp_results_equal(par, lp)) {
      add(out, "kernel.lp_width",
          "parallel LP solve differs at threads=" + std::to_string(width));
    }
    if (width == c.threads) break;  // c.threads == 2: single iteration
  }

  // The per-node power-table rows (kTwoHop) must match the reference too.
  algo::LpOptions th_opts;
  th_opts.t = c.t;
  th_opts.degree_knowledge = algo::DegreeKnowledge::kTwoHop;
  const algo::LpResult th_ref =
      solve_fractional_kmds_reference(g, demands, th_opts);
  const algo::LpResult th_opt = algo::solve_fractional_kmds(g, demands, th_opts);
  if (!lp_results_equal(th_ref, th_opt)) {
    add(out, "kernel.lp_twohop_equiv",
        "optimized two-hop LP solver != reference solver");
  }
}

// -------------------------------------------------------------------- obs

void check_obs(const FuzzCase& c, const Graph& g, const Demands& demands,
               const algo::LpResult& mirror_lp, Violations& out) {
  std::vector<std::int64_t> registry_values;
  for (const int threads : {1, c.threads}) {
    obs::Plane plane;
    const RoundingDistRun run =
        run_rounding_distributed(g, mirror_lp.primal.x, demands, c.algo_seed,
                                 threads, channel_from_case(c), &plane);
    const auto& b = plane.builtin();
    const auto& reg = plane.metrics();
    const std::vector<std::int64_t> values = {
        reg.value(b.rounds), reg.value(b.messages), reg.value(b.words),
        reg.value(b.messages_lost)};
    if (values[0] != run.metrics.rounds ||
        values[1] != run.metrics.messages_sent ||
        values[2] != run.metrics.words_sent) {
      add(out, "obs.registry_consistency",
          "plane registry disagrees with Metrics at threads=" +
              std::to_string(threads));
    }
    if (registry_values.empty()) {
      registry_values = values;
    } else if (values != registry_values) {
      add(out, "obs.registry_determinism",
          "registry values changed with engine width");
    }
    if (threads == c.threads) break;  // threads == 1: single iteration
  }
}

}  // namespace

// ---------------------------------------------------------------- public API

void check_coverage_invariant(const Graph& g, const Demands& demands,
                              const std::vector<NodeId>& set, const char* who,
                              Violations& out) {
  domination::CoverageScratch scratch;
  check_coverage_invariant(g, demands, set, who, out, scratch);
}

void check_coverage_invariant(const Graph& g, const Demands& demands,
                              const std::vector<NodeId>& set, const char* who,
                              Violations& out,
                              domination::CoverageScratch& scratch) {
  const auto deficit = domination::deficiency(
      g, set, demands, domination::Mode::kClosedNeighborhood, scratch);
  if (deficit != 0) {
    add(out, (std::string(who) + ".coverage").c_str(),
        "total coverage shortfall " + std::to_string(deficit) + " with |set|=" +
            std::to_string(set.size()));
  }
}

void check_lp_invariants(const Graph& g, const Demands& demands,
                         const algo::LpResult& lp, int t, Violations& out) {
  if (!domination::primal_feasible(g, lp.primal, demands, kEps)) {
    add(out, "lp.primal_feasible",
        "max violation " + fmt(domination::max_primal_violation(
                               g, lp.primal, demands)));
  }
  if (lp.max_lemma41_ratio > 1.0 + 1e-9) {
    add(out, "lp.lemma41", "ratio " + fmt(lp.max_lemma41_ratio));
  }
  auto scaled = lp.scaled_dual();
  domination::clamp_tiny_negatives(scaled.y);
  domination::clamp_tiny_negatives(scaled.z);
  if (!domination::dual_feasible(g, scaled, kEps)) {
    add(out, "lp.dual_feasible",
        "max LHS " + fmt(domination::max_dual_lhs(g, scaled)));
  }
  const double primal_obj = lp.primal.objective();
  const double dual_obj = lp.dual_bound(demands);
  if (dual_obj > primal_obj + kEps) {
    add(out, "lp.weak_duality",
        "dual " + fmt(dual_obj) + " > primal " + fmt(primal_obj));
  }
  const double lower =
      domination::best_lower_bound(g, demands, 0, dual_obj);
  if (lower > 0.0 &&
      primal_obj > algo::theorem45_bound(t, g.max_degree()) * lower + kEps) {
    add(out, "lp.theorem45_ratio",
        "primal " + fmt(primal_obj) + " > bound*lower " +
            fmt(algo::theorem45_bound(t, g.max_degree()) * lower));
  }
}

Violations check_case(const FuzzCase& c, Mutation mutation) {
  Violations out;
  const Instance inst = materialize(c);
  const Graph& g = inst.graph();
  const Demands& demands = inst.demands;

  // One coverage scratch per case: every k-coverage check below reuses it,
  // so the whole battery's coverage work allocates only on high-water growth.
  domination::CoverageScratch scratch;

  // Mandatory battery: Algorithm 1 + Algorithm 2 mirrors.
  algo::LpOptions lp_opts;
  lp_opts.t = c.t;
  const algo::LpResult lp = algo::solve_fractional_kmds(g, demands, lp_opts);
  check_lp_invariants(g, demands, lp, c.t, out);

  const algo::RoundingResult rounding = round_fractional_mutant(
      g, lp.primal, demands, c.algo_seed, mutation);
  check_rounding_result(g, demands, rounding, scratch, out);

  // Mandatory kernel battery: packed kernels == scalar references, optimized
  // LP == reference LP at every thread width (DESIGN.md §11).
  check_kernels(c, g, demands, lp, rounding, scratch, out);

  if (c.run_small_oracles) {
    check_small_oracles(c, g, demands, lp, rounding, scratch, out);
  }
  if (c.run_differential) {
    check_differential(c, g, demands, lp, rounding, out);
  }
  if (c.run_async && c.loss == 0.0) {
    check_async(c, g, demands, lp, rounding, out);
  }
  if (inst.has_udg) {
    check_udg(c, inst.udg, scratch, out);
  }
  if (c.fault_kind != FaultKind::kNone) {
    check_repair(c, inst, scratch, out);
  }
  if (c.run_transport) {
    check_transport(c, g, out);
  }
  if (c.run_obs) {
    check_obs(c, g, demands, lp, out);
  }
  if (c.run_dynamic && c.mutations > 0) {
    check_dynamic(c, inst, mutation, out);
  }
  return out;
}

}  // namespace ftc::testing
