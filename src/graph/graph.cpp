#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "graph/dynamic.h"

namespace ftc::graph {

Graph Graph::from_edges(NodeId num_nodes, std::span<const Edge> edges) {
  assert(num_nodes >= 0);
  // Normalize: u < v, dedupe.
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const Edge& e : edges) {
    assert(e.u != e.v && "self-loops are not allowed");
    assert(e.u >= 0 && e.u < num_nodes);
    assert(e.v >= 0 && e.v < num_nodes);
    normalized.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(normalized.begin(), normalized.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  // Offsets are uint32: 2m (the directed arc count) must fit. Unconditional
  // — a graph past this bound would silently corrupt the CSR otherwise. The
  // predicate is shared with MutableGraph so the dynamic path rejects the
  // same sizes at mutation time.
  if (!csr_arcs_fit(normalized.size() * 2)) {
    throw std::length_error("Graph::from_edges: 2m exceeds uint32 offsets");
  }

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : normalized) {
    ++g.offsets_[static_cast<std::size_t>(e.u) + 1];
    ++g.offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(normalized.size() * 2);
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : normalized) {
    g.adjacency_[cursor[static_cast<std::size_t>(e.u)]++] = e.v;
    g.adjacency_[cursor[static_cast<std::size_t>(e.v)]++] = e.u;
  }
  // Per-node neighbor lists are sorted because edges were processed in
  // lexicographic order for u-entries but v-entries interleave; sort to be
  // safe and to guarantee the documented invariant.
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto* begin = g.adjacency_.data() + g.offsets_[static_cast<std::size_t>(v)];
    auto* end = g.adjacency_.data() + g.offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end);
    g.max_degree_ = std::max(g.max_degree_, static_cast<NodeId>(end - begin));
  }
  return g;
}

Graph Graph::from_edges(NodeId num_nodes,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  std::vector<Edge> converted;
  converted.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    converted.push_back({u, v});
  }
  return from_edges(num_nodes, converted);
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u < 0 || v < 0 || u >= n() || v >= n() || u == v) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

Graph Graph::without_nodes(std::span<const NodeId> removed) const {
  std::vector<bool> gone(static_cast<std::size_t>(n()), false);
  for (NodeId v : removed) {
    assert(v >= 0 && v < n());
    gone[static_cast<std::size_t>(v)] = true;
  }
  std::vector<Edge> kept;
  kept.reserve(m());
  for (const Edge& e : edges()) {
    if (!gone[static_cast<std::size_t>(e.u)] &&
        !gone[static_cast<std::size_t>(e.v)]) {
      kept.push_back(e);
    }
  }
  return from_edges(n(), kept);
}

}  // namespace ftc::graph
