// Random and structured graph generators for the general-graph experiments.
//
// Section 4 of the paper analyzes arbitrary graphs; the experiment suite
// exercises Algorithm 1/2 on Erdős–Rényi, power-law (preferential
// attachment), grid, tree, and extremal topologies, all generated here.
// Unit disk graphs live in geom/udg.h because they carry coordinates.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::graph {

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 possible edges present
/// independently with probability p. Uses geometric skipping, so the cost is
/// O(n + m), fine for sparse large graphs.
[[nodiscard]] Graph gnp(NodeId n, double p, util::Rng& rng);

/// Uniform random graph G(n, m) with exactly m distinct edges.
/// Precondition: m <= n(n-1)/2.
[[nodiscard]] Graph gnm(NodeId n, std::size_t m, util::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes, then each new node attaches to `attach` existing
/// nodes chosen proportionally to degree. Produces a power-law degree
/// distribution — high-Δ stress for the (Δ+1)^{1/t} terms of Theorem 4.5.
/// Precondition: 1 <= attach < n.
[[nodiscard]] Graph barabasi_albert(NodeId n, NodeId attach, util::Rng& rng);

/// Uniform random labeled tree on n nodes (Prüfer-sequence construction).
[[nodiscard]] Graph random_tree(NodeId n, util::Rng& rng);

/// rows × cols 4-neighbor grid (n = rows*cols, node r*cols+c).
[[nodiscard]] Graph grid(NodeId rows, NodeId cols);

/// Simple path 0-1-2-...-(n-1).
[[nodiscard]] Graph path(NodeId n);

/// Cycle on n >= 3 nodes.
[[nodiscard]] Graph cycle(NodeId n);

/// Star: node 0 adjacent to all others.
[[nodiscard]] Graph star(NodeId n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(NodeId n);

/// Graph with n nodes and no edges.
[[nodiscard]] Graph empty(NodeId n);

/// Random d-regular-ish graph via the configuration model with rejection of
/// self-loops/multi-edges (retries stubs until simple; the result has degree
/// exactly d for every node when n*d is even and d < n).
[[nodiscard]] Graph random_regular(NodeId n, NodeId d, util::Rng& rng);

/// "Caveman" clustered graph: `cliques` cliques of size `clique_size`,
/// with each consecutive pair of cliques joined by one bridge edge.
/// Models the clustered topologies common in sensor deployments.
[[nodiscard]] Graph caveman(NodeId cliques, NodeId clique_size);

/// Watts–Strogatz small world: a ring lattice where every node connects to
/// its `k_nearest/2` nearest neighbors on each side (k_nearest must be even
/// and < n), then each lattice edge is rewired to a uniform random endpoint
/// with probability `beta` (avoiding self-loops and duplicates). β=0 gives
/// the pure lattice, β=1 approaches G(n, k/n). A standard model for ad hoc
/// networks with a few long-range shortcuts.
[[nodiscard]] Graph watts_strogatz(NodeId n, NodeId k_nearest, double beta,
                                   util::Rng& rng);

}  // namespace ftc::graph
