#include "graph/dynamic.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace ftc::graph {

bool csr_arcs_fit(std::size_t directed_arcs) noexcept {
  return directed_arcs <=
         static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max());
}

MutableGraph::MutableGraph(const Graph& g) {
  adj_.resize(static_cast<std::size_t>(g.n()));
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nbrs = g.neighbors(v);
    adj_[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
  }
  arcs_ = 2 * g.m();
}

NodeId MutableGraph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

bool MutableGraph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u < 0 || v < 0 || u >= n() || v >= n() || u == v) return false;
  const auto& nbrs = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool MutableGraph::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < n() && v >= 0 && v < n());
  if (u == v) return false;
  auto& nu = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  if (!csr_arcs_fit(arcs_ + 2)) {
    throw std::length_error("MutableGraph::add_edge: 2m exceeds uint32 offsets");
  }
  nu.insert(it, v);
  auto& nv = adj_[static_cast<std::size_t>(v)];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  arcs_ += 2;
  return true;
}

bool MutableGraph::remove_edge(NodeId u, NodeId v) {
  if (!has_edge(u, v)) return false;
  auto& nu = adj_[static_cast<std::size_t>(u)];
  nu.erase(std::lower_bound(nu.begin(), nu.end(), v));
  auto& nv = adj_[static_cast<std::size_t>(v)];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  arcs_ -= 2;
  return true;
}

std::vector<Edge> MutableGraph::isolate(NodeId v) {
  assert(v >= 0 && v < n());
  auto& nbrs = adj_[static_cast<std::size_t>(v)];
  std::vector<Edge> removed;
  removed.reserve(nbrs.size());
  for (NodeId w : nbrs) {
    removed.push_back(v < w ? Edge{v, w} : Edge{w, v});
    auto& nw = adj_[static_cast<std::size_t>(w)];
    nw.erase(std::lower_bound(nw.begin(), nw.end(), v));
  }
  arcs_ -= 2 * nbrs.size();
  nbrs.clear();
  return removed;
}

std::vector<Edge> MutableGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n(); ++u) {
    for (NodeId v : adj_[static_cast<std::size_t>(u)]) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

Graph MutableGraph::to_graph() const { return Graph::from_edges(n(), edges()); }

}  // namespace ftc::graph
