#include "graph/packed.h"

#include <limits>
#include <stdexcept>

namespace ftc::graph {

namespace {

/// LEB128 encode of a non-negative value into `out`.
void encode_varint(std::uint32_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

}  // namespace

PackedAdjacency::PackedAdjacency(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.n());
  degrees_.reserve(n);
  offsets_.reserve(n + 1);
  offsets_.push_back(0);
  // Worst case is ~5 bytes per arc; on sorted spatial topologies the gap
  // encoding lands near 1–2. Reserve the raw arc count as a sane middle.
  bytes_.reserve(g.m() * 2);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nbrs = g.neighbors(v);
    degrees_.push_back(static_cast<std::uint32_t>(nbrs.size()));
    NodeId prev = 0;
    bool first = true;
    for (NodeId w : nbrs) {
      // First neighbor absolute, then strictly positive gaps (lists are
      // sorted and duplicate-free by the Graph invariant).
      encode_varint(static_cast<std::uint32_t>(first ? w : w - prev), bytes_);
      prev = w;
      first = false;
    }
    if (bytes_.size() >
        static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
      throw std::length_error(
          "PackedAdjacency: packed stream exceeds uint32 offsets");
    }
    offsets_.push_back(static_cast<std::uint32_t>(bytes_.size()));
  }
  bytes_.shrink_to_fit();
}

void PackedAdjacency::decode(NodeId v, std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(degree(v)));
  for_each_neighbor(v, [&](NodeId w) { out.push_back(w); });
}

}  // namespace ftc::graph
