// Immutable undirected graph in compressed sparse row (CSR) form.
//
// This is the network topology substrate for the whole library: generators
// produce Graphs, the synchronous simulator routes messages along Graph
// edges, and the dominating-set algorithms read neighborhoods from it.
//
// Nodes are dense integer ids [0, n). Neighbor lists are sorted, enabling
// O(log deg) adjacency tests and deterministic iteration order (important
// for reproducibility of the distributed algorithms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ftc::graph {

/// Dense node identifier. Node ids are indices in [0, Graph::n()).
using NodeId = std::int32_t;

/// An undirected edge as an unordered pair (stored with u < v).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Empty graph with zero nodes.
  Graph() = default;

  /// Builds a graph on `num_nodes` nodes from an edge list. Self-loops are
  /// rejected (assert); duplicate edges (in either orientation) are merged.
  /// Edge endpoints must lie in [0, num_nodes).
  static Graph from_edges(NodeId num_nodes, std::span<const Edge> edges);

  /// Convenience overload taking (u, v) pairs.
  static Graph from_edges(NodeId num_nodes,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Number of nodes.
  [[nodiscard]] NodeId n() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t m() const noexcept { return adjacency_.size() / 2; }

  /// Heap footprint of the CSR arrays in bytes. Offsets are stored as
  /// 32-bit indices (2m must fit in uint32; from_edges enforces this), so a
  /// degree-12 million-node topology costs ~4 MB of offsets + ~48 MB of
  /// adjacency instead of double that with size_t offsets.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::uint32_t) +
           adjacency_.capacity() * sizeof(NodeId);
  }

  /// Degree of node v (number of neighbors, v itself not counted).
  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[static_cast<std::size_t>(v) + 1] -
                               offsets_[static_cast<std::size_t>(v)]);
  }

  /// Sorted open neighborhood of v (v itself excluded).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    const auto begin = offsets_[static_cast<std::size_t>(v)];
    const auto end = offsets_[static_cast<std::size_t>(v) + 1];
    return {adjacency_.data() + begin, adjacency_.data() + end};
  }

  /// Maximum degree Δ over all nodes (0 for the empty graph).
  [[nodiscard]] NodeId max_degree() const noexcept { return max_degree_; }

  /// True iff {u, v} is an edge. O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// All edges, each once, with u < v, in lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Returns the subgraph induced by deleting `removed` nodes (the node set
  /// keeps its size; removed nodes simply become isolated). Used by the
  /// fault-injection experiments, where crashed nodes stop participating
  /// but ids must remain stable.
  [[nodiscard]] Graph without_nodes(std::span<const NodeId> removed) const;

 private:
  std::vector<std::uint32_t> offsets_;  // size n+1; offsets_[n] == 2m
  std::vector<NodeId> adjacency_;       // size 2m, sorted per node
  NodeId max_degree_ = 0;
};

}  // namespace ftc::graph
