#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

namespace ftc::graph {

Graph gnp(NodeId n, double p, util::Rng& rng) {
  assert(n >= 0);
  assert(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (n < 2 || p == 0.0) return Graph::from_edges(n, edges);

  if (p >= 1.0) return complete(n);

  // Geometric edge skipping (Batagelj–Brandes): walk the implicit list of
  // all pairs, jumping geometric(1-p)-distributed gaps.
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const std::int64_t nn = n;
  while (v < nn) {
    double u = rng.uniform01();
    while (u <= 0.0) u = rng.uniform01();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / log1mp));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      edges.push_back({static_cast<NodeId>(w), static_cast<NodeId>(v)});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gnm(NodeId n, std::size_t m, util::Rng& rng) {
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2;
  assert(m <= max_edges);
  (void)max_edges;
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (const auto& [u, v] : chosen) edges.push_back({u, v});
  return Graph::from_edges(n, edges);
}

Graph barabasi_albert(NodeId n, NodeId attach, util::Rng& rng) {
  assert(attach >= 1 && attach < n);
  std::vector<Edge> edges;
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is degree-proportional sampling.
  std::vector<NodeId> endpoints;

  // Seed clique on attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = attach + 1; v < n; ++v) {
    std::set<NodeId> picks;
    while (static_cast<NodeId>(picks.size()) < attach) {
      picks.insert(endpoints[rng.index(endpoints.size())]);
    }
    for (NodeId u : picks) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_tree(NodeId n, util::Rng& rng) {
  assert(n >= 0);
  if (n <= 1) return empty(n);
  if (n == 2) return Graph::from_edges(2, std::vector<Edge>{{0, 1}});

  // Prüfer sequence of length n-2 with entries in [0, n).
  std::vector<NodeId> prufer(static_cast<std::size_t>(n) - 2);
  for (auto& x : prufer) {
    x = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
  }
  std::vector<NodeId> degree(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++degree[static_cast<std::size_t>(x)];

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  // Min-leaf decoding via a sorted set of current leaves.
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (degree[static_cast<std::size_t>(v)] == 1) leaves.insert(v);
  }
  for (NodeId x : prufer) {
    const NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    edges.push_back({leaf, x});
    if (--degree[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  const NodeId a = *leaves.begin();
  const NodeId b = *std::next(leaves.begin());
  edges.push_back({a, b});
  return Graph::from_edges(n, edges);
}

Graph grid(NodeId rows, NodeId cols) {
  assert(rows >= 0 && cols >= 0);
  std::vector<Edge> edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph path(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeId>(v + 1)});
  return Graph::from_edges(n, edges);
}

Graph cycle(NodeId n) {
  assert(n >= 3);
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeId>(v + 1)});
  edges.push_back({0, static_cast<NodeId>(n - 1)});
  return Graph::from_edges(n, edges);
}

Graph star(NodeId n) {
  assert(n >= 1);
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph::from_edges(n, edges);
}

Graph complete(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::from_edges(n, edges);
}

Graph empty(NodeId n) { return Graph::from_edges(n, std::span<const Edge>{}); }

Graph random_regular(NodeId n, NodeId d, util::Rng& rng) {
  assert(d >= 0 && d < n);
  assert((static_cast<std::int64_t>(n) * d) % 2 == 0 &&
         "n*d must be even for a d-regular graph to exist");
  // Configuration model with restart on collision. For d << n the expected
  // number of restarts is O(1).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    std::set<std::pair<NodeId, NodeId>> seen;
    std::vector<Edge> edges;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i];
      NodeId v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) {
        ok = false;
        break;
      }
      edges.push_back({u, v});
    }
    if (ok) return Graph::from_edges(n, edges);
  }
  assert(false && "random_regular: too many rejection restarts");
  return empty(n);
}

Graph watts_strogatz(NodeId n, NodeId k_nearest, double beta,
                     util::Rng& rng) {
  assert(n >= 3);
  assert(k_nearest >= 2 && k_nearest % 2 == 0 && k_nearest < n);
  assert(beta >= 0.0 && beta <= 1.0);

  // Adjacency as a set for O(log) duplicate checks during rewiring.
  std::set<std::pair<NodeId, NodeId>> edge_set;
  auto canon = [](NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId d = 1; d <= k_nearest / 2; ++d) {
      edge_set.insert(canon(v, static_cast<NodeId>((v + d) % n)));
    }
  }

  // Rewire: iterate over the original lattice edges in deterministic order.
  std::vector<std::pair<NodeId, NodeId>> lattice(edge_set.begin(),
                                                 edge_set.end());
  for (const auto& [u, v] : lattice) {
    if (!rng.bernoulli(beta)) continue;
    // Replace {u, v} with {u, w} for a random w; keep the graph simple.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto w =
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
      if (w == u || edge_set.count(canon(u, w)) != 0) continue;
      edge_set.erase(canon(u, v));
      edge_set.insert(canon(u, w));
      break;
    }
  }

  std::vector<Edge> edges;
  edges.reserve(edge_set.size());
  for (const auto& [u, v] : edge_set) edges.push_back({u, v});
  return Graph::from_edges(n, edges);
}

Graph caveman(NodeId cliques, NodeId clique_size) {
  assert(cliques >= 1 && clique_size >= 1);
  std::vector<Edge> edges;
  const NodeId n = cliques * clique_size;
  for (NodeId c = 0; c < cliques; ++c) {
    const NodeId base = c * clique_size;
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) {
        edges.push_back({static_cast<NodeId>(base + i),
                         static_cast<NodeId>(base + j)});
      }
    }
    if (c + 1 < cliques) {
      // Bridge: last node of this clique to first node of the next.
      edges.push_back({static_cast<NodeId>(base + clique_size - 1),
                       static_cast<NodeId>(base + clique_size)});
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace ftc::graph
