#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ftc::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.n() << ' ' << g.m() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_data_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_data_line()) {
    throw std::runtime_error("read_edge_list: missing header");
  }
  std::istringstream header(line);
  long long n = 0, m = 0;
  if (!(header >> n >> m) || n < 0 || m < 0) {
    throw std::runtime_error("read_edge_list: bad header '" + line + "'");
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (long long i = 0; i < m; ++i) {
    if (!next_data_line()) {
      throw std::runtime_error("read_edge_list: expected " +
                               std::to_string(m) + " edges, got " +
                               std::to_string(i));
    }
    std::istringstream row(line);
    long long u = 0, v = 0;
    if (!(row >> u >> v) || u < 0 || v < 0 || u >= n || v >= n || u == v) {
      throw std::runtime_error("read_edge_list: bad edge '" + line + "'");
    }
    edges.push_back(
        {static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return Graph::from_edges(static_cast<NodeId>(n), edges);
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(out, g);
  if (!out) throw std::runtime_error("save_edge_list: write failed " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

void write_dot(std::ostream& os, const Graph& g,
               std::span<const NodeId> highlight) {
  std::vector<bool> marked(static_cast<std::size_t>(g.n()), false);
  for (NodeId v : highlight) marked[static_cast<std::size_t>(v)] = true;
  os << "graph G {\n";
  for (NodeId v = 0; v < g.n(); ++v) {
    os << "  " << v;
    if (marked[static_cast<std::size_t>(v)]) {
      os << " [style=filled, fillcolor=lightblue]";
    }
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << ";\n";
  }
  os << "}\n";
}

}  // namespace ftc::graph
