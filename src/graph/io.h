// Graph serialization: a plain edge-list text format plus Graphviz DOT
// export for visual inspection of small instances.
//
// Edge-list format:
//   line 1: "n m"           (node count, edge count)
//   next m lines: "u v"     (one undirected edge per line, 0-based ids)
// Lines starting with '#' are comments and ignored on read.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace ftc::graph {

/// Writes g in edge-list format.
void write_edge_list(std::ostream& os, const Graph& g);

/// Reads a graph in edge-list format. Throws std::runtime_error on malformed
/// input (bad header, out-of-range endpoint, wrong edge count).
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Round-trips via files. write throws on IO failure.
void save_edge_list(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& path);

/// Writes g as a Graphviz `graph { ... }`. Nodes listed in `highlight`
/// (e.g. a dominating set) render filled.
void write_dot(std::ostream& os, const Graph& g,
               std::span<const NodeId> highlight = {});

}  // namespace ftc::graph
