// Compressed read-only adjacency: CSR byte offsets over varint delta-gap
// encoded neighbor lists.
//
// Graph stores neighbors as raw 32-bit ids (4 bytes each). On the spatial
// topologies this repo simulates, neighbor ids are strongly clustered —
// unit disk graph neighbors are geometrically close and, after the sorted
// CSR build, numerically close — so the ascending gaps between consecutive
// neighbors are small. PackedAdjacency exploits that: each list stores its
// first neighbor as an LEB128 varint and every subsequent neighbor as the
// varint of the gap to its predecessor. A degree-12 million-node UDG packs
// into roughly 1.5–2 bytes per directed arc instead of 4, which is the
// difference between streaming the topology through cache and not.
//
// The structure is auxiliary: it is built once per topology from a Graph
// and answers neighbor queries by sequential decode (for_each_neighbor or
// a scratch-vector decode). It never mutates and never owns the Graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ftc::graph {

/// Varint/delta-compressed adjacency built from a Graph. Neighbor order is
/// identical to Graph::neighbors (ascending), so iteration is
/// deterministic and interchangeable with the CSR path.
class PackedAdjacency {
 public:
  /// Empty adjacency (zero nodes).
  PackedAdjacency() = default;

  /// Packs the full adjacency of `g`. Throws std::length_error if the
  /// encoded byte stream would not fit 32-bit offsets (> 4 GiB packed,
  /// i.e. far past the uint32 edge bound Graph already enforces).
  explicit PackedAdjacency(const Graph& g);

  /// Number of nodes.
  [[nodiscard]] NodeId n() const noexcept {
    return static_cast<NodeId>(degrees_.size());
  }

  /// Degree of node v.
  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(degrees_[static_cast<std::size_t>(v)]);
  }

  /// Calls fn(NodeId) for every neighbor of v in ascending order.
  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    const std::uint8_t* p = bytes_.data() + offsets_[static_cast<std::size_t>(v)];
    const std::uint32_t deg = degrees_[static_cast<std::size_t>(v)];
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < deg; ++i) {
      // First value is the absolute id; the rest are gaps to the
      // predecessor (>= 1 in a simple graph).
      prev = (i == 0 ? 0 : prev) + decode_varint(p);
      fn(static_cast<NodeId>(prev));
    }
  }

  /// Decodes the neighbor list of v into `out` (cleared first). The same
  /// vector can be reused across calls to avoid per-query allocation.
  void decode(NodeId v, std::vector<NodeId>& out) const;

  /// Size of the packed neighbor byte stream (excludes offsets/degrees).
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes_.size(); }

  /// Total heap footprint: packed bytes + offsets + degrees.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return bytes_.capacity() * sizeof(std::uint8_t) +
           offsets_.capacity() * sizeof(std::uint32_t) +
           degrees_.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// LEB128 decode: 7 payload bits per byte, high bit set on continuation.
  static std::uint32_t decode_varint(const std::uint8_t*& p) noexcept {
    std::uint32_t value = *p & 0x7F;
    int shift = 7;
    while ((*p++ & 0x80) != 0) {
      value |= static_cast<std::uint32_t>(*p & 0x7F) << shift;
      shift += 7;
    }
    return value;
  }

  std::vector<std::uint8_t> bytes_;     // concatenated varint streams
  std::vector<std::uint32_t> offsets_;  // size n+1, byte offsets into bytes_
  std::vector<std::uint32_t> degrees_;  // size n
};

}  // namespace ftc::graph
