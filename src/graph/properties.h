// Structural graph properties used for workload characterization and for
// validating generator output in tests.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ftc::graph {

/// Component labeling: `component[v]` is the 0-based id of v's connected
/// component; ids are assigned in order of the smallest node they contain.
struct Components {
  std::vector<NodeId> component;  ///< size n
  NodeId count = 0;               ///< number of components
};

/// Computes connected components via BFS. O(n + m).
[[nodiscard]] Components connected_components(const Graph& g);

/// True iff g has a single connected component (vacuously true for n <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// BFS distances (in hops) from `source`; unreachable nodes get -1.
[[nodiscard]] std::vector<NodeId> bfs_distances(const Graph& g, NodeId source);

/// Eccentricity of `source`: max finite BFS distance from it.
[[nodiscard]] NodeId eccentricity(const Graph& g, NodeId source);

/// Histogram of node degrees: result[d] = #nodes of degree d,
/// size max_degree()+1 (empty for the 0-node graph).
[[nodiscard]] std::vector<std::size_t> degree_histogram(const Graph& g);

/// Average degree 2m/n (0 for the empty graph).
[[nodiscard]] double average_degree(const Graph& g);

/// Minimum degree over all nodes (0 for the 0-node graph).
[[nodiscard]] NodeId min_degree(const Graph& g);

}  // namespace ftc::graph
