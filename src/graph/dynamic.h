// Mutable adjacency companion to the immutable CSR Graph (DESIGN.md §13).
//
// Graph is deliberately immutable: the simulator and the algorithms read a
// frozen CSR. The dynamic-clustering layer needs the opposite — a topology
// that absorbs a stream of join/leave/move/flip mutations between rounds —
// so MutableGraph keeps per-node sorted neighbor vectors that support
// O(deg) edge insertion/removal while preserving Graph's invariants
// (simple, undirected, sorted neighbor lists, ids dense in [0, n)).
//
// to_graph() freezes the current adjacency back into a CSR Graph, and the
// rebuild is guaranteed equivalent to Graph::from_edges over the same edge
// set — the PackedAdjacency round-trip tests pin that contract.
//
// The uint32 CSR bound (2m must fit 32-bit offsets) is enforced here too,
// at mutation time, through the same predicate Graph::from_edges uses:
// csr_arcs_fit(). A mutable topology that silently outgrew the bound would
// only fail later, at an arbitrary to_graph() call.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ftc::graph {

/// True iff a topology with `directed_arcs` = 2m directed arcs fits the
/// 32-bit CSR offsets Graph and PackedAdjacency use. Shared by
/// Graph::from_edges and MutableGraph::add_edge so the static and dynamic
/// paths reject exactly the same sizes.
[[nodiscard]] bool csr_arcs_fit(std::size_t directed_arcs) noexcept;

/// Edges added/removed by one topology mutation, each once with u < v.
/// Orders are deterministic (ascending) so deltas are comparable across
/// runs and replays.
struct EdgeDelta {
  std::vector<Edge> added;
  std::vector<Edge> removed;

  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && removed.empty();
  }

  friend bool operator==(const EdgeDelta&, const EdgeDelta&) = default;
};

/// Mutable simple undirected graph with sorted per-node neighbor vectors.
class MutableGraph {
 public:
  MutableGraph() = default;

  /// Thaws an immutable Graph (copies its adjacency).
  explicit MutableGraph(const Graph& g);

  [[nodiscard]] NodeId n() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }

  /// Appends a new isolated node and returns its id (= previous n()).
  NodeId add_node();

  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(adj_[static_cast<std::size_t>(v)].size());
  }

  /// Sorted open neighborhood of v. Invalidated by any mutation of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    const auto& nbrs = adj_[static_cast<std::size_t>(v)];
    return {nbrs.data(), nbrs.size()};
  }

  /// True iff {u, v} is an edge. O(log deg(u)). Out-of-range ids and u == v
  /// return false (mirrors Graph::has_edge).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Inserts {u, v}. Returns false (no-op) when the edge already exists or
  /// u == v. Throws std::length_error when the insertion would push 2m past
  /// the uint32 CSR bound. Precondition: ids in [0, n).
  bool add_edge(NodeId u, NodeId v);

  /// Removes {u, v}. Returns false (no-op) when the edge is absent.
  bool remove_edge(NodeId u, NodeId v);

  /// Removes every edge incident to v and returns them (u < v, ascending by
  /// the far endpoint). The node keeps its id — the same isolated-node
  /// convention as Graph::without_nodes.
  std::vector<Edge> isolate(NodeId v);

  /// Directed arc count 2m.
  [[nodiscard]] std::size_t arcs() const noexcept { return arcs_; }

  /// Undirected edge count.
  [[nodiscard]] std::size_t m() const noexcept { return arcs_ / 2; }

  /// All edges, each once with u < v, in lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Freezes the current adjacency into an immutable CSR Graph. The result
  /// is identical to Graph::from_edges(n(), edges()).
  [[nodiscard]] Graph to_graph() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t arcs_ = 0;  ///< 2m, maintained incrementally
};

}  // namespace ftc::graph
