#include "graph/properties.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ftc::graph {

Components connected_components(const Graph& g) {
  Components result;
  result.component.assign(static_cast<std::size_t>(g.n()), -1);
  NodeId next_id = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.n(); ++start) {
    if (result.component[static_cast<std::size_t>(start)] != -1) continue;
    result.component[static_cast<std::size_t>(start)] = next_id;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (result.component[static_cast<std::size_t>(v)] == -1) {
          result.component[static_cast<std::size_t>(v)] = next_id;
          frontier.push(v);
        }
      }
    }
    ++next_id;
  }
  result.count = next_id;
  return result;
}

bool is_connected(const Graph& g) {
  if (g.n() <= 1) return true;
  return connected_components(g).count == 1;
}

std::vector<NodeId> bfs_distances(const Graph& g, NodeId source) {
  assert(source >= 0 && source < g.n());
  std::vector<NodeId> dist(static_cast<std::size_t>(g.n()), -1);
  dist[static_cast<std::size_t>(source)] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == -1) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

NodeId eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  NodeId ecc = 0;
  for (NodeId d : dist) ecc = std::max(ecc, d);
  return ecc;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  if (g.n() == 0) return {};
  std::vector<std::size_t> hist(static_cast<std::size_t>(g.max_degree()) + 1,
                                0);
  for (NodeId v = 0; v < g.n(); ++v) {
    ++hist[static_cast<std::size_t>(g.degree(v))];
  }
  return hist;
}

double average_degree(const Graph& g) {
  if (g.n() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.m()) / static_cast<double>(g.n());
}

NodeId min_degree(const Graph& g) {
  NodeId lo = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    lo = v == 0 ? g.degree(v) : std::min(lo, g.degree(v));
  }
  return lo;
}

}  // namespace ftc::graph
