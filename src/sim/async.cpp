#include "sim/async.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ftc::sim {

using graph::NodeId;

AsyncNetwork::AsyncNetwork(const graph::Graph& g, std::uint64_t seed,
                           const AsyncOptions& options)
    : graph_(&g), delay_rng_(options.delay_seed), options_(options) {
  assert(options.min_delay >= 1);
  assert(options.max_delay >= options.min_delay);
  const auto n = static_cast<std::size_t>(g.n());
  processes_.resize(n);
  states_.resize(n);
  rngs_.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) {
    rngs_.push_back(root.split(v));
    states_[v].halt_after.assign(
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))),
        std::numeric_limits<std::int64_t>::max());
    states_[v].sent_to.assign(
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))), false);
  }
}

AsyncNetwork::AsyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed,
                           const AsyncOptions& options)
    : AsyncNetwork(udg.graph, seed, options) {
  udg_ = &udg;
}

void AsyncNetwork::set_process(NodeId v, std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

std::size_t AsyncNetwork::neighbor_index(NodeId v, NodeId j) const {
  const auto nbrs = graph_->neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), j);
  assert(it != nbrs.end() && *it == j);
  return static_cast<std::size_t>(it - nbrs.begin());
}

void AsyncNetwork::set_channel(const ChannelOptions& options) {
  channel_.set_options(options, 0);  // validates; chains keyed on pulses
}

void AsyncNetwork::send_envelope(NodeId from, NodeId to, Envelope env,
                                 std::int64_t now, std::int64_t extra_delay) {
  env.from = from;
  metrics_.envelopes_sent += 1;
  if (env.has_payload) {
    metrics_.payload_messages += 1;
    metrics_.payload_words += static_cast<std::int64_t>(env.words.size());
    metrics_.max_message_words =
        std::max(metrics_.max_message_words,
                 static_cast<std::int64_t>(env.words.size()));
  }
  DeliveryEvent event;
  event.time = now + extra_delay +
               delay_rng_.uniform_i64(options_.min_delay, options_.max_delay);
  event.sequence = ++sequence_;
  event.to = to;
  event.envelope = std::move(env);
  events_.push(std::move(event));
}

void AsyncNetwork::backend_send(NodeId from, NodeId to,
                                std::span<const Word> words) {
  // Called from within execute_pulse() via Context::send.
  assert(from == executing_);
  Envelope env;
  env.pulse = executing_pulse_;
  env.has_payload = true;
  env.words.assign(words.begin(), words.end());
  states_[static_cast<std::size_t>(from)]
      .sent_to[neighbor_index(from, to)] = true;
  std::int64_t extra_delay = 0;
  if (channel_.impaired()) {
    // Payload-level impairment, keyed on the sender's pulse (unique per
    // link per pulse, like rounds in SyncNetwork). The envelope itself
    // always arrives — the synchronizer needs it for pulse accounting — so
    // a lost payload degrades to an empty marker, and a duplicate arrives
    // as a second, non-counting copy.
    const Channel::Fate fate = channel_.decide(from, to, executing_pulse_);
    if (fate.dropped) {
      env.has_payload = false;
      env.words.clear();
      metrics_.payloads_dropped += 1;
    } else {
      extra_delay = fate.delay;
      if (fate.duplicate) {
        Envelope copy = env;
        copy.counts = false;
        metrics_.payloads_duplicated += 1;
        send_envelope(from, to, std::move(copy), executing_time_,
                      fate.dup_delay);
      }
    }
  }
  send_envelope(from, to, std::move(env), executing_time_, extra_delay);
}

void AsyncNetwork::schedule_crash(NodeId v, std::int64_t pulse) {
  assert(v >= 0 && v < graph_->n());
  auto& state = states_[static_cast<std::size_t>(v)];
  state.crash_pulse = std::min(state.crash_pulse, std::max<std::int64_t>(pulse, 0));
}

bool AsyncNetwork::crashed(NodeId v) const noexcept {
  const auto& state = states_[static_cast<std::size_t>(v)];
  return state.pulse >= state.crash_pulse;
}

void AsyncNetwork::announce_crash_if_due(NodeId v, std::int64_t now) {
  auto& state = states_[static_cast<std::size_t>(v)];
  if (state.pulse < state.crash_pulse || state.crash_announced) return;
  state.crash_announced = true;
  // Link-layer detection: the transport tells each neighbor that v's last
  // completed pulse was crash_pulse - 1, exactly like a HALT announcement,
  // so nobody waits for envelopes v will never send. counts=false because
  // v's own pulse-(crash_pulse-1) envelopes (if any) already counted.
  for (NodeId w : graph_->neighbors(v)) {
    Envelope marker;
    marker.pulse = state.crash_pulse - 1;
    marker.halt = true;
    marker.counts = false;
    send_envelope(v, w, std::move(marker), now);
  }
}

bool AsyncNetwork::ready(NodeId v) const {
  const auto& state = states_[static_cast<std::size_t>(v)];
  if (state.halted) return false;
  if (state.pulse >= state.crash_pulse) return false;
  if (processes_[static_cast<std::size_t>(v)] == nullptr) return false;
  const std::int64_t p = state.pulse;
  if (p == 0) return true;
  // Need an envelope tagged p-1 from every neighbor still participating at
  // pulse p-1.
  std::int64_t needed = 0;
  for (std::int64_t ha : state.halt_after) {
    if (ha >= p - 1) ++needed;
  }
  const auto it = state.envelopes_by_pulse.find(p - 1);
  const std::int64_t have =
      it == state.envelopes_by_pulse.end() ? 0 : it->second;
  return have >= needed;
}

void AsyncNetwork::execute_pulse(NodeId v, std::int64_t now) {
  auto& state = states_[static_cast<std::size_t>(v)];
  Process* process = processes_[static_cast<std::size_t>(v)].get();
  assert(process != nullptr && !process->halted());

  // Assemble the inbox: payload envelopes tagged pulse-1, sorted by sender
  // (matching SyncNetwork's deterministic order). The stored payloads own
  // their words; `inbox` holds non-owning views valid through on_round().
  std::vector<StoredMessage> stored;
  std::vector<Message> inbox;
  if (state.pulse > 0) {
    auto it = state.payload_by_pulse.find(state.pulse - 1);
    if (it != state.payload_by_pulse.end()) {
      stored = std::move(it->second);
      state.payload_by_pulse.erase(it);
    }
    state.envelopes_by_pulse.erase(state.pulse - 1);
    std::sort(stored.begin(), stored.end(),
              [](const StoredMessage& a, const StoredMessage& b) {
                return a.from < b.from;
              });
    inbox.reserve(stored.size());
    for (const StoredMessage& msg : stored) {
      inbox.push_back(Message{msg.from, WordSpan(msg.words)});
    }
  }

  std::fill(state.sent_to.begin(), state.sent_to.end(), false);
  executing_ = v;
  executing_pulse_ = state.pulse;
  executing_time_ = now;

  Context ctx;
  ctx.net_ = this;
  ctx.self_ = v;
  ctx.round_ = state.pulse;
  ctx.rng_ = &rngs_[static_cast<std::size_t>(v)];
  ctx.inbox_ = {inbox.data(), inbox.size()};
  process->on_round(ctx);

  executing_ = -1;
  const bool halted_now = process->halted();

  // Complete the pulse. Neighbors the process did not message get a marker
  // envelope (halt-flagged when the process just terminated). Neighbors
  // that already received a payload this pulse get, when halting, one extra
  // halt marker — flagged counts=false so pulse completion is not counted
  // twice for the same (sender, pulse).
  const auto nbrs = graph_->neighbors(v);
  for (std::size_t j = 0; j < nbrs.size(); ++j) {
    if (!state.sent_to[j]) {
      Envelope marker;
      marker.pulse = state.pulse;
      marker.halt = halted_now;
      send_envelope(v, nbrs[j], std::move(marker), now);
    } else if (halted_now) {
      Envelope halt_marker;
      halt_marker.pulse = state.pulse;
      halt_marker.halt = true;
      halt_marker.counts = false;
      send_envelope(v, nbrs[j], std::move(halt_marker), now);
    }
  }

  metrics_.pulses = std::max(metrics_.pulses, state.pulse + 1);
  state.pulse += 1;
  state.halted = halted_now;
}

void AsyncNetwork::deliver(const DeliveryEvent& event) {
  auto& state = states_[static_cast<std::size_t>(event.to)];
  const Envelope& env = event.envelope;
  if (env.halt) {
    auto& ha = state.halt_after[neighbor_index(event.to, env.from)];
    ha = std::min(ha, env.pulse);
  }
  if (env.has_payload) {
    StoredMessage msg;
    msg.from = env.from;
    msg.words = env.words;
    state.payload_by_pulse[env.pulse].push_back(std::move(msg));
  }
  if (env.counts) {
    state.envelopes_by_pulse[env.pulse] += 1;
  }
}

std::int64_t AsyncNetwork::run(std::int64_t max_pulses) {
  const AsyncMetrics before = metrics_;
  obs::SpanTimer run_span(
      plane_ != nullptr ? &plane_->trace() : nullptr, obs::Category::kEngine,
      obs::Severity::kInfo,
      plane_ != nullptr ? plane_->builtin().n_async_run : obs::NameId{0}, 0);

  // Kick off pulse 0 everywhere; isolated nodes have no synchronization
  // constraints and run all their pulses immediately.
  for (NodeId v = 0; v < graph_->n(); ++v) {
    while (processes_[static_cast<std::size_t>(v)] != nullptr &&
           !states_[static_cast<std::size_t>(v)].halted &&
           states_[static_cast<std::size_t>(v)].pulse < max_pulses &&
           ready(v)) {
      execute_pulse(v, 0);
      if (graph_->degree(v) > 0 &&
          states_[static_cast<std::size_t>(v)].pulse > 0) {
        break;  // non-isolated nodes must now wait for envelopes
      }
    }
    announce_crash_if_due(v, 0);
  }

  while (!events_.empty()) {
    const DeliveryEvent event = events_.top();
    events_.pop();
    metrics_.virtual_time = std::max(metrics_.virtual_time, event.time);
    deliver(event);
    // The delivery may enable the receiver's next pulse.
    const NodeId v = event.to;
    while (!states_[static_cast<std::size_t>(v)].halted &&
           processes_[static_cast<std::size_t>(v)] != nullptr &&
           states_[static_cast<std::size_t>(v)].pulse < max_pulses &&
           ready(v)) {
      execute_pulse(v, event.time);
    }
    announce_crash_if_due(v, event.time);
  }

  std::int64_t slowest = 0;
  for (const auto& state : states_) {
    slowest = std::max(slowest, state.pulse);
  }

  if (plane_ != nullptr) {
    obs::Registry& reg = plane_->metrics();
    const obs::Builtin& b = plane_->builtin();
    reg.add(b.async_pulses, metrics_.pulses - before.pulses);
    reg.add(b.async_envelopes,
            metrics_.envelopes_sent - before.envelopes_sent);
    reg.add(b.async_payload_words,
            metrics_.payload_words - before.payload_words);
    run_span.set_args(metrics_.pulses, metrics_.envelopes_sent);
  }
  return slowest;
}

}  // namespace ftc::sim
