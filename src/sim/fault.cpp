#include "sim/fault.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

namespace ftc::sim {

using graph::NodeId;

namespace {

/// Strict probability validation: a plan with an out-of-range rate is a
/// caller bug and is rejected loudly, never clamped into a plan that
/// silently means something else.
void check_rate(const char* factory, const char* name, double p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan::") + factory + ": " +
                                name + " must be in [0, 1], got " +
                                std::to_string(p));
  }
}

}  // namespace

FaultPlan FaultPlan::none() { return {}; }

FaultPlan FaultPlan::crashes_at(
    std::vector<std::pair<std::int64_t, NodeId>> when) {
  if (when.empty()) {
    throw std::invalid_argument(
        "FaultPlan::crashes_at: empty target set (use FaultPlan::none() for "
        "the empty plan)");
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kExplicit;
  c.schedule = std::move(when);
  plan.components_.push_back(std::move(c));
  return plan;
}

FaultPlan FaultPlan::iid_crashes(double rate, std::int64_t from,
                                 std::int64_t until) {
  check_rate("iid_crashes", "rate", rate);
  FaultPlan plan;
  Component c;
  c.kind = Kind::kIid;
  c.rate = rate;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::targeted_by_degree(NodeId count, std::int64_t round) {
  if (count < 1) {
    throw std::invalid_argument(
        "FaultPlan::targeted_by_degree: count must be >= 1, got " +
        std::to_string(count));
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kTargeted;
  c.count = count;
  c.round = round;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::region(geom::Point center, double radius,
                            std::int64_t round) {
  if (std::isnan(radius) || radius < 0.0) {
    throw std::invalid_argument(
        "FaultPlan::region: radius must be >= 0, got " +
        std::to_string(radius));
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kRegion;
  c.center = center;
  c.radius = radius;
  c.round = round;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::churn(double rate, std::int64_t min_downtime,
                           std::int64_t max_downtime, std::int64_t from,
                           std::int64_t until) {
  check_rate("churn", "rate", rate);
  if (min_downtime < 1 || max_downtime < min_downtime) {
    throw std::invalid_argument(
        "FaultPlan::churn: downtimes must satisfy 1 <= min <= max, got [" +
        std::to_string(min_downtime) + ", " + std::to_string(max_downtime) +
        "]");
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kChurn;
  c.rate = rate;
  c.min_downtime = min_downtime;
  c.max_downtime = max_downtime;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::lossy_links(double rate, std::int64_t from,
                                 std::int64_t until) {
  if (std::isnan(rate) || rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument(
        "FaultPlan::lossy_links: rate must be in [0, 1), got " +
        std::to_string(rate));
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kLossyLinks;
  c.rate = rate;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::asymmetric_links(double rate, double asymmetry,
                                      std::int64_t from, std::int64_t until) {
  if (std::isnan(rate) || rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument(
        "FaultPlan::asymmetric_links: rate must be in [0, 1), got " +
        std::to_string(rate));
  }
  check_rate("asymmetric_links", "asymmetry", asymmetry);
  FaultPlan plan = lossy_links(rate, from, until);
  plan.components_.back().asymmetry = asymmetry;
  return plan;
}

FaultPlan FaultPlan::bursty_links(double burst_loss, double p_enter,
                                  double p_exit, std::int64_t from,
                                  std::int64_t until) {
  if (std::isnan(burst_loss) || burst_loss < 0.0 || burst_loss >= 1.0) {
    throw std::invalid_argument(
        "FaultPlan::bursty_links: burst_loss must be in [0, 1), got " +
        std::to_string(burst_loss));
  }
  check_rate("bursty_links", "p_enter", p_enter);
  if (std::isnan(p_exit) || p_exit <= 0.0 || p_exit > 1.0) {
    throw std::invalid_argument(
        "FaultPlan::bursty_links: p_exit must be in (0, 1], got " +
        std::to_string(p_exit));
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kBurstyLinks;
  c.rate = burst_loss;
  c.burst_enter = p_enter;
  c.burst_exit = p_exit;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::duplicating_links(double rate, std::int64_t from,
                                       std::int64_t until) {
  check_rate("duplicating_links", "rate", rate);
  FaultPlan plan;
  Component c;
  c.kind = Kind::kDuplicatingLinks;
  c.rate = rate;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::reordering_links(double rate, int max_delay,
                                      std::int64_t from, std::int64_t until) {
  check_rate("reordering_links", "rate", rate);
  if (max_delay < 1) {
    throw std::invalid_argument(
        "FaultPlan::reordering_links: max_delay must be >= 1, got " +
        std::to_string(max_delay));
  }
  FaultPlan plan;
  Component c;
  c.kind = Kind::kReorderingLinks;
  c.rate = rate;
  c.max_delay = max_delay;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::then(FaultPlan other) const {
  FaultPlan combined = *this;
  for (auto& c : other.components_) {
    combined.components_.push_back(std::move(c));
  }
  return combined;
}

bool FaultPlan::has_recoveries() const noexcept {
  return std::any_of(components_.begin(), components_.end(),
                     [](const Component& c) { return c.kind == Kind::kChurn; });
}

bool FaultPlan::is_link_kind(Kind k) const noexcept {
  return k == Kind::kLossyLinks || k == Kind::kBurstyLinks ||
         k == Kind::kDuplicatingLinks || k == Kind::kReorderingLinks;
}

bool FaultPlan::has_link_faults() const noexcept {
  return std::any_of(
      components_.begin(), components_.end(),
      [this](const Component& c) { return is_link_kind(c.kind); });
}

std::vector<FaultEvent> compile_fault_plan(const FaultPlan& plan,
                                           const graph::Graph& g,
                                           const geom::UnitDiskGraph* udg,
                                           std::int64_t horizon,
                                           std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<FaultEvent> events;
  std::map<std::int64_t, std::vector<NodeId>> pending_recoveries;

  // One independent stream per randomized component, so adding a component
  // never perturbs the draws of the others.
  const util::Rng root(seed);
  std::vector<util::Rng> rngs;
  rngs.reserve(plan.components_.size());
  for (std::size_t i = 0; i < plan.components_.size(); ++i) {
    rngs.push_back(root.split(i));
  }

  std::vector<std::uint8_t> rejoined_this_round(n, 0);
  for (std::int64_t r = 0; r < horizon; ++r) {
    // Rejoins first: a node that comes back at round r executes at least
    // one round before any component may kill it again (the per-node
    // alternating-events invariant the installer relies on).
    std::fill(rejoined_this_round.begin(), rejoined_this_round.end(), 0);
    if (const auto it = pending_recoveries.find(r);
        it != pending_recoveries.end()) {
      for (NodeId v : it->second) {
        alive[static_cast<std::size_t>(v)] = 1;
        rejoined_this_round[static_cast<std::size_t>(v)] = 1;
        events.push_back({r, v, true});
      }
      pending_recoveries.erase(it);
    }

    auto kill = [&](NodeId v, const FaultPlan::Component& c, util::Rng& rng) {
      const auto vi = static_cast<std::size_t>(v);
      if (!alive[vi] || rejoined_this_round[vi]) return;
      alive[vi] = 0;
      events.push_back({r, v, false});
      if (c.kind == FaultPlan::Kind::kChurn) {
        const std::int64_t down = rng.uniform_i64(c.min_downtime,
                                                  c.max_downtime);
        if (r + down < horizon) pending_recoveries[r + down].push_back(v);
      }
    };

    for (std::size_t ci = 0; ci < plan.components_.size(); ++ci) {
      const auto& c = plan.components_[ci];
      util::Rng& rng = rngs[ci];
      switch (c.kind) {
        case FaultPlan::Kind::kExplicit:
          for (const auto& [round, v] : c.schedule) {
            if (round == r) kill(v, c, rng);
          }
          break;
        case FaultPlan::Kind::kIid:
        case FaultPlan::Kind::kChurn:
          if (r >= c.from && r < c.until && c.rate > 0.0) {
            for (NodeId v = 0; v < g.n(); ++v) {
              // Draw for every node regardless of liveness so the stream
              // stays aligned across plans with different victims.
              const bool hit = rng.bernoulli(c.rate);
              if (hit) kill(v, c, rng);
            }
          }
          break;
        case FaultPlan::Kind::kTargeted:
          if (c.round == r) {
            std::vector<NodeId> order;
            for (NodeId v = 0; v < g.n(); ++v) {
              if (alive[static_cast<std::size_t>(v)] &&
                  !rejoined_this_round[static_cast<std::size_t>(v)]) {
                order.push_back(v);
              }
            }
            std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
              if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
              return a < b;
            });
            const auto take = std::min<std::size_t>(
                order.size(), static_cast<std::size_t>(std::max<NodeId>(c.count, 0)));
            for (std::size_t i = 0; i < take; ++i) kill(order[i], c, rng);
          }
          break;
        case FaultPlan::Kind::kRegion:
          if (c.round == r) {
            if (udg == nullptr) {
              throw std::invalid_argument(
                  "compile_fault_plan: region component needs a UDG embedding");
            }
            for (NodeId v = 0; v < g.n(); ++v) {
              if (geom::dist(udg->positions[static_cast<std::size_t>(v)],
                             c.center) <= c.radius) {
                kill(v, c, rng);
              }
            }
          }
          break;
        case FaultPlan::Kind::kLossyLinks:
        case FaultPlan::Kind::kBurstyLinks:
        case FaultPlan::Kind::kDuplicatingLinks:
        case FaultPlan::Kind::kReorderingLinks:
          break;  // link faults compile via compile_channel_schedule
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.round != b.round) return a.round < b.round;
              if (a.recover != b.recover) return !a.recover;  // crashes first
              return a.node < b.node;
            });
  return events;
}

std::vector<ChannelEvent> compile_channel_schedule(const FaultPlan& plan,
                                                   std::int64_t horizon,
                                                   std::uint64_t seed) {
  // Windows of the link components, clamped to [0, horizon).
  struct Window {
    std::int64_t from = 0;
    std::int64_t until = 0;
    const FaultPlan::Component* c = nullptr;
  };
  std::vector<Window> windows;
  std::set<std::int64_t> boundaries;
  for (const auto& c : plan.components_) {
    if (!plan.is_link_kind(c.kind)) continue;
    const std::int64_t from = std::max<std::int64_t>(c.from, 0);
    const std::int64_t until = std::min(c.until, horizon);
    if (until <= from) continue;  // empty window
    windows.push_back({from, until, &c});
    boundaries.insert(from);
    boundaries.insert(until);
  }
  if (windows.empty()) return {};

  std::vector<ChannelEvent> events;
  for (const std::int64_t r : boundaries) {
    if (r >= horizon) break;
    ChannelOptions merged;
    merged.seed = seed;
    // Independent impairment sources merge like independent coins:
    // P(any) = 1 - Π(1 - pᵢ). Intensities/bounds take the max (worst
    // case), burst exit the min (longest bursts win).
    double keep_loss = 1.0, keep_dup = 1.0, keep_reorder = 1.0;
    bool bursty = false;
    for (const Window& w : windows) {
      if (r < w.from || r >= w.until) continue;
      const auto& c = *w.c;
      switch (c.kind) {
        case FaultPlan::Kind::kLossyLinks:
          keep_loss *= 1.0 - c.rate;
          merged.asymmetry = std::max(merged.asymmetry, c.asymmetry);
          break;
        case FaultPlan::Kind::kBurstyLinks:
          merged.burst_loss = std::max(merged.burst_loss, c.rate);
          merged.p_enter_burst = std::max(merged.p_enter_burst, c.burst_enter);
          merged.p_exit_burst = bursty
                                    ? std::min(merged.p_exit_burst, c.burst_exit)
                                    : c.burst_exit;
          bursty = true;
          break;
        case FaultPlan::Kind::kDuplicatingLinks:
          keep_dup *= 1.0 - c.rate;
          break;
        case FaultPlan::Kind::kReorderingLinks:
          keep_reorder *= 1.0 - c.rate;
          merged.max_reorder_delay =
              std::max(merged.max_reorder_delay, c.max_delay);
          break;
        default:
          break;
      }
    }
    merged.loss = 1.0 - keep_loss;
    merged.duplicate = 1.0 - keep_dup;
    merged.reorder = 1.0 - keep_reorder;
    if (!events.empty() && events.back().options == merged) continue;
    events.push_back({r, merged});
  }
  // Drop a leading clean event (nothing was active yet — the network's
  // default channel is already clean).
  if (!events.empty() && !events.front().options.impaired() &&
      events.front().options.asymmetry == 0.0) {
    events.erase(events.begin());
  }
  return events;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

const std::vector<FaultEvent>& FaultInjector::install(SyncNetwork& net,
                                                      std::int64_t horizon,
                                                      ProcessFactory factory) {
  if (plan_.has_recoveries() && !factory) {
    throw std::invalid_argument(
        "FaultInjector: churn plans need a process factory for rejoins");
  }
  schedule_ = compile_fault_plan(plan_, net.graph(), net.udg(), horizon, seed_);
  for (const FaultEvent& e : schedule_) {
    if (e.recover) {
      net.schedule_recovery(e.node, e.round, factory(e.node));
    } else {
      net.schedule_crash(e.node, e.round);
    }
  }
  // Link faults: the channel's decision hash gets its own stream (seed_ is
  // already consumed by the crash components' RNG split).
  channel_schedule_ = compile_channel_schedule(plan_, horizon, seed_ ^ 0xC4A27E1ull);
  for (const ChannelEvent& e : channel_schedule_) {
    net.schedule_channel(e.round, e.options);
  }
  if (obs::Plane* pl = net.observability(); pl != nullptr) {
    pl->metrics().add(pl->builtin().scheduled_crashes, crash_count());
    pl->metrics().add(pl->builtin().scheduled_recoveries, recovery_count());
    obs::TraceEvent e;
    e.round = net.round();
    e.category = obs::Category::kFault;
    e.severity = obs::Severity::kInfo;
    e.name = pl->builtin().n_fault_plan;
    e.a0 = crash_count();
    e.a1 = recovery_count();
    pl->trace().emit(e);
  }
  return schedule_;
}

const std::vector<FaultEvent>& FaultInjector::install(AsyncNetwork& net,
                                                      std::int64_t horizon) {
  if (plan_.has_recoveries()) {
    throw std::invalid_argument(
        "FaultInjector: the asynchronous executor does not support rejoins");
  }
  if (plan_.has_link_faults()) {
    throw std::invalid_argument(
        "FaultInjector: the asynchronous executor takes a single channel mix "
        "via AsyncNetwork::set_channel, not a round-keyed link-fault plan");
  }
  schedule_ = compile_fault_plan(plan_, net.graph(), net.udg(), horizon, seed_);
  channel_schedule_.clear();
  for (const FaultEvent& e : schedule_) {
    net.schedule_crash(e.node, e.round);
  }
  return schedule_;
}

std::int64_t FaultInjector::crash_count() const noexcept {
  return static_cast<std::int64_t>(
      std::count_if(schedule_.begin(), schedule_.end(),
                    [](const FaultEvent& e) { return !e.recover; }));
}

std::int64_t FaultInjector::recovery_count() const noexcept {
  return static_cast<std::int64_t>(schedule_.size()) - crash_count();
}

}  // namespace ftc::sim
