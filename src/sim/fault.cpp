#include "sim/fault.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace ftc::sim {

using graph::NodeId;

FaultPlan FaultPlan::none() { return {}; }

FaultPlan FaultPlan::crashes_at(
    std::vector<std::pair<std::int64_t, NodeId>> when) {
  FaultPlan plan;
  Component c;
  c.kind = Kind::kExplicit;
  c.schedule = std::move(when);
  plan.components_.push_back(std::move(c));
  return plan;
}

FaultPlan FaultPlan::iid_crashes(double rate, std::int64_t from,
                                 std::int64_t until) {
  assert(rate >= 0.0 && rate <= 1.0);
  FaultPlan plan;
  Component c;
  c.kind = Kind::kIid;
  c.rate = rate;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::targeted_by_degree(NodeId count, std::int64_t round) {
  FaultPlan plan;
  Component c;
  c.kind = Kind::kTargeted;
  c.count = count;
  c.round = round;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::region(geom::Point center, double radius,
                            std::int64_t round) {
  FaultPlan plan;
  Component c;
  c.kind = Kind::kRegion;
  c.center = center;
  c.radius = radius;
  c.round = round;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::churn(double rate, std::int64_t min_downtime,
                           std::int64_t max_downtime, std::int64_t from,
                           std::int64_t until) {
  assert(rate >= 0.0 && rate <= 1.0);
  assert(min_downtime >= 1 && max_downtime >= min_downtime);
  FaultPlan plan;
  Component c;
  c.kind = Kind::kChurn;
  c.rate = rate;
  c.min_downtime = min_downtime;
  c.max_downtime = max_downtime;
  c.from = from;
  c.until = until;
  plan.components_.push_back(c);
  return plan;
}

FaultPlan FaultPlan::then(FaultPlan other) const {
  FaultPlan combined = *this;
  for (auto& c : other.components_) {
    combined.components_.push_back(std::move(c));
  }
  return combined;
}

bool FaultPlan::has_recoveries() const noexcept {
  return std::any_of(components_.begin(), components_.end(),
                     [](const Component& c) { return c.kind == Kind::kChurn; });
}

std::vector<FaultEvent> compile_fault_plan(const FaultPlan& plan,
                                           const graph::Graph& g,
                                           const geom::UnitDiskGraph* udg,
                                           std::int64_t horizon,
                                           std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.n());
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<FaultEvent> events;
  std::map<std::int64_t, std::vector<NodeId>> pending_recoveries;

  // One independent stream per randomized component, so adding a component
  // never perturbs the draws of the others.
  const util::Rng root(seed);
  std::vector<util::Rng> rngs;
  rngs.reserve(plan.components_.size());
  for (std::size_t i = 0; i < plan.components_.size(); ++i) {
    rngs.push_back(root.split(i));
  }

  std::vector<std::uint8_t> rejoined_this_round(n, 0);
  for (std::int64_t r = 0; r < horizon; ++r) {
    // Rejoins first: a node that comes back at round r executes at least
    // one round before any component may kill it again (the per-node
    // alternating-events invariant the installer relies on).
    std::fill(rejoined_this_round.begin(), rejoined_this_round.end(), 0);
    if (const auto it = pending_recoveries.find(r);
        it != pending_recoveries.end()) {
      for (NodeId v : it->second) {
        alive[static_cast<std::size_t>(v)] = 1;
        rejoined_this_round[static_cast<std::size_t>(v)] = 1;
        events.push_back({r, v, true});
      }
      pending_recoveries.erase(it);
    }

    auto kill = [&](NodeId v, const FaultPlan::Component& c, util::Rng& rng) {
      const auto vi = static_cast<std::size_t>(v);
      if (!alive[vi] || rejoined_this_round[vi]) return;
      alive[vi] = 0;
      events.push_back({r, v, false});
      if (c.kind == FaultPlan::Kind::kChurn) {
        const std::int64_t down = rng.uniform_i64(c.min_downtime,
                                                  c.max_downtime);
        if (r + down < horizon) pending_recoveries[r + down].push_back(v);
      }
    };

    for (std::size_t ci = 0; ci < plan.components_.size(); ++ci) {
      const auto& c = plan.components_[ci];
      util::Rng& rng = rngs[ci];
      switch (c.kind) {
        case FaultPlan::Kind::kExplicit:
          for (const auto& [round, v] : c.schedule) {
            if (round == r) kill(v, c, rng);
          }
          break;
        case FaultPlan::Kind::kIid:
        case FaultPlan::Kind::kChurn:
          if (r >= c.from && r < c.until && c.rate > 0.0) {
            for (NodeId v = 0; v < g.n(); ++v) {
              // Draw for every node regardless of liveness so the stream
              // stays aligned across plans with different victims.
              const bool hit = rng.bernoulli(c.rate);
              if (hit) kill(v, c, rng);
            }
          }
          break;
        case FaultPlan::Kind::kTargeted:
          if (c.round == r) {
            std::vector<NodeId> order;
            for (NodeId v = 0; v < g.n(); ++v) {
              if (alive[static_cast<std::size_t>(v)] &&
                  !rejoined_this_round[static_cast<std::size_t>(v)]) {
                order.push_back(v);
              }
            }
            std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
              if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
              return a < b;
            });
            const auto take = std::min<std::size_t>(
                order.size(), static_cast<std::size_t>(std::max<NodeId>(c.count, 0)));
            for (std::size_t i = 0; i < take; ++i) kill(order[i], c, rng);
          }
          break;
        case FaultPlan::Kind::kRegion:
          if (c.round == r) {
            if (udg == nullptr) {
              throw std::invalid_argument(
                  "compile_fault_plan: region component needs a UDG embedding");
            }
            for (NodeId v = 0; v < g.n(); ++v) {
              if (geom::dist(udg->positions[static_cast<std::size_t>(v)],
                             c.center) <= c.radius) {
                kill(v, c, rng);
              }
            }
          }
          break;
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.round != b.round) return a.round < b.round;
              if (a.recover != b.recover) return !a.recover;  // crashes first
              return a.node < b.node;
            });
  return events;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

const std::vector<FaultEvent>& FaultInjector::install(SyncNetwork& net,
                                                      std::int64_t horizon,
                                                      ProcessFactory factory) {
  if (plan_.has_recoveries() && !factory) {
    throw std::invalid_argument(
        "FaultInjector: churn plans need a process factory for rejoins");
  }
  schedule_ = compile_fault_plan(plan_, net.graph(), net.udg(), horizon, seed_);
  for (const FaultEvent& e : schedule_) {
    if (e.recover) {
      net.schedule_recovery(e.node, e.round, factory(e.node));
    } else {
      net.schedule_crash(e.node, e.round);
    }
  }
  if (obs::Plane* pl = net.observability(); pl != nullptr) {
    pl->metrics().add(pl->builtin().scheduled_crashes, crash_count());
    pl->metrics().add(pl->builtin().scheduled_recoveries, recovery_count());
    obs::TraceEvent e;
    e.round = net.round();
    e.category = obs::Category::kFault;
    e.severity = obs::Severity::kInfo;
    e.name = pl->builtin().n_fault_plan;
    e.a0 = crash_count();
    e.a1 = recovery_count();
    pl->trace().emit(e);
  }
  return schedule_;
}

const std::vector<FaultEvent>& FaultInjector::install(AsyncNetwork& net,
                                                      std::int64_t horizon) {
  if (plan_.has_recoveries()) {
    throw std::invalid_argument(
        "FaultInjector: the asynchronous executor does not support rejoins");
  }
  schedule_ = compile_fault_plan(plan_, net.graph(), net.udg(), horizon, seed_);
  for (const FaultEvent& e : schedule_) {
    net.schedule_crash(e.node, e.round);
  }
  return schedule_;
}

std::int64_t FaultInjector::crash_count() const noexcept {
  return static_cast<std::int64_t>(
      std::count_if(schedule_.begin(), schedule_.end(),
                    [](const FaultEvent& e) { return !e.recover; }));
}

std::int64_t FaultInjector::recovery_count() const noexcept {
  return static_cast<std::int64_t>(schedule_.size()) - crash_count();
}

}  // namespace ftc::sim
