#include "sim/transport.h"

#include <algorithm>
#include <cassert>

namespace ftc::sim {

using graph::NodeId;

ReliableTransport::ReliableTransport() : ReliableTransport(TransportOptions{}) {}

ReliableTransport::ReliableTransport(TransportOptions options)
    : options_(options) {
  assert(options_.initial_backoff >= 1);
  assert(options_.max_backoff >= options_.initial_backoff);
}

void ReliableTransport::ensure_init(Context& ctx) {
  if (initialized_) return;
  initialized_ = true;
  const auto nbrs = ctx.neighbors();
  neighbors_.assign(nbrs.begin(), nbrs.end());
  links_.assign(neighbors_.size(), Link{});
}

std::size_t ReliableTransport::index_of(NodeId w) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), w);
  assert(it != neighbors_.end() && *it == w &&
         "ReliableTransport: not a neighbor");
  return static_cast<std::size_t>(it - neighbors_.begin());
}

void ReliableTransport::enqueue(Link& link, std::span<const Word> words) {
  if (spare_.empty()) spare_.emplace_back();
  Pending p = std::move(spare_.back());
  spare_.pop_back();
  p.seq = link.next_seq++;
  p.words.assign(words.begin(), words.end());
  link.queue.push_back(std::move(p));
}

void ReliableTransport::send(Context& ctx, NodeId to,
                             std::span<const Word> words) {
  ensure_init(ctx);
  enqueue(links_[index_of(to)], words);
}

void ReliableTransport::broadcast(Context& ctx, std::span<const Word> words) {
  ensure_init(ctx);
  for (Link& link : links_) enqueue(link, words);
}

void ReliableTransport::ingest(Context& ctx, const Message& msg) {
  ensure_init(ctx);
  assert(msg.words.size() >= 2 && "ReliableTransport: malformed frame");
  Link& link = links_[index_of(msg.from)];
  const Word ack = msg.words[0];
  const Word seq = msg.words[1];

  if (ack > link.acked) {
    link.acked = ack;
    // Cumulative: everything below the ack is done. Stop-and-wait keeps at
    // most the head in flight, but the loop form stays correct regardless.
    while (!link.queue.empty() && link.queue.front().seq < ack) {
      spare_.push_back(std::move(link.queue.front()));
      link.queue.erase(link.queue.begin());
      link.head_sent = false;
      link.backoff = 0;
      link.resend_round = -1;
    }
  }

  if (seq < 0) return;  // bare ack
  obs::Recorder* const rec = ctx.obs();
  if (seq == link.expected) {
    if (released_count_ == released_.size()) released_.emplace_back();
    Delivery& d = released_[released_count_++];
    d.from = msg.from;
    d.words.assign(msg.words.begin() + 2, msg.words.end());
    link.expected += 1;
    link.ack_owed = true;
    ++delivered_;
  } else {
    // A retransmitted or channel-duplicated copy of an already-delivered
    // payload (stop-and-wait admits nothing ahead of the window). Re-ack so
    // a lost ack cannot stall the sender.
    ++duplicates_suppressed_;
    link.ack_owed = true;
    if (rec != nullptr) rec->count(rec->builtin().transport_dup_drops);
  }
}

std::span<const ReliableTransport::Delivery> ReliableTransport::collect() {
  const std::span<const Delivery> out(released_.data(), released_count_);
  released_count_ = 0;  // slots are recycled by the next ingest()
  return out;
}

std::span<const ReliableTransport::Delivery> ReliableTransport::receive(
    Context& ctx) {
  ensure_init(ctx);
  for (const Message& msg : ctx.inbox()) {
    ingest(ctx, msg);
  }
  return collect();
}

void ReliableTransport::flush(Context& ctx) {
  ensure_init(ctx);
  obs::Recorder* const rec = ctx.obs();
  for (std::size_t j = 0; j < neighbors_.size(); ++j) {
    Link& link = links_[j];
    if (!link.queue.empty() &&
        (!link.head_sent || ctx.round() >= link.resend_round)) {
      const Pending& head = link.queue.front();
      frame_.clear();
      frame_.push_back(link.expected);
      frame_.push_back(head.seq);
      frame_.insert(frame_.end(), head.words.begin(), head.words.end());
      ctx.send(neighbors_[j], frame_);
      if (link.head_sent) {
        ++retransmissions_;
        link.backoff = std::min(link.backoff * 2, options_.max_backoff);
        if (rec != nullptr) {
          rec->count(rec->builtin().transport_retransmissions);
        }
      } else {
        link.backoff = options_.initial_backoff;
        link.head_sent = true;
      }
      link.resend_round = ctx.round() + link.backoff;
      link.ack_owed = false;  // the data frame carries the ack
      ++frames_sent_;
      if (rec != nullptr) rec->count(rec->builtin().transport_frames);
    } else if (link.ack_owed) {
      ctx.send(neighbors_[j], {link.expected, Word{-1}});
      link.ack_owed = false;
      ++frames_sent_;
      if (rec != nullptr) {
        rec->count(rec->builtin().transport_frames);
        rec->count(rec->builtin().transport_acks);
      }
    }
  }
}

bool ReliableTransport::idle() const noexcept {
  for (const Link& link : links_) {
    if (!link.queue.empty() || link.ack_owed) return false;
  }
  return true;
}

std::int64_t ReliableTransport::backlog() const noexcept {
  std::int64_t total = 0;
  for (const Link& link : links_) {
    total += static_cast<std::int64_t>(link.queue.size());
  }
  return total;
}

}  // namespace ftc::sim
