#include "sim/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace ftc::sim {

using graph::NodeId;

namespace {

// Salts separating the independent decision streams per (link, round).
constexpr std::uint64_t kSaltLoss = 0x01;
constexpr std::uint64_t kSaltReorder = 0x02;
constexpr std::uint64_t kSaltDelay = 0x03;
constexpr std::uint64_t kSaltDup = 0x04;
constexpr std::uint64_t kSaltDupDelay = 0x05;
constexpr std::uint64_t kSaltBurst = 0x06;
constexpr std::uint64_t kSaltAsymmetry = 0x07;

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Rejects NaN and out-of-range probabilities. Drop probabilities must stay
/// strictly below 1 (a link that loses everything forever deadlocks every
/// retransmission scheme), so those pass allow_one = false.
void check_probability(const char* name, double p, bool allow_one) {
  const bool bad =
      std::isnan(p) || p < 0.0 || (allow_one ? p > 1.0 : p >= 1.0);
  if (bad) {
    throw std::invalid_argument(std::string("ChannelOptions: ") + name +
                                " must be in [0, " +
                                (allow_one ? "1]" : "1)") + ", got " +
                                std::to_string(p));
  }
}

std::uint64_t pack_link(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
}

}  // namespace

void ChannelOptions::validate() const {
  check_probability("loss", loss, false);
  check_probability("asymmetry", asymmetry, true);
  check_probability("duplicate", duplicate, true);
  check_probability("reorder", reorder, true);
  check_probability("burst_loss", burst_loss, false);
  check_probability("p_enter_burst", p_enter_burst, true);
  check_probability("p_exit_burst", p_exit_burst, true);
  if (p_enter_burst > 0.0 && burst_loss > 0.0 && p_exit_burst <= 0.0) {
    throw std::invalid_argument(
        "ChannelOptions: p_exit_burst must be > 0 when bursts are enabled "
        "(a burst must be able to end)");
  }
  if ((reorder > 0.0 || duplicate > 0.0) && max_reorder_delay < 1) {
    throw std::invalid_argument(
        "ChannelOptions: max_reorder_delay must be >= 1 when reordering or "
        "duplication is enabled, got " + std::to_string(max_reorder_delay));
  }
}

void Channel::set_options(const ChannelOptions& options,
                          std::int64_t epoch_round) {
  options.validate();
  options_ = options;
  epoch_ = epoch_round;
  burst_.clear();
}

double Channel::u01(NodeId from, NodeId to, std::int64_t round,
                    std::uint64_t salt) const noexcept {
  // Chained SplitMix64 over the identifying tuple: each input perturbs the
  // state, each splitmix64 call both advances and avalanches it. ~4 cheap
  // finalizer evaluations per decision; no state is retained.
  std::uint64_t state = options_.seed ^ (salt * kGolden);
  state ^= util::splitmix64(state) ^
           (static_cast<std::uint64_t>(static_cast<std::int64_t>(from)) *
            kGolden);
  state ^= util::splitmix64(state) ^
           (static_cast<std::uint64_t>(static_cast<std::int64_t>(to)) *
            kGolden);
  state ^= util::splitmix64(state) ^
           (static_cast<std::uint64_t>(round) * kGolden);
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double Channel::directed_loss(NodeId from, NodeId to) const noexcept {
  double p = options_.loss;
  if (p > 0.0 && options_.asymmetry > 0.0) {
    // Stable per-link factor in [1 - a, 1 + a]; round -1 keys the per-link
    // (round-independent) stream.
    const double s = 2.0 * u01(from, to, -1, kSaltAsymmetry) - 1.0;
    p *= 1.0 + options_.asymmetry * s;
  }
  return std::min(p, 0.999999);
}

bool Channel::in_burst(NodeId from, NodeId to, std::int64_t round,
                       BurstMap& burst) const {
  BurstState& st = burst[pack_link(from, to)];
  if (st.round < epoch_ - 1) {
    st.round = epoch_ - 1;  // chain starts in the good state at the epoch
    st.bursting = false;
  }
  while (st.round < round) {
    ++st.round;
    const double u = u01(from, to, st.round, kSaltBurst);
    st.bursting = st.bursting ? (u >= options_.p_exit_burst)
                              : (u < options_.p_enter_burst);
  }
  return st.bursting;
}

Channel::Fate Channel::decide_impl(NodeId from, NodeId to, std::int64_t round,
                                   BurstMap& burst,
                                   Counters& counters) const {
  Fate fate;
  double p_drop = directed_loss(from, to);
  if (options_.burst_loss > 0.0 && options_.p_enter_burst > 0.0 &&
      in_burst(from, to, round, burst)) {
    p_drop = std::max(p_drop, options_.burst_loss);
  }
  if (p_drop > 0.0 && u01(from, to, round, kSaltLoss) < p_drop) {
    fate.dropped = true;
    ++counters.dropped;
    return fate;
  }
  if (options_.reorder > 0.0 &&
      u01(from, to, round, kSaltReorder) < options_.reorder) {
    const double u = u01(from, to, round, kSaltDelay);
    fate.delay = 1 + static_cast<int>(u * options_.max_reorder_delay);
    fate.delay = std::min(fate.delay, options_.max_reorder_delay);
    ++counters.reordered;
  }
  if (options_.duplicate > 0.0 &&
      u01(from, to, round, kSaltDup) < options_.duplicate) {
    const double u = u01(from, to, round, kSaltDupDelay);
    // The copy lands in a strictly later round than the original so an
    // inbox never holds two identical same-round entries for one send.
    fate.duplicate = true;
    fate.dup_delay =
        fate.delay + 1 + static_cast<int>(u * options_.max_reorder_delay);
    fate.dup_delay =
        std::min(fate.dup_delay, fate.delay + options_.max_reorder_delay);
    ++counters.duplicated;
  }
  return fate;
}

Channel::Fate Channel::decide(NodeId from, NodeId to, std::int64_t round) {
  return decide_impl(from, to, round, burst_, counters_);
}

Channel::Fate Channel::decide(NodeId from, NodeId to, std::int64_t round,
                              ShardState& state) const {
  return decide_impl(from, to, round, state.burst, state.counters);
}

void Channel::absorb(ShardState& state) noexcept {
  counters_.dropped += state.counters.dropped;
  counters_.duplicated += state.counters.duplicated;
  counters_.reordered += state.counters.reordered;
  state.counters = Counters{};
}

}  // namespace ftc::sim
