#include "sim/heartbeat.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ftc::sim {

using graph::NodeId;

HeartbeatMonitor::HeartbeatMonitor() : HeartbeatMonitor(Options{}) {}

HeartbeatMonitor::HeartbeatMonitor(Options options) : options_(options) {
  assert(options_.window >= 0 && options_.window <= 63);
  assert(options_.misses_to_suspect >= 0 &&
         options_.misses_to_suspect <= options_.window);
  if (options_.window > 0 && options_.misses_to_suspect == 0) {
    options_.misses_to_suspect = options_.window;
  }
}

std::size_t HeartbeatMonitor::index_of(NodeId w) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), w);
  assert(it != neighbors_.end() && *it == w &&
         "HeartbeatMonitor: not a neighbor");
  return static_cast<std::size_t>(it - neighbors_.begin());
}

void HeartbeatMonitor::observe(Context& ctx) {
  if (!initialized_) {
    initialized_ = true;
    const auto nbrs = ctx.neighbors();
    neighbors_.assign(nbrs.begin(), nbrs.end());
    // Grace period: pretend everyone was heard the round before monitoring
    // started, so a neighbor dead from the very beginning is suspected
    // after the same timeout as one that dies later.
    last_heard_.assign(neighbors_.size(), ctx.round() - 1);
    suspected_.assign(neighbors_.size(), 0);
    // M-of-N grace: a full window of heard beats.
    heard_bits_.assign(neighbors_.size(), ~std::uint64_t{0});
  }

  obs::Recorder* const rec = ctx.obs();
  // A new observation slot opens for everyone; inbox senders fill theirs.
  for (std::uint64_t& bits : heard_bits_) bits <<= 1;
  for (const Message& msg : ctx.inbox()) {
    const std::size_t j = index_of(msg.from);
    last_heard_[j] = ctx.round();
    heard_bits_[j] |= 1;
    if (suspected_[j]) {
      suspected_[j] = 0;
      ++refuted_suspicions_;
      if (rec != nullptr) {
        rec->count(rec->builtin().refutations);
        rec->event(obs::Category::kDetector, obs::Severity::kInfo,
                   rec->builtin().n_refute, ctx.round(),
                   static_cast<std::int32_t>(ctx.self()), msg.from);
      }
    }
  }

  const bool windowed = options_.window > 0;
  const std::uint64_t mask =
      windowed ? ((std::uint64_t{1} << options_.window) - 1) : 0;
  for (std::size_t j = 0; j < neighbors_.size(); ++j) {
    if (suspected_[j]) continue;
    bool suspect;
    std::int64_t evidence;
    if (windowed) {
      // Suspect only from a silent round (bit 0 clear): hearing a beat is
      // direct evidence of life, whatever the miss history says.
      const int misses =
          options_.window -
          std::popcount(heard_bits_[j] & mask);
      suspect = (heard_bits_[j] & 1) == 0 &&
                misses >= options_.misses_to_suspect;
      evidence = misses;
    } else {
      suspect = ctx.round() - last_heard_[j] > options_.timeout;
      evidence = ctx.round() - last_heard_[j];
    }
    if (suspect) {
      suspected_[j] = 1;
      ++suspicions_raised_;
      if (rec != nullptr) {
        rec->count(rec->builtin().suspicions);
        rec->event(obs::Category::kDetector, obs::Severity::kInfo,
                   rec->builtin().n_suspect, ctx.round(),
                   static_cast<std::int32_t>(ctx.self()), neighbors_[j],
                   evidence);
      }
    }
  }
}

bool HeartbeatMonitor::suspects(NodeId w) const {
  assert(initialized_);
  return suspected_[index_of(w)] != 0;
}

std::vector<NodeId> HeartbeatMonitor::suspected() const {
  std::vector<NodeId> out;
  for (std::size_t j = 0; j < neighbors_.size(); ++j) {
    if (suspected_[j]) out.push_back(neighbors_[j]);
  }
  return out;
}

}  // namespace ftc::sim
