// Messages for the synchronous message-passing model (paper Section 3).
//
// The paper restricts messages to O(log n) bits, i.e. a constant number of
// "words" where one word holds a node identifier, a bounded counter, or a
// quantized numeric value. We model a message as a short sequence of 64-bit
// words and have the simulator account for the maximum words-per-message, so
// the experiments can verify each algorithm's O(log n)-bits claim (a
// constant word count).
//
// Payload storage is owned by the network, not by the Message: the
// synchronous engine writes every payload once into a per-round arena and
// hands processes WordSpan views into it (broadcasts share one payload
// across all receivers). A Message is therefore only valid for the duration
// of the `on_round()` call that delivered it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.h"

namespace ftc::sim {

/// One word of payload: models O(log n) bits.
using Word = std::int64_t;

/// Non-owning view of a message payload (a span with vector-flavored
/// accessors, so process code written against std::vector<Word> still
/// compiles). The referenced words live in the network's round arena.
class WordSpan {
 public:
  constexpr WordSpan() noexcept = default;
  constexpr WordSpan(const Word* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit WordSpan(const std::vector<Word>& words) noexcept
      : data_(words.data()), size_(words.size()) {}
  // A view over a temporary vector would dangle as soon as the full
  // expression ends; force callers to bind to an lvalue they keep alive.
  explicit WordSpan(std::vector<Word>&&) = delete;

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr const Word* data() const noexcept { return data_; }
  [[nodiscard]] constexpr const Word* begin() const noexcept { return data_; }
  [[nodiscard]] constexpr const Word* end() const noexcept {
    return data_ + size_;
  }
  [[nodiscard]] constexpr Word operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  /// Bounds-checked access, matching std::vector::at.
  [[nodiscard]] Word at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("WordSpan::at");
    return data_[i];
  }
  [[nodiscard]] Word front() const noexcept { return (*this)[0]; }
  [[nodiscard]] Word back() const noexcept { return (*this)[size_ - 1]; }

 private:
  const Word* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A delivered message. `from` is filled in by the network, not the sender.
/// Valid only during the on_round() call it was delivered to (the payload
/// view points into the network's round arena).
struct Message {
  graph::NodeId from = -1;
  WordSpan words;
};

/// Fixed-point encoding for fractional values carried in messages.
///
/// Algorithm 1 exchanges x-values in [0, 1 + (Δ+1)^{-q/t}]; a 2^-40
/// fixed-point representation keeps quantization error far below the 1e-9
/// feasibility epsilon used by the checkers while still fitting a word
/// (log n bits in any realistic deployment; the paper's O(log n) budget
/// allows any polynomially bounded value).
inline constexpr double kFixedPointScale = 1099511627776.0;  // 2^40

/// Quantizes a non-negative real to a fixed-point word (round to nearest).
[[nodiscard]] Word encode_fixed(double value) noexcept;

/// Inverse of encode_fixed.
[[nodiscard]] double decode_fixed(Word word) noexcept;

}  // namespace ftc::sim
