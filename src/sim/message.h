// Messages for the synchronous message-passing model (paper Section 3).
//
// The paper restricts messages to O(log n) bits, i.e. a constant number of
// "words" where one word holds a node identifier, a bounded counter, or a
// quantized numeric value. We model a message as a short vector of 64-bit
// words and have the simulator account for the maximum words-per-message, so
// the experiments can verify each algorithm's O(log n)-bits claim (a
// constant word count).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ftc::sim {

/// One word of payload: models O(log n) bits.
using Word = std::int64_t;

/// A message in flight. `from` is filled in by the network, not the sender.
struct Message {
  graph::NodeId from = -1;
  std::vector<Word> words;
};

/// Fixed-point encoding for fractional values carried in messages.
///
/// Algorithm 1 exchanges x-values in [0, 1 + (Δ+1)^{-q/t}]; a 2^-40
/// fixed-point representation keeps quantization error far below the 1e-9
/// feasibility epsilon used by the checkers while still fitting a word
/// (log n bits in any realistic deployment; the paper's O(log n) budget
/// allows any polynomially bounded value).
inline constexpr double kFixedPointScale = 1099511627776.0;  // 2^40

/// Quantizes a non-negative real to a fixed-point word (round to nearest).
[[nodiscard]] Word encode_fixed(double value) noexcept;

/// Inverse of encode_fixed.
[[nodiscard]] double decode_fixed(Word word) noexcept;

}  // namespace ftc::sim
