// Pluggable fault injection for the network simulators.
//
// The paper's premise is that k-fold domination buys tolerance against node
// failures; exercising that claim needs failure *processes*, not just
// hand-placed crashes. A FaultPlan describes such a process declaratively:
//
//   * iid_crashes    — every live node crashes independently with a fixed
//                      per-round probability (the memoryless baseline);
//   * targeted_by_degree — an adversary kills the highest-degree live nodes
//                      at a chosen round (clusterheads die first);
//   * region         — spatially correlated failure on a UDG deployment:
//                      every live node within a disk dies at once (power
//                      outage, jamming, physical damage);
//   * churn          — iid crashes where each victim later *rejoins* with
//                      reset process state after a random downtime;
//   * link faults    — windows of channel impairment (sim/channel.h): iid
//                      lossy_links, asymmetric_links, bursty_links
//                      (Gilbert–Elliott), duplicating_links, and
//                      reordering_links, each active over [from, until);
//   * composition    — plans combine additively via then().
//
// Plans are pure descriptions. compile_fault_plan() expands a plan into a
// deterministic, sorted FaultEvent schedule for a concrete (graph, horizon,
// seed) — the fault process depends only on its own randomness, never on
// protocol state, so the same schedule can drive either backend or feed an
// offline oracle (e.g. repair_after_failures). FaultInjector installs a
// compiled schedule into a SyncNetwork (crashes + recoveries) or an
// AsyncNetwork (crashes only: a rejoining node would need a new synchronizer
// identity, which the α-synchronizer does not model).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/async.h"
#include "sim/network.h"

namespace ftc::sim {

/// One fault event: node crashes or rejoins at the start of `round`.
struct FaultEvent {
  std::int64_t round = 0;
  graph::NodeId node = -1;
  bool recover = false;  ///< false = crash, true = rejoin (churn)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// One channel reconfiguration: the merged link-fault mix active from the
/// start of `round` (until the next event).
struct ChannelEvent {
  std::int64_t round = 0;
  ChannelOptions options;

  friend bool operator==(const ChannelEvent&, const ChannelEvent&) = default;
};

/// Declarative description of a failure process (see file comment). Build
/// via the static factories; combine via then(). Every factory validates
/// its arguments and throws std::invalid_argument on out-of-range
/// probabilities, empty target sets, or inverted parameter pairs — plans
/// are rejected at construction, never silently clamped.
class FaultPlan {
 public:
  /// The empty plan: no faults.
  static FaultPlan none();

  /// Explicit schedule: crash each (round, node) pair as given. Throws if
  /// `when` is empty (an explicit plan with no targets is a caller bug —
  /// use none() for the empty plan).
  static FaultPlan crashes_at(std::vector<std::pair<std::int64_t, graph::NodeId>> when);

  /// Every live node crashes independently with probability `rate` at the
  /// start of each round in [from, until).
  static FaultPlan iid_crashes(double rate, std::int64_t from = 0,
                               std::int64_t until =
                                   std::numeric_limits<std::int64_t>::max());

  /// Crashes the `count` highest-degree live nodes at the start of `round`
  /// (ties toward the smaller id) — the degree-targeting adversary. Throws
  /// if count < 1 (an adversary with no victims is a caller bug).
  static FaultPlan targeted_by_degree(graph::NodeId count, std::int64_t round);

  /// Crashes every live node within Euclidean distance `radius` of `center`
  /// at the start of `round`. Requires a UDG embedding at compile time.
  static FaultPlan region(geom::Point center, double radius,
                          std::int64_t round);

  /// Churn: every live node crashes independently with probability `rate`
  /// per round in [from, until) and rejoins after a uniform downtime in
  /// [min_downtime, max_downtime] rounds (both >= 1). Rejoined nodes are
  /// again subject to the plan.
  static FaultPlan churn(double rate, std::int64_t min_downtime,
                         std::int64_t max_downtime, std::int64_t from = 0,
                         std::int64_t until =
                             std::numeric_limits<std::int64_t>::max());

  // Link-fault families. Each describes a window [from, until) of channel
  // impairment; overlapping windows merge (independent loss sources
  // combine as 1 - Π(1 - pᵢ), bounds take the max). until <= from is an
  // empty window (legal — it keeps case shrinkers simple).

  /// Symmetric iid loss at `rate` on every link.
  static FaultPlan lossy_links(double rate, std::int64_t from = 0,
                               std::int64_t until =
                                   std::numeric_limits<std::int64_t>::max());

  /// Iid loss at `rate` spread per directed link by `asymmetry` ∈ [0, 1]
  /// (each direction gets a stable factor in [1 - a, 1 + a]).
  static FaultPlan asymmetric_links(double rate, double asymmetry,
                                    std::int64_t from = 0,
                                    std::int64_t until =
                                        std::numeric_limits<std::int64_t>::max());

  /// Gilbert–Elliott burst loss: links enter a burst with per-round
  /// probability `p_enter`, drop at `burst_loss` while bursting, and exit
  /// with per-round probability `p_exit` (> 0).
  static FaultPlan bursty_links(double burst_loss, double p_enter,
                                double p_exit, std::int64_t from = 0,
                                std::int64_t until =
                                    std::numeric_limits<std::int64_t>::max());

  /// Each delivered message is duplicated with probability `rate`.
  static FaultPlan duplicating_links(double rate, std::int64_t from = 0,
                                     std::int64_t until =
                                         std::numeric_limits<std::int64_t>::max());

  /// Each delivery is delayed by 1..max_delay rounds with probability
  /// `rate` (newer messages overtake it). max_delay >= 1.
  static FaultPlan reordering_links(double rate, int max_delay,
                                    std::int64_t from = 0,
                                    std::int64_t until =
                                        std::numeric_limits<std::int64_t>::max());

  /// Additive composition: this plan plus `other` run concurrently.
  [[nodiscard]] FaultPlan then(FaultPlan other) const;

  /// True if the plan can generate recovery events (any churn component).
  [[nodiscard]] bool has_recoveries() const noexcept;

  /// True if the plan contains any link-fault component.
  [[nodiscard]] bool has_link_faults() const noexcept;

 private:
  friend std::vector<FaultEvent> compile_fault_plan(const FaultPlan&,
                                                    const graph::Graph&,
                                                    const geom::UnitDiskGraph*,
                                                    std::int64_t,
                                                    std::uint64_t);
  friend std::vector<ChannelEvent> compile_channel_schedule(const FaultPlan&,
                                                            std::int64_t,
                                                            std::uint64_t);
  enum class Kind {
    kExplicit,
    kIid,
    kTargeted,
    kRegion,
    kChurn,
    kLossyLinks,
    kBurstyLinks,
    kDuplicatingLinks,
    kReorderingLinks,
  };
  struct Component {
    Kind kind = Kind::kExplicit;
    std::vector<std::pair<std::int64_t, graph::NodeId>> schedule;  // kExplicit
    double rate = 0.0;                  // kIid, kChurn, k*Links
    std::int64_t from = 0;              // kIid, kChurn, k*Links
    std::int64_t until = 0;             // kIid, kChurn, k*Links
    std::int64_t min_downtime = 1;      // kChurn
    std::int64_t max_downtime = 1;      // kChurn
    graph::NodeId count = 0;            // kTargeted
    std::int64_t round = 0;             // kTargeted, kRegion
    geom::Point center{};               // kRegion
    double radius = 0.0;                // kRegion
    double asymmetry = 0.0;             // kLossyLinks
    double burst_enter = 0.0;           // kBurstyLinks
    double burst_exit = 0.5;            // kBurstyLinks
    int max_delay = 2;                  // kReorderingLinks
  };
  [[nodiscard]] bool is_link_kind(Kind k) const noexcept;
  std::vector<Component> components_;
};

/// Expands `plan` over rounds [0, horizon) into a deterministic event
/// schedule, sorted by (round, recover-last, node). `udg` may be nullptr
/// unless the plan contains a region component (throws std::invalid_argument
/// otherwise). A node is never crashed while down nor recovered while up;
/// same-node events are at least one round apart. Randomized components draw
/// from streams derived from `seed` only.
[[nodiscard]] std::vector<FaultEvent> compile_fault_plan(
    const FaultPlan& plan, const graph::Graph& g,
    const geom::UnitDiskGraph* udg, std::int64_t horizon, std::uint64_t seed);

/// Expands the plan's link-fault components over [0, horizon) into a
/// sorted channel-reconfiguration schedule: one ChannelEvent per round
/// where the active impairment mix changes (including the event restoring
/// a clean channel when the last window closes). Overlapping windows
/// merge — independent loss/duplication/reordering rates combine as
/// 1 - Π(1 - pᵢ), asymmetry/burst intensities/delays take the max, burst
/// exit takes the min. Returns empty when the plan has no link faults.
/// `seed` keys the channel's stateless decision hash.
[[nodiscard]] std::vector<ChannelEvent> compile_channel_schedule(
    const FaultPlan& plan, std::int64_t horizon, std::uint64_t seed);

/// Compiles a plan and installs the resulting schedule into a network.
class FaultInjector {
 public:
  /// Builds the process a rejoining node boots with (reset state).
  using ProcessFactory =
      std::function<std::unique_ptr<Process>(graph::NodeId)>;

  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Compiles against net's topology over [0, horizon) and installs every
  /// event as a scheduled crash/recovery, plus every link-fault window as a
  /// scheduled channel reconfiguration. `factory` is required when the plan
  /// has recoveries (throws std::invalid_argument if missing). Returns the
  /// installed crash/recovery schedule.
  const std::vector<FaultEvent>& install(SyncNetwork& net,
                                         std::int64_t horizon,
                                         ProcessFactory factory = nullptr);

  /// Async variant: rounds map 1:1 to pulses. Crash-only — throws
  /// std::invalid_argument if the plan has recoveries or link faults (the
  /// async executor takes a single channel mix via set_channel instead of
  /// a round-keyed schedule).
  const std::vector<FaultEvent>& install(AsyncNetwork& net,
                                         std::int64_t horizon);

  /// The schedule produced by the last install() (empty before).
  [[nodiscard]] const std::vector<FaultEvent>& schedule() const noexcept {
    return schedule_;
  }

  /// The channel schedule installed by the last SyncNetwork install().
  [[nodiscard]] const std::vector<ChannelEvent>& channel_schedule()
      const noexcept {
    return channel_schedule_;
  }

  /// Crash / recovery event counts in the last compiled schedule.
  [[nodiscard]] std::int64_t crash_count() const noexcept;
  [[nodiscard]] std::int64_t recovery_count() const noexcept;

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
  std::vector<FaultEvent> schedule_;
  std::vector<ChannelEvent> channel_schedule_;
};

}  // namespace ftc::sim
