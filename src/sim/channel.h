// Per-link unreliable-channel models for the network simulators.
//
// The paper targets sensor deployments where the radio — not the node — is
// the flaky part. This module factors every link-level impairment the
// simulators support into one declarative description (ChannelOptions) and
// one decision engine (Channel):
//
//   * iid loss        — every delivery is dropped independently (the classic
//                       packet-erasure channel; set_message_loss sugar);
//   * asymmetric loss — each directed link gets a stable per-link loss
//                       factor, so A→B and B→A can differ (real radios are
//                       rarely symmetric);
//   * burst loss      — a two-state Gilbert–Elliott chain per directed link:
//                       links flip between a good state (iid loss applies)
//                       and a burst state with its own, higher, drop rate;
//   * duplication     — a delivered message may arrive again in a strictly
//                       later round;
//   * bounded reorder — a delivery may be delayed by up to max_reorder_delay
//                       rounds, letting newer messages overtake it.
//
// Determinism contract: every decision is a pure function of
// (options.seed, from, to, send round) computed by stateless hashing — no
// sequential RNG stream is consumed. The synchronous model admits at most
// one message per directed link per round, so the tuple uniquely identifies
// a transmission and the verdict is independent of delivery order, thread
// count, and of which other messages exist. The Gilbert–Elliott state is a
// per-link Markov chain, but each step's coin is the same stateless hash of
// (link, round), so the state at round r is itself a pure function of
// (seed, link, r) — the cached state in `burst_` is only an incremental
// evaluation of that function.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"

namespace ftc::sim {

/// Declarative description of a link impairment mix. Default-constructed
/// options describe a clean channel (impaired() == false). Validation is
/// strict: out-of-range probabilities throw instead of clamping silently.
struct ChannelOptions {
  /// Baseline iid drop probability per delivery, in [0, 1).
  double loss = 0.0;
  /// Per-directed-link loss spread in [0, 1]: link (u, v) drops with
  /// probability loss * (1 + asymmetry * s) for a stable per-link
  /// s ∈ [-1, 1], so forward and reverse rates differ. 0 = symmetric.
  double asymmetry = 0.0;
  /// Probability a delivered message is duplicated, in [0, 1]. The copy
  /// arrives 1..max_reorder_delay rounds after the original.
  double duplicate = 0.0;
  /// Probability a delivery is delayed (reordered), in [0, 1].
  double reorder = 0.0;
  /// Maximum extra rounds a delayed (or duplicated) delivery waits; >= 1
  /// whenever reorder > 0 or duplicate > 0.
  int max_reorder_delay = 2;
  /// Drop probability while a link's Gilbert–Elliott chain is bursting,
  /// in [0, 1). Effective only when p_enter_burst > 0.
  double burst_loss = 0.0;
  /// Per-round good→burst transition probability, in [0, 1].
  double p_enter_burst = 0.0;
  /// Per-round burst→good transition probability, in (0, 1].
  double p_exit_burst = 0.5;
  /// Seed of the stateless decision hash. Independent of process streams.
  std::uint64_t seed = 0x10551055ULL;

  /// True when any impairment can actually fire.
  [[nodiscard]] bool impaired() const noexcept {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           (burst_loss > 0.0 && p_enter_burst > 0.0);
  }

  /// Throws std::invalid_argument naming the offending field when any
  /// probability is NaN/out of range or max_reorder_delay is non-positive
  /// while reordering/duplication is enabled.
  void validate() const;

  friend bool operator==(const ChannelOptions&,
                         const ChannelOptions&) = default;
};

/// Decision engine for one network. Owns the per-link burst chains and the
/// impairment counters; the verdict for a transmission is returned as a
/// Fate and the caller (the network) implements it.
class Channel {
 public:
  /// Verdict for the unique message on directed link from→to in a round.
  struct Fate {
    bool dropped = false;  ///< lost; nothing else applies
    int delay = 0;         ///< extra rounds before delivery (0 = on time)
    bool duplicate = false;
    int dup_delay = 0;     ///< extra rounds for the duplicate copy (>= 1)
  };

  struct Counters {
    std::int64_t dropped = 0;     ///< messages lost (iid + asymmetry + burst)
    std::int64_t duplicated = 0;  ///< extra copies created
    std::int64_t reordered = 0;   ///< deliveries delayed

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  struct BurstState {
    std::int64_t round = -1;  ///< chain evaluated through this round
    bool bursting = false;
  };
  using BurstMap = std::unordered_map<std::uint64_t, BurstState>;  // by link

  /// Private decision state for one parallel delivery shard. Because every
  /// verdict is a pure function of (options, link, round), a per-shard burst
  /// cache is only a private memoization of the same function the global
  /// cache evaluates — shards may decide concurrently without sharing state,
  /// and the results are identical to any other shard assignment. The
  /// counters accumulate shard-locally and are folded into the channel's
  /// global counters (an order-independent sum) via absorb() at the round
  /// barrier.
  struct ShardState {
    BurstMap burst;
    Counters counters;

    /// Invalidates the memoized burst chains (required when the options
    /// change; counters are zeroed too — callers absorb them every round,
    /// so nothing is pending between rounds).
    void clear() {
      burst.clear();
      counters = Counters{};
    }
  };

  Channel() = default;
  explicit Channel(const ChannelOptions& options) { set_options(options, 0); }

  /// Replaces the options (validating them). `epoch_round` restarts every
  /// burst chain in the good state as of that round, which keeps mid-run
  /// reconfiguration (schedule_channel) deterministic. Counters persist.
  /// Callers holding ShardStates must clear() them — their burst caches
  /// memoize the old options.
  void set_options(const ChannelOptions& options, std::int64_t epoch_round);

  [[nodiscard]] const ChannelOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] bool impaired() const noexcept { return options_.impaired(); }

  /// Decides the fate of the message sent on from→to in `round`. Pure in
  /// (options, from, to, round) — see the determinism contract above.
  /// Updates the global counters.
  [[nodiscard]] Fate decide(graph::NodeId from, graph::NodeId to,
                            std::int64_t round);

  /// Same verdict, computed against a caller-owned ShardState: safe to call
  /// concurrently from distinct shards. Counts into state.counters.
  [[nodiscard]] Fate decide(graph::NodeId from, graph::NodeId to,
                            std::int64_t round, ShardState& state) const;

  /// Folds a shard's counters into the global counters and zeroes them.
  /// The shard's burst cache is kept (it stays a valid memoization).
  void absorb(ShardState& state) noexcept;

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  /// Stateless hash of (seed, from, to, round, salt) to a double in [0, 1).
  [[nodiscard]] double u01(graph::NodeId from, graph::NodeId to,
                           std::int64_t round,
                           std::uint64_t salt) const noexcept;

  /// Effective iid loss of the directed link (asymmetry applied), < 1.
  [[nodiscard]] double directed_loss(graph::NodeId from,
                                     graph::NodeId to) const noexcept;

  /// Gilbert–Elliott state of from→to at `round`, evaluated incrementally
  /// in the supplied cache.
  [[nodiscard]] bool in_burst(graph::NodeId from, graph::NodeId to,
                              std::int64_t round, BurstMap& burst) const;

  /// Shared implementation of both decide overloads.
  [[nodiscard]] Fate decide_impl(graph::NodeId from, graph::NodeId to,
                                 std::int64_t round, BurstMap& burst,
                                 Counters& counters) const;

  ChannelOptions options_;
  std::int64_t epoch_ = 0;  ///< burst chains start good at this round
  BurstMap burst_;
  Counters counters_;
};

}  // namespace ftc::sim
