// Asynchronous execution of synchronous algorithms via an α-synchronizer.
//
// The paper's model section notes (citing Awerbuch, JACM 1985) that "at the
// cost of higher message complexity, every synchronous message passing
// algorithm can be turned into an asynchronous algorithm with the same time
// complexity". This module implements that transformation so the library's
// algorithms run unmodified over links with arbitrary (bounded, per-message
// random) delays:
//
//  * Every payload message is enveloped with its sender's pulse number.
//  * In every pulse, the synchronizer sends an envelope to EVERY neighbor —
//    the process's payload where it sent one, an empty marker otherwise —
//    so receivers can detect pulse completion.
//  * A node advances to pulse p+1 once it holds an envelope tagged p from
//    every neighbor that has not announced termination at a pulse < p.
//  * When its process halts after pulse p, a node broadcasts a final
//    HALT(p) envelope; neighbors then stop waiting for its future pulses.
//
// Correctness: a node executes pulse p with exactly the pulse-(p-1) payload
// messages a synchronous round-p execution would deliver, so for equal
// seeds the asynchronous run computes bit-identical results to
// SyncNetwork — asserted by the test suite for all three algorithms.
//
// Cost: the virtual completion time is O(rounds × max link delay) and the
// envelope overhead is one message per edge direction per pulse, matching
// the α-synchronizer's O(|E|) per-pulse message complexity.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "sim/network.h"
#include "util/rng.h"

namespace ftc::sim {

/// Link-delay model and bookkeeping knobs for the asynchronous executor.
struct AsyncOptions {
  /// Inclusive bounds of the uniform per-message delay (virtual time units).
  std::int64_t min_delay = 1;
  std::int64_t max_delay = 8;

  /// Seed of the delay randomness (independent of the per-node process
  /// streams, which derive from the network seed exactly as in SyncNetwork).
  std::uint64_t delay_seed = 0xA5A5A5A5ULL;
};

/// Statistics of an asynchronous run.
struct AsyncMetrics {
  std::int64_t pulses = 0;            ///< highest pulse executed + 1
  std::int64_t virtual_time = 0;      ///< completion time in delay units
  std::int64_t envelopes_sent = 0;    ///< payload + marker + halt envelopes
  std::int64_t payload_messages = 0;  ///< envelopes carrying process payload
  std::int64_t payload_words = 0;     ///< total payload words
  std::int64_t max_message_words = 0; ///< largest payload
  std::int64_t payloads_dropped = 0;  ///< payloads lost to the channel model
  std::int64_t payloads_duplicated = 0;  ///< extra copies the channel created
};

/// Event-driven asynchronous network running one Process per node under an
/// α-synchronizer. API mirrors SyncNetwork where it can.
class AsyncNetwork final : public NetworkBackend {
 public:
  /// Builds an asynchronous network over `g`. `seed` derives per-node
  /// process randomness identically to SyncNetwork(g, seed), which is what
  /// makes sync/async output equality testable.
  AsyncNetwork(const graph::Graph& g, std::uint64_t seed,
               const AsyncOptions& options = {});

  /// UDG overload enabling distance sensing. Must outlive the network.
  AsyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed,
               const AsyncOptions& options = {});

  AsyncNetwork(const AsyncNetwork&) = delete;
  AsyncNetwork& operator=(const AsyncNetwork&) = delete;

  /// Installs the process for node v.
  void set_process(graph::NodeId v, std::unique_ptr<Process> process);

  /// Installs one process per node, built by `factory(v)`.
  template <typename Factory>
  void set_all_processes(Factory&& factory) {
    for (graph::NodeId v = 0; v < graph_->n(); ++v) {
      set_process(v, factory(v));
    }
  }

  /// Runs the event loop until every process has halted or some node would
  /// exceed `max_pulses`. Returns the number of pulses executed by the
  /// slowest node.
  std::int64_t run(std::int64_t max_pulses);

  /// Schedules a fail-stop crash of v: it executes pulses < `pulse` and
  /// then never again. The model is fail-stop with link-layer detection
  /// (lost carrier): when the crash takes effect the transport announces
  /// v's termination to its neighbors — after the usual random delivery
  /// delay — so the synchronizer stops waiting for v's future pulses
  /// instead of deadlocking. Envelopes v sent before crashing still
  /// deliver. Repeated or past-pulse schedules keep the earliest pulse;
  /// `pulse <= 0` crashes v before it executes anything. Call before run().
  void schedule_crash(graph::NodeId v, std::int64_t pulse);

  /// True if v's crash has taken effect (it will execute no more pulses).
  [[nodiscard]] bool crashed(graph::NodeId v) const noexcept;

  /// The process at node v, downcast to T.
  template <typename T>
  [[nodiscard]] T& process_as(graph::NodeId v) {
    auto* p = dynamic_cast<T*>(processes_[static_cast<std::size_t>(v)].get());
    assert(p != nullptr && "process_as: wrong process type");
    return *p;
  }

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Embedding, or nullptr when built from a plain graph.
  [[nodiscard]] const geom::UnitDiskGraph* udg() const noexcept { return udg_; }

  [[nodiscard]] const AsyncMetrics& metrics() const noexcept {
    return metrics_;
  }

  /// Attaches an observability plane (obs/plane.h); nullptr detaches. The
  /// asynchronous executor is single-threaded, so counters publish directly
  /// (no shard staging). The plane must outlive the network.
  void set_observability(obs::Plane* plane) noexcept { plane_ = plane; }
  [[nodiscard]] obs::Plane* observability() const noexcept { return plane_; }

  /// Installs a link-impairment model applied at the payload level: a lost
  /// payload degrades to an empty synchronizer marker (the α-synchronizer
  /// must still observe the pulse or it would deadlock), a duplicated
  /// payload arrives as a second, non-counting copy, and a reordered
  /// payload picks up extra link delay. Decisions are stateless hashes of
  /// (seed, link, sender pulse), mirroring SyncNetwork::set_channel. Call
  /// before run(). Throws std::invalid_argument on invalid options.
  void set_channel(const ChannelOptions& options);

  /// The active channel model (counters included).
  [[nodiscard]] const Channel& channel() const noexcept { return channel_; }

 private:
  // NetworkBackend:
  [[nodiscard]] const graph::Graph& backend_graph() const noexcept override {
    return *graph_;
  }
  [[nodiscard]] const geom::UnitDiskGraph* backend_udg()
      const noexcept override {
    return udg_;
  }
  void backend_send(graph::NodeId from, graph::NodeId to,
                    std::span<const Word> words) override;

  /// A payload buffered at the receiver until its pulse executes. Unlike
  /// the synchronous engine's arena-backed Message views, envelopes can sit
  /// across many virtual-time steps, so the words are owned here and only
  /// wrapped as Message views for the duration of the on_round() call.
  struct StoredMessage {
    graph::NodeId from = -1;
    std::vector<Word> words;
  };

  /// An envelope in flight or buffered at the receiver.
  struct Envelope {
    graph::NodeId from = -1;
    std::int64_t pulse = 0;
    bool has_payload = false;
    bool halt = false;   ///< sender terminates after `pulse`
    bool counts = true;  ///< counts toward pulse completion (false only for
                         ///< the extra halt marker that duplicates a payload)
    std::vector<Word> words;
  };

  struct DeliveryEvent {
    std::int64_t time = 0;
    std::uint64_t sequence = 0;  ///< FIFO tie-break for equal times
    graph::NodeId to = -1;
    Envelope envelope;
  };
  struct EventLater {
    bool operator()(const DeliveryEvent& a, const DeliveryEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  struct NodeState {
    std::int64_t pulse = 0;  ///< next pulse to execute
    bool halted = false;
    /// First pulse this node does NOT execute (fail-stop point); INT64_MAX
    /// when no crash is scheduled.
    std::int64_t crash_pulse = std::numeric_limits<std::int64_t>::max();
    bool crash_announced = false;  ///< halt markers already sent on v's links
    // Envelopes buffered per pulse tag (payloads only; markers counted).
    std::map<std::int64_t, std::vector<StoredMessage>> payload_by_pulse;
    std::map<std::int64_t, std::int64_t> envelopes_by_pulse;
    // halt_after[j-index] = last pulse neighbor j participates in.
    std::vector<std::int64_t> halt_after;
    // Payload the process sent during the current pulse (by neighbor index).
    std::vector<bool> sent_to;
  };

  /// True when node v holds pulse-(p-1) envelopes from every still-active
  /// neighbor (vacuously true for p = 0).
  [[nodiscard]] bool ready(graph::NodeId v) const;

  /// Runs node v's process for its next pulse at virtual time `now`.
  void execute_pulse(graph::NodeId v, std::int64_t now);

  /// If v's crash point has been reached and not yet announced, sends the
  /// link-layer halt markers to its neighbors at virtual time `now`.
  void announce_crash_if_due(graph::NodeId v, std::int64_t now);

  void deliver(const DeliveryEvent& event);

  /// Index of neighbor `j` in v's sorted neighbor list.
  [[nodiscard]] std::size_t neighbor_index(graph::NodeId v,
                                           graph::NodeId j) const;

  void send_envelope(graph::NodeId from, graph::NodeId to, Envelope env,
                     std::int64_t now, std::int64_t extra_delay = 0);

  const graph::Graph* graph_ = nullptr;
  const geom::UnitDiskGraph* udg_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<util::Rng> rngs_;
  std::vector<NodeState> states_;
  util::Rng delay_rng_;
  AsyncOptions options_;
  Channel channel_;
  std::priority_queue<DeliveryEvent, std::vector<DeliveryEvent>, EventLater>
      events_;
  std::uint64_t sequence_ = 0;
  AsyncMetrics metrics_;
  obs::Plane* plane_ = nullptr;

  // Scratch used while a process executes (for backend_send tagging).
  graph::NodeId executing_ = -1;
  std::int64_t executing_pulse_ = 0;
  std::int64_t executing_time_ = 0;
};

}  // namespace ftc::sim
