#include "sim/message.h"

#include <cmath>

namespace ftc::sim {

Word encode_fixed(double value) noexcept {
  return static_cast<Word>(std::llround(value * kFixedPointScale));
}

double decode_fixed(Word word) noexcept {
  return static_cast<double>(word) / kFixedPointScale;
}

}  // namespace ftc::sim
