#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ftc::sim {

using graph::NodeId;

namespace {

// OutEntry stores (offset, len) into the shard arena as uint32. Enforced
// unconditionally (not via assert): in a release build an arena past 2^32
// words would otherwise silently truncate offsets and corrupt payloads.
void check_arena_capacity(std::size_t arena_size, std::size_t words) {
  if (arena_size + words >=
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::length_error(
        "SyncNetwork: per-shard round arena exceeds uint32 offset range");
  }
}

}  // namespace

graph::NodeId Context::n() const noexcept {
  return net_->backend_graph().n();
}

graph::NodeId Context::max_degree() const noexcept {
  return net_->backend_graph().max_degree();
}

graph::NodeId Context::degree() const noexcept {
  return net_->backend_graph().degree(self_);
}

std::span<const graph::NodeId> Context::neighbors() const noexcept {
  return net_->backend_graph().neighbors(self_);
}

bool Context::has_distances() const noexcept {
  return net_->backend_udg() != nullptr;
}

double Context::distance_to(graph::NodeId neighbor) const {
  assert(has_distances());
  assert(net_->backend_graph().has_edge(self_, neighbor));
  return net_->backend_udg()->distance(self_, neighbor);
}

void Context::send(graph::NodeId to, std::span<const Word> words) {
  assert(net_->backend_graph().has_edge(self_, to) &&
         "send: destination must be a neighbor");
  net_->backend_send(self_, to, words);
}

void Context::broadcast(std::span<const Word> words) {
  net_->backend_broadcast(self_, words);
}

void NetworkBackend::backend_broadcast(graph::NodeId from,
                                       std::span<const Word> words) {
  for (graph::NodeId w : backend_graph().neighbors(from)) {
    backend_send(from, w, words);
  }
}

SyncNetwork::SyncNetwork(const graph::Graph& g, std::uint64_t seed)
    : graph_(&g) {
  const auto n = static_cast<std::size_t>(g.n());
  processes_.resize(n);
  inboxes_.resize(n);
  out_cur_.resize(n);
  out_prev_.resize(n);
  crashed_.assign(n, false);
  live_count_ = g.n();
  arena_cur_.resize(1);
  arena_prev_.resize(1);
  shard_senders_cur_.resize(1);
  shard_senders_prev_.resize(1);
  shard_stats_.resize(1);
  shard_block_ = std::max<std::size_t>(n, 1);
  rngs_.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) {
    rngs_.push_back(root.split(v));
  }
}

SyncNetwork::SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed)
    : SyncNetwork(udg.graph, seed) {
  udg_ = &udg;
}

SyncNetwork::~SyncNetwork() = default;

void SyncNetwork::set_threads(int threads) {
  if (threads <= 0) threads = util::ThreadPool::hardware_threads();
  threads_ = threads;
  if (threads_ == 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->size() != threads_) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
  const auto n = static_cast<std::size_t>(graph_->n());
  const auto shards = static_cast<std::size_t>(threads_);
  shard_block_ = std::max<std::size_t>(1, (n + shards - 1) / shards);
  // Only the (empty between rounds) current generation is resized; the
  // previous generation still backs live inbox views and keeps its layout
  // until the next round-end swap recycles it.
  arena_cur_.resize(shards);
  shard_senders_cur_.resize(shards);
  shard_stats_.resize(shards);
  sync_observability_shards();
}

void SyncNetwork::set_observability(obs::Plane* plane) {
  plane_ = plane;
  published_ = channel_.counters();
  sync_observability_shards();
}

void SyncNetwork::sync_observability_shards() {
  if (plane_ == nullptr) {
    recorders_.clear();
    return;
  }
  plane_->set_shards(threads_);
  if (static_cast<int>(recorders_.size()) != threads_) {
    recorders_.clear();
    recorders_.reserve(static_cast<std::size_t>(threads_));
    for (int s = 0; s < threads_; ++s) recorders_.emplace_back(plane_, s);
  }
}

void SyncNetwork::set_process(graph::NodeId v,
                              std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  if (counts_as_running(v)) --running_count_;
  processes_[static_cast<std::size_t>(v)] = std::move(process);
  if (counts_as_running(v)) ++running_count_;
}

void SyncNetwork::backend_send(graph::NodeId from, graph::NodeId to,
                               std::span<const Word> words) {
  const std::uint32_t s = shard_of(from);
  auto& box = out_cur_[static_cast<std::size_t>(from)];
#ifndef NDEBUG
  for (const OutEntry& e : box) {
    assert(e.to != to && "send: at most one message per neighbor per round");
  }
#endif
  auto& arena = arena_cur_[s];
  check_arena_capacity(arena.size(), words.size());
  if (box.empty()) shard_senders_cur_[s].push_back(from);
  const auto offset = static_cast<std::uint32_t>(arena.size());
  arena.insert(arena.end(), words.begin(), words.end());
  box.push_back({to, s, offset, static_cast<std::uint32_t>(words.size())});
  ShardStats& st = shard_stats_[s];
  st.messages += 1;
  st.words += static_cast<std::int64_t>(words.size());
  st.max_words =
      std::max(st.max_words, static_cast<std::int64_t>(words.size()));
}

void SyncNetwork::backend_broadcast(graph::NodeId from,
                                    std::span<const Word> words) {
  const auto nbrs = graph_->neighbors(from);
  if (nbrs.empty()) return;
  const std::uint32_t s = shard_of(from);
  auto& box = out_cur_[static_cast<std::size_t>(from)];
#ifndef NDEBUG
  for (const OutEntry& e : box) {
    for (NodeId w : nbrs) {
      assert(e.to != w &&
             "broadcast: at most one message per neighbor per round");
    }
  }
#endif
  auto& arena = arena_cur_[s];
  check_arena_capacity(arena.size(), words.size());
  if (box.empty()) shard_senders_cur_[s].push_back(from);
  const auto offset = static_cast<std::uint32_t>(arena.size());
  const auto len = static_cast<std::uint32_t>(words.size());
  // The payload is written once; every receiver's view aliases it.
  arena.insert(arena.end(), words.begin(), words.end());
  for (NodeId w : nbrs) {
    box.push_back({w, s, offset, len});
  }
  ShardStats& st = shard_stats_[s];
  const auto deg = static_cast<std::int64_t>(nbrs.size());
  st.messages += deg;
  st.words += deg * static_cast<std::int64_t>(len);
  st.max_words = std::max(st.max_words, static_cast<std::int64_t>(len));
}

void SyncNetwork::apply_scheduled_events() {
  for (auto it = scheduled_crashes_.begin();
       it != scheduled_crashes_.end();) {
    if (it->first <= round_) {
      crash(it->second);
      it = scheduled_crashes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = scheduled_recoveries_.begin();
       it != scheduled_recoveries_.end();) {
    if (it->round <= round_) {
      recover(it->node, std::move(it->process));
      it = scheduled_recoveries_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = scheduled_channels_.begin();
       it != scheduled_channels_.end();) {
    if (it->first <= round_) {
      channel_.set_options(it->second, round_);
      if (plane_ != nullptr) {
        obs::TraceEvent e;
        e.round = round_;
        e.category = obs::Category::kFault;
        e.severity = obs::Severity::kInfo;
        e.name = plane_->builtin().n_channel;
        e.a0 = it->second.impaired() ? 1 : 0;
        plane_->trace().emit(e);
      }
      it = scheduled_channels_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncNetwork::crash(graph::NodeId v) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  if (crashed_[idx]) return;
  if (plane_ != nullptr) {
    plane_->metrics().add(plane_->builtin().crashes, 1);
    obs::TraceEvent e;
    e.round = round_;
    e.node = static_cast<std::int32_t>(v);
    e.category = obs::Category::kFault;
    e.severity = obs::Severity::kInfo;
    e.name = plane_->builtin().n_crash;
    plane_->trace().emit(e);
  }
  if (counts_as_running(v)) --running_count_;
  crashed_[idx] = true;
  --live_count_;
  inboxes_[idx].clear();
  // Drop this node's in-flight traffic without scanning every queue: what
  // it queued this round is its own outbox, and what was already delivered
  // is indexed by out_prev_[v] (inboxes are sorted by sender, so each
  // removal is a binary search).
  out_cur_[idx].clear();
  auto erase_from_inbox = [this](graph::NodeId sender, graph::NodeId to) {
    auto& box = inboxes_[static_cast<std::size_t>(to)];
    auto it = std::lower_bound(
        box.begin(), box.end(), sender,
        [](const Message& m, graph::NodeId id) { return m.from < id; });
    auto last = it;
    while (last != box.end() && last->from == sender) ++last;
    box.erase(it, last);
  };
  for (const OutEntry& e : out_prev_[idx]) {
    erase_from_inbox(v, e.to);
  }
  out_prev_[idx].clear();
  // Channel-delayed traffic is not indexed by out_prev_: drop pending
  // copies touching v, and purge delivered delayed copies from v out of
  // receivers' inboxes (the erase is idempotent with the pass above).
  std::erase_if(delayed_pending_, [v](const DelayedMessage& m) {
    return m.from == v || m.to == v;
  });
  for (const DelayedMessage& m : delayed_live_) {
    if (m.from == v && !crashed_[static_cast<std::size_t>(m.to)]) {
      erase_from_inbox(v, m.to);
    }
  }
  check_counters();
}

void SyncNetwork::recover(graph::NodeId v, std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  if (counts_as_running(v)) --running_count_;
  if (crashed_[idx]) {
    crashed_[idx] = false;
    ++live_count_;
    if (plane_ != nullptr) {  // churn rejoin (not a live process swap)
      plane_->metrics().add(plane_->builtin().recoveries, 1);
      obs::TraceEvent e;
      e.round = round_;
      e.node = static_cast<std::int32_t>(v);
      e.category = obs::Category::kFault;
      e.severity = obs::Severity::kInfo;
      e.name = plane_->builtin().n_recover;
      plane_->trace().emit(e);
    }
  }
  inboxes_[idx].clear();
  out_cur_[idx].clear();
  processes_[idx] = std::move(process);
  if (counts_as_running(v)) ++running_count_;
  check_counters();
}

graph::NodeId SyncNetwork::live_count() const noexcept {
  check_counters();
  return live_count_;
}

void SyncNetwork::check_counters() const noexcept {
#ifndef NDEBUG
  graph::NodeId live = 0;
  std::int64_t running = 0;
  for (NodeId v = 0; v < graph_->n(); ++v) {
    if (!crashed_[static_cast<std::size_t>(v)]) ++live;
    if (counts_as_running(v)) ++running;
  }
  assert(live == live_count_ && "live_count_ out of sync with crash flags");
  assert(running == running_count_ &&
         "running_count_ out of sync with process states");
#endif
}

void SyncNetwork::execute_nodes(graph::NodeId begin, graph::NodeId end,
                                int shard) {
  ShardStats& stats = shard_stats_[static_cast<std::size_t>(shard)];
  obs::Recorder* const rec =
      recorders_.empty() ? nullptr
                         : &recorders_[static_cast<std::size_t>(shard)];
  for (NodeId v = begin; v < end; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    Process* p = processes_[idx].get();
    if (p == nullptr || p->halted() || crashed_[idx]) continue;

    Context ctx;
    ctx.net_ = this;
    ctx.self_ = v;
    ctx.round_ = round_;
    ctx.rng_ = &rngs_[idx];
    ctx.obs_ = rec;
    ctx.inbox_ = {inboxes_[idx].data(), inboxes_[idx].size()};
    p->on_round(ctx);
    if (p->halted()) ++stats.newly_halted;
  }
}

void SyncNetwork::deliver_round() {
  // Recycle last round's inboxes (only nodes that actually received), and
  // the delayed payloads whose views they held.
  for (NodeId v : receivers_) {
    inboxes_[static_cast<std::size_t>(v)].clear();
  }
  receivers_.clear();
  delayed_live_.clear();

  // Senders ascending (shards cover ascending ranges, each list ascending),
  // so every inbox is built already sorted by sender. Channel verdicts are
  // stateless hashes of (link, round), so this order — and the thread
  // count — cannot influence them.
  const bool impaired = channel_.impaired();
  for (const auto& senders : shard_senders_cur_) {
    for (NodeId from : senders) {
      for (const OutEntry& e : out_cur_[static_cast<std::size_t>(from)]) {
        const auto to = static_cast<std::size_t>(e.to);
        if (crashed_[to]) continue;  // crashed receivers drop silently
        const Word* payload = arena_cur_[e.shard].data() + e.offset;
        if (impaired) {
          const Channel::Fate fate = channel_.decide(from, e.to, round_);
          if (fate.dropped) continue;
          if (fate.duplicate) {
            delayed_pending_.push_back(
                {round_ + 1 + fate.dup_delay, from, e.to,
                 std::vector<Word>(payload, payload + e.len)});
          }
          if (fate.delay > 0) {
            delayed_pending_.push_back(
                {round_ + 1 + fate.delay, from, e.to,
                 std::vector<Word>(payload, payload + e.len)});
            continue;
          }
        }
        auto& box = inboxes_[to];
        if (box.empty()) receivers_.push_back(e.to);
        box.push_back(Message{from, WordSpan(payload, e.len)});
      }
    }
  }

  // Delayed copies due now join the fresh deliveries. Insertion keeps each
  // inbox sorted by sender (delayed copies land after same-sender fresh
  // ones); the enqueue order above is deterministic, so this pass is too.
  if (!delayed_pending_.empty()) {
    const std::int64_t due = round_ + 1;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < delayed_pending_.size(); ++i) {
      DelayedMessage& m = delayed_pending_[i];
      if (m.due != due) {
        if (keep != i) delayed_pending_[keep] = std::move(m);
        ++keep;
        continue;
      }
      if (crashed_[static_cast<std::size_t>(m.to)]) continue;
      delayed_live_.push_back(std::move(m));
      const DelayedMessage& live = delayed_live_.back();
      auto& box = inboxes_[static_cast<std::size_t>(live.to)];
      if (box.empty()) receivers_.push_back(live.to);
      const auto it = std::upper_bound(
          box.begin(), box.end(), live.from,
          [](graph::NodeId id, const Message& msg) { return id < msg.from; });
      box.insert(it, Message{live.from,
                             WordSpan(live.words.data(), live.words.size())});
    }
    delayed_pending_.resize(keep);
  }
}

bool SyncNetwork::step() {
  // Observability is published at the sequential barriers only; `pl` stays
  // null on the default path, which then costs one branch per phase.
  obs::Plane* const pl = plane_;
  obs::Trace* const tr = pl != nullptr ? &pl->trace() : nullptr;
  const obs::Builtin* const b = pl != nullptr ? &pl->builtin() : nullptr;
  const std::int64_t executed_round = round_;
  if (pl != nullptr) sync_observability_shards();
  auto phase_span = [&](obs::NameId name) {
    return obs::SpanTimer(tr, obs::Category::kEngine, obs::Severity::kDebug,
                          name, executed_round);
  };

  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_fault_apply : 0);
    apply_scheduled_events();
  }

  // Run every live, unhalted process against the inbox delivered at the end
  // of the previous round. Shards stage into disjoint state; everything
  // below the parallel region is sequential and shard-order merged, so the
  // outcome is independent of the thread count.
  const int shards = static_cast<int>(arena_cur_.size());
  for (ShardStats& st : shard_stats_) st = ShardStats{};
  const NodeId n = graph_->n();
  auto run_shard = [&](int s) {
    const auto lo = static_cast<std::size_t>(s) * shard_block_;
    const auto hi = std::min(lo + shard_block_, static_cast<std::size_t>(n));
    execute_nodes(static_cast<NodeId>(std::min(lo, static_cast<std::size_t>(n))),
                  static_cast<NodeId>(hi), s);
  };
  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_execute : 0);
    if (pool_ == nullptr) {
      for (int s = 0; s < shards; ++s) run_shard(s);
    } else {
      pool_->run(shards, run_shard);
    }
  }

  std::int64_t round_messages = 0;
  std::int64_t round_words = 0;
  std::int64_t arena_words = 0;
  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_merge : 0);
    for (const ShardStats& st : shard_stats_) {
      round_messages += st.messages;
      round_words += st.words;
      metrics_.max_message_words =
          std::max(metrics_.max_message_words, st.max_words);
      running_count_ -= st.newly_halted;
    }
    metrics_.messages_sent += round_messages;
    metrics_.words_sent += round_words;
    if (pl != nullptr) {
      // The registry receives the same merged deltas as metrics_, from this
      // same barrier — the two views cannot drift apart.
      pl->metrics().add(b->messages, round_messages);
      pl->metrics().add(b->words, round_words);
      for (const auto& arena : arena_cur_) {
        arena_words += static_cast<std::int64_t>(arena.size());
      }
      pl->merge_shards();  // worker-staged process events, shard order
      span.set_args(round_messages, round_words);
    }
  }

  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_deliver : 0);
    deliver_round();
  }

  // Generation swap: the arena just written now backs the new inboxes; the
  // one delivered two rounds ago is recycled for the next round's sends.
  std::swap(arena_cur_, arena_prev_);
  std::swap(out_cur_, out_prev_);
  std::swap(shard_senders_cur_, shard_senders_prev_);
  // Clear before resizing: set_threads() may have shrunk the shard count
  // since this generation was written, and truncating first would orphan
  // populated outboxes in the dropped shards.
  for (auto& senders : shard_senders_cur_) {
    for (NodeId v : senders) out_cur_[static_cast<std::size_t>(v)].clear();
    senders.clear();
  }
  for (auto& arena : arena_cur_) arena.clear();
  const auto want_shards = static_cast<std::size_t>(threads_);
  arena_cur_.resize(want_shards);
  shard_senders_cur_.resize(want_shards);
  shard_stats_.resize(want_shards);

  ++round_;
  metrics_.rounds = round_;

  if (pl != nullptr) {
    obs::Registry& reg = pl->metrics();
    reg.add(b->rounds, 1);
    const Channel::Counters& cc = channel_.counters();
    if (cc != published_) {
      reg.add(b->messages_lost, cc.dropped - published_.dropped);
      reg.add(b->messages_duplicated, cc.duplicated - published_.duplicated);
      reg.add(b->messages_reordered, cc.reordered - published_.reordered);
      published_ = cc;
    }
    reg.set(b->live_nodes, live_count_);
    reg.set(b->running_nodes, running_count_);
    reg.set(b->arena_words, arena_words);
    reg.set(b->max_message_words, metrics_.max_message_words);
    reg.record(b->messages_per_round, static_cast<double>(round_messages));
    obs::TraceEvent e;
    e.round = executed_round;
    e.category = obs::Category::kEngine;
    e.severity = obs::Severity::kInfo;
    e.name = b->n_round;
    e.a0 = round_messages;
    e.a1 = live_count_;
    tr->emit(e);
  }

  check_counters();
  // Nobody running can still mean progress: pending rejoins wake the net.
  return running_count_ > 0 || !scheduled_recoveries_.empty();
}

std::int64_t SyncNetwork::run(std::int64_t max_rounds) {
  std::int64_t executed = 0;
  while (executed < max_rounds) {
    ++executed;
    if (!step()) break;
  }
  return executed;
}

void SyncNetwork::schedule_crash(graph::NodeId v, std::int64_t round) {
  assert(v >= 0 && v < graph_->n());
  // A crash in the past never happened, and a crashed node cannot crash
  // again (it may, however, rejoin and be re-crashed by a *later* schedule —
  // the liveness re-check happens in crash() at application time).
  if (round < round_ || crashed_[static_cast<std::size_t>(v)]) return;
  scheduled_crashes_.emplace_back(round, v);
}

void SyncNetwork::schedule_recovery(graph::NodeId v, std::int64_t round,
                                    std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  if (round < round_) return;
  scheduled_recoveries_.push_back({round, v, std::move(process)});
}

void SyncNetwork::set_channel(const ChannelOptions& options) {
  channel_.set_options(options, round_);  // validates
}

void SyncNetwork::schedule_channel(std::int64_t round,
                                   const ChannelOptions& options) {
  options.validate();
  scheduled_channels_.emplace_back(round, options);
}

void SyncNetwork::set_message_loss(double loss, std::uint64_t loss_seed) {
  ChannelOptions options;
  options.loss = loss;
  options.seed = loss_seed;
  set_channel(options);
}

}  // namespace ftc::sim
