#include "sim/network.h"

#include <algorithm>

namespace ftc::sim {

using graph::NodeId;

graph::NodeId Context::n() const noexcept {
  return net_->backend_graph().n();
}

graph::NodeId Context::max_degree() const noexcept {
  return net_->backend_graph().max_degree();
}

graph::NodeId Context::degree() const noexcept {
  return net_->backend_graph().degree(self_);
}

std::span<const graph::NodeId> Context::neighbors() const noexcept {
  return net_->backend_graph().neighbors(self_);
}

bool Context::has_distances() const noexcept {
  return net_->backend_udg() != nullptr;
}

double Context::distance_to(graph::NodeId neighbor) const {
  assert(has_distances());
  assert(net_->backend_graph().has_edge(self_, neighbor));
  return net_->backend_udg()->distance(self_, neighbor);
}

void Context::send(graph::NodeId to, std::vector<Word> words) {
  assert(net_->backend_graph().has_edge(self_, to) &&
         "send: destination must be a neighbor");
  net_->backend_send(self_, to, std::move(words));
}

void Context::broadcast(const std::vector<Word>& words) {
  for (graph::NodeId w : neighbors()) {
    send(w, words);
  }
}

SyncNetwork::SyncNetwork(const graph::Graph& g, std::uint64_t seed)
    : graph_(&g) {
  const auto n = static_cast<std::size_t>(g.n());
  processes_.resize(n);
  inboxes_.resize(n);
  outboxes_.resize(n);
  crashed_.assign(n, false);
  rngs_.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) {
    rngs_.push_back(root.split(v));
  }
}

SyncNetwork::SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed)
    : SyncNetwork(udg.graph, seed) {
  udg_ = &udg;
}

void SyncNetwork::set_process(graph::NodeId v,
                              std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void SyncNetwork::backend_send(graph::NodeId from, graph::NodeId to,
                               std::vector<Word> words) {
  metrics_.messages_sent += 1;
  metrics_.words_sent += static_cast<std::int64_t>(words.size());
  metrics_.max_message_words =
      std::max(metrics_.max_message_words,
               static_cast<std::int64_t>(words.size()));
  Message msg;
  msg.from = from;
  msg.words = std::move(words);
  outboxes_[static_cast<std::size_t>(to)].push_back(std::move(msg));
}

void SyncNetwork::apply_scheduled_events() {
  for (auto it = scheduled_crashes_.begin();
       it != scheduled_crashes_.end();) {
    if (it->first <= round_) {
      crash(it->second);
      it = scheduled_crashes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = scheduled_recoveries_.begin();
       it != scheduled_recoveries_.end();) {
    if (it->round <= round_) {
      recover(it->node, std::move(it->process));
      it = scheduled_recoveries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncNetwork::crash(graph::NodeId v) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  if (crashed_[idx]) return;
  crashed_[idx] = true;
  inboxes_[idx].clear();
  // Drop this node's in-flight traffic: both what it queued this round and
  // what was delivered but not yet processed by receivers.
  for (auto& box : outboxes_) {
    std::erase_if(box, [v](const Message& m) { return m.from == v; });
  }
  for (auto& box : inboxes_) {
    std::erase_if(box, [v](const Message& m) { return m.from == v; });
  }
}

void SyncNetwork::recover(graph::NodeId v, std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  crashed_[idx] = false;
  inboxes_[idx].clear();
  outboxes_[idx].clear();
  processes_[idx] = std::move(process);
}

graph::NodeId SyncNetwork::live_count() const noexcept {
  graph::NodeId live = 0;
  for (bool c : crashed_) {
    if (!c) ++live;
  }
  return live;
}

bool SyncNetwork::step() {
  apply_scheduled_events();

  // Run every live, unhalted process against the inbox delivered at the end
  // of the previous round.
  for (NodeId v = 0; v < graph_->n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    Process* p = processes_[idx].get();
    if (p == nullptr || p->halted() || crashed_[idx]) continue;

    Context ctx;
    ctx.net_ = this;
    ctx.self_ = v;
    ctx.round_ = round_;
    ctx.rng_ = &rngs_[idx];
    ctx.inbox_ = &inboxes_[idx];
    p->on_round(ctx);
  }

  // Deliver: outboxes become next round's inboxes. Crashed receivers drop.
  for (NodeId v = 0; v < graph_->n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    inboxes_[idx].clear();
    if (crashed_[idx]) {
      outboxes_[idx].clear();
      continue;
    }
    inboxes_[idx] = std::move(outboxes_[idx]);
    outboxes_[idx].clear();
    if (message_loss_ > 0.0) {
      std::erase_if(inboxes_[idx], [this](const Message&) {
        if (loss_rng_.bernoulli(message_loss_)) {
          ++messages_lost_;
          return true;
        }
        return false;
      });
    }
    // Deterministic processing order for receivers regardless of send order.
    std::sort(inboxes_[idx].begin(), inboxes_[idx].end(),
              [](const Message& a, const Message& b) { return a.from < b.from; });
  }

  ++round_;
  metrics_.rounds = round_;

  for (NodeId v = 0; v < graph_->n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    const Process* p = processes_[idx].get();
    if (p != nullptr && !p->halted() && !crashed_[idx]) return true;
  }
  // Nobody is running now, but pending rejoins can still wake the network.
  return !scheduled_recoveries_.empty();
}

std::int64_t SyncNetwork::run(std::int64_t max_rounds) {
  std::int64_t executed = 0;
  while (executed < max_rounds) {
    ++executed;
    if (!step()) break;
  }
  return executed;
}

void SyncNetwork::schedule_crash(graph::NodeId v, std::int64_t round) {
  assert(v >= 0 && v < graph_->n());
  // A crash in the past never happened, and a crashed node cannot crash
  // again (it may, however, rejoin and be re-crashed by a *later* schedule —
  // the liveness re-check happens in crash() at application time).
  if (round < round_ || crashed_[static_cast<std::size_t>(v)]) return;
  scheduled_crashes_.emplace_back(round, v);
}

void SyncNetwork::schedule_recovery(graph::NodeId v, std::int64_t round,
                                    std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  if (round < round_) return;
  scheduled_recoveries_.push_back({round, v, std::move(process)});
}

void SyncNetwork::set_message_loss(double loss, std::uint64_t loss_seed) {
  assert(loss >= 0.0 && loss < 1.0);
  message_loss_ = loss;
  loss_rng_ = util::Rng(loss_seed);
}

}  // namespace ftc::sim
