#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ftc::sim {

using graph::NodeId;

namespace {

// XferEntry stores (offset, len) into the shard arena as uint32. Enforced
// unconditionally (not via assert): in a release build an arena past 2^32
// words would otherwise silently truncate offsets and corrupt payloads.
void check_arena_capacity(std::size_t arena_size, std::size_t words) {
  if (arena_size + words >=
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::length_error(
        "SyncNetwork: per-shard round arena exceeds uint32 offset range");
  }
}

// Inbox regions are addressed by uint32 offsets into the flat store.
void check_inbox_capacity(std::uint64_t total_messages) {
  if (total_messages >=
      static_cast<std::uint64_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::length_error(
        "SyncNetwork: per-round message count exceeds uint32 inbox range");
  }
}

}  // namespace

graph::NodeId Context::n() const noexcept {
  return net_->backend_graph().n();
}

graph::NodeId Context::max_degree() const noexcept {
  return net_->backend_graph().max_degree();
}

graph::NodeId Context::degree() const noexcept {
  return net_->backend_graph().degree(self_);
}

std::span<const graph::NodeId> Context::neighbors() const noexcept {
  return net_->backend_graph().neighbors(self_);
}

bool Context::has_distances() const noexcept {
  return net_->backend_udg() != nullptr;
}

double Context::distance_to(graph::NodeId neighbor) const {
  assert(has_distances());
  assert(net_->backend_graph().has_edge(self_, neighbor));
  return net_->backend_udg()->distance(self_, neighbor);
}

void Context::send(graph::NodeId to, std::span<const Word> words) {
  assert(net_->backend_graph().has_edge(self_, to) &&
         "send: destination must be a neighbor");
  net_->backend_send(self_, to, words);
}

void Context::broadcast(std::span<const Word> words) {
  net_->backend_broadcast(self_, words);
}

void NetworkBackend::backend_broadcast(graph::NodeId from,
                                       std::span<const Word> words) {
  for (graph::NodeId w : backend_graph().neighbors(from)) {
    backend_send(from, w, words);
  }
}

SyncNetwork::SyncNetwork(const graph::Graph& g, std::uint64_t seed)
    : graph_(&g) {
  const auto n = static_cast<std::size_t>(g.n());
  processes_.resize(n);
  node_flags_.assign(n, 0);
  inbox_off_.assign(n, 0);
  inbox_len_.assign(n, 0);
  inbox_count_.assign(n, 0);
  inbox_cursor_.assign(n, 0);
  live_count_ = g.n();
  arena_cur_.resize(1);
  arena_prev_.resize(1);
  xfer_cur_.resize(1);
  xfer_prev_.resize(1);
  shard_stats_.resize(1);
  shard_inbox_total_.resize(1);
  shard_inbox_base_.resize(1);
  fate_scratch_.resize(1);
  channel_shards_.resize(1);
  delayed_pending_.resize(1);
  delayed_live_.resize(1);
  shard_block_ = std::max<std::size_t>(n, 1);
  xfer_block_prev_ = shard_block_;
  rngs_.reserve(n);
  const util::Rng root(seed);
  for (std::size_t v = 0; v < n; ++v) {
    rngs_.push_back(root.split(v));
  }
}

SyncNetwork::SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed)
    : SyncNetwork(udg.graph, seed) {
  udg_ = &udg;
}

SyncNetwork::~SyncNetwork() = default;

void SyncNetwork::set_threads(int threads) {
  if (threads <= 0) threads = util::ThreadPool::hardware_threads();
  threads_ = threads;
  if (threads_ == 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->size() != threads_) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
  const auto n = static_cast<std::size_t>(graph_->n());
  const auto shards = static_cast<std::size_t>(threads_);
  shard_block_ = std::max<std::size_t>(1, (n + shards - 1) / shards);
  // Only the (empty between rounds) current generation is reshaped; the
  // previous generation still backs live inbox views and crash lookups and
  // keeps its recorded shape until the next round-end swap recycles it.
  arena_cur_.resize(shards);
  xfer_cur_.resize(shards * shards);
  shard_stats_.resize(shards);
  shard_inbox_total_.resize(shards);
  shard_inbox_base_.resize(shards);
  fate_scratch_.resize(shards);
  // Shard channel caches are memoizations of a pure per-link function, so
  // dropping some (shrink) or starting fresh ones (grow) changes nothing.
  channel_shards_.resize(shards);
  // Delayed messages are bucketed by destination shard: re-bucket under the
  // new sharding. Iterating old buckets in order keeps each receiver's
  // bucket order intact (all of a receiver's copies live in one bucket),
  // which is the only order delivery depends on. The payload word vectors
  // are heap buffers, so moving the structs cannot invalidate the inbox
  // views delayed_live_ still backs.
  auto rebucket = [&](std::vector<std::vector<DelayedMessage>>& buckets) {
    std::vector<std::vector<DelayedMessage>> fresh(shards);
    for (auto& bucket : buckets) {
      for (DelayedMessage& m : bucket) {
        fresh[shard_of(m.to)].push_back(std::move(m));
      }
    }
    buckets = std::move(fresh);
  };
  rebucket(delayed_pending_);
  rebucket(delayed_live_);
  sync_observability_shards();
}

void SyncNetwork::set_observability(obs::Plane* plane) {
  plane_ = plane;
  published_ = channel_.counters();
  sync_observability_shards();
}

void SyncNetwork::sync_observability_shards() {
  if (plane_ == nullptr) {
    recorders_.clear();
    perf_ = nullptr;
    if (pool_ != nullptr) pool_->set_perf_enabled(false);
    return;
  }
  plane_->set_shards(threads_);
  perf_ = plane_->perf();
  if (pool_ != nullptr) pool_->set_perf_enabled(perf_ != nullptr);
  if (static_cast<int>(recorders_.size()) != threads_) {
    recorders_.clear();
    recorders_.reserve(static_cast<std::size_t>(threads_));
    for (int s = 0; s < threads_; ++s) recorders_.emplace_back(plane_, s);
  }
}

void SyncNetwork::set_process(graph::NodeId v,
                              std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  if (counts_as_running(v)) --running_count_;
  processes_[static_cast<std::size_t>(v)] = std::move(process);
  refresh_node_flags(v);
  if (counts_as_running(v)) ++running_count_;
}

void SyncNetwork::backend_send(graph::NodeId from, graph::NodeId to,
                               std::span<const Word> words) {
  const std::uint32_t s = shard_of(from);
  const std::uint32_t d = shard_of(to);
  const auto shards = static_cast<std::uint32_t>(threads_);
  auto& list = xfer_cur_[static_cast<std::size_t>(s) * shards + d];
#ifndef NDEBUG
  // `from`'s entries are the tail run of every list it touched this round.
  for (auto it = list.rbegin(); it != list.rend() && it->from == from; ++it) {
    assert(it->to != to && "send: at most one message per neighbor per round");
  }
#endif
  auto& arena = arena_cur_[s];
  check_arena_capacity(arena.size(), words.size());
  const auto offset = static_cast<std::uint32_t>(arena.size());
  arena.insert(arena.end(), words.begin(), words.end());
  list.push_back({from, to, offset, static_cast<std::uint32_t>(words.size())});
  ShardStats& st = shard_stats_[s];
  st.messages += 1;
  st.words += static_cast<std::int64_t>(words.size());
  st.max_words =
      std::max(st.max_words, static_cast<std::int64_t>(words.size()));
}

void SyncNetwork::backend_broadcast(graph::NodeId from,
                                    std::span<const Word> words) {
  const auto nbrs = graph_->neighbors(from);
  if (nbrs.empty()) return;
  const std::uint32_t s = shard_of(from);
  const auto shards = static_cast<std::uint32_t>(threads_);
  auto& arena = arena_cur_[s];
  check_arena_capacity(arena.size(), words.size());
  const auto offset = static_cast<std::uint32_t>(arena.size());
  const auto len = static_cast<std::uint32_t>(words.size());
  // The payload is written once; every receiver's view aliases it.
  arena.insert(arena.end(), words.begin(), words.end());
  for (NodeId w : nbrs) {
    auto& list = xfer_cur_[static_cast<std::size_t>(s) * shards + shard_of(w)];
#ifndef NDEBUG
    for (auto it = list.rbegin(); it != list.rend() && it->from == from;
         ++it) {
      assert(it->to != w &&
             "broadcast: at most one message per neighbor per round");
    }
#endif
    list.push_back({from, w, offset, len});
  }
  ShardStats& st = shard_stats_[s];
  const auto deg = static_cast<std::int64_t>(nbrs.size());
  st.messages += deg;
  st.words += deg * static_cast<std::int64_t>(len);
  st.max_words = std::max(st.max_words, static_cast<std::int64_t>(len));
}

void SyncNetwork::apply_scheduled_events() {
  for (auto it = scheduled_crashes_.begin();
       it != scheduled_crashes_.end();) {
    if (it->first <= round_) {
      crash(it->second);
      it = scheduled_crashes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = scheduled_recoveries_.begin();
       it != scheduled_recoveries_.end();) {
    if (it->round <= round_) {
      recover(it->node, std::move(it->process));
      it = scheduled_recoveries_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = scheduled_channels_.begin();
       it != scheduled_channels_.end();) {
    if (it->first <= round_) {
      channel_.set_options(it->second, round_);
      reset_channel_shard_state();
      if (plane_ != nullptr) {
        obs::TraceEvent e;
        e.round = round_;
        e.category = obs::Category::kFault;
        e.severity = obs::Severity::kInfo;
        e.name = plane_->builtin().n_channel;
        e.a0 = it->second.impaired() ? 1 : 0;
        plane_->trace().emit(e);
      }
      it = scheduled_channels_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncNetwork::erase_inbox_entries(graph::NodeId sender,
                                      graph::NodeId to) noexcept {
  const auto idx = static_cast<std::size_t>(to);
  Message* const begin = inbox_store_.data() + inbox_off_[idx];
  Message* const end = begin + inbox_len_[idx];
  Message* it = std::lower_bound(
      begin, end, sender,
      [](const Message& m, graph::NodeId id) { return m.from < id; });
  Message* last = it;
  while (last != end && last->from == sender) ++last;
  if (it != last) {
    std::move(last, end, it);
    inbox_len_[idx] -= static_cast<std::uint32_t>(last - it);
  }
}

void SyncNetwork::purge_current_sends(graph::NodeId v) {
  // The current generation only holds entries while a round is executing;
  // between rounds (where crash/recover run) every list is empty, so this
  // is a cheap defensive sweep of v's sender-shard row.
  const auto shards = static_cast<std::size_t>(threads_);
  const std::size_t s = shard_of(v);
  for (std::size_t d = 0; d < shards; ++d) {
    auto& list = xfer_cur_[s * shards + d];
    if (list.empty()) continue;
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const XferEntry& e, graph::NodeId id) { return e.from < id; });
    auto last = it;
    while (last != list.end() && last->from == v) ++last;
    list.erase(it, last);
  }
}

void SyncNetwork::reset_channel_shard_state() {
  for (Channel::ShardState& st : channel_shards_) st.clear();
}

void SyncNetwork::crash(graph::NodeId v) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  if (crashed(v)) return;
  if (plane_ != nullptr) {
    plane_->metrics().add(plane_->builtin().crashes, 1);
    obs::TraceEvent e;
    e.round = round_;
    e.node = static_cast<std::int32_t>(v);
    e.category = obs::Category::kFault;
    e.severity = obs::Severity::kInfo;
    e.name = plane_->builtin().n_crash;
    plane_->trace().emit(e);
  }
  if (counts_as_running(v)) --running_count_;
  node_flags_[idx] |= kNodeCrashed;
  --live_count_;
  inbox_len_[idx] = 0;
  purge_current_sends(v);
  // Drop v's delivered-generation traffic without scanning every inbox: its
  // messages are the from == v runs of its sender-shard row in xfer_prev_
  // (one binary search per destination shard), and each receiver's inbox
  // region is sender-sorted (one binary search per removal). xfer_prev_ was
  // built under the sharding recorded at the last generation swap, which
  // may differ from the current one.
  const auto shards_prev = static_cast<std::size_t>(xfer_shards_prev_);
  const std::size_t s_prev = static_cast<std::size_t>(v) / xfer_block_prev_;
  for (std::size_t d = 0; d < shards_prev; ++d) {
    const auto& list = xfer_prev_[s_prev * shards_prev + d];
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const XferEntry& e, graph::NodeId id) { return e.from < id; });
    for (; it != list.end() && it->from == v; ++it) {
      erase_inbox_entries(v, it->to);
    }
  }
  // Channel-delayed traffic is not indexed by xfer_prev_: drop pending
  // copies touching v, and purge delivered delayed copies from v out of
  // receivers' inboxes (the erase is idempotent with the pass above).
  for (auto& bucket : delayed_pending_) {
    std::erase_if(bucket, [v](const DelayedMessage& m) {
      return m.from == v || m.to == v;
    });
  }
  for (const auto& bucket : delayed_live_) {
    for (const DelayedMessage& m : bucket) {
      if (m.from == v && !crashed(m.to)) {
        erase_inbox_entries(v, m.to);
      }
    }
  }
  check_counters();
}

void SyncNetwork::recover(graph::NodeId v, std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  const auto idx = static_cast<std::size_t>(v);
  if (counts_as_running(v)) --running_count_;
  if (crashed(v)) {
    node_flags_[idx] &= static_cast<std::uint8_t>(~kNodeCrashed);
    ++live_count_;
    if (plane_ != nullptr) {  // churn rejoin (not a live process swap)
      plane_->metrics().add(plane_->builtin().recoveries, 1);
      obs::TraceEvent e;
      e.round = round_;
      e.node = static_cast<std::int32_t>(v);
      e.category = obs::Category::kFault;
      e.severity = obs::Severity::kInfo;
      e.name = plane_->builtin().n_recover;
      plane_->trace().emit(e);
    }
  }
  inbox_len_[idx] = 0;
  purge_current_sends(v);
  processes_[idx] = std::move(process);
  refresh_node_flags(v);
  if (counts_as_running(v)) ++running_count_;
  check_counters();
}

graph::NodeId SyncNetwork::live_count() const noexcept {
  check_counters();
  return live_count_;
}

void SyncNetwork::check_counters() const noexcept {
#ifndef NDEBUG
  graph::NodeId live = 0;
  std::int64_t running = 0;
  for (NodeId v = 0; v < graph_->n(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    const Process* p = processes_[idx].get();
    std::uint8_t want = node_flags_[idx] & kNodeCrashed;
    if (p != nullptr) {
      want |= kNodeHasProcess;
      if (p->halted()) want |= kNodeHalted;
    }
    assert(node_flags_[idx] == want &&
           "node_flags_ out of sync with process state");
    if (!crashed(v)) ++live;
    if (counts_as_running(v)) ++running;
  }
  assert(live == live_count_ && "live_count_ out of sync with crash flags");
  assert(running == running_count_ &&
         "running_count_ out of sync with process states");
#endif
}

void SyncNetwork::execute_nodes(graph::NodeId begin, graph::NodeId end,
                                int shard) {
  ShardStats& stats = shard_stats_[static_cast<std::size_t>(shard)];
  obs::Recorder* const rec =
      recorders_.empty() ? nullptr
                         : &recorders_[static_cast<std::size_t>(shard)];
  obs::PerfPlane* const pf = perf_;
  const std::int64_t t0 = pf != nullptr ? obs::PerfPlane::now_ns() : 0;
  const Message* const store = inbox_store_.data();
  for (NodeId v = begin; v < end; ++v) {
    const auto idx = static_cast<std::size_t>(v);
    if (node_flags_[idx] != kNodeHasProcess) continue;
    Process* const p = processes_[idx].get();

    Context ctx;
    ctx.net_ = this;
    ctx.self_ = v;
    ctx.round_ = round_;
    ctx.rng_ = &rngs_[idx];
    ctx.obs_ = rec;
    ctx.inbox_ = {store + inbox_off_[idx], inbox_len_[idx]};
    p->on_round(ctx);
    ++stats.nodes_run;
    if (p->halted()) {
      node_flags_[idx] |= kNodeHalted;
      ++stats.newly_halted;
    }
  }
  if (pf != nullptr) {
    pf->shard_add(shard, obs::PerfPhase::kCompute,
                  obs::PerfPlane::now_ns() - t0);
  }
}

void SyncNetwork::deliver_round(int shards) {
  const auto s_count = static_cast<std::size_t>(shards);
  // Delayed payloads delivered last round were consumed by this round's
  // execute phase; recycle them before staging new live copies.
  for (auto& bucket : delayed_live_) bucket.clear();

  const bool impaired = channel_.impaired();
  const std::int64_t due_round = round_ + 1;

  // Perf attribution: the owner laps the three delivery phases; the two
  // dispatched passes additionally stage per-shard time (and per-message
  // channel-decide time, nested inside the count pass, when the channel is
  // impaired). All of it lands in PerfPlane side state only — see perf.h.
  obs::PerfPlane* const pf = perf_;
  std::int64_t t_mark = pf != nullptr ? obs::PerfPlane::now_ns() : 0;
  auto lap = [&](obs::PerfPhase phase) {
    if (pf == nullptr) return;
    const std::int64_t now = obs::PerfPlane::now_ns();
    pf->add(phase, now - t_mark);
    t_mark = now;
  };

  // Count pass (parallel over destination shards): per-receiver incoming
  // counts, channel verdicts (recorded as fate bytes so the place pass
  // replays instead of re-deciding — decide() counts side effects), and
  // delayed/duplicate copy enqueue into the shard's own pending bucket.
  auto count_shard = [&](int d) {
    const auto du = static_cast<std::size_t>(d);
    const std::int64_t shard_t0 =
        pf != nullptr ? obs::PerfPlane::now_ns() : 0;
    std::int64_t decide_ns = 0;
    const auto [lo, hi] = shard_range(d);
    std::fill(inbox_count_.begin() + lo, inbox_count_.begin() + hi, 0u);
    std::uint64_t total = 0;
    auto& fates = fate_scratch_[du];
    fates.clear();
    Channel::ShardState& cs = channel_shards_[du];
    auto& pending = delayed_pending_[du];
    for (std::size_t s = 0; s < s_count; ++s) {
      const Word* const arena = arena_cur_[s].data();
      for (const XferEntry& e : xfer_cur_[s * s_count + du]) {
        if (crashed(e.to)) {  // crashed receivers drop silently, no verdict
          if (impaired) fates.push_back(0);
          continue;
        }
        if (impaired) {
          // Per-message decide cost is only clocked when perf is on (two
          // clock reads per message); the clean-channel path never pays it.
          const std::int64_t t_decide =
              pf != nullptr ? obs::PerfPlane::now_ns() : 0;
          const Channel::Fate fate = channel_.decide(e.from, e.to, round_, cs);
          if (pf != nullptr) decide_ns += obs::PerfPlane::now_ns() - t_decide;
          if (fate.dropped) {
            fates.push_back(0);
            continue;
          }
          const Word* const payload = arena + e.offset;
          if (fate.duplicate) {
            pending.push_back({round_ + 1 + fate.dup_delay, e.from, e.to,
                               std::vector<Word>(payload, payload + e.len)});
          }
          if (fate.delay > 0) {
            pending.push_back({round_ + 1 + fate.delay, e.from, e.to,
                               std::vector<Word>(payload, payload + e.len)});
            fates.push_back(0);
            continue;
          }
          fates.push_back(1);
        }
        ++inbox_count_[static_cast<std::size_t>(e.to)];
        ++total;
      }
    }
    // Delayed copies due now (enqueued in earlier rounds; copies staged
    // above are due in round_ + 2 at the earliest, so they never match).
    for (const DelayedMessage& m : pending) {
      if (m.due == due_round && !crashed(m.to)) {
        ++inbox_count_[static_cast<std::size_t>(m.to)];
        ++total;
      }
    }
    shard_inbox_total_[du] = total;
    if (pf != nullptr) {
      pf->shard_add(d, obs::PerfPhase::kDeliverCount,
                    obs::PerfPlane::now_ns() - shard_t0);
      if (decide_ns != 0) {
        pf->shard_add(d, obs::PerfPhase::kChannelDecide, decide_ns);
      }
    }
  };
  dispatch_shards(shards, count_shard);
  lap(obs::PerfPhase::kDeliverCount);

  // Prefix pass (sequential, O(shards)): region bases + store sizing. The
  // store only ever grows — a resize would value-initialize the new tail
  // sequentially, so the high-water mark amortizes that to zero.
  std::uint64_t total_messages = 0;
  for (std::size_t d = 0; d < s_count; ++d) {
    shard_inbox_base_[d] = total_messages;
    total_messages += shard_inbox_total_[d];
  }
  check_inbox_capacity(total_messages);
  if (inbox_store_.size() < total_messages) {
    inbox_store_.resize(static_cast<std::size_t>(total_messages));
  }
  lap(obs::PerfPhase::kDeliverPrefix);

  // Place pass (parallel over destination shards): local offset scan, then
  // counting-sort the fresh deliveries into each receiver's region —
  // iterating sender shards in ascending order keeps every region sender-
  // sorted because shards cover ascending id ranges — and finally insert
  // due delayed copies by upper-bound (after same-sender fresh entries, in
  // bucket order: the same per-receiver order every width produces).
  auto place_shard = [&](int d) {
    const auto du = static_cast<std::size_t>(d);
    const std::int64_t shard_t0 =
        pf != nullptr ? obs::PerfPlane::now_ns() : 0;
    const auto [lo, hi] = shard_range(d);
    std::uint64_t running = shard_inbox_base_[du];
    for (NodeId v = lo; v < hi; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      inbox_off_[idx] = static_cast<std::uint32_t>(running);
      inbox_len_[idx] = inbox_count_[idx];
      inbox_cursor_[idx] = 0;
      running += inbox_count_[idx];
    }
    Message* const store = inbox_store_.data();
    const auto& fates = fate_scratch_[du];
    std::size_t fate_idx = 0;
    for (std::size_t s = 0; s < s_count; ++s) {
      const Word* const arena = arena_cur_[s].data();
      for (const XferEntry& e : xfer_cur_[s * s_count + du]) {
        const bool deliver =
            impaired ? fates[fate_idx++] != 0 : !crashed(e.to);
        if (!deliver) continue;
        const auto to = static_cast<std::size_t>(e.to);
        store[inbox_off_[to] + inbox_cursor_[to]++] =
            Message{e.from, WordSpan(arena + e.offset, e.len)};
      }
    }
    auto& pending = delayed_pending_[du];
    auto& live = delayed_live_[du];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      DelayedMessage& m = pending[i];
      if (m.due != due_round) {
        if (keep != i) pending[keep] = std::move(m);
        ++keep;
        continue;
      }
      if (crashed(m.to)) continue;  // dropped, matching the count pass
      live.push_back(std::move(m));
      const DelayedMessage& lm = live.back();
      const auto to = static_cast<std::size_t>(lm.to);
      Message* const begin = store + inbox_off_[to];
      Message* const end = begin + inbox_cursor_[to];
      Message* const pos = std::upper_bound(
          begin, end, lm.from,
          [](graph::NodeId id, const Message& msg) { return id < msg.from; });
      std::move_backward(pos, end, end + 1);
      *pos = Message{lm.from, WordSpan(lm.words.data(), lm.words.size())};
      ++inbox_cursor_[to];
    }
    pending.resize(keep);
#ifndef NDEBUG
    for (NodeId v = lo; v < hi; ++v) {
      assert(inbox_cursor_[static_cast<std::size_t>(v)] ==
                 inbox_count_[static_cast<std::size_t>(v)] &&
             "place pass disagrees with count pass");
    }
#endif
    if (pf != nullptr) {
      pf->shard_add(d, obs::PerfPhase::kDeliverPlace,
                    obs::PerfPlane::now_ns() - shard_t0);
    }
  };
  dispatch_shards(shards, place_shard);

  // Fold the shard-local channel counters into the global ones (a sum, so
  // the fold order cannot affect the result).
  if (impaired) {
    for (Channel::ShardState& st : channel_shards_) channel_.absorb(st);
  }
  lap(obs::PerfPhase::kDeliverPlace);
}

bool SyncNetwork::step() {
  // Observability is published at the sequential barriers only; `pl` stays
  // null on the default path, which then costs one branch per phase.
  obs::Plane* const pl = plane_;
  obs::Trace* const tr = pl != nullptr ? &pl->trace() : nullptr;
  const obs::Builtin* const b = pl != nullptr ? &pl->builtin() : nullptr;
  const std::int64_t executed_round = round_;
  if (pl != nullptr) sync_observability_shards();
  auto phase_span = [&](obs::NameId name) {
    return obs::SpanTimer(tr, obs::Category::kEngine, obs::Severity::kDebug,
                          name, executed_round);
  };

  // Perf attribution: the owner laps each sequential phase boundary; the
  // dispatched phases stage per-shard time from the workers (merged at
  // end_round in ascending shard order). pf stays null on the default path.
  obs::PerfPlane* const pf = perf_;
  const std::int64_t step_t0 = pf != nullptr ? obs::PerfPlane::now_ns() : 0;
  std::int64_t t_mark = step_t0;
  auto lap = [&](obs::PerfPhase phase) {
    if (pf == nullptr) return;
    const std::int64_t now = obs::PerfPlane::now_ns();
    pf->add(phase, now - t_mark);
    t_mark = now;
  };

  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_fault_apply : 0);
    apply_scheduled_events();
  }
  lap(obs::PerfPhase::kFaultApply);

  // Run every live, unhalted process against the inbox delivered at the end
  // of the previous round. Shards stage into disjoint state; everything
  // below the parallel region is sequential and shard-order merged, so the
  // outcome is independent of the thread count.
  const int shards = threads_;
  for (ShardStats& st : shard_stats_) st = ShardStats{};
  auto run_shard = [&](int s) {
    const auto [lo, hi] = shard_range(s);
    execute_nodes(lo, hi, s);
  };
  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_execute : 0);
    dispatch_shards(shards, run_shard);
  }
  lap(obs::PerfPhase::kCompute);

  std::int64_t round_messages = 0;
  std::int64_t round_words = 0;
  std::int64_t arena_words = 0;
  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_merge : 0);
    for (std::size_t s = 0; s < shard_stats_.size(); ++s) {
      const ShardStats& st = shard_stats_[s];
      round_messages += st.messages;
      round_words += st.words;
      metrics_.max_message_words =
          std::max(metrics_.max_message_words, st.max_words);
      running_count_ -= st.newly_halted;
      if (pf != nullptr) {
        pf->note_shard_work(static_cast<int>(s), st.nodes_run, st.messages);
      }
    }
    metrics_.messages_sent += round_messages;
    metrics_.words_sent += round_words;
    if (pl != nullptr) {
      // The registry receives the same merged deltas as metrics_, from this
      // same barrier — the two views cannot drift apart.
      pl->metrics().add(b->messages, round_messages);
      pl->metrics().add(b->words, round_words);
      for (const auto& arena : arena_cur_) {
        arena_words += static_cast<std::int64_t>(arena.size());
      }
      lap(obs::PerfPhase::kStatsMerge);
      pl->merge_shards();  // worker-staged process events, shard order
      span.set_args(round_messages, round_words);
    }
  }
  lap(obs::PerfPhase::kObsMerge);

  {
    obs::SpanTimer span = phase_span(b != nullptr ? b->n_deliver : 0);
    deliver_round(shards);  // laps kDeliverCount/Prefix/Place itself
  }
  if (pf != nullptr) t_mark = obs::PerfPlane::now_ns();

  // Generation swap: the arena just written now backs the new inboxes; the
  // one delivered two rounds ago is recycled for the next round's sends.
  // The delivered transfer lists keep their shape metadata so crash() can
  // index them even after a set_threads reshard.
  std::swap(arena_cur_, arena_prev_);
  std::swap(xfer_cur_, xfer_prev_);
  xfer_shards_prev_ = shards;
  xfer_block_prev_ = shard_block_;
  for (auto& list : xfer_cur_) list.clear();
  for (auto& arena : arena_cur_) arena.clear();
  const auto want_shards = static_cast<std::size_t>(threads_);
  arena_cur_.resize(want_shards);
  xfer_cur_.resize(want_shards * want_shards);
  shard_stats_.resize(want_shards);

  ++round_;
  metrics_.rounds = round_;

  if (pl != nullptr) {
    obs::Registry& reg = pl->metrics();
    reg.add(b->rounds, 1);
    const Channel::Counters& cc = channel_.counters();
    if (cc != published_) {
      reg.add(b->messages_lost, cc.dropped - published_.dropped);
      reg.add(b->messages_duplicated, cc.duplicated - published_.duplicated);
      reg.add(b->messages_reordered, cc.reordered - published_.reordered);
      published_ = cc;
    }
    reg.set(b->live_nodes, live_count_);
    reg.set(b->running_nodes, running_count_);
    reg.set(b->arena_words, arena_words);
    reg.set(b->max_message_words, metrics_.max_message_words);
    reg.record(b->messages_per_round, static_cast<double>(round_messages));
    obs::TraceEvent e;
    e.round = executed_round;
    e.category = obs::Category::kEngine;
    e.severity = obs::Severity::kInfo;
    e.name = b->n_round;
    e.a0 = round_messages;
    e.a1 = live_count_;
    tr->emit(e);
  }

  if (pf != nullptr) {
    lap(obs::PerfPhase::kFinalize);
    if (pool_ != nullptr) {
      // Pool scheduling overhead accumulated across this round's dispatches
      // (drained here, at a quiescent point — workers are parked).
      const util::ThreadPool::PerfCounters pc = pool_->drain_perf();
      pf->add(obs::PerfPhase::kBarrierWait, pc.barrier_wait_ns);
      pf->add(obs::PerfPhase::kClaimStall, pc.claim_stall_ns);
    }
    pf->end_round(executed_round, t_mark - step_t0);
  }

  check_counters();
  // Nobody running can still mean progress: pending rejoins wake the net.
  return running_count_ > 0 || !scheduled_recoveries_.empty();
}

std::int64_t SyncNetwork::run(std::int64_t max_rounds) {
  std::int64_t executed = 0;
  while (executed < max_rounds) {
    ++executed;
    if (!step()) break;
  }
  return executed;
}

void SyncNetwork::schedule_crash(graph::NodeId v, std::int64_t round) {
  assert(v >= 0 && v < graph_->n());
  // A crash in the past never happened, and a crashed node cannot crash
  // again (it may, however, rejoin and be re-crashed by a *later* schedule —
  // the liveness re-check happens in crash() at application time).
  if (round < round_ || crashed(v)) return;
  scheduled_crashes_.emplace_back(round, v);
}

void SyncNetwork::schedule_recovery(graph::NodeId v, std::int64_t round,
                                    std::unique_ptr<Process> process) {
  assert(v >= 0 && v < graph_->n());
  if (round < round_) return;
  scheduled_recoveries_.push_back({round, v, std::move(process)});
}

void SyncNetwork::set_channel(const ChannelOptions& options) {
  channel_.set_options(options, round_);  // validates
  reset_channel_shard_state();
}

void SyncNetwork::schedule_channel(std::int64_t round,
                                   const ChannelOptions& options) {
  options.validate();
  scheduled_channels_.emplace_back(round, options);
}

void SyncNetwork::set_message_loss(double loss, std::uint64_t loss_seed) {
  ChannelOptions options;
  options.loss = loss;
  options.seed = loss_seed;
  set_channel(options);
}

}  // namespace ftc::sim
