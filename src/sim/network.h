// Synchronous message-passing network simulator.
//
// Implements exactly the model of computation of the paper's Section 3:
// time is divided into rounds; in every round each node may send one message
// to each of its neighbors; messages sent in round r are delivered at the
// start of round r+1. Message size is accounted in words (see message.h) to
// audit the O(log n)-bits claim.
//
// Distributed algorithms are written as per-node `Process` objects that can
// only observe:
//   * their own id, degree, and sorted neighbor ids,
//   * global parameters the paper assumes known (n, Δ — see the Remark at
//     the end of Section 4.2),
//   * distances to neighbors when the network was built from a unit disk
//     graph (the distance-sensing assumption of Sections 3/5),
//   * their private random stream,
//   * the inbox of messages delivered this round.
//
// Crash faults: a node may be crashed at the start of any round; from then
// on it neither sends, receives, nor computes. Messages already in flight
// from it are dropped.
//
// Churn: a crashed node may later rejoin (recover / schedule_recovery) with
// a freshly constructed process — the fail-recover model where a restarted
// node retains no volatile protocol state. Rejoined nodes start with an
// empty inbox; their neighbors are not notified (detecting the rejoin is
// the protocols' job, e.g. via sim/heartbeat.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/message.h"
#include "util/rng.h"

namespace ftc::sim {

class SyncNetwork;

/// Execution statistics gathered by the network.
struct Metrics {
  std::int64_t rounds = 0;            ///< rounds executed
  std::int64_t messages_sent = 0;     ///< total messages
  std::int64_t words_sent = 0;        ///< total payload words
  std::int64_t max_message_words = 0; ///< largest single message
};

/// Backend interface through which a Context reaches its network. Both the
/// synchronous network (SyncNetwork) and the asynchronous executor
/// (async.h's AsyncNetwork, which wraps every process in an α-synchronizer)
/// implement it, so the same Process code runs unchanged on either.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  /// Topology the processes run on.
  [[nodiscard]] virtual const graph::Graph& backend_graph() const noexcept = 0;
  /// Embedding when built from a UDG; nullptr otherwise.
  [[nodiscard]] virtual const geom::UnitDiskGraph* backend_udg()
      const noexcept = 0;
  /// Queues a message for delivery (next round / next pulse).
  virtual void backend_send(graph::NodeId from, graph::NodeId to,
                            std::vector<Word> words) = 0;
};

/// The per-round view a process gets of its node. Provided by the network;
/// processes must not retain pointers past the round call.
class Context {
 public:
  /// This node's id.
  [[nodiscard]] graph::NodeId self() const noexcept { return self_; }
  /// Number of nodes in the network (globally known per the paper).
  [[nodiscard]] graph::NodeId n() const noexcept;
  /// Maximum degree Δ of the network (globally known per the paper).
  [[nodiscard]] graph::NodeId max_degree() const noexcept;
  /// This node's degree.
  [[nodiscard]] graph::NodeId degree() const noexcept;
  /// Sorted ids of this node's neighbors.
  [[nodiscard]] std::span<const graph::NodeId> neighbors() const noexcept;
  /// Current round number (0-based).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

  /// True when the network carries an embedding (distance sensing enabled).
  [[nodiscard]] bool has_distances() const noexcept;
  /// Euclidean distance to a neighbor. Precondition: has_distances() and
  /// `neighbor` is adjacent to self().
  [[nodiscard]] double distance_to(graph::NodeId neighbor) const;

  /// This node's private random stream (stable across rounds).
  [[nodiscard]] util::Rng& rng() noexcept { return *rng_; }

  /// Messages delivered to this node at the start of this round (sent by
  /// neighbors in the previous round).
  [[nodiscard]] const std::vector<Message>& inbox() const noexcept {
    return *inbox_;
  }

  /// Sends `words` to neighbor `to` (delivered next round). Precondition:
  /// `to` is adjacent to self(). At most one message per neighbor per round
  /// (the synchronous model); sending twice to the same neighbor asserts.
  void send(graph::NodeId to, std::vector<Word> words);

  /// Sends a copy of `words` to every neighbor.
  void broadcast(const std::vector<Word>& words);

 private:
  friend class SyncNetwork;
  friend class AsyncNetwork;
  NetworkBackend* net_ = nullptr;
  graph::NodeId self_ = -1;
  std::int64_t round_ = 0;
  util::Rng* rng_ = nullptr;
  const std::vector<Message>* inbox_ = nullptr;
};

/// Base class for per-node programs.
class Process {
 public:
  virtual ~Process() = default;

  /// Executes one synchronous round. Called once per round until halt().
  virtual void on_round(Context& ctx) = 0;

  /// True once the process has called halt(). A halted process no longer
  /// computes or sends, but its node still receives (and drops) messages.
  [[nodiscard]] bool halted() const noexcept { return halted_; }

 protected:
  /// Marks this process as finished. Terminates the network run once every
  /// non-crashed process has halted.
  void halt() noexcept { halted_ = true; }

 private:
  bool halted_ = false;
};

/// The synchronous network. Owns one Process per node.
class SyncNetwork final : public NetworkBackend {
 public:
  /// Builds a network over `g`. `seed` derives every node's private random
  /// stream; two runs with equal (graph, processes, seed) are identical.
  SyncNetwork(const graph::Graph& g, std::uint64_t seed);

  /// Builds a network over a unit disk graph, enabling distance sensing.
  /// The UnitDiskGraph must outlive the network.
  SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed);

  SyncNetwork(const SyncNetwork&) = delete;
  SyncNetwork& operator=(const SyncNetwork&) = delete;

  /// Installs the process for node v (replacing any previous one).
  void set_process(graph::NodeId v, std::unique_ptr<Process> process);

  /// Installs one process per node, built by `factory(v)`.
  template <typename Factory>
  void set_all_processes(Factory&& factory) {
    for (graph::NodeId v = 0; v < graph_->n(); ++v) {
      set_process(v, factory(v));
    }
  }

  /// Runs rounds until every live process has halted or `max_rounds` rounds
  /// have executed. Returns the number of rounds executed in this call.
  std::int64_t run(std::int64_t max_rounds);

  /// Executes a single round. Returns true if at least one live process is
  /// still running afterwards.
  bool step();

  /// Enables lossy links: every message is dropped independently with
  /// probability `loss` at delivery time (modeling the unreliable wireless
  /// medium the paper's introduction cites). Uses a dedicated random
  /// stream, so the processes' own randomness is unaffected. Set before
  /// running; 0 disables.
  void set_message_loss(double loss, std::uint64_t loss_seed = 0x10551055ULL);

  /// Messages dropped by the loss model so far.
  [[nodiscard]] std::int64_t messages_lost() const noexcept {
    return messages_lost_;
  }

  /// Crashes node v immediately: it stops computing and communicating, and
  /// any undelivered messages from it are dropped. Crashing an already
  /// crashed node is a no-op.
  void crash(graph::NodeId v);

  /// Schedules a crash of v at the start of round `round`. Scheduling a
  /// crash for a past round or for an already-crashed node is a no-op (and
  /// the crash is skipped if v is already down when the round arrives).
  void schedule_crash(graph::NodeId v, std::int64_t round);

  /// Revives v immediately with a freshly constructed process (churn
  /// rejoin): clears the crash flag and starts executing from the current
  /// round with an empty inbox. Also valid on a live node, where it merely
  /// replaces the process (back-to-back churn).
  void recover(graph::NodeId v, std::unique_ptr<Process> process);

  /// Schedules a rejoin of v at the start of round `round`, booting
  /// `process`. Scheduling for a past round is a no-op (the process is
  /// discarded). Pending recoveries keep run() going even when every live
  /// process has halted, so a network can drain a full churn schedule.
  void schedule_recovery(graph::NodeId v, std::int64_t round,
                         std::unique_ptr<Process> process);

  /// True if v has crashed.
  [[nodiscard]] bool crashed(graph::NodeId v) const noexcept {
    return crashed_[static_cast<std::size_t>(v)];
  }

  /// Number of currently live (non-crashed) nodes.
  [[nodiscard]] graph::NodeId live_count() const noexcept;

  /// The process installed at node v, downcast to T (checked by assert in
  /// debug builds via dynamic_cast).
  template <typename T>
  [[nodiscard]] T& process_as(graph::NodeId v) {
    auto* p = dynamic_cast<T*>(processes_[static_cast<std::size_t>(v)].get());
    assert(p != nullptr && "process_as: wrong process type");
    return *p;
  }

  /// Underlying graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Embedding, or nullptr when built from a plain graph.
  [[nodiscard]] const geom::UnitDiskGraph* udg() const noexcept { return udg_; }

  /// Execution statistics.
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Current round number (rounds executed since construction).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

 private:
  friend class Context;

  // NetworkBackend:
  [[nodiscard]] const graph::Graph& backend_graph() const noexcept override {
    return *graph_;
  }
  [[nodiscard]] const geom::UnitDiskGraph* backend_udg()
      const noexcept override {
    return udg_;
  }
  void backend_send(graph::NodeId from, graph::NodeId to,
                    std::vector<Word> words) override;

  void apply_scheduled_events();

  const graph::Graph* graph_ = nullptr;
  const geom::UnitDiskGraph* udg_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<util::Rng> rngs_;
  std::vector<std::vector<Message>> inboxes_;   // delivered this round
  std::vector<std::vector<Message>> outboxes_;  // being sent this round
  std::vector<bool> sent_to_;  // per-round guard: one message per edge
  std::vector<bool> crashed_;
  std::vector<std::pair<std::int64_t, graph::NodeId>> scheduled_crashes_;
  struct ScheduledRecovery {
    std::int64_t round = 0;
    graph::NodeId node = -1;
    std::unique_ptr<Process> process;
  };
  std::vector<ScheduledRecovery> scheduled_recoveries_;
  double message_loss_ = 0.0;
  util::Rng loss_rng_{0};
  std::int64_t messages_lost_ = 0;
  std::int64_t round_ = 0;
  Metrics metrics_;
};

}  // namespace ftc::sim
