// Synchronous message-passing network simulator.
//
// Implements exactly the model of computation of the paper's Section 3:
// time is divided into rounds; in every round each node may send one message
// to each of its neighbors; messages sent in round r are delivered at the
// start of round r+1. Message size is accounted in words (see message.h) to
// audit the O(log n)-bits claim.
//
// Distributed algorithms are written as per-node `Process` objects that can
// only observe:
//   * their own id, degree, and sorted neighbor ids,
//   * global parameters the paper assumes known (n, Δ — see the Remark at
//     the end of Section 4.2),
//   * distances to neighbors when the network was built from a unit disk
//     graph (the distance-sensing assumption of Sections 3/5),
//   * their private random stream,
//   * the inbox of messages delivered this round.
//
// Crash faults: a node may be crashed at the start of any round; from then
// on it neither sends, receives, nor computes. Messages already in flight
// from it are dropped.
//
// Churn: a crashed node may later rejoin (recover / schedule_recovery) with
// a freshly constructed process — the fail-recover model where a restarted
// node retains no volatile protocol state. Rejoined nodes start with an
// empty inbox; their neighbors are not notified (detecting the rejoin is
// the protocols' job, e.g. via sim/heartbeat.h).
//
// Throughput architecture (see DESIGN.md "Simulator performance"):
//   * Message plane: payloads live in per-round word arenas; an inbox is a
//     flat list of (sender, payload-view) pairs pointing into the arena of
//     the round the message was sent in. A broadcast writes its payload
//     once and every receiver's view aliases it — no per-neighbor copies.
//   * Delivery iterates senders in ascending id order, so every inbox comes
//     out sorted by sender with no per-inbox sort.
//   * Parallel round engine: nodes are sharded over a persistent thread
//     pool; each shard stages sends into its own arena and per-sender
//     outboxes, and the sequential delivery/merge pass is identical for
//     every thread count — results are bitwise equal to sequential
//     execution for the same (graph, processes, seed).
//   * Liveness/termination are maintained counters (no O(n) scans), and
//     in-flight messages are indexed by sender so crash() drops them
//     without scanning every queue.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/channel.h"
#include "sim/message.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftc::sim {

class SyncNetwork;

/// Execution statistics gathered by the network.
///
/// These counters are a fixed-cost convenience view; when an observability
/// plane is attached (set_observability) the network publishes the *same*
/// merged per-round deltas into the plane's registry from the same barrier
/// code path, so the struct and the registry cannot drift apart — asserted
/// by the ObsWiring tests.
struct Metrics {
  std::int64_t rounds = 0;            ///< rounds executed
  std::int64_t messages_sent = 0;     ///< total messages
  std::int64_t words_sent = 0;        ///< total payload words
  std::int64_t max_message_words = 0; ///< largest single message

  /// Zeroes every counter.
  void reset() noexcept { *this = Metrics{}; }

  friend bool operator==(const Metrics&, const Metrics&) = default;
};

/// Backend interface through which a Context reaches its network. Both the
/// synchronous network (SyncNetwork) and the asynchronous executor
/// (async.h's AsyncNetwork, which wraps every process in an α-synchronizer)
/// implement it, so the same Process code runs unchanged on either.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  /// Topology the processes run on.
  [[nodiscard]] virtual const graph::Graph& backend_graph() const noexcept = 0;
  /// Embedding when built from a UDG; nullptr otherwise.
  [[nodiscard]] virtual const geom::UnitDiskGraph* backend_udg()
      const noexcept = 0;
  /// Queues a message for delivery (next round / next pulse). The words are
  /// copied out before returning; the span need not outlive the call.
  virtual void backend_send(graph::NodeId from, graph::NodeId to,
                            std::span<const Word> words) = 0;
  /// Queues one message per neighbor of `from`, all carrying `words`. The
  /// default forwards to backend_send per neighbor; SyncNetwork overrides it
  /// to store the payload once and fan out views.
  virtual void backend_broadcast(graph::NodeId from,
                                 std::span<const Word> words);
};

/// The per-round view a process gets of its node. Provided by the network;
/// processes must not retain pointers past the round call.
class Context {
 public:
  /// This node's id.
  [[nodiscard]] graph::NodeId self() const noexcept { return self_; }
  /// Number of nodes in the network (globally known per the paper).
  [[nodiscard]] graph::NodeId n() const noexcept;
  /// Maximum degree Δ of the network (globally known per the paper).
  [[nodiscard]] graph::NodeId max_degree() const noexcept;
  /// This node's degree.
  [[nodiscard]] graph::NodeId degree() const noexcept;
  /// Sorted ids of this node's neighbors.
  [[nodiscard]] std::span<const graph::NodeId> neighbors() const noexcept;
  /// Current round number (0-based).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

  /// True when the network carries an embedding (distance sensing enabled).
  [[nodiscard]] bool has_distances() const noexcept;
  /// Euclidean distance to a neighbor. Precondition: has_distances() and
  /// `neighbor` is adjacent to self().
  [[nodiscard]] double distance_to(graph::NodeId neighbor) const;

  /// This node's private random stream (stable across rounds).
  [[nodiscard]] util::Rng& rng() noexcept { return *rng_; }

  /// Shard-bound observability recorder, or nullptr when no plane is
  /// attached. Everything a process emits through it stages into its shard
  /// and merges deterministically at the round barrier, so instrumentation
  /// cannot perturb the set_threads determinism contract.
  [[nodiscard]] obs::Recorder* obs() const noexcept { return obs_; }

  /// Messages delivered to this node at the start of this round (sent by
  /// neighbors in the previous round), sorted by sender id. The views are
  /// only valid for the duration of this on_round() call.
  [[nodiscard]] std::span<const Message> inbox() const noexcept {
    return inbox_;
  }

  /// Sends `words` to neighbor `to` (delivered next round). Precondition:
  /// `to` is adjacent to self(). At most one message per neighbor per round
  /// (the synchronous model); sending twice to the same neighbor asserts.
  void send(graph::NodeId to, std::span<const Word> words);
  void send(graph::NodeId to, std::initializer_list<Word> words) {
    send(to, std::span<const Word>(words.begin(), words.size()));
  }

  /// Sends `words` to every neighbor. The payload is stored once and shared
  /// by all receivers (metrics still account one message per neighbor).
  void broadcast(std::span<const Word> words);
  void broadcast(std::initializer_list<Word> words) {
    broadcast(std::span<const Word>(words.begin(), words.size()));
  }

 private:
  friend class SyncNetwork;
  friend class AsyncNetwork;
  NetworkBackend* net_ = nullptr;
  graph::NodeId self_ = -1;
  std::int64_t round_ = 0;
  util::Rng* rng_ = nullptr;
  obs::Recorder* obs_ = nullptr;
  std::span<const Message> inbox_;
};

/// Base class for per-node programs.
class Process {
 public:
  virtual ~Process() = default;

  /// Executes one synchronous round. Called once per round until halt().
  virtual void on_round(Context& ctx) = 0;

  /// True once the process has called halt(). A halted process no longer
  /// computes or sends, but its node still receives (and drops) messages.
  [[nodiscard]] bool halted() const noexcept { return halted_; }

 protected:
  /// Marks this process as finished. Terminates the network run once every
  /// non-crashed process has halted.
  void halt() noexcept { halted_ = true; }

 private:
  bool halted_ = false;
};

/// The synchronous network. Owns one Process per node.
class SyncNetwork final : public NetworkBackend {
 public:
  /// Builds a network over `g`. `seed` derives every node's private random
  /// stream; two runs with equal (graph, processes, seed) are identical.
  SyncNetwork(const graph::Graph& g, std::uint64_t seed);

  /// Builds a network over a unit disk graph, enabling distance sensing.
  /// The UnitDiskGraph must outlive the network.
  SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed);

  SyncNetwork(const SyncNetwork&) = delete;
  SyncNetwork& operator=(const SyncNetwork&) = delete;
  ~SyncNetwork() override;

  /// Installs the process for node v (replacing any previous one).
  void set_process(graph::NodeId v, std::unique_ptr<Process> process);

  /// Installs one process per node, built by `factory(v)`.
  template <typename Factory>
  void set_all_processes(Factory&& factory) {
    for (graph::NodeId v = 0; v < graph_->n(); ++v) {
      set_process(v, factory(v));
    }
  }

  /// Selects the parallel round engine: on_round() calls are sharded over
  /// `threads` persistent worker threads (1 = sequential, the default; 0 =
  /// one per hardware thread). Results are bitwise identical for every
  /// value — same process states, metrics, inbox orders, and RNG draws —
  /// because rounds stage per-shard state that is merged in a fixed order.
  /// May be called between rounds at any time.
  void set_threads(int threads);

  /// Execution streams step() currently uses.
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Attaches an observability plane (metrics registry + structured trace);
  /// nullptr detaches. The plane must outlive the network. All publication
  /// happens at the sequential round barrier (per-shard staging merged in
  /// shard order), so attaching a plane preserves the bitwise determinism
  /// of set_threads; wall-clock timings only ever reach the Chrome trace
  /// exporter, never the deterministic JSONL stream.
  void set_observability(obs::Plane* plane);

  /// The attached plane, or nullptr.
  [[nodiscard]] obs::Plane* observability() const noexcept { return plane_; }

  /// Runs rounds until every live process has halted or `max_rounds` rounds
  /// have executed. Returns the number of rounds executed in this call.
  std::int64_t run(std::int64_t max_rounds);

  /// Executes a single round. Returns true if at least one live process is
  /// still running afterwards.
  bool step();

  /// Installs a link-impairment model (loss, asymmetry, bursts,
  /// duplication, bounded reordering — see sim/channel.h) effective from
  /// the current round. Decisions are stateless-hashed per (link, round),
  /// so the set_threads determinism contract is unaffected. Throws
  /// std::invalid_argument on invalid options. Default: clean channel.
  void set_channel(const ChannelOptions& options);

  /// Schedules a channel reconfiguration at the start of `round` (e.g. a
  /// FaultPlan link-fault window opening or closing). Scheduling for a past
  /// round applies immediately at the next step.
  void schedule_channel(std::int64_t round, const ChannelOptions& options);

  /// The active channel model (counters included).
  [[nodiscard]] const Channel& channel() const noexcept { return channel_; }

  /// Enables iid lossy links: every message is dropped independently with
  /// probability `loss` at delivery time (modeling the unreliable wireless
  /// medium the paper's introduction cites). Sugar for set_channel with
  /// only `loss` set; the processes' own randomness is unaffected.
  void set_message_loss(double loss, std::uint64_t loss_seed = 0x10551055ULL);

  /// Messages dropped by the channel so far.
  [[nodiscard]] std::int64_t messages_lost() const noexcept {
    return channel_.counters().dropped;
  }

  /// Crashes node v immediately: it stops computing and communicating, and
  /// any undelivered messages from it are dropped. Crashing an already
  /// crashed node is a no-op.
  void crash(graph::NodeId v);

  /// Schedules a crash of v at the start of round `round`. Scheduling a
  /// crash for a past round or for an already-crashed node is a no-op (and
  /// the crash is skipped if v is already down when the round arrives).
  void schedule_crash(graph::NodeId v, std::int64_t round);

  /// Revives v immediately with a freshly constructed process (churn
  /// rejoin): clears the crash flag and starts executing from the current
  /// round with an empty inbox. Also valid on a live node, where it merely
  /// replaces the process (back-to-back churn).
  void recover(graph::NodeId v, std::unique_ptr<Process> process);

  /// Schedules a rejoin of v at the start of round `round`, booting
  /// `process`. Scheduling for a past round is a no-op (the process is
  /// discarded). Pending recoveries keep run() going even when every live
  /// process has halted, so a network can drain a full churn schedule.
  void schedule_recovery(graph::NodeId v, std::int64_t round,
                         std::unique_ptr<Process> process);

  /// True if v has crashed.
  [[nodiscard]] bool crashed(graph::NodeId v) const noexcept {
    return crashed_[static_cast<std::size_t>(v)];
  }

  /// Number of currently live (non-crashed) nodes. O(1): maintained as a
  /// counter, cross-checked against a scan in debug builds.
  [[nodiscard]] graph::NodeId live_count() const noexcept;

  /// The process installed at node v, downcast to T (checked by assert in
  /// debug builds via dynamic_cast).
  template <typename T>
  [[nodiscard]] T& process_as(graph::NodeId v) {
    auto* p = dynamic_cast<T*>(processes_[static_cast<std::size_t>(v)].get());
    assert(p != nullptr && "process_as: wrong process type");
    return *p;
  }

  /// Underlying graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Embedding, or nullptr when built from a plain graph.
  [[nodiscard]] const geom::UnitDiskGraph* udg() const noexcept { return udg_; }

  /// Execution statistics.
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Current round number (rounds executed since construction).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

 private:
  friend class Context;

  /// One queued message: `to` plus the payload's location in the sending
  /// shard's arena. Kept per sender, which (a) makes sender-ascending
  /// delivery — and therefore sorted inboxes — a linear merge, and (b) lets
  /// crash() find a sender's in-flight messages without scanning.
  struct OutEntry {
    graph::NodeId to = -1;
    std::uint32_t shard = 0;
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  /// Per-shard accumulators staged during the parallel phase of a round and
  /// merged sequentially afterwards (fixed order ⇒ determinism).
  struct ShardStats {
    std::int64_t messages = 0;
    std::int64_t words = 0;
    std::int64_t max_words = 0;
    std::int64_t newly_halted = 0;
  };

  // NetworkBackend:
  [[nodiscard]] const graph::Graph& backend_graph() const noexcept override {
    return *graph_;
  }
  [[nodiscard]] const geom::UnitDiskGraph* backend_udg()
      const noexcept override {
    return udg_;
  }
  void backend_send(graph::NodeId from, graph::NodeId to,
                    std::span<const Word> words) override;
  void backend_broadcast(graph::NodeId from,
                         std::span<const Word> words) override;

  void apply_scheduled_events();

  /// Shard owning node v's sends this round.
  [[nodiscard]] std::uint32_t shard_of(graph::NodeId v) const noexcept {
    return static_cast<std::uint32_t>(static_cast<std::size_t>(v) /
                                      shard_block_);
  }

  /// Runs on_round() for every live, unhalted process in [begin, end).
  void execute_nodes(graph::NodeId begin, graph::NodeId end, int shard);

  /// Moves this round's outboxes into next round's inboxes (sender-major ⇒
  /// sorted by sender), applying loss and crashed-receiver drops.
  void deliver_round();

  /// True iff v's process exists, has not halted, and v is live — i.e. v
  /// contributes to running_count_.
  [[nodiscard]] bool counts_as_running(graph::NodeId v) const noexcept {
    const auto idx = static_cast<std::size_t>(v);
    return processes_[idx] != nullptr && !processes_[idx]->halted() &&
           !crashed_[idx];
  }

  /// Debug-only O(n) cross-check of live_count_ / running_count_.
  void check_counters() const noexcept;

  const graph::Graph* graph_ = nullptr;
  const geom::UnitDiskGraph* udg_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<util::Rng> rngs_;

  // Message plane. Double-buffered: processes read views into the `prev`
  // generation (what was delivered to them) while their sends fill `cur`.
  std::vector<std::vector<Message>> inboxes_;       // views into arena_prev_
  std::vector<std::vector<Word>> arena_cur_;        // one per shard
  std::vector<std::vector<Word>> arena_prev_;
  std::vector<std::vector<OutEntry>> out_cur_;      // queued, per sender
  std::vector<std::vector<OutEntry>> out_prev_;     // delivered, per sender
  std::vector<ShardStats> shard_stats_;             // one per shard
  // Nodes that sent this round, per shard in ascending id order (shards
  // cover ascending contiguous ranges, so concatenating the lists in shard
  // order enumerates all senders in ascending order — this is what makes
  // delivery produce sorted inboxes in O(messages) with no sort, and lets
  // the round-end cleanup touch only nodes that actually communicated).
  std::vector<std::vector<graph::NodeId>> shard_senders_cur_;
  std::vector<std::vector<graph::NodeId>> shard_senders_prev_;
  std::vector<graph::NodeId> receivers_;  // nodes with a nonempty inbox

  // Parallel engine.
  int threads_ = 1;
  std::size_t shard_block_ = 1;  ///< nodes per shard (ceil(n / shards))
  std::unique_ptr<util::ThreadPool> pool_;

  std::vector<bool> crashed_;
  graph::NodeId live_count_ = 0;      ///< nodes with crashed_[v] == false
  std::int64_t running_count_ = 0;    ///< nodes where counts_as_running()
  std::vector<std::pair<std::int64_t, graph::NodeId>> scheduled_crashes_;
  struct ScheduledRecovery {
    std::int64_t round = 0;
    graph::NodeId node = -1;
    std::unique_ptr<Process> process;
  };
  std::vector<ScheduledRecovery> scheduled_recoveries_;
  std::vector<std::pair<std::int64_t, ChannelOptions>> scheduled_channels_;

  // Unreliable channel. Delayed (reordered/duplicated) deliveries cannot
  // alias the round arenas — they outlive the generation swap — so each
  // owns its payload. `delayed_live_` holds the copies whose views sit in
  // current inboxes (the inner word vectors are heap buffers, stable under
  // the outer vector's growth); `delayed_pending_` holds copies still in
  // flight.
  struct DelayedMessage {
    std::int64_t due = 0;  ///< round whose inbox receives the message
    graph::NodeId from = -1;
    graph::NodeId to = -1;
    std::vector<Word> words;
  };
  Channel channel_;
  std::vector<DelayedMessage> delayed_pending_;
  std::vector<DelayedMessage> delayed_live_;

  std::int64_t round_ = 0;
  Metrics metrics_;

  // Observability (null = disabled; the hot path then costs one branch per
  // round phase plus one pointer store per node context).
  obs::Plane* plane_ = nullptr;
  std::vector<obs::Recorder> recorders_;     ///< one per shard
  Channel::Counters published_;              ///< channel counters already published

  /// (Re)sizes the plane's shard staging and recorders to threads_.
  void sync_observability_shards();
};

}  // namespace ftc::sim
