// Synchronous message-passing network simulator.
//
// Implements exactly the model of computation of the paper's Section 3:
// time is divided into rounds; in every round each node may send one message
// to each of its neighbors; messages sent in round r are delivered at the
// start of round r+1. Message size is accounted in words (see message.h) to
// audit the O(log n)-bits claim.
//
// Distributed algorithms are written as per-node `Process` objects that can
// only observe:
//   * their own id, degree, and sorted neighbor ids,
//   * global parameters the paper assumes known (n, Δ — see the Remark at
//     the end of Section 4.2),
//   * distances to neighbors when the network was built from a unit disk
//     graph (the distance-sensing assumption of Sections 3/5),
//   * their private random stream,
//   * the inbox of messages delivered this round.
//
// Crash faults: a node may be crashed at the start of any round; from then
// on it neither sends, receives, nor computes. Messages already in flight
// from it are dropped.
//
// Churn: a crashed node may later rejoin (recover / schedule_recovery) with
// a freshly constructed process — the fail-recover model where a restarted
// node retains no volatile protocol state. Rejoined nodes start with an
// empty inbox; their neighbors are not notified (detecting the rejoin is
// the protocols' job, e.g. via sim/heartbeat.h).
//
// Throughput architecture (see DESIGN.md "Simulator performance" and
// "Million-node rounds"):
//   * Message plane: payloads live in per-round word arenas; an inbox is a
//     contiguous run of (sender, payload-view) pairs in one flat per-round
//     store, pointing into the arena of the round the message was sent in.
//     A broadcast writes its payload once and every receiver's view aliases
//     it — no per-neighbor copies.
//   * Two-phase shard-owned delivery: during the compute phase each sender
//     shard stages (from, to, payload) transfer entries into per-destination
//     -shard lists it exclusively owns. Delivery is then two parallel passes
//     over destination shards — count (incoming messages per receiver,
//     channel verdicts) and place (counting-sort into the flat inbox store)
//     — separated only by an O(shards) sequential prefix sum. No phase
//     writes another shard's state and no serial section is proportional to
//     the message count.
//   * Inboxes come out sorted by sender with no per-inbox sort: shards own
//     ascending contiguous node ranges and nodes execute in ascending order
//     within a shard, so concatenating a receiver's incoming per-shard lists
//     in shard order enumerates its senders in ascending order.
//   * Structure-of-arrays node state: the per-node hot fields (crash/halt/
//     has-process flags, inbox offsets and lengths, RNG streams) live in
//     contiguous arrays indexed by node id, shard-contiguous, so the round
//     loop streams them instead of chasing per-node objects.
//   * Bitwise determinism at every set_threads width: every parallel phase
//     writes only shard-owned state in a fixed per-shard order, channel
//     verdicts are stateless hashes of (link, round), and the tiny
//     sequential merges between phases run in fixed shard order.
//   * Auto-sequential fallback: when shards are smaller than the parallel
//     grain (set_parallel_grain), rounds run the same staged code inline —
//     bitwise-identically — instead of paying pool dispatch latency.
//   * Liveness/termination are maintained counters (no O(n) scans), and
//     in-flight messages are indexed by (sender shard, destination shard)
//     with sender-ascending lists, so crash() drops them with binary
//     searches instead of scanning every queue.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/channel.h"
#include "sim/message.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftc::sim {

class SyncNetwork;

/// Execution statistics gathered by the network.
///
/// These counters are a fixed-cost convenience view; when an observability
/// plane is attached (set_observability) the network publishes the *same*
/// merged per-round deltas into the plane's registry from the same barrier
/// code path, so the struct and the registry cannot drift apart — asserted
/// by the ObsWiring tests.
struct Metrics {
  std::int64_t rounds = 0;            ///< rounds executed
  std::int64_t messages_sent = 0;     ///< total messages
  std::int64_t words_sent = 0;        ///< total payload words
  std::int64_t max_message_words = 0; ///< largest single message

  /// Zeroes every counter.
  void reset() noexcept { *this = Metrics{}; }

  friend bool operator==(const Metrics&, const Metrics&) = default;
};

/// Backend interface through which a Context reaches its network. Both the
/// synchronous network (SyncNetwork) and the asynchronous executor
/// (async.h's AsyncNetwork, which wraps every process in an α-synchronizer)
/// implement it, so the same Process code runs unchanged on either.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  /// Topology the processes run on.
  [[nodiscard]] virtual const graph::Graph& backend_graph() const noexcept = 0;
  /// Embedding when built from a UDG; nullptr otherwise.
  [[nodiscard]] virtual const geom::UnitDiskGraph* backend_udg()
      const noexcept = 0;
  /// Queues a message for delivery (next round / next pulse). The words are
  /// copied out before returning; the span need not outlive the call.
  virtual void backend_send(graph::NodeId from, graph::NodeId to,
                            std::span<const Word> words) = 0;
  /// Queues one message per neighbor of `from`, all carrying `words`. The
  /// default forwards to backend_send per neighbor; SyncNetwork overrides it
  /// to store the payload once and fan out views.
  virtual void backend_broadcast(graph::NodeId from,
                                 std::span<const Word> words);
};

/// The per-round view a process gets of its node. Provided by the network;
/// processes must not retain pointers past the round call.
class Context {
 public:
  /// This node's id.
  [[nodiscard]] graph::NodeId self() const noexcept { return self_; }
  /// Number of nodes in the network (globally known per the paper).
  [[nodiscard]] graph::NodeId n() const noexcept;
  /// Maximum degree Δ of the network (globally known per the paper).
  [[nodiscard]] graph::NodeId max_degree() const noexcept;
  /// This node's degree.
  [[nodiscard]] graph::NodeId degree() const noexcept;
  /// Sorted ids of this node's neighbors.
  [[nodiscard]] std::span<const graph::NodeId> neighbors() const noexcept;
  /// Current round number (0-based).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

  /// True when the network carries an embedding (distance sensing enabled).
  [[nodiscard]] bool has_distances() const noexcept;
  /// Euclidean distance to a neighbor. Precondition: has_distances() and
  /// `neighbor` is adjacent to self().
  [[nodiscard]] double distance_to(graph::NodeId neighbor) const;

  /// This node's private random stream (stable across rounds).
  [[nodiscard]] util::Rng& rng() noexcept { return *rng_; }

  /// Shard-bound observability recorder, or nullptr when no plane is
  /// attached. Everything a process emits through it stages into its shard
  /// and merges deterministically at the round barrier, so instrumentation
  /// cannot perturb the set_threads determinism contract.
  [[nodiscard]] obs::Recorder* obs() const noexcept { return obs_; }

  /// Messages delivered to this node at the start of this round (sent by
  /// neighbors in the previous round), sorted by sender id. The views are
  /// only valid for the duration of this on_round() call.
  [[nodiscard]] std::span<const Message> inbox() const noexcept {
    return inbox_;
  }

  /// Sends `words` to neighbor `to` (delivered next round). Precondition:
  /// `to` is adjacent to self(). At most one message per neighbor per round
  /// (the synchronous model); sending twice to the same neighbor asserts.
  void send(graph::NodeId to, std::span<const Word> words);
  void send(graph::NodeId to, std::initializer_list<Word> words) {
    send(to, std::span<const Word>(words.begin(), words.size()));
  }

  /// Sends `words` to every neighbor. The payload is stored once and shared
  /// by all receivers (metrics still account one message per neighbor).
  void broadcast(std::span<const Word> words);
  void broadcast(std::initializer_list<Word> words) {
    broadcast(std::span<const Word>(words.begin(), words.size()));
  }

 private:
  friend class SyncNetwork;
  friend class AsyncNetwork;
  NetworkBackend* net_ = nullptr;
  graph::NodeId self_ = -1;
  std::int64_t round_ = 0;
  util::Rng* rng_ = nullptr;
  obs::Recorder* obs_ = nullptr;
  std::span<const Message> inbox_;
};

/// Base class for per-node programs.
class Process {
 public:
  virtual ~Process() = default;

  /// Executes one synchronous round. Called once per round until halt().
  virtual void on_round(Context& ctx) = 0;

  /// True once the process has called halt(). A halted process no longer
  /// computes or sends, but its node still receives (and drops) messages.
  [[nodiscard]] bool halted() const noexcept { return halted_; }

 protected:
  /// Marks this process as finished. Terminates the network run once every
  /// non-crashed process has halted.
  void halt() noexcept { halted_ = true; }

 private:
  bool halted_ = false;
};

/// The synchronous network. Owns one Process per node.
class SyncNetwork final : public NetworkBackend {
 public:
  /// Builds a network over `g`. `seed` derives every node's private random
  /// stream; two runs with equal (graph, processes, seed) are identical.
  SyncNetwork(const graph::Graph& g, std::uint64_t seed);

  /// Builds a network over a unit disk graph, enabling distance sensing.
  /// The UnitDiskGraph must outlive the network.
  SyncNetwork(const geom::UnitDiskGraph& udg, std::uint64_t seed);

  SyncNetwork(const SyncNetwork&) = delete;
  SyncNetwork& operator=(const SyncNetwork&) = delete;
  ~SyncNetwork() override;

  /// Installs the process for node v (replacing any previous one).
  void set_process(graph::NodeId v, std::unique_ptr<Process> process);

  /// Installs one process per node, built by `factory(v)`.
  template <typename Factory>
  void set_all_processes(Factory&& factory) {
    for (graph::NodeId v = 0; v < graph_->n(); ++v) {
      set_process(v, factory(v));
    }
  }

  /// Selects the parallel round engine: on_round() calls are sharded over
  /// `threads` persistent worker threads (1 = sequential, the default; 0 =
  /// one per hardware thread). Results are bitwise identical for every
  /// value — same process states, metrics, inbox orders, and RNG draws —
  /// because rounds stage per-shard state that is merged in a fixed order.
  /// May be called between rounds at any time.
  void set_threads(int threads);

  /// Execution streams step() currently uses.
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Minimum nodes-per-shard for which step() dispatches to the thread
  /// pool. Below it the same sharded phases run inline on the caller —
  /// bitwise-identically, since the parallel phases only write shard-owned
  /// state merged in fixed order either way — which is faster when shards
  /// are too small to repay a pool wakeup (the small-n regression in
  /// BENCH_simcore.json). 0 forces the pool whenever threads() > 1; tests
  /// use that to compare both paths. Default: kDefaultParallelGrain.
  void set_parallel_grain(std::size_t nodes_per_shard) noexcept {
    parallel_grain_ = nodes_per_shard;
  }
  [[nodiscard]] std::size_t parallel_grain() const noexcept {
    return parallel_grain_;
  }

  /// Default set_parallel_grain threshold: with fewer nodes per shard than
  /// this, a round's per-shard work is in the microsecond range and pool
  /// dispatch overhead dominates any speedup.
  static constexpr std::size_t kDefaultParallelGrain = 4096;

  /// Attaches an observability plane (metrics registry + structured trace);
  /// nullptr detaches. The plane must outlive the network. All publication
  /// happens at the sequential round barrier (per-shard staging merged in
  /// shard order), so attaching a plane preserves the bitwise determinism
  /// of set_threads; wall-clock timings only ever reach the Chrome trace
  /// exporter, never the deterministic JSONL stream.
  void set_observability(obs::Plane* plane);

  /// The attached plane, or nullptr.
  [[nodiscard]] obs::Plane* observability() const noexcept { return plane_; }

  /// Runs rounds until every live process has halted or `max_rounds` rounds
  /// have executed. Returns the number of rounds executed in this call.
  std::int64_t run(std::int64_t max_rounds);

  /// Executes a single round. Returns true if at least one live process is
  /// still running afterwards.
  bool step();

  /// Installs a link-impairment model (loss, asymmetry, bursts,
  /// duplication, bounded reordering — see sim/channel.h) effective from
  /// the current round. Decisions are stateless-hashed per (link, round),
  /// so the set_threads determinism contract is unaffected. Throws
  /// std::invalid_argument on invalid options. Default: clean channel.
  void set_channel(const ChannelOptions& options);

  /// Schedules a channel reconfiguration at the start of `round` (e.g. a
  /// FaultPlan link-fault window opening or closing). Scheduling for a past
  /// round applies immediately at the next step.
  void schedule_channel(std::int64_t round, const ChannelOptions& options);

  /// The active channel model (counters included).
  [[nodiscard]] const Channel& channel() const noexcept { return channel_; }

  /// Enables iid lossy links: every message is dropped independently with
  /// probability `loss` at delivery time (modeling the unreliable wireless
  /// medium the paper's introduction cites). Sugar for set_channel with
  /// only `loss` set; the processes' own randomness is unaffected.
  void set_message_loss(double loss, std::uint64_t loss_seed = 0x10551055ULL);

  /// Messages dropped by the channel so far.
  [[nodiscard]] std::int64_t messages_lost() const noexcept {
    return channel_.counters().dropped;
  }

  /// Crashes node v immediately: it stops computing and communicating, and
  /// any undelivered messages from it are dropped. Crashing an already
  /// crashed node is a no-op.
  void crash(graph::NodeId v);

  /// Schedules a crash of v at the start of round `round`. Scheduling a
  /// crash for a past round or for an already-crashed node is a no-op (and
  /// the crash is skipped if v is already down when the round arrives).
  void schedule_crash(graph::NodeId v, std::int64_t round);

  /// Revives v immediately with a freshly constructed process (churn
  /// rejoin): clears the crash flag and starts executing from the current
  /// round with an empty inbox. Also valid on a live node, where it merely
  /// replaces the process (back-to-back churn).
  void recover(graph::NodeId v, std::unique_ptr<Process> process);

  /// Schedules a rejoin of v at the start of round `round`, booting
  /// `process`. Scheduling for a past round is a no-op (the process is
  /// discarded). Pending recoveries keep run() going even when every live
  /// process has halted, so a network can drain a full churn schedule.
  void schedule_recovery(graph::NodeId v, std::int64_t round,
                         std::unique_ptr<Process> process);

  /// True if v has crashed.
  [[nodiscard]] bool crashed(graph::NodeId v) const noexcept {
    return (node_flags_[static_cast<std::size_t>(v)] & kNodeCrashed) != 0;
  }

  /// Number of currently live (non-crashed) nodes. O(1): maintained as a
  /// counter, cross-checked against a scan in debug builds.
  [[nodiscard]] graph::NodeId live_count() const noexcept;

  /// The process installed at node v, downcast to T (checked by assert in
  /// debug builds via dynamic_cast).
  template <typename T>
  [[nodiscard]] T& process_as(graph::NodeId v) {
    auto* p = dynamic_cast<T*>(processes_[static_cast<std::size_t>(v)].get());
    assert(p != nullptr && "process_as: wrong process type");
    return *p;
  }

  /// Underlying graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Embedding, or nullptr when built from a plain graph.
  [[nodiscard]] const geom::UnitDiskGraph* udg() const noexcept { return udg_; }

  /// Execution statistics.
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Current round number (rounds executed since construction).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

 private:
  friend class Context;

  // Per-node flag bits (node_flags_). A node executes a round iff its flags
  // equal exactly kNodeHasProcess — one byte compare in the hot loop instead
  // of three pointer/bool loads.
  static constexpr std::uint8_t kNodeCrashed = 1u << 0;
  static constexpr std::uint8_t kNodeHalted = 1u << 1;
  static constexpr std::uint8_t kNodeHasProcess = 1u << 2;

  /// One staged message: sender, receiver, and the payload's location in
  /// the sending shard's arena. Lists are kept per (sender shard,
  /// destination shard) pair; within a list entries are sender-ascending
  /// (nodes execute in ascending order within their shard), which (a) makes
  /// per-receiver sender-sorted inboxes a counting sort, and (b) lets
  /// crash() binary-search a sender's in-flight messages.
  struct XferEntry {
    graph::NodeId from = -1;
    graph::NodeId to = -1;
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  /// Per-shard accumulators staged during the parallel phase of a round and
  /// merged sequentially afterwards (fixed order ⇒ determinism).
  struct ShardStats {
    std::int64_t messages = 0;
    std::int64_t words = 0;
    std::int64_t max_words = 0;
    std::int64_t newly_halted = 0;
    std::int64_t nodes_run = 0;  ///< processes executed (straggler telemetry)
  };

  // NetworkBackend:
  [[nodiscard]] const graph::Graph& backend_graph() const noexcept override {
    return *graph_;
  }
  [[nodiscard]] const geom::UnitDiskGraph* backend_udg()
      const noexcept override {
    return udg_;
  }
  void backend_send(graph::NodeId from, graph::NodeId to,
                    std::span<const Word> words) override;
  void backend_broadcast(graph::NodeId from,
                         std::span<const Word> words) override;

  void apply_scheduled_events();

  /// Shard owning node v under the current sharding.
  [[nodiscard]] std::uint32_t shard_of(graph::NodeId v) const noexcept {
    return static_cast<std::uint32_t>(static_cast<std::size_t>(v) /
                                      shard_block_);
  }

  /// [begin, end) node range of shard s under the current sharding.
  [[nodiscard]] std::pair<graph::NodeId, graph::NodeId> shard_range(
      int s) const noexcept {
    const auto n = static_cast<std::size_t>(graph_->n());
    const std::size_t lo =
        std::min(static_cast<std::size_t>(s) * shard_block_, n);
    const std::size_t hi = std::min(lo + shard_block_, n);
    return {static_cast<graph::NodeId>(lo), static_cast<graph::NodeId>(hi)};
  }

  /// Runs fn(0..shards-1) on the pool, or inline when the pool is absent or
  /// shards are below the parallel grain. Either way each invocation only
  /// writes shard-owned state, so the results are bitwise identical.
  template <typename Fn>
  void dispatch_shards(int shards, Fn&& fn) {
    if (pool_ == nullptr || shard_block_ < parallel_grain_) {
      for (int s = 0; s < shards; ++s) fn(s);
    } else {
      pool_->run(shards, std::forward<Fn>(fn));
    }
  }

  /// Runs on_round() for every live, unhalted process in [begin, end).
  void execute_nodes(graph::NodeId begin, graph::NodeId end, int shard);

  /// Two-phase delivery of this round's staged transfers into next round's
  /// inboxes: a parallel count pass (channel verdicts, per-receiver counts,
  /// delayed-copy enqueue), an O(shards) sequential prefix sum, and a
  /// parallel place pass (counting sort into the flat inbox store plus
  /// sorted insertion of due delayed copies).
  void deliver_round(int shards);

  /// Recomputes node_flags_[v] from processes_[v] (crash bit preserved).
  void refresh_node_flags(graph::NodeId v) noexcept {
    const auto idx = static_cast<std::size_t>(v);
    std::uint8_t f = node_flags_[idx] & kNodeCrashed;
    if (const Process* p = processes_[idx].get(); p != nullptr) {
      f |= kNodeHasProcess;
      if (p->halted()) f |= kNodeHalted;
    }
    node_flags_[idx] = f;
  }

  /// True iff v's process exists, has not halted, and v is live — i.e. v
  /// contributes to running_count_.
  [[nodiscard]] bool counts_as_running(graph::NodeId v) const noexcept {
    return node_flags_[static_cast<std::size_t>(v)] == kNodeHasProcess;
  }

  /// Removes sender's entries from receiver `to`'s inbox region (in-region
  /// move + length decrement; idempotent, no-op when absent).
  void erase_inbox_entries(graph::NodeId sender, graph::NodeId to) noexcept;

  /// Drops every entry sent by v from the (unswapped) current generation.
  void purge_current_sends(graph::NodeId v);

  /// Clears the per-shard channel decision caches (options changed).
  void reset_channel_shard_state();

  /// Debug-only O(n) cross-check of live_count_ / running_count_ and the
  /// node_flags_ cache against the authoritative process states.
  void check_counters() const noexcept;

  const graph::Graph* graph_ = nullptr;
  const geom::UnitDiskGraph* udg_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<util::Rng> rngs_;  ///< per node, contiguous

  // Structure-of-arrays node state, indexed by node id (shard-contiguous:
  // a shard's nodes are a contiguous range, so its per-node traffic stays
  // in its own cache lines).
  std::vector<std::uint8_t> node_flags_;     // kNode* bits
  std::vector<std::uint32_t> inbox_off_;     // region start in inbox_store_
  std::vector<std::uint32_t> inbox_len_;     // region length (crash-shrunk)
  std::vector<std::uint32_t> inbox_count_;   // delivery scratch: counts
  std::vector<std::uint32_t> inbox_cursor_;  // delivery scratch: fill cursor

  // Message plane. Double-buffered: processes read views into the `prev`
  // generation (what was delivered to them) while their sends fill `cur`.
  // xfer lists are indexed [sender_shard * shards + dest_shard]; a sender
  // shard owns row s exclusively during compute, a destination shard reads
  // column d exclusively during delivery.
  std::vector<std::vector<Word>> arena_cur_;   // one per sender shard
  std::vector<std::vector<Word>> arena_prev_;
  std::vector<std::vector<XferEntry>> xfer_cur_;   // S*S transfer lists
  std::vector<std::vector<XferEntry>> xfer_prev_;  // delivered generation
  int xfer_shards_prev_ = 1;          ///< shard count xfer_prev_ was built at
  std::size_t xfer_block_prev_ = 1;   ///< shard block of that generation
  std::vector<Message> inbox_store_;  ///< all inboxes, receiver-contiguous
  std::vector<ShardStats> shard_stats_;            // one per sender shard
  std::vector<std::uint64_t> shard_inbox_total_;   // delivery scratch per d
  std::vector<std::uint64_t> shard_inbox_base_;    // delivery scratch per d
  // Channel fates decided in the count pass, replayed verbatim by the place
  // pass (decide() counts side effects; deciding twice would double them).
  // One byte per incoming entry, per destination shard, enumeration order.
  std::vector<std::vector<std::uint8_t>> fate_scratch_;
  std::vector<Channel::ShardState> channel_shards_;  // one per dest shard

  // Parallel engine.
  int threads_ = 1;
  std::size_t shard_block_ = 1;  ///< nodes per shard (ceil(n / shards))
  std::size_t parallel_grain_ = kDefaultParallelGrain;
  std::unique_ptr<util::ThreadPool> pool_;

  graph::NodeId live_count_ = 0;      ///< nodes without kNodeCrashed
  std::int64_t running_count_ = 0;    ///< nodes where counts_as_running()
  std::vector<std::pair<std::int64_t, graph::NodeId>> scheduled_crashes_;
  struct ScheduledRecovery {
    std::int64_t round = 0;
    graph::NodeId node = -1;
    std::unique_ptr<Process> process;
  };
  std::vector<ScheduledRecovery> scheduled_recoveries_;
  std::vector<std::pair<std::int64_t, ChannelOptions>> scheduled_channels_;

  // Unreliable channel. Delayed (reordered/duplicated) deliveries cannot
  // alias the round arenas — they outlive the generation swap — so each
  // owns its payload. Both lists are bucketed by destination shard so the
  // delivery passes touch only shard-owned buckets; per-receiver order
  // within a bucket is (enqueue round, sender), which is width-invariant.
  // `delayed_live_` holds the copies whose views sit in current inboxes
  // (the inner word vectors are heap buffers, stable under bucket growth
  // and re-bucketing moves); `delayed_pending_` holds copies in flight.
  struct DelayedMessage {
    std::int64_t due = 0;  ///< round whose inbox receives the message
    graph::NodeId from = -1;
    graph::NodeId to = -1;
    std::vector<Word> words;
  };
  Channel channel_;
  std::vector<std::vector<DelayedMessage>> delayed_pending_;
  std::vector<std::vector<DelayedMessage>> delayed_live_;

  std::int64_t round_ = 0;
  Metrics metrics_;

  // Observability (null = disabled; the hot path then costs one branch per
  // round phase plus one pointer store per node context).
  obs::Plane* plane_ = nullptr;
  obs::PerfPlane* perf_ = nullptr;           ///< cached plane_->perf()
  std::vector<obs::Recorder> recorders_;     ///< one per shard
  Channel::Counters published_;              ///< channel counters already published

  /// (Re)sizes the plane's shard staging and recorders to threads_.
  void sync_observability_shards();
};

}  // namespace ftc::sim
