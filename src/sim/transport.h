// Reliable delivery over unreliable links for per-node processes.
//
// The channel model (sim/channel.h) makes links lossy, duplicating, and
// reordering; protocols that need exactly-once, in-order delivery embed a
// ReliableTransport per process — the same pattern as HeartbeatMonitor —
// and route the message classes that need reliability through it while raw
// (loss-tolerant) traffic keeps using Context::send directly.
//
// Protocol: per-neighbor stop-and-wait ARQ with cumulative acks.
//
//   * send() enqueues an application payload for a neighbor; each payload
//     gets the next per-link sequence number.
//   * At most one payload per neighbor is in flight; it is retransmitted
//     with capped exponential backoff until the ack arrives, then the next
//     queued payload goes out.
//   * Every data frame carries the cumulative ack (count of in-order
//     payloads received from that neighbor), so acks piggyback on reverse
//     traffic; a receiver with no reverse data pending sends a bare ack
//     frame.
//   * Receivers deliver exactly the expected sequence number and count any
//     other arrival as a suppressed duplicate (stop-and-wait admits no gap:
//     a frame ahead of the window cannot occur).
//
// Wire format (words): [ack, seq, payload...]; seq == -1 is a bare ack.
// The host calls receive()/ingest() first in on_round() and flush() last;
// flush sends at most one frame per neighbor per round, so the host must
// not also Context::send to a neighbor the transport is serving that round
// (the synchronous model allows one message per link per round).
//
// Counters publish to the obs registry (transport.frames/retransmissions/
// duplicates_dropped/acks) through the Context's shard-bound Recorder, so
// instrumentation keeps the engine's determinism contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/network.h"

namespace ftc::sim {

struct TransportOptions {
  /// Rounds to wait for an ack before the first retransmission; doubles
  /// after every retransmission up to max_backoff. Must be >= 1.
  std::int64_t initial_backoff = 2;
  std::int64_t max_backoff = 16;
};

/// Per-process reliable transport endpoint. Embed one per Process; call
/// receive() first and flush() last in every on_round().
class ReliableTransport {
 public:
  /// An application payload released in order, exactly once.
  struct Delivery {
    graph::NodeId from = -1;
    std::vector<Word> words;
  };

  ReliableTransport();
  explicit ReliableTransport(TransportOptions options);

  /// Queues `words` for reliable delivery to neighbor `to`.
  void send(Context& ctx, graph::NodeId to, std::span<const Word> words);
  void send(Context& ctx, graph::NodeId to,
            std::initializer_list<Word> words) {
    send(ctx, to, std::span<const Word>(words.begin(), words.size()));
  }

  /// Queues `words` for reliable delivery to every neighbor.
  void broadcast(Context& ctx, std::span<const Word> words);
  void broadcast(Context& ctx, std::initializer_list<Word> words) {
    broadcast(ctx, std::span<const Word>(words.begin(), words.size()));
  }

  /// Ingests every inbox message as a transport frame and returns the
  /// application payloads released this round, in deterministic (sender,
  /// sequence) order. For hosts that route all traffic through the
  /// transport; mixed-class hosts call ingest() per frame instead. The
  /// returned view borrows internal storage: it is valid until the next
  /// ingest()/receive() call (the buffers are reused round over round, so
  /// the steady-state hot path performs no allocation).
  [[nodiscard]] std::span<const Delivery> receive(Context& ctx);

  /// Parses one received transport frame (advances ack/delivery state).
  void ingest(Context& ctx, const Message& msg);

  /// Application payloads released by ingest() since the last collect().
  /// Same lifetime contract as receive().
  [[nodiscard]] std::span<const Delivery> collect();

  /// Transmits this round's frames: per neighbor, the in-flight payload
  /// (first send or backoff-due retransmission) or a bare ack when one is
  /// owed. At most one frame per neighbor per round.
  void flush(Context& ctx);

  /// True when nothing is queued, in flight, or owed (all acks clean).
  [[nodiscard]] bool idle() const noexcept;

  /// Payloads queued or in flight, summed over neighbors.
  [[nodiscard]] std::int64_t backlog() const noexcept;

  [[nodiscard]] std::int64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  [[nodiscard]] std::int64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::int64_t duplicates_suppressed() const noexcept {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::int64_t delivered() const noexcept { return delivered_; }

 private:
  struct Pending {
    std::int64_t seq = 0;
    std::vector<Word> words;
  };
  struct Link {
    // Sender side.
    std::vector<Pending> queue;     ///< head = in flight (once sent)
    std::int64_t next_seq = 0;      ///< sequence for the next send() payload
    std::int64_t acked = 0;         ///< peer's cumulative ack (count)
    std::int64_t backoff = 0;       ///< current retransmission interval
    std::int64_t resend_round = -1; ///< round the head may go out (again)
    bool head_sent = false;         ///< head has been transmitted >= once
    // Receiver side.
    std::int64_t expected = 0;      ///< next in-order sequence to deliver
    bool ack_owed = false;          ///< peer needs to hear our ack
  };

  void ensure_init(Context& ctx);
  [[nodiscard]] std::size_t index_of(graph::NodeId w) const;
  void enqueue(Link& link, std::span<const Word> words);

  TransportOptions options_;
  bool initialized_ = false;
  std::vector<graph::NodeId> neighbors_;  // sorted copy from the Context
  std::vector<Link> links_;               // per neighbor index
  // Released-delivery slots are recycled (released_count_ live entries per
  // round) and acked Pending payloads return to spare_, so the per-round
  // hot path reuses every buffer instead of reallocating it.
  std::vector<Delivery> released_;
  std::size_t released_count_ = 0;
  std::vector<Pending> spare_;
  std::vector<Word> frame_;               // flush() scratch
  std::int64_t frames_sent_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t duplicates_suppressed_ = 0;
  std::int64_t delivered_ = 0;
};

}  // namespace ftc::sim
