// Heartbeat-based failure detection for per-node processes.
//
// In the crash model a dead neighbor is simply silent; a process that wants
// to *react* to failures (e.g. the distributed repair protocol) needs a
// failure detector. HeartbeatMonitor implements the classic timeout
// detector for the synchronous model:
//
//   * the host process broadcasts at least one message per round (its
//     protocol traffic doubles as the heartbeat — no extra messages, the
//     standard piggybacking optimization);
//   * observe(ctx), called first in every on_round, refreshes the
//     last-heard round of every inbox sender and suspects any neighbor not
//     heard from for more than `timeout` rounds.
//
// Under reliable links the detector is perfect: a node that crashes at the
// start of round r last reached its neighbors in round r - 1 (the message
// it sent in round r - 1 is still in flight and is dropped with the crash),
// so every live neighbor suspects it exactly at round r + timeout; a live
// neighbor is never suspected. Under message
// loss it is only eventually accurate: an unlucky loss streak can raise a
// *false* suspicion, which is withdrawn (and counted — refuted_suspicions())
// the moment the neighbor is heard again. Churn rejoins surface the same
// way: the monitor cannot distinguish a refuted false suspicion from a
// genuinely dead node that came back, so under churn refuted_suspicions()
// counts both (the soak harness separates them using the fault schedule).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace ftc::sim {

/// Timeout failure detector; embed one per process and call observe()
/// first thing in on_round(). See file comment for the contract.
///
/// Two suspicion modes:
///   * consecutive (window == 0, the default): suspect after `timeout`
///     consecutive silent rounds — perfect under reliable links, but a
///     short loss streak (p^timeout per link per round) false-suspects;
///   * M-of-N (window > 0): keep a sliding window of the last `window`
///     expected beats and suspect only when >= misses_to_suspect of them
///     are missing *and* the current round is silent. Loss must now defeat
///     M of N beats instead of a short streak, cutting the false-suspicion
///     rate by orders of magnitude at equal detection latency (which is
///     ~misses_to_suspect rounds after a real crash).
class HeartbeatMonitor {
 public:
  struct Options {
    /// Consecutive mode: a neighbor is suspected once round() - last_heard
    /// > timeout, i.e. after `timeout` consecutive silent rounds beyond the
    /// expected gap of one round between send and delivery.
    std::int64_t timeout = 4;
    /// M-of-N mode when > 0: sliding window length N (max 63 rounds).
    int window = 0;
    /// M-of-N mode: misses within the window needed to suspect; must be in
    /// [1, window] when window > 0 (0 defaults to `window`, i.e. every
    /// beat in the window missing).
    int misses_to_suspect = 0;
  };

  HeartbeatMonitor();
  explicit HeartbeatMonitor(Options options);

  /// Processes this round's inbox: refreshes liveness, withdraws refuted
  /// suspicions, raises new ones. Must be called every round the host runs,
  /// before the host reads suspects().
  void observe(Context& ctx);

  /// True if neighbor w is currently suspected dead. Precondition: w is a
  /// neighbor and observe() has run at least once.
  [[nodiscard]] bool suspects(graph::NodeId w) const;

  /// Currently suspected neighbors, ascending.
  [[nodiscard]] std::vector<graph::NodeId> suspected() const;

  /// Total suspicions ever raised (including ones later refuted).
  [[nodiscard]] std::int64_t suspicions_raised() const noexcept {
    return suspicions_raised_;
  }

  /// Suspicions withdrawn because the neighbor was heard again. Under
  /// crash-only faults with lossy links these are exactly the detector's
  /// false suspicions; under churn they also include genuine rejoins.
  [[nodiscard]] std::int64_t refuted_suspicions() const noexcept {
    return refuted_suspicions_;
  }

 private:
  [[nodiscard]] std::size_t index_of(graph::NodeId w) const;

  Options options_;
  bool initialized_ = false;
  std::vector<graph::NodeId> neighbors_;   // sorted copy from the Context
  std::vector<std::int64_t> last_heard_;   // per neighbor index
  std::vector<std::uint8_t> suspected_;    // per neighbor index
  std::vector<std::uint64_t> heard_bits_;  // M-of-N: bit i = heard i rounds ago
  std::int64_t suspicions_raised_ = 0;
  std::int64_t refuted_suspicions_ = 0;
};

}  // namespace ftc::sim
