// Streaming topology mutations (DESIGN.md §13).
//
// Long-lived sensor networks are the paper's motivating deployment: nodes
// join, die, and move while the clustering must stay k-fold dominating.
// This header is the mutation vocabulary — Mutation/TimedMutation traces
// are the replayable unit the fuzzer generates, the tools print, and the
// DynamicOracle shrinks — plus DynamicWorld, the stateful topology that
// absorbs a trace between simulation rounds.
//
// DynamicWorld comes in two modes:
//   - geometric (constructed from a UnitDiskGraph): joins/moves carry a
//     position and edges are recomputed incrementally from geometry
//     (DynamicUdg); edge_flip is rejected — a UDG's edge set is a function
//     of its embedding, so a flipped edge would silently disappear at the
//     next move and break the rebuild-equivalence contract.
//   - combinatorial (constructed from a plain Graph): joins anchor to the
//     closed neighborhood of a peer node, moves re-anchor the node the same
//     way, and edge_flip toggles a single edge.
//
// Defensive clamping, not UB: mutations referencing inactive or
// out-of-range nodes are recorded as applied=false no-ops, so any fuzzer
// trace replays cleanly on any topology. Invariant maintained in both
// modes: adjacency holds active-active edges only (departed nodes are
// isolated and stay isolated; flips/joins touching inactive nodes are
// no-ops).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geom/dynamic.h"
#include "graph/dynamic.h"
#include "graph/graph.h"

namespace ftc::sim {

enum class MutationKind : std::int32_t {
  kJoin = 0,   ///< new node appears (geometric: at (x,y); plain: near peer)
  kLeave = 1,  ///< node departs for good (id stays, becomes isolated)
  kMove = 2,   ///< node relocates (geometric: to (x,y); plain: re-anchors)
  kFlip = 3,   ///< single edge {node, peer} toggles (combinatorial mode only)
};

inline constexpr int kMutationKindCount = 4;

[[nodiscard]] const char* mutation_kind_name(MutationKind k) noexcept;

/// One topology mutation. Fields not used by a kind stay at their defaults.
struct Mutation {
  MutationKind kind = MutationKind::kLeave;
  graph::NodeId node = -1;  ///< leave/move target, flip endpoint
  graph::NodeId peer = -1;  ///< flip endpoint, join/move anchor (plain mode)
  double x = 0.0;           ///< join/move position (geometric mode)
  double y = 0.0;

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

/// A mutation scheduled for the gap after simulation round `round`.
/// Mutations sharing a round form one batch.
struct TimedMutation {
  std::int64_t round = 0;
  Mutation m;

  friend bool operator==(const TimedMutation&, const TimedMutation&) = default;
};

using MutationTrace = std::vector<TimedMutation>;

/// One-line trace serialization ("round:kind:node:peer:x:y;..."), exact
/// round-trip including positions.
[[nodiscard]] std::string to_string(const MutationTrace& trace);

/// Inverse of to_string. Throws std::invalid_argument on malformed input.
[[nodiscard]] MutationTrace parse_mutation_trace(const std::string& text);

/// What actually happened when a Mutation hit the world: the resolved
/// mutation (joins get their assigned node id filled in) and the exact edge
/// delta. applied=false marks a defensively-clamped no-op (empty delta).
struct AppliedMutation {
  Mutation m;
  graph::EdgeDelta delta;
  bool applied = false;
};

/// Stateful topology absorbing a mutation stream; see file header for the
/// two modes. All operations are deterministic.
class DynamicWorld {
 public:
  /// Geometric mode: incremental UDG edge recomputation.
  explicit DynamicWorld(const geom::UnitDiskGraph& udg);

  /// Combinatorial mode: anchored joins and edge flips.
  explicit DynamicWorld(const graph::Graph& g);

  [[nodiscard]] bool geometric() const noexcept { return udg_ != nullptr; }

  /// The incrementally-maintained UDG, or nullptr in combinatorial mode.
  [[nodiscard]] const geom::DynamicUdg* udg() const noexcept {
    return udg_.get();
  }

  [[nodiscard]] const graph::MutableGraph& graph() const noexcept {
    return udg_ ? udg_->graph() : plain_;
  }

  [[nodiscard]] graph::NodeId n() const noexcept { return graph().n(); }

  [[nodiscard]] bool active(graph::NodeId v) const noexcept;

  /// One byte per node, 1 = active.
  [[nodiscard]] const std::vector<std::uint8_t>& active_flags() const noexcept {
    return udg_ ? udg_->active_flags() : active_;
  }

  [[nodiscard]] graph::NodeId active_count() const noexcept;

  /// Applies one mutation (with defensive clamping) and reports the exact
  /// edge delta.
  AppliedMutation apply(const Mutation& m);

  /// Freezes the current adjacency into an immutable CSR Graph.
  [[nodiscard]] graph::Graph snapshot() const { return graph().to_graph(); }

 private:
  std::unique_ptr<geom::DynamicUdg> udg_;  ///< geometric mode only
  graph::MutableGraph plain_;              ///< combinatorial mode only
  std::vector<std::uint8_t> active_;       ///< combinatorial mode only
};

}  // namespace ftc::sim
