#include "sim/mutation.h"

#include <cassert>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ftc::sim {

using graph::Edge;
using graph::EdgeDelta;
using graph::NodeId;

const char* mutation_kind_name(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kJoin:
      return "join";
    case MutationKind::kLeave:
      return "leave";
    case MutationKind::kMove:
      return "move";
    case MutationKind::kFlip:
      return "flip";
  }
  return "?";
}

std::string to_string(const MutationTrace& trace) {
  std::string out;
  char buf[128];
  for (const TimedMutation& t : trace) {
    // %.17g round-trips any double exactly.
    std::snprintf(buf, sizeof(buf), "%" PRId64 ":%d:%d:%d:%.17g:%.17g",
                  t.round, static_cast<int>(t.m.kind), t.m.node, t.m.peer,
                  t.m.x, t.m.y);
    if (!out.empty()) out += ';';
    out += buf;
  }
  return out;
}

MutationTrace parse_mutation_trace(const std::string& text) {
  MutationTrace trace;
  if (text.empty()) return trace;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find(';', pos);
    const std::string entry =
        text.substr(pos, end == std::string::npos ? end : end - pos);
    TimedMutation t;
    int kind = 0;
    double x = 0.0;
    double y = 0.0;
    // sscanf: %lf accepts the full %.17g output range.
    if (std::sscanf(entry.c_str(), "%" SCNd64 ":%d:%d:%d:%lf:%lf", &t.round,
                    &kind, &t.m.node, &t.m.peer, &x, &y) != 6 ||
        kind < 0 || kind >= kMutationKindCount) {
      throw std::invalid_argument("parse_mutation_trace: bad entry '" + entry +
                                  "'");
    }
    t.m.kind = static_cast<MutationKind>(kind);
    t.m.x = x;
    t.m.y = y;
    trace.push_back(t);
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return trace;
}

DynamicWorld::DynamicWorld(const geom::UnitDiskGraph& udg)
    : udg_(std::make_unique<geom::DynamicUdg>(udg)) {}

DynamicWorld::DynamicWorld(const graph::Graph& g)
    : plain_(g), active_(static_cast<std::size_t>(g.n()), 1) {}

bool DynamicWorld::active(NodeId v) const noexcept {
  if (udg_) return udg_->active(v);
  return v >= 0 && v < n() && active_[static_cast<std::size_t>(v)] != 0;
}

NodeId DynamicWorld::active_count() const noexcept {
  const auto& flags = active_flags();
  NodeId count = 0;
  for (std::uint8_t a : flags) count += a;
  return count;
}

AppliedMutation DynamicWorld::apply(const Mutation& m) {
  AppliedMutation out;
  out.m = m;
  EdgeDelta& delta = out.delta;
  auto norm = [](NodeId a, NodeId b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  };

  if (udg_) {
    switch (m.kind) {
      case MutationKind::kJoin:
        out.m.node = udg_->node_join({m.x, m.y}, delta);
        out.applied = true;
        break;
      case MutationKind::kLeave:
        if (!udg_->active(m.node)) break;
        udg_->node_leave(m.node, delta);
        out.applied = true;
        break;
      case MutationKind::kMove:
        if (!udg_->active(m.node)) break;
        udg_->node_move(m.node, {m.x, m.y}, delta);
        out.applied = true;
        break;
      case MutationKind::kFlip:
        // A UDG's edges are a function of its embedding; see file header.
        break;
    }
    return out;
  }

  switch (m.kind) {
    case MutationKind::kJoin: {
      const NodeId v = plain_.add_node();
      active_.push_back(1);
      out.m.node = v;
      // Anchor to the peer's closed neighborhood when the peer is usable;
      // otherwise the node joins isolated (still a valid deployment — its
      // clamped demand is 1 and it can only cover itself).
      if (active(m.peer)) {
        plain_.add_edge(v, m.peer);
        delta.added.push_back(norm(v, m.peer));
        // The peer's list was captured before v linked in, so iterate a
        // copy: add_edge(v, w) never touches peer's other neighbors.
        const auto nbrs = plain_.neighbors(m.peer);
        const std::vector<NodeId> anchor(nbrs.begin(), nbrs.end());
        for (NodeId w : anchor) {
          if (w == v) continue;
          if (plain_.add_edge(v, w)) delta.added.push_back(norm(v, w));
        }
      }
      out.applied = true;
      break;
    }
    case MutationKind::kLeave:
      if (!active(m.node)) break;
      active_[static_cast<std::size_t>(m.node)] = 0;
      for (const Edge& e : plain_.isolate(m.node)) delta.removed.push_back(e);
      out.applied = true;
      break;
    case MutationKind::kMove:
      // Re-anchor: drop all current edges, link to N[peer]. peer == node or
      // an unusable peer degrades to plain isolation — the node "moved out
      // of range of everyone".
      if (!active(m.node)) break;
      for (const Edge& e : plain_.isolate(m.node)) delta.removed.push_back(e);
      if (active(m.peer) && m.peer != m.node) {
        plain_.add_edge(m.node, m.peer);
        delta.added.push_back(norm(m.node, m.peer));
        const auto nbrs = plain_.neighbors(m.peer);
        const std::vector<NodeId> anchor(nbrs.begin(), nbrs.end());
        for (NodeId w : anchor) {
          if (w == m.node) continue;
          if (plain_.add_edge(m.node, w)) delta.added.push_back(norm(m.node, w));
        }
      }
      out.applied = true;
      break;
    case MutationKind::kFlip:
      if (!active(m.node) || !active(m.peer) || m.node == m.peer) break;
      if (plain_.remove_edge(m.node, m.peer)) {
        delta.removed.push_back(norm(m.node, m.peer));
      } else {
        plain_.add_edge(m.node, m.peer);
        delta.added.push_back(norm(m.node, m.peer));
      }
      out.applied = true;
      break;
  }
  return out;
}

}  // namespace ftc::sim
