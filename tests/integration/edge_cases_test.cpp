// Edge-case sweep: degenerate inputs every public entry point must survive
// (empty graphs, single nodes, zero demands, extreme parameters). These are
// the inputs fuzzers find first; a library release must not assert or crash
// on any of them.
#include <gtest/gtest.h>

#include <memory>

#include "algo/baseline/greedy.h"
#include "algo/baseline/lrg.h"
#include "algo/baseline/luby.h"
#include "algo/baseline/mis_clustering.h"
#include "algo/exact/exact.h"
#include "algo/extensions/cds.h"
#include "algo/extensions/repair.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "algo/weighted/weighted.h"
#include "domination/bounds.h"
#include "domination/lp_solver.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/async.h"
#include "util/rng.h"

namespace ftc {
namespace {

using domination::Demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(EdgeCases, EmptyGraphEverywhere) {
  const Graph g;
  const Demands d;
  EXPECT_TRUE(algo::greedy_kmds(g, d).set.empty());
  EXPECT_TRUE(algo::lrg_kmds(g, d, 1).set.empty());
  EXPECT_TRUE(algo::exact_kmds(g, d).set.empty());
  EXPECT_TRUE(algo::mis_kfold(g, 1).set.empty());
  EXPECT_TRUE(algo::luby_mis_kfold(g, 1, 1).set.empty());
  EXPECT_TRUE(algo::connect_dominating_set(g, {}).set.empty());
  EXPECT_TRUE(algo::repair_after_failures(g, {}, {}, d).set.empty());
  algo::PipelineOptions opts;
  EXPECT_TRUE(algo::run_kmds_pipeline(g, d, opts).set().empty());
  EXPECT_TRUE(domination::solve_lp_exact(g, d).feasible);
  EXPECT_DOUBLE_EQ(domination::best_lower_bound(g, d), 0.0);
}

TEST(EdgeCases, SingleNodeEverywhere) {
  const Graph g = graph::empty(1);
  const Demands d = uniform_demands(1, 1);
  EXPECT_EQ(algo::greedy_kmds(g, d).set, (std::vector<NodeId>{0}));
  EXPECT_EQ(algo::lrg_kmds(g, d, 1).set, (std::vector<NodeId>{0}));
  EXPECT_EQ(algo::exact_kmds(g, d).set, (std::vector<NodeId>{0}));
  EXPECT_EQ(algo::luby_mis_kfold(g, 2, 1).set, (std::vector<NodeId>{0}));
  algo::PipelineOptions opts;
  EXPECT_EQ(algo::run_kmds_pipeline(g, d, opts).set(),
            (std::vector<NodeId>{0}));
  const auto weighted = algo::weighted_greedy_kmds(
      g, d, algo::uniform_weights(1));
  EXPECT_EQ(weighted.set, (std::vector<NodeId>{0}));
}

TEST(EdgeCases, TwoIsolatedNodesDistributed) {
  const Graph g = graph::empty(2);
  const Demands d = uniform_demands(2, 1);
  algo::PipelineOptions opts;
  opts.execution = algo::Execution::kDistributed;
  const auto result = algo::run_kmds_pipeline(g, d, opts);
  EXPECT_EQ(result.set(), (std::vector<NodeId>{0, 1}));
}

TEST(EdgeCases, ZeroDemandEverywhere) {
  util::Rng rng(1);
  const Graph g = graph::gnp(20, 0.2, rng);
  const Demands d = uniform_demands(20, 0);
  EXPECT_TRUE(algo::greedy_kmds(g, d).set.empty());
  EXPECT_TRUE(algo::exact_kmds(g, d).set.empty());
  EXPECT_TRUE(algo::lrg_kmds(g, d, 1).set.empty());
  const auto lp = domination::solve_lp_exact(g, d);
  ASSERT_TRUE(lp.feasible);
  EXPECT_NEAR(lp.objective, 0.0, 1e-9);
}

TEST(EdgeCases, HugeKOnUdgAlgorithm) {
  // k far above every degree: Part II promotes aggressively but must
  // terminate with a valid open-mode set.
  util::Rng rng(2);
  const auto udg = geom::uniform_udg_with_degree(120, 6.0, rng);
  algo::UdgOptions opts;
  opts.k = 50;
  const auto result = algo::solve_udg_kmds(udg, opts, 2);
  EXPECT_TRUE(domination::is_k_dominating(
      udg.graph, result.leaders, 50, domination::Mode::kOpenForNonMembers));
}

TEST(EdgeCases, CompleteGraphPipelineDistributed) {
  const Graph g = graph::complete(12);
  const auto d = uniform_demands(12, 4);
  algo::PipelineOptions opts;
  opts.t = 2;
  opts.execution = algo::Execution::kDistributed;
  const auto result = algo::run_kmds_pipeline(g, d, opts);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set(), d));
}

TEST(EdgeCases, RepairEverythingFailed) {
  // Every dominator fails: repair must rebuild coverage from scratch in
  // the damage region (which is the whole neighborhood union).
  util::Rng rng(3);
  const Graph g = graph::gnp(40, 0.2, rng);
  const auto d = domination::clamp_demands(g, uniform_demands(40, 1));
  const auto base = algo::greedy_kmds(g, d).set;
  const auto result = algo::repair_after_failures(g, base, base, d);
  const Graph live = g.without_nodes(base);
  auto live_demands = domination::clamp_demands(live, d);
  for (NodeId f : base) live_demands[static_cast<std::size_t>(f)] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands));
}

TEST(EdgeCases, CdsOnSingletonSet) {
  util::Rng rng(4);
  const Graph g = graph::gnp(30, 0.3, rng);
  const auto result =
      algo::connect_dominating_set(g, std::vector<NodeId>{5});
  EXPECT_EQ(result.set, (std::vector<NodeId>{5}));
  EXPECT_EQ(result.connectors_added, 0);
}

TEST(EdgeCases, AsyncWithMinimumDelayBoundsEqual) {
  // min_delay == max_delay (deterministic latency) must behave like a
  // slowed-down synchronous network.
  const Graph g = graph::cycle(8);
  sim::AsyncOptions opts;
  opts.min_delay = 5;
  opts.max_delay = 5;
  sim::AsyncNetwork net(g, 1, opts);
  net.set_all_processes([](NodeId) {
    class Probe final : public sim::Process {
     public:
      void on_round(sim::Context& ctx) override {
        ctx.broadcast({static_cast<sim::Word>(ctx.round())});
        if (ctx.round() >= 3) halt();
      }
    };
    return std::make_unique<Probe>();
  });
  EXPECT_EQ(net.run(100), 4);
  EXPECT_EQ(net.metrics().virtual_time, 4 * 5);
}

TEST(EdgeCases, WeightedExactZeroDemandIsEmpty) {
  const Graph g = graph::complete(5);
  const auto result = algo::weighted_exact_kmds(
      g, uniform_demands(5, 0), algo::uniform_weights(5));
  EXPECT_TRUE(result.optimal);
  EXPECT_TRUE(result.set.empty());
  EXPECT_DOUBLE_EQ(result.weight, 0.0);
}

TEST(EdgeCases, LpSolverPathGraph) {
  // Tiny structured instance with known LP optimum: path of 3, k=1.
  // x = (0, 1, 0) is optimal with objective 1.
  const Graph g = graph::path(3);
  const auto result = domination::solve_lp_exact(g, uniform_demands(3, 1));
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(EdgeCases, GeneratorsDegenerateSizes) {
  util::Rng rng(5);
  EXPECT_EQ(graph::grid(0, 5).n(), 0);
  EXPECT_EQ(graph::grid(1, 1).n(), 1);
  EXPECT_EQ(graph::path(0).n(), 0);
  EXPECT_EQ(graph::path(1).m(), 0u);
  EXPECT_EQ(graph::star(1).m(), 0u);
  EXPECT_EQ(graph::complete(0).n(), 0);
  EXPECT_EQ(graph::complete(1).m(), 0u);
  EXPECT_EQ(graph::caveman(1, 1).n(), 1);
  EXPECT_EQ(graph::gnm(5, 0, rng).m(), 0u);
}

}  // namespace
}  // namespace ftc
