// Fault-tolerance integration tests — the paper's motivation (Section 1):
// k-fold dominating sets keep nodes covered when dominators crash.
#include <gtest/gtest.h>

#include <memory>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(FaultTolerance, KFoldSurvivesUpToKMinusOneDominatorFailures) {
  // Deterministic core property: remove any k-1 dominators from a k-fold
  // dominating set; every non-member node remains covered at least once.
  util::Rng rng(1);
  const Graph g = graph::gnp(70, 0.12, rng);
  const std::int32_t k = 4;
  const auto d = clamp_demands(g, uniform_demands(70, k));
  PipelineOptions opts;
  opts.t = 3;
  const auto result = run_kmds_pipeline(g, d, opts);
  ASSERT_TRUE(domination::is_k_dominating(g, result.set(), d));

  // Kill the first k-1 dominators.
  const auto& set = result.set();
  ASSERT_GE(set.size(), static_cast<std::size_t>(k));
  std::vector<NodeId> survivors(set.begin() + (k - 1), set.end());

  // Every node whose demand was >= k and who is not itself a failed
  // dominator still has >= 1 live dominator in its closed neighborhood.
  const auto members = domination::to_membership(g, survivors);
  const auto cover = domination::closed_coverage_counts(g, members);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    bool failed_dominator = false;
    for (std::size_t f = 0; f < static_cast<std::size_t>(k - 1); ++f) {
      if (set[f] == v) failed_dominator = true;
    }
    if (failed_dominator || d[i] < k) continue;
    EXPECT_GE(cover[i], 1) << "node " << v << " lost all dominators";
  }
}

TEST(FaultTolerance, HigherKRetainsMoreCoverageUnderRandomCrashes) {
  util::Rng rng(2);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(500, 15.0, rng);
  const double crash_prob = 0.4;

  auto surviving_coverage_fraction = [&](std::int32_t k) {
    UdgOptions opts;
    opts.k = k;
    const auto result = solve_udg_kmds(udg, opts, 99);
    // Crash each dominator independently.
    util::Rng crash_rng(1234);
    std::vector<NodeId> alive;
    for (NodeId v : result.leaders) {
      if (!crash_rng.bernoulli(crash_prob)) alive.push_back(v);
    }
    const auto members = domination::to_membership(udg.graph, alive);
    const auto cover = domination::closed_coverage_counts(udg.graph, members);
    const auto all_members = domination::to_membership(udg.graph, result.leaders);
    std::int64_t covered = 0, total = 0;
    for (NodeId v = 0; v < udg.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (all_members[i]) continue;  // only non-members need coverage
      ++total;
      if (cover[i] >= 1) ++covered;
    }
    return total == 0 ? 1.0
                      : static_cast<double>(covered) /
                            static_cast<double>(total);
  };

  const double f1 = surviving_coverage_fraction(1);
  const double f4 = surviving_coverage_fraction(4);
  EXPECT_GT(f4, f1);
  EXPECT_GT(f4, 0.95);  // (1-0.4^4) ≈ 0.974 expected
}

TEST(FaultTolerance, LpProcessSurvivesMidRunCrashes) {
  // Algorithm 1 keeps running when nodes crash mid-execution; surviving
  // nodes still produce a solution covering the surviving subgraph.
  util::Rng rng(3);
  const Graph g = graph::gnp(40, 0.15, rng);
  const std::int32_t k = 2;
  const auto d = clamp_demands(g, uniform_demands(40, k));
  const int t = 3;

  sim::SyncNetwork net(g, 5);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  net.schedule_crash(3, 4);
  net.schedule_crash(17, 7);
  net.run(lp_round_count(t) + 8);

  // Survivors halted normally.
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) continue;
    EXPECT_TRUE(net.process_as<LpKmdsProcess>(v).halted()) << "node " << v;
  }

  // Every survivor whose demand is still satisfiable among survivors ends
  // covered: a node that grayed before the crash keeps its accumulated
  // coverage (x-values never decrease, so crashed nodes' frozen x still
  // witnesses it), and a node still white at the end forces its live closed
  // neighborhood to x = 1 in the final iteration.
  const Graph live = g.without_nodes(std::vector<NodeId>{3, 17});
  domination::FractionalSolution x;
  x.x.assign(static_cast<std::size_t>(g.n()), 0.0);
  for (NodeId v = 0; v < g.n(); ++v) {
    // Crashed processes retain their state frozen at crash time.
    x.x[static_cast<std::size_t>(v)] = net.process_as<LpKmdsProcess>(v).x();
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) continue;
    const auto i = static_cast<std::size_t>(v);
    if (d[i] > live.degree(v) + 1) continue;  // no longer satisfiable
    EXPECT_GE(domination::closed_neighborhood_sum(g, v, x.x),
              static_cast<double>(d[i]) - 1e-6)
        << "surviving node " << v << " undercovered";
  }
}

TEST(FaultTolerance, CrashBeforeStartEqualsRemovedNode) {
  // Crashing a node at round 0 must yield the same solution as running on
  // the graph with that node removed (survivors cannot tell the difference).
  util::Rng rng(4);
  const Graph g = graph::gnp(30, 0.2, rng);
  const auto d = clamp_demands(g, uniform_demands(30, 2));
  const NodeId dead = 7;
  const int t = 2;

  sim::SyncNetwork crashed_net(g, 11);
  crashed_net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  crashed_net.crash(dead);
  crashed_net.run(lp_round_count(t) + 4);

  const Graph reduced = g.without_nodes(std::vector<NodeId>{dead});
  sim::SyncNetwork reduced_net(reduced, 11);
  reduced_net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  reduced_net.run(lp_round_count(t) + 4);

  for (NodeId v = 0; v < g.n(); ++v) {
    if (v == dead) continue;
    // Δ differs between the two graphs only if `dead` was the unique max-
    // degree node; skip the comparison in that case.
    if (g.max_degree() != reduced.max_degree()) break;
    EXPECT_DOUBLE_EQ(crashed_net.process_as<LpKmdsProcess>(v).x(),
                     reduced_net.process_as<LpKmdsProcess>(v).x())
        << "node " << v;
  }
}

}  // namespace
}  // namespace ftc::algo
