// End-to-end integration: Algorithm 1 + Algorithm 2, mirror vs distributed,
// ratio sanity against lower bounds, message budget — the full contract of
// Sections 4.1 + 4.2.
#include "algo/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algo/baseline/greedy.h"
#include "domination/bounds.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Pipeline, MirrorEndToEndFeasible) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(80, 0.08, rng);
    for (std::int32_t k : {1, 2, 4}) {
      const auto d = clamp_demands(g, uniform_demands(80, k));
      PipelineOptions opts;
      opts.t = 3;
      opts.seed = 10 + static_cast<std::uint64_t>(trial);
      const auto result = run_kmds_pipeline(g, d, opts);
      EXPECT_TRUE(domination::is_k_dominating(g, result.set(), d))
          << "trial " << trial << " k " << k;
      EXPECT_TRUE(domination::primal_feasible(g, result.lp.primal, d, 1e-6));
    }
  }
}

TEST(Pipeline, DistributedMatchesMirror) {
  util::Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gnp(40, 0.12, rng);
    const auto d = clamp_demands(g, uniform_demands(40, 2));
    PipelineOptions mirror_opts, dist_opts;
    mirror_opts.t = dist_opts.t = 2;
    mirror_opts.seed = dist_opts.seed = 77 + static_cast<std::uint64_t>(trial);
    mirror_opts.execution = Execution::kMirror;
    dist_opts.execution = Execution::kDistributed;

    const auto mirror = run_kmds_pipeline(g, d, mirror_opts);
    const auto dist = run_kmds_pipeline(g, d, dist_opts);
    EXPECT_EQ(mirror.set(), dist.set()) << "trial " << trial;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      EXPECT_DOUBLE_EQ(mirror.lp.primal.x[i], dist.lp.primal.x[i]);
    }
  }
}

TEST(Pipeline, DistributedRoundAndMessageBudget) {
  util::Rng rng(3);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = uniform_demands(50, 2);
  PipelineOptions opts;
  opts.t = 3;
  opts.execution = Execution::kDistributed;
  const auto result = run_kmds_pipeline(g, d, opts);
  EXPECT_EQ(result.total_rounds, lp_round_count(3) + 3);
  EXPECT_LE(result.metrics.max_message_words, 3);  // O(log n) bits
  EXPECT_GT(result.metrics.messages_sent, 0);
}

TEST(Pipeline, RatioWithinCombinedTheoremBound) {
  // Combined Theorems 4.5 + 4.6 bound, checked against the best lower
  // bound (which only makes the test stricter... looser: measured ratio is
  // an upper bound of the true one, so this is a sound check).
  util::Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gnp(70, 0.1, rng);
    const auto d = clamp_demands(g, uniform_demands(70, 2));
    PipelineOptions opts;
    opts.t = 3;
    opts.seed = static_cast<std::uint64_t>(trial);
    const auto result = run_kmds_pipeline(g, d, opts);

    const auto greedy = greedy_kmds(g, d);
    const double lower = domination::best_lower_bound(
        g, d, static_cast<std::int64_t>(greedy.set.size()),
        result.lp.dual_bound(d));
    ASSERT_GT(lower, 0.0);
    const double ratio = static_cast<double>(result.set().size()) / lower;
    const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);
    // ρ·lnΔ + O(1) with ρ = theorem45_bound; generous O(1) slack of 4.
    const double bound =
        theorem45_bound(3, g.max_degree()) * ln_d1 + 4.0;
    EXPECT_LE(ratio, bound) << "trial " << trial;
  }
}

TEST(Pipeline, IntegralNotMuchWorseThanFractionalTimesLog) {
  util::Rng rng(5);
  const Graph g = graph::gnp(200, 0.05, rng);
  const auto d = clamp_demands(g, uniform_demands(200, 2));
  PipelineOptions opts;
  opts.t = 4;
  double worst = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    opts.seed = seed;
    const auto result = run_kmds_pipeline(g, d, opts);
    const double frac = result.lp.primal.objective();
    ASSERT_GT(frac, 0.0);
    worst = std::max(worst,
                     static_cast<double>(result.set().size()) / frac);
  }
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);
  // Theorem 4.6 is in expectation; across 10 seeds the worst observed ratio
  // should still sit well under 3·ln(Δ+1) + 3.
  EXPECT_LE(worst, 3.0 * ln_d1 + 3.0);
}

TEST(Pipeline, WorksOnDisconnectedGraphs) {
  // Two far-apart cliques plus isolated nodes.
  std::vector<graph::Edge> edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 4; ++v) {
      edges.push_back({u, v});
    }
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 8; ++v) {
      edges.push_back({u, v});
    }
  }
  const Graph g = Graph::from_edges(10, edges);  // nodes 8, 9 isolated
  const auto d = clamp_demands(g, uniform_demands(10, 2));
  PipelineOptions opts;
  const auto result = run_kmds_pipeline(g, d, opts);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set(), d));
}

TEST(Pipeline, TinyGraphs) {
  for (NodeId n : {1, 2, 3}) {
    const Graph g = graph::complete(n);
    const auto d = clamp_demands(g, uniform_demands(n, 2));
    PipelineOptions opts;
    const auto result = run_kmds_pipeline(g, d, opts);
    EXPECT_TRUE(domination::is_k_dominating(g, result.set(), d)) << n;
  }
}

}  // namespace
}  // namespace ftc::algo
