// Paper-claims regression tests: each test encodes one quantitative claim
// of Kuhn–Moscibroda–Wattenhofer (ICDCS 2006) as an executable assertion —
// the distilled, always-on version of the bench experiments (DESIGN.md
// E1..E10). If a refactor breaks a *shape* the paper promises, this file
// fails even when all unit tests still pass.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/baseline/greedy.h"
#include "algo/lp/lp_kmds.h"
#include "algo/pipeline.h"
#include "algo/rounding/rounding.h"
#include "algo/udg/udg_kmds.h"
#include "domination/bounds.h"
#include "domination/domination.h"
#include "domination/lp_solver.h"
#include "geom/cover.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/message.h"
#include "util/rng.h"

namespace ftc {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

// ---- Theorem 4.5 ----

TEST(PaperClaims, Theorem45_FeasibleInOt2RoundsWithinBound) {
  util::Rng rng(1);
  const Graph g = graph::gnp(150, 0.08, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  const auto opt_f = domination::solve_lp_exact(g, d);
  ASSERT_TRUE(opt_f.feasible);
  for (int t : {1, 2, 4}) {
    algo::LpOptions opts;
    opts.t = t;
    const auto lp = algo::solve_fractional_kmds(g, d, opts);
    // Feasible.
    EXPECT_TRUE(domination::primal_feasible(g, lp.primal, d, 1e-6));
    // O(t²) rounds, exactly 2t²+2.
    EXPECT_EQ(lp.rounds, 2 * t * t + 2);
    // Within the claimed ratio of the true fractional optimum.
    EXPECT_LE(lp.primal.objective(),
              algo::theorem45_bound(t, g.max_degree()) * opt_f.objective +
                  1e-6)
        << "t=" << t;
  }
}

TEST(PaperClaims, Theorem45_RatioImprovesWithT) {
  util::Rng rng(2);
  const Graph g = graph::gnp(200, 0.06, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  algo::LpOptions t1, t4;
  t1.t = 1;
  t4.t = 4;
  const double obj1 = algo::solve_fractional_kmds(g, d, t1).primal.objective();
  const double obj4 = algo::solve_fractional_kmds(g, d, t4).primal.objective();
  EXPECT_LT(obj4, obj1);  // the trade-off's whole point
}

// ---- Theorem 4.6 ----

TEST(PaperClaims, Theorem46_RoundingFactorTracksLogDelta) {
  util::Rng rng(3);
  const Graph g = graph::gnp(300, 0.05, rng);  // Δ ≈ 25
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  algo::LpOptions opts;
  opts.t = 4;
  const auto lp = algo::solve_fractional_kmds(g, d, opts);
  const double frac = lp.primal.objective();
  double total = 0;
  const int seeds = 15;
  for (int s = 0; s < seeds; ++s) {
    const auto rounded = algo::round_fractional(g, lp.primal, d, 100 + s);
    EXPECT_TRUE(domination::is_k_dominating(g, rounded.set, d));
    total += static_cast<double>(rounded.set.size());
  }
  const double factor = total / seeds / frac;
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);
  EXPECT_LE(factor, ln_d1 + 2.0);  // ρ·lnΔ + O(1) with ρ from the LP stage
}

// ---- Remark §4.2: locality (cost independent of n) ----

TEST(PaperClaims, Remark42_RatioDoesNotGrowWithN) {
  const std::int32_t k = 2;
  auto ratio_at = [&](NodeId n) {
    double total = 0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      util::Rng rng(500 + s);
      const Graph g = graph::gnp(n, 10.0 / static_cast<double>(n - 1), rng);
      const auto d = clamp_demands(g, uniform_demands(g.n(), k));
      algo::PipelineOptions opts;
      opts.t = 5;
      opts.seed = s;
      const auto pipe = algo::run_kmds_pipeline(g, d, opts);
      const auto greedy = algo::greedy_kmds(g, d);
      const double lb = domination::best_lower_bound(
          g, d, static_cast<std::int64_t>(greedy.set.size()),
          pipe.lp.dual_bound(d));
      total += static_cast<double>(pipe.set().size()) / lb;
    }
    return total / 3.0;
  };
  const double small = ratio_at(150);
  const double large = ratio_at(1200);
  // 8x more nodes: the quality class must not degrade materially.
  EXPECT_LT(large, 1.35 * small);
}

// ---- Lemma 5.1 ----

TEST(PaperClaims, Lemma51_PartOneLeadersDominate) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    const auto udg = geom::uniform_udg_with_degree(500, 14.0, rng);
    algo::UdgOptions opts;
    opts.k = 1;
    const auto result = algo::solve_udg_kmds(udg, opts, seed);
    EXPECT_TRUE(domination::is_k_dominating(
        udg.graph, result.part1_leaders, 1,
        domination::Mode::kOpenForNonMembers));
  }
}

// ---- Lemma 5.3 / Figure 1 ----

TEST(PaperClaims, Figure1_NineteenDisks) {
  EXPECT_EQ(geom::disks_intersecting_big_disk(), 19u);
}

TEST(PaperClaims, Lemma53_CoveringBoundForSmallTheta) {
  for (double theta : {0.01, 0.04, 0.1}) {
    EXPECT_LT(static_cast<double>(geom::measured_alpha(0.5, theta / 2.0)),
              geom::lemma53_bound(theta / 2.0))
        << "theta=" << theta;
  }
}

// ---- Theorem 5.7 ----

TEST(PaperClaims, Theorem57_LogLogRoundsAndFlatRatio) {
  // Rounds: exactly ⌈log_{1.5} log₂ n⌉ — doubly logarithmic.
  EXPECT_EQ(algo::udg_part1_rounds(1000), 6);
  EXPECT_EQ(algo::udg_part1_rounds(1'000'000), 8);

  // Ratio flat in n (constant-factor in expectation): 10x nodes must not
  // materially change the quality class.
  auto ratio_at = [&](NodeId n) {
    double total = 0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      util::Rng rng(700 + s);
      const auto udg = geom::uniform_udg_with_degree(n, 15.0, rng);
      algo::UdgOptions opts;
      opts.k = 2;
      const auto result = algo::solve_udg_kmds(udg, opts, s);
      const auto d = clamp_demands(udg.graph,
                                   uniform_demands(udg.n(), 2));
      const auto greedy = algo::greedy_kmds(udg.graph, d);
      const double lb = domination::best_lower_bound(
          udg.graph, d, static_cast<std::int64_t>(greedy.set.size()));
      total += static_cast<double>(result.leaders.size()) / lb;
    }
    return total / 3.0;
  };
  const double small = ratio_at(300);
  const double large = ratio_at(3000);
  EXPECT_LT(large, 2.0 * small);
  EXPECT_LT(small, 2.0 * large);
}

TEST(PaperClaims, Theorem57_FinalSetIsKFold) {
  util::Rng rng(8);
  const auto udg = geom::uniform_udg_with_degree(400, 15.0, rng);
  for (std::int32_t k : {1, 3, 5}) {
    algo::UdgOptions opts;
    opts.k = k;
    const auto result = algo::solve_udg_kmds(udg, opts, 8);
    EXPECT_TRUE(domination::is_k_dominating(
        udg.graph, result.leaders, k,
        domination::Mode::kOpenForNonMembers))
        << "k=" << k;
  }
}

// ---- Section 3: message size ----

TEST(PaperClaims, Section3_MessagesAreConstantWords) {
  // Covered in depth by E7; the distilled assertion lives in the process
  // tests (max_message_words ≤ 3 / 1 / 2). Here: the model constant itself.
  EXPECT_LE(sizeof(sim::Word) * 8, 64u);  // one word = one O(log n) value
}

// ---- Section 1: the fault-tolerance motivation ----

TEST(PaperClaims, Section1_KFoldSurvivesKMinusOneFailures) {
  util::Rng rng(9);
  const auto udg = geom::uniform_udg_with_degree(400, 16.0, rng);
  const std::int32_t k = 3;
  const auto d = clamp_demands(udg.graph, uniform_demands(udg.n(), k));
  const auto set = algo::greedy_kmds(udg.graph, d).set;

  // Remove ANY k-1 = 2 dominators (first two by id here): every node that
  // demanded k and is not itself a removed dominator keeps >= 1 dominator.
  ASSERT_GE(set.size(), 2u);
  const std::vector<NodeId> survivors(set.begin() + 2, set.end());
  const auto members = domination::to_membership(udg.graph, survivors);
  const auto cover =
      domination::closed_coverage_counts(udg.graph, members);
  for (NodeId v = 0; v < udg.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (v == set[0] || v == set[1] || d[i] < k) continue;
    EXPECT_GE(cover[i], 1) << "node " << v;
  }
}

}  // namespace
}  // namespace ftc
