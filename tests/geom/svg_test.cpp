#include "geom/svg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/rng.h"

namespace ftc::geom {
namespace {

UnitDiskGraph tiny_udg() {
  return build_udg({{0.0, 0.0}, {0.5, 0.0}, {0.5, 0.5}, {3.0, 3.0}}, 1.0);
}

TEST(Svg, WellFormedEnvelope) {
  const auto udg = tiny_udg();
  const std::string svg = svg_string(udg, {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per node.
  std::size_t circles = 0, pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(circles, 4u);
}

TEST(Svg, EdgesDrawnWhenEnabled) {
  const auto udg = tiny_udg();
  const std::string with_edges = svg_string(udg, {});
  EXPECT_NE(with_edges.find("<line"), std::string::npos);
  SvgOptions options;
  options.draw_edges = false;
  const std::string without = svg_string(udg, {}, options);
  EXPECT_EQ(without.find("<line"), std::string::npos);
}

TEST(Svg, LayersRenderWithColorAndLegend) {
  const auto udg = tiny_udg();
  SvgLayer layer;
  layer.nodes = {0, 2};
  layer.color = "#ff0000";
  layer.label = "backbone";
  const std::vector<SvgLayer> layers{layer};
  const std::string svg = svg_string(udg, layers);
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
  EXPECT_NE(svg.find(">backbone</text>"), std::string::npos);
}

TEST(Svg, CoordinatesStayOnCanvas) {
  util::Rng rng(1);
  const auto udg = build_udg(uniform_points(100, 7.0, rng), 1.0);
  const std::string svg = svg_string(udg, {});
  // Parse all cx values and check bounds.
  std::istringstream lines(svg);
  std::string line;
  while (std::getline(lines, line)) {
    const auto pos = line.find("cx=\"");
    if (pos == std::string::npos) continue;
    const double cx = std::stod(line.substr(pos + 4));
    EXPECT_GE(cx, 0.0);
    EXPECT_LE(cx, 800.0);
  }
}

TEST(Svg, SaveAndReload) {
  const std::string path = ::testing::TempDir() + "/ftc_svg_test.svg";
  const auto udg = tiny_udg();
  save_svg(path, udg, {});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
}

TEST(Svg, SaveToBadPathThrows) {
  EXPECT_THROW(save_svg("/nonexistent_zzz/x.svg", tiny_udg(), {}),
               std::runtime_error);
}

TEST(Svg, EmptyDeployment) {
  UnitDiskGraph udg;
  const std::string svg = svg_string(udg, {});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace ftc::geom
