#include "geom/cover.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace ftc::geom {
namespace {

TEST(Cover, EtaConstant) {
  EXPECT_NEAR(lemma53_eta(), 16.0 * std::numbers::pi / (3.0 * std::sqrt(3.0)),
              1e-12);
}

TEST(Cover, Figure1Nineteen) {
  // The paper's Figure 1: D_i (radius 3·θ_i/2) fully or partially covers
  // exactly 19 lattice disks C_i (radius θ_i/2).
  EXPECT_EQ(disks_intersecting_big_disk(), 19u);
}

TEST(Cover, CoveringIsComplete) {
  for (double r : {0.05, 0.1, 0.25}) {
    EXPECT_TRUE(covering_is_complete({0, 0}, 0.5, r, r / 4.0))
        << "disk radius " << r;
  }
}

TEST(Cover, CoveringCompleteOffCenter) {
  EXPECT_TRUE(covering_is_complete({3.7, -1.2}, 0.5, 0.1, 0.02));
}

TEST(Cover, MeasuredAlphaBelowLemmaBoundSmallTheta) {
  // Lemma 5.3's bound holds (with margin) for the small θ of early rounds.
  for (double disk_radius : {0.01, 0.02, 0.05}) {
    const double measured = static_cast<double>(
        measured_alpha(0.5, disk_radius));
    EXPECT_LT(measured, lemma53_bound(disk_radius))
        << "disk radius " << disk_radius;
  }
}

TEST(Cover, AlphaScalesInverseSquare) {
  // α ~ c/r²: quadrupling when the radius halves (within boundary slack).
  const auto a1 = static_cast<double>(measured_alpha(0.5, 0.04));
  const auto a2 = static_cast<double>(measured_alpha(0.5, 0.02));
  EXPECT_GT(a2 / a1, 3.0);
  EXPECT_LT(a2 / a1, 5.0);
}

TEST(Cover, CentersIntersectRegion) {
  const auto centers = hex_cover_centers({0, 0}, 1.0, 0.2);
  for (const Point& c : centers) {
    EXPECT_LT(norm(c), 1.0 + 0.2);
  }
}

TEST(Cover, DensityNearKershnerLimit) {
  // The covering density (disk area × count / region area) for a fine
  // lattice should approach 2π/(3√3) ≈ 1.209 (Kershner's bound), modulo
  // boundary effects that inflate it slightly.
  const double r = 0.01;
  const double count = static_cast<double>(measured_alpha(1.0, r));
  const double density = count * r * r / 1.0;  // (πr²·count)/(π·R²)
  EXPECT_GT(density, 1.15);
  EXPECT_LT(density, 1.35);
}

TEST(CountPointsPerDisk, CountsCorrectly) {
  const std::vector<Point> points{{0, 0}, {0.1, 0}, {1, 1}, {5, 5}};
  const std::vector<graph::NodeId> subset{0, 1, 2, 3};
  const std::vector<Point> centers{{0, 0}, {5, 5}};
  const auto counts = count_points_per_disk(points, subset, centers, 0.5);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);  // (0,0) and (0.1,0)
  EXPECT_EQ(counts[1], 1u);  // (5,5)
}

TEST(CountPointsPerDisk, SubsetFilters) {
  const std::vector<Point> points{{0, 0}, {0.1, 0}};
  const std::vector<graph::NodeId> subset{1};
  const std::vector<Point> centers{{0, 0}};
  const auto counts = count_points_per_disk(points, subset, centers, 0.5);
  EXPECT_EQ(counts[0], 1u);
}

}  // namespace
}  // namespace ftc::geom
