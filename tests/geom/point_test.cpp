#include "geom/point.h"

#include <gtest/gtest.h>

namespace ftc::geom {
namespace {

TEST(Point, DistanceBasics) {
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dist_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Point, DistanceSymmetric) {
  const Point a{1.5, -2.5};
  const Point b{-3.0, 4.0};
  EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
}

TEST(Point, TriangleInequality) {
  const Point a{0, 0}, b{1, 2}, c{3, 1};
  EXPECT_LE(dist(a, c), dist(a, b) + dist(b, c) + 1e-12);
}

TEST(Point, Norm) {
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm({0, 0}), 0.0);
}

TEST(Point, Arithmetic) {
  const Point a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Point{4, 7}));
  EXPECT_EQ(b - a, (Point{2, 3}));
  EXPECT_EQ(a * 2.0, (Point{2, 4}));
}

TEST(Point, Equality) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
}

}  // namespace
}  // namespace ftc::geom
